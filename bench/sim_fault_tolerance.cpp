// SIM-J — timed consistency under faults: drops, crashes, partitions.
//
// The paper's central robustness property is that lifetime caches enforce
// timeliness LOCALLY: a cached copy expires at omega no matter what the
// network does, so message loss can cost extra traffic and waiting, but
// never shows a reader a value staler than Delta. The Delta-causal
// broadcast alternative (Section 4, [7,8]) has no such local guard — a
// dropped update is simply never delivered, and the replica serves the
// old value forever.
//
// Part 1 runs both lifetime-cache protocols through a hostile scripted
// run (5% background loss + a 200ms client/server partition that heals +
// one mid-run crash/restart of each server + a latency spike + a
// duplication window) and reports the availability bill: retries,
// failovers, abandoned operations, unavailable time. late% stays 0.
//
// Part 2 sweeps background loss for the Delta-broadcast ReplicatedStore
// vs the TSC cache at the same Delta: the broadcast store's late% grows
// with the drop rate while the cache's stays 0 — it pays in retries
// instead (the reliability cost curve).
// Flags:
//   --trace-out <path>    JSONL event stream of the first hostile run
//   --chrome-out <path>   same trace in Chrome trace_event format — load it
//                         in ui.perfetto.dev to see the fault timeline
//   --metrics-out <path>  that run's metrics JSON (both histograms included)
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broadcast/replicated_store.hpp"
#include "protocol/experiment.hpp"
#include "sim/faults.hpp"
#include "sim/workload.hpp"

using namespace timedc;

namespace {

WorkloadParams hostile_workload() {
  WorkloadParams w;
  w.num_clients = 4;
  w.num_objects = 16;
  w.write_ratio = 0.2;
  w.mean_think_time = SimTime::millis(8);
  w.zipf_exponent = 0.8;
  w.horizon = SimTime::seconds(2);
  return w;
}

// Clients are sites 0..3, servers 4 and 5.
FaultPlan hostile_plan() {
  FaultPlan plan;
  // Two clients lose both servers for 200ms, then the partition heals.
  Partition cut;
  cut.start = SimTime::millis(300);
  cut.heal = SimTime::millis(500);
  cut.side_a = {SiteId{0}, SiteId{1}};
  cut.side_b = {SiteId{4}, SiteId{5}};
  plan.partitions.push_back(cut);
  // Each server crashes once mid-run and comes back 100ms later.
  plan.crashes.push_back(
      ServerCrash{SiteId{4}, SimTime::millis(600), SimTime::millis(700)});
  plan.crashes.push_back(
      ServerCrash{SiteId{5}, SimTime::millis(900), SimTime::millis(1000)});
  // A congestion spike: +5ms on every link for 100ms. This exceeds the
  // clients' first-attempt timeout, so it manufactures spurious retries —
  // exercising duplicate-reply suppression and server-side write dedup.
  plan.latency_spikes.push_back(LatencySpike{
      SimTime::millis(1200), SimTime::millis(1300), SimTime::millis(5)});
  // And a window where the network duplicates 30% of messages.
  DuplicateWindow dup;
  dup.start = SimTime::millis(1500);
  dup.end = SimTime::millis(1600);
  dup.probability = 0.3;
  plan.duplications.push_back(dup);
  return plan;
}

ExperimentConfig hostile_config(ProtocolKind kind, PushPolicy push) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = SimTime::millis(25);
  config.workload = hostile_workload();
  config.num_servers = 2;
  config.push = push;
  config.drop_probability = 0.05;
  config.faults = hostile_plan();
  config.seed = 11;
  return config;
}

ExperimentResult run_hostile(ProtocolKind kind, PushPolicy push) {
  return run_experiment(hostile_config(kind, push));
}

void print_hostile_row(const char* name, const ExperimentResult& r) {
  std::printf("  %-22s %6llu %6llu %8.2f %6llu %7llu %6llu %5llu %7.3f%% %8.2f%%\n",
              name, (unsigned long long)r.operations,
              (unsigned long long)r.ops_abandoned, r.retries_per_op,
              (unsigned long long)r.cache.failovers,
              (unsigned long long)r.server.duplicate_writes,
              (unsigned long long)r.messages_dropped,
              (unsigned long long)r.messages_duplicated,
              100.0 * r.late_fraction, 100.0 * r.unavailable_fraction);
}

struct BroadcastPoint {
  double late_fraction = 0;
  double mean_staleness_us = 0;
  std::uint64_t reads = 0;
};

/// Full replication over Delta-causal broadcast under uniform loss, with
/// the same winning-timeline staleness oracle the harness uses.
BroadcastPoint run_broadcast(const WorkloadParams& workload, SimTime delta,
                             double drop, std::uint64_t seed) {
  Simulator sim;
  NetworkConfig config;
  config.drop_probability = drop;
  config.fifo_links = false;
  Network net(sim, workload.num_clients,
              std::make_unique<UniformLatency>(SimTime::micros(200),
                                               SimTime::micros(800)),
              config, Rng(seed));
  std::vector<std::unique_ptr<ReplicatedStore>> stores;
  for (std::uint32_t c = 0; c < workload.num_clients; ++c) {
    stores.push_back(std::make_unique<ReplicatedStore>(
        sim, net, SiteId{c}, workload.num_clients, delta));
    stores.back()->attach();
  }
  Rng rng(seed ^ 0x5151);
  const auto ops = generate_workload(workload, rng);
  struct GlobalWrite {
    SimTime at;
    Value value;
  };
  std::unordered_map<ObjectId, std::vector<GlobalWrite>> timeline;
  std::int64_t next_value = 1;
  BroadcastPoint point;
  double staleness_sum = 0;
  std::uint64_t late = 0;
  for (const WorkloadOp& op : ops) {
    if (op.is_write) {
      const Value v{next_value++};
      timeline[op.object].push_back({op.at, v});
      sim.schedule_at(op.at, [&stores, op, v] {
        stores[op.client.value]->write(op.object, v);
      });
    } else {
      sim.schedule_at(op.at, [&, op] {
        const Value got = stores[op.client.value]->read(op.object);
        ++point.reads;
        const auto& writes = timeline[op.object];
        SimTime got_at = SimTime::micros(-1);
        for (const auto& w : writes) {
          if (w.value == got) got_at = w.at;
        }
        for (const auto& w : writes) {
          if (w.at > got_at && w.at < op.at && w.value != got) {
            const SimTime staleness = op.at - w.at;
            staleness_sum += static_cast<double>(staleness.as_micros());
            if (staleness > delta) ++late;
            break;
          }
        }
      });
    }
  }
  sim.run_until();
  if (point.reads > 0) {
    point.late_fraction =
        static_cast<double>(late) / static_cast<double>(point.reads);
    point.mean_staleness_us =
        staleness_sum / static_cast<double>(point.reads);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string chrome_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--trace-out") {
      if (const char* v = next()) trace_out = v;
    } else if (arg == "--chrome-out") {
      if (const char* v = next()) chrome_out = v;
    } else if (arg == "--metrics-out") {
      if (const char* v = next()) metrics_out = v;
    } else {
      std::fprintf(stderr,
                   "usage: sim_fault_tolerance [--trace-out PATH] "
                   "[--chrome-out PATH] [--metrics-out PATH]\n");
      return 2;
    }
  }

  std::printf(
      "SIM-J: fault tolerance — 4 clients, 2 servers, Delta = 25ms, 2s.\n"
      "Faults: 5%% uniform loss, 200ms partition ({c0,c1} vs servers,\n"
      "heals), each server crashes once for 100ms, +5ms latency spike\n"
      "for 100ms, 30%% duplication for 100ms. Retry: 8 attempts,\n"
      "exponential backoff, failover across the cluster.\n\n");

  std::printf("  %-22s %6s %6s %8s %6s %7s %6s %5s %8s %9s\n", "protocol",
              "ops", "aband", "retry/op", "failov", "dupW", "drops", "dups",
              "late%", "unavail%");
  // The first hostile run is the one the observability flags export.
  ExperimentConfig serial_config =
      hostile_config(ProtocolKind::kTimedSerial, PushPolicy::kNone);
  serial_config.trace.enabled =
      !trace_out.empty() || !chrome_out.empty();
  const auto serial = run_experiment(serial_config);
  print_hostile_row("timed-serial (pull)", serial);
  const auto causal = run_hostile(ProtocolKind::kTimedCausal, PushPolicy::kNone);
  print_hostile_row("timed-causal (pull)", causal);
  const auto pushed =
      run_hostile(ProtocolKind::kTimedSerial, PushPolicy::kInvalidate);
  print_hostile_row("timed-serial (push-inv)", pushed);

  std::printf(
      "\n  injector: %llu dropped in partition, %llu dropped at dead\n"
      "  servers, %llu duplicated, %llu delayed; %llu crashes, %llu\n"
      "  restarts; network dropped %llu of %llu messages total.\n",
      (unsigned long long)serial.faults.dropped_by_partition,
      (unsigned long long)serial.faults.dropped_node_down,
      (unsigned long long)serial.faults.duplicated,
      (unsigned long long)serial.faults.delayed,
      (unsigned long long)serial.faults.crashes,
      (unsigned long long)serial.faults.restarts,
      (unsigned long long)serial.network.messages_dropped,
      (unsigned long long)serial.network.messages_sent);

  std::printf(
      "\nShape check: late%% is 0.000 in every row — expiry is enforced at\n"
      "the reader, so no admitted read is ever staler than Delta; faults\n"
      "surface as retries, failovers and (rarely) abandoned ops instead.\n"
      "Push clients degrade gracefully: a crash wipes the server's cacher\n"
      "set, but finite Delta forces revalidation, which re-subscribes.\n\n");

  // ----- Part 2: the broadcast store violates Delta under the same loss.
  WorkloadParams w = hostile_workload();
  const SimTime delta = SimTime::millis(25);
  std::printf(
      "Loss sweep, same workload: Delta-broadcast replication vs TSC\n"
      "lifetime cache (reliability cost curve).\n\n");
  std::printf("  %6s | %10s %10s | %10s %8s %10s\n", "drop", "bcast-late%",
              "stale-us", "cache-late%", "retry/op", "msgs/op");
  for (const double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const BroadcastPoint b = run_broadcast(w, delta, drop, 23);

    ExperimentConfig cache;
    cache.kind = ProtocolKind::kTimedSerial;
    cache.delta = delta;
    cache.workload = w;
    cache.num_servers = 2;
    cache.drop_probability = drop;
    cache.seed = 23;
    const auto r = run_experiment(cache);

    std::printf("  %5.0f%% | %9.3f%% %10.0f | %9.3f%% %8.2f %10.2f\n",
                100 * drop, 100 * b.late_fraction, b.mean_staleness_us,
                100 * r.late_fraction, r.retries_per_op, r.messages_per_op);
  }
  std::printf(
      "\nShape check: the broadcast store's late%% climbs with the drop\n"
      "rate (a lost update is never delivered; the stale replica serves\n"
      "it indefinitely), while the lifetime cache holds late%% at 0 and\n"
      "pays for loss in retries and messages — consistency is enforced\n"
      "by local expiry, so the network can only make it slower, not\n"
      "wrong.\n");

  if (!trace_out.empty()) {
    write_text_file(trace_out, trace_to_jsonl(serial.trace));
    std::printf("\ntrace: %zu events -> %s\n", serial.trace.size(),
                trace_out.c_str());
  }
  if (!chrome_out.empty()) {
    write_text_file(chrome_out, trace_to_chrome(serial.trace));
    std::printf("chrome trace -> %s (load in ui.perfetto.dev)\n",
                chrome_out.c_str());
  }
  if (!metrics_out.empty()) {
    write_text_file(metrics_out,
                    experiment_metrics(serial_config, serial).to_json(2));
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  return 0;
}
