// PERF — net_throughput: the real-socket serving stack's throughput
// recorder behind BENCH_net.json.
//
// Measures aggregate fetch throughput against a ReactorGroup (N
// single-threaded reactors sharing one SO_REUSEPORT listening port, each
// hosting an ObjectServer) from raw pipelined client connections, sweeping
// the reactor count 1..max. The client side is deliberately NOT the TSC
// cache stack: each connection pre-encodes one block of `--pipeline`
// FetchRequest frames once, then replays that block with plain write() and
// counts replies with wire::peek_frame (header-only, no body decode, no
// allocation), so the bench measures the server hot path — decode view,
// batch apply, coalesced sendmsg flush — and not client bookkeeping.
//
// Allocation accounting: this binary overrides global operator new.
// Reactor threads tag themselves via ReactorGroup::start's on_thread_start
// hook, and every allocation they make inside the steady-state measurement
// window is counted. The recorded `reactor_allocs` must be 0: after
// warmup (which populates the object maps, cacher sets, per-connection
// buffers and the dirty-connection flush lists) the serve path touches no
// heap. CI gates on that and on a generous ops/s floor.
//
// The sweep runs with the FULL observability stack armed (per-reactor
// StatsBoard, flight recorder, 1-in-64 stage sampling) — the shape
// production serves in — and the zero-allocation gate applies unchanged.
// One extra run of the largest point with observability off records the
// overhead as the "flight_recorder" block of BENCH_net.json.
//
// Open loop: --open-loop RATE replaces the closed-loop top-up with a fixed
// arrival schedule (blocks of `--pipeline` ops per connection, evenly
// spaced), charging each op's latency from its INTENDED arrival time, so
// server stalls surface as tail latency instead of silently slowing the
// offered load (no coordinated omission). Open-loop runs measure a single
// point at --reactors-max instead of sweeping.
//
// Usage: net_throughput [--quick] [--out FILE.json] [--reactors-max N]
//                       [--connections-per-reactor C] [--pipeline P]
//                       [--measure-s S] [--objects K] [--open-loop RATE]
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "net/reactor_group.hpp"
#include "net/wire.hpp"
#include "protocol/messages.hpp"
#include "protocol/server.hpp"

// ---------------------------------------------------------------------------
// Global allocation accounting. Reactor threads set t_on_reactor; every
// operator-new on such a thread while the measurement window is open is
// counted. The overrides otherwise forward to malloc/free, so behaviour is
// unchanged outside the counting.
namespace {
std::atomic<bool> g_alloc_window{false};
std::atomic<std::uint64_t> g_reactor_allocs{0};
thread_local bool t_on_reactor = false;

inline void note_alloc() {
  if (t_on_reactor && g_alloc_window.load(std::memory_order_relaxed)) {
    g_reactor_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t n) {
  note_alloc();
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t n) { return checked_malloc(n); }
void* operator new[](std::size_t n) { return checked_malloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n != 0 ? n : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

namespace timedc {
namespace {

/// The recorded single-reactor, pre-batching baseline this bench's speedup
/// is measured against (timedc-load closed loop against one shard, PR 6).
constexpr double kBaselineOpsPerSec = 129000.0;

struct Options {
  bool quick = false;
  std::string out = "BENCH_net.json";
  std::size_t reactors_max = 4;
  std::size_t conns_per_reactor = 2;
  std::size_t pipeline = 128;  // frames per pre-encoded block
  double measure_s = 2.0;
  double warmup_s = 0.4;
  std::size_t objects = 64;  // distinct objects per connection
  double open_loop = 0;      // aggregate ops/s; 0 = closed loop
};

std::int64_t now_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000000LL + ts.tv_nsec / 1000;
}

/// One raw pipelined client connection. The same pre-encoded request block
/// is replayed for the whole run; replies are counted with peek_frame.
struct RawConn {
  int fd = -1;
  bool connected = false;
  std::uint32_t client_site = 0;
  std::uint32_t server_site = 0;
  // Write side: how many whole blocks remain to send, and the offset into
  // the block currently on the wire. The bytes are always `block`.
  std::vector<std::uint8_t> block;
  std::size_t blocks_pending = 0;
  std::size_t block_off = 0;
  // Read side: scan buffer with a carried partial-frame tail.
  std::vector<std::uint8_t> rbuf = std::vector<std::uint8_t>(256 * 1024);
  std::size_t rlen = 0;
  std::size_t outstanding = 0;  // requests sent or queued, reply not seen
  std::uint64_t completed = 0;
  // Latency bookkeeping: one intended-arrival stamp per outstanding op.
  std::deque<std::int64_t> stamps;
  // Open loop: this connection's block arrival schedule.
  double next_block_at_us = 0;
  double block_period_us = 0;
  std::deque<std::int64_t> backlog;  // intended stamps of unsent blocks
};

void die(const char* what) {
  std::perror(what);
  std::exit(1);
}

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) die("socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    die("connect");
  }
  return fd;
}

/// Enqueue one block of requests (bookkeeping only; bytes move in
/// pump_writes). `intended_us` stamps every op in the block.
void enqueue_block(RawConn& c, std::size_t pipeline, std::int64_t intended_us) {
  ++c.blocks_pending;
  c.outstanding += pipeline;
  for (std::size_t j = 0; j < pipeline; ++j) c.stamps.push_back(intended_us);
}

/// Write as much queued block data as the socket accepts.
/// Returns false when the connection died.
bool pump_writes(RawConn& c) {
  while (c.blocks_pending > 0) {
    const ssize_t n = ::send(c.fd, c.block.data() + c.block_off,
                             c.block.size() - c.block_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    c.block_off += static_cast<std::size_t>(n);
    if (c.block_off == c.block.size()) {
      c.block_off = 0;
      --c.blocks_pending;
    }
  }
  return true;
}

/// Read and count replies; records per-op latency into `lat` (closed loop
/// passes nullptr). Returns false when the connection died.
bool pump_reads(RawConn& c, std::vector<std::int64_t>* lat) {
  for (;;) {
    if (c.rlen == c.rbuf.size()) break;  // scan below will make room
    const ssize_t n =
        ::recv(c.fd, c.rbuf.data() + c.rlen, c.rbuf.size() - c.rlen, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    c.rlen += static_cast<std::size_t>(n);
    // Header-only scan: count whole frames, keep the partial tail.
    std::size_t off = 0;
    const std::int64_t t = now_us();
    for (;;) {
      const wire::FrameView view = wire::peek_frame(
          std::span<const std::uint8_t>(c.rbuf.data() + off, c.rlen - off));
      if (view.status == wire::DecodeStatus::kNeedMore) break;
      if (!view.ok()) {
        std::fprintf(stderr, "net_throughput: bad reply frame (%s)\n",
                     wire::to_cstring(view.status));
        return false;
      }
      off += view.consumed;
      ++c.completed;
      --c.outstanding;
      if (!c.stamps.empty()) {
        if (lat != nullptr) lat->push_back(t - c.stamps.front());
        c.stamps.pop_front();
      }
    }
    if (off > 0) {
      std::memmove(c.rbuf.data(), c.rbuf.data() + off, c.rlen - off);
      c.rlen -= off;
    }
  }
  return true;
}

struct PointResult {
  std::size_t reactors = 0;
  std::size_t connections = 0;
  double ops_per_sec = 0;
  std::uint64_t ops = 0;
  std::uint64_t reactor_allocs = 0;
  double allocs_per_op = 0;
  double frames_per_sendmsg = 0;  // server-side coalescing factor
  std::uint64_t steered = 0;
  std::uint64_t batch_flushes = 0;
  std::uint64_t flight_recorded = 0;  // flight events across all reactors
  // Open loop only:
  double offered_ops_per_sec = 0;
  std::int64_t lat_p50_us = 0;
  std::int64_t lat_p99_us = 0;
  std::int64_t lat_max_us = 0;
};

std::int64_t percentile(std::vector<std::int64_t>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t at = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(at),
                   v.end());
  return v[static_cast<std::ptrdiff_t>(at)];
}

net::TcpTransportStats snapshot(net::ReactorGroup& group, std::size_t i) {
  std::promise<net::TcpTransportStats> p;
  auto fut = p.get_future();
  group.loop(i).post([&] { p.set_value(group.transport(i).stats()); });
  return fut.get();
}

/// Run one measured point: R reactors, closed-loop pipelined or open-loop
/// scheduled, warmup then a steady-state window with allocation counting.
/// `flight_on` arms the full observability stack (per-reactor StatsBoard +
/// flight recorder + stage sampling) — the shape production serves in; the
/// recorded sweep runs WITH it on and the zero-allocation gate applies
/// unchanged, which is exactly the claim the flight recorder makes.
PointResult run_point(const Options& opt, std::size_t reactors,
                      bool flight_on) {
  const std::size_t conns = reactors * opt.conns_per_reactor;
  // Sites 0..R-1 are the reactors' servers; anything else (the clients)
  // stays on whichever reactor accepted it.
  net::ReactorGroup group(
      reactors, [reactors](SiteId to) -> std::size_t {
        return to.value < reactors ? to.value : reactors;
      });
  if (flight_on) group.enable_observability(/*site_base=*/0);
  std::vector<std::unique_ptr<ObjectServer>> servers;
  for (std::size_t i = 0; i < reactors; ++i) {
    auto server = std::make_unique<ObjectServer>(
        group.transport(i), SiteId{static_cast<std::uint32_t>(i)},
        /*num_sites=*/reactors, PushPolicy::kNone, MessageSizes{});
    if (flight_on) {
      server->set_stats_board(group.stats_board(i));
      server->set_flight_recorder(group.flight_recorder(i));
    }
    server->attach();
    servers.push_back(std::move(server));
  }
  const std::uint16_t port = group.listen_shared(0);
  group.start([](std::size_t) { t_on_reactor = true; });

  // Dial and pre-encode. Connection c serves server site c % reactors and
  // identifies as client site 1000 + c (unique, so replies route cleanly
  // even after steering moves the fd between reactors).
  std::vector<RawConn> cs(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    cs[c].fd = dial(port);
    cs[c].client_site = static_cast<std::uint32_t>(1000 + c);
    cs[c].server_site = static_cast<std::uint32_t>(c % reactors);
    for (std::size_t j = 0; j < opt.pipeline; ++j) {
      const FetchRequest req{
          ObjectId{static_cast<std::uint32_t>(j % opt.objects)},
          SiteId{cs[c].client_site}, /*request_id=*/j + 1};
      wire::encode_frame(SiteId{cs[c].client_site}, SiteId{cs[c].server_site},
                         Message{req}, cs[c].block);
    }
  }

  const bool open = opt.open_loop > 0;
  const double warmup_s = opt.quick ? opt.warmup_s * 0.5 : opt.warmup_s;
  std::vector<pollfd> pfds(conns);
  std::vector<std::int64_t> latencies;
  bool measuring = false;
  std::uint64_t ops_at_start = 0;
  std::int64_t window_start_us = 0;
  std::uint64_t offered_at_start = 0;
  net::TcpTransportStats before{};

  const std::int64_t t0 = now_us();
  const std::int64_t warmup_until = t0 + static_cast<std::int64_t>(warmup_s * 1e6);
  const std::int64_t end_at =
      warmup_until + static_cast<std::int64_t>(opt.measure_s * 1e6);
  std::uint64_t offered = 0;  // blocks enqueued (open loop)

  if (open) {
    // Each connection serves an equal slice of the aggregate rate, one
    // block of `pipeline` ops at a time.
    const double conn_rate = opt.open_loop / static_cast<double>(conns);
    for (auto& c : cs) {
      c.block_period_us = 1e6 * static_cast<double>(opt.pipeline) / conn_rate;
      c.next_block_at_us = static_cast<double>(t0);
    }
  }

  for (;;) {
    const std::int64_t t = now_us();
    if (t >= end_at) break;
    if (!measuring && t >= warmup_until) {
      // Steady state begins: zero the op counters, open the allocation
      // window, snapshot the server-side flush counters.
      measuring = true;
      window_start_us = t;
      for (const auto& c : cs) ops_at_start += c.completed;
      offered_at_start = offered;
      before = snapshot(group, 0);
      for (std::size_t i = 1; i < reactors; ++i) {
        const auto s = snapshot(group, i);
        before.frames_sent += s.frames_sent;
        before.flush_syscalls += s.flush_syscalls;
        before.batch_flushes += s.batch_flushes;
      }
      g_reactor_allocs.store(0, std::memory_order_relaxed);
      g_alloc_window.store(true, std::memory_order_relaxed);
    }

    for (auto& c : cs) {
      if (open) {
        // Arrivals keep their schedule; blocks that find the pipe full
        // wait in the backlog, charged from their intended time.
        const double now_d = static_cast<double>(t);
        while (c.next_block_at_us <= now_d) {
          c.backlog.push_back(static_cast<std::int64_t>(c.next_block_at_us));
          c.next_block_at_us += c.block_period_us;
          ++offered;
        }
        while (!c.backlog.empty() && c.outstanding < 4 * opt.pipeline) {
          enqueue_block(c, opt.pipeline, c.backlog.front());
          c.backlog.pop_front();
        }
      } else {
        // Closed loop: keep up to two blocks in flight so the server
        // never drains the pipe while the next block is in transit.
        while (c.outstanding + opt.pipeline <= 2 * opt.pipeline) {
          enqueue_block(c, opt.pipeline, t);
        }
      }
    }

    for (std::size_t i = 0; i < conns; ++i) {
      pfds[i].fd = cs[i].fd;
      pfds[i].events = static_cast<short>(
          POLLIN | (cs[i].blocks_pending > 0 ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
    if (::poll(pfds.data(), pfds.size(), 1) < 0 && errno != EINTR) die("poll");
    for (std::size_t i = 0; i < conns; ++i) {
      RawConn& c = cs[i];
      if ((pfds[i].revents & (POLLERR | POLLHUP)) != 0) {
        std::fprintf(stderr, "net_throughput: connection %zu dropped\n", i);
        std::exit(1);
      }
      if ((pfds[i].revents & POLLOUT) != 0 && !pump_writes(c)) die("send");
      if ((pfds[i].revents & POLLIN) != 0 &&
          !pump_reads(c, measuring && open ? &latencies : nullptr)) {
        die("recv");
      }
    }
  }

  g_alloc_window.store(false, std::memory_order_relaxed);
  const std::int64_t window_us = now_us() - window_start_us;

  PointResult r;
  r.reactors = reactors;
  r.connections = conns;
  std::uint64_t ops_total = 0;
  for (const auto& c : cs) ops_total += c.completed;
  r.ops = ops_total - ops_at_start;
  r.ops_per_sec = static_cast<double>(r.ops) * 1e6 /
                  static_cast<double>(window_us > 0 ? window_us : 1);
  r.reactor_allocs = g_reactor_allocs.load(std::memory_order_relaxed);
  r.allocs_per_op =
      r.ops > 0 ? static_cast<double>(r.reactor_allocs) /
                      static_cast<double>(r.ops)
                : 0;
  net::TcpTransportStats after{};
  for (std::size_t i = 0; i < reactors; ++i) {
    const auto s = snapshot(group, i);
    after.frames_sent += s.frames_sent;
    after.flush_syscalls += s.flush_syscalls;
    after.batch_flushes += s.batch_flushes;
    after.connections_steered_out += s.connections_steered_out;
  }
  const std::uint64_t frames = after.frames_sent - before.frames_sent;
  const std::uint64_t syscalls = after.flush_syscalls - before.flush_syscalls;
  r.frames_per_sendmsg =
      syscalls > 0 ? static_cast<double>(frames) / static_cast<double>(syscalls)
                   : 0;
  r.batch_flushes = after.batch_flushes - before.batch_flushes;
  r.steered = after.connections_steered_out;
  if (flight_on) {
    for (std::size_t i = 0; i < reactors; ++i) {
      if (const FlightRecorder* fr = group.flight_recorder(i)) {
        r.flight_recorded += fr->recorded();
      }
    }
  }
  if (open) {
    r.offered_ops_per_sec = static_cast<double>(offered - offered_at_start) *
                            static_cast<double>(opt.pipeline) * 1e6 /
                            static_cast<double>(window_us > 0 ? window_us : 1);
    r.lat_p50_us = percentile(latencies, 0.50);
    r.lat_p99_us = percentile(latencies, 0.99);
    r.lat_max_us =
        latencies.empty()
            ? 0
            : *std::max_element(latencies.begin(), latencies.end());
  }

  for (auto& c : cs) ::close(c.fd);
  group.stop();
  return r;
}

}  // namespace
}  // namespace timedc

int main(int argc, char** argv) {
  using namespace timedc;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--out") {
      opt.out = next();
    } else if (arg == "--reactors-max") {
      opt.reactors_max = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--connections-per-reactor") {
      opt.conns_per_reactor = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--pipeline") {
      opt.pipeline = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--measure-s") {
      opt.measure_s = std::atof(next());
    } else if (arg == "--objects") {
      opt.objects = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--open-loop") {
      opt.open_loop = std::atof(next());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out FILE.json] [--reactors-max N]\n"
                   "          [--connections-per-reactor C] [--pipeline P]\n"
                   "          [--measure-s S] [--objects K] [--open-loop R]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.reactors_max < 1 || opt.pipeline < 1 || opt.conns_per_reactor < 1) {
    std::fprintf(stderr, "net_throughput: bad arguments\n");
    return 2;
  }
  if (opt.quick) opt.measure_s = std::min(opt.measure_s, 0.5);

  // Sweep 1, 2, 4, ... up to --reactors-max (quick: 1 and 2). Open-loop
  // measures the single point at --reactors-max.
  std::vector<std::size_t> sweep;
  if (opt.open_loop > 0) {
    sweep.push_back(opt.reactors_max);
  } else {
    for (std::size_t r = 1; r <= opt.reactors_max; r *= 2) sweep.push_back(r);
    if (sweep.back() != opt.reactors_max) sweep.push_back(opt.reactors_max);
    if (opt.quick && sweep.size() > 2) sweep.resize(2);
  }

  std::vector<PointResult> results;
  for (const std::size_t r : sweep) {
    std::fprintf(stderr, "net_throughput: reactors=%zu ...\n", r);
    results.push_back(run_point(opt, r, /*flight_on=*/true));
    const PointResult& p = results.back();
    std::fprintf(stderr,
                 "  %zu reactors, %zu conns: %.0f ops/s (%.1fx baseline), "
                 "%.1f frames/sendmsg, %llu reactor allocs, "
                 "%llu flight events\n",
                 p.reactors, p.connections, p.ops_per_sec,
                 p.ops_per_sec / kBaselineOpsPerSec, p.frames_per_sendmsg,
                 static_cast<unsigned long long>(p.reactor_allocs),
                 static_cast<unsigned long long>(p.flight_recorded));
  }

  // Overhead check: re-run the largest sweep point with the observability
  // stack off. The delta is what the flight recorder + stage sampling +
  // board publishing cost the hot path (noise makes small negatives normal).
  std::fprintf(stderr, "net_throughput: reactors=%zu (flight off) ...\n",
               sweep.back());
  const PointResult off = run_point(opt, sweep.back(), /*flight_on=*/false);
  const PointResult& on = results.back();
  const double overhead_pct =
      off.ops_per_sec > 0
          ? (off.ops_per_sec - on.ops_per_sec) * 100.0 / off.ops_per_sec
          : 0;
  std::fprintf(stderr,
               "  flight off: %.0f ops/s vs on: %.0f ops/s "
               "(overhead %.2f%%)\n",
               off.ops_per_sec, on.ops_per_sec, overhead_pct);

  double peak = 0;
  for (const auto& p : results) peak = std::max(peak, p.ops_per_sec);

  std::FILE* out = std::fopen(opt.out.c_str(), "w");
  if (out == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"net_throughput\",\n");
  std::fprintf(out, "  \"quick\": %s,\n", opt.quick ? "true" : "false");
  std::fprintf(out, "  \"mode\": \"%s\",\n",
               opt.open_loop > 0 ? "open_loop" : "closed_loop");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"baseline_ops_per_sec\": %.1f,\n", kBaselineOpsPerSec);
  std::fprintf(out,
               "  \"config\": {\"connections_per_reactor\": %zu, "
               "\"pipeline\": %zu, \"measure_s\": %.3f, \"objects\": %zu",
               opt.conns_per_reactor, opt.pipeline, opt.measure_s, opt.objects);
  if (opt.open_loop > 0) {
    std::fprintf(out, ", \"open_loop_rate\": %.1f", opt.open_loop);
  }
  std::fprintf(out, "},\n");
  std::fprintf(out, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointResult& p = results[i];
    std::fprintf(out,
                 "    {\"reactors\": %zu, \"connections\": %zu, "
                 "\"ops\": %llu, \"ops_per_sec\": %.1f, "
                 "\"speedup_vs_baseline\": %.2f, "
                 "\"reactor_allocs\": %llu, \"allocs_per_op\": %.6f, "
                 "\"frames_per_sendmsg\": %.2f, \"batch_flushes\": %llu, "
                 "\"steered_connections\": %llu, \"flight_recorded\": %llu",
                 p.reactors, p.connections,
                 static_cast<unsigned long long>(p.ops), p.ops_per_sec,
                 p.ops_per_sec / kBaselineOpsPerSec,
                 static_cast<unsigned long long>(p.reactor_allocs),
                 p.allocs_per_op, p.frames_per_sendmsg,
                 static_cast<unsigned long long>(p.batch_flushes),
                 static_cast<unsigned long long>(p.steered),
                 static_cast<unsigned long long>(p.flight_recorded));
    if (opt.open_loop > 0) {
      std::fprintf(out,
                   ", \"offered_ops_per_sec\": %.1f, \"latency_p50_us\": %lld, "
                   "\"latency_p99_us\": %lld, \"latency_max_us\": %lld",
                   p.offered_ops_per_sec,
                   static_cast<long long>(p.lat_p50_us),
                   static_cast<long long>(p.lat_p99_us),
                   static_cast<long long>(p.lat_max_us));
    }
    std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"flight_recorder\": {\"sweep_enabled\": true, "
               "\"off_ops_per_sec\": %.1f, \"on_ops_per_sec\": %.1f, "
               "\"overhead_pct\": %.2f},\n",
               off.ops_per_sec, on.ops_per_sec, overhead_pct);
  std::fprintf(out, "  \"peak_ops_per_sec\": %.1f,\n", peak);
  std::fprintf(out, "  \"peak_speedup_vs_baseline\": %.2f\n",
               peak / kBaselineOpsPerSec);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr, "net_throughput: peak %.0f ops/s (%.1fx) -> %s\n", peak,
               peak / kBaselineOpsPerSec, opt.out.c_str());
  return 0;
}
