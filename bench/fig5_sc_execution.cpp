// FIG5 — reproduces Figure 5: the 5-site sequentially consistent execution
// (5a), the program-order-respecting serialization the paper prints (5b),
// and the TSC threshold discussion: not TSC at Delta = 50 (r4(C)6@436 must
// have seen w2(C)7@340), TSC for Delta > 96, and failure below 27 via
// r3(B)2@301 vs w2(B)5@274.
#include <cstdio>

#include "core/checkers.hpp"
#include "core/paper_figures.hpp"
#include "core/render.hpp"
#include "core/serialization.hpp"

using namespace timedc;

int main() {
  const History h = figure5a();
  std::printf("Figure 5a: sequentially consistent execution\n\n%s\n",
              render_timeline(h, {.width = 110}).c_str());

  const auto s5b = figure5b_serialization();
  std::printf("Figure 5b serialization (from the paper):\n  %s\n\n",
              serialization_to_string(h, s5b).c_str());
  std::printf("  legal:                  %s\n",
              is_legal_serialization(h, s5b) ? "yes" : "NO");
  std::printf("  respects program order: %s\n",
              respects_program_order(h, s5b) ? "yes" : "NO");
  std::printf("  respects real time:     %s (paper: no — e.g. w0(C)6/w2(B)5 reversed)\n\n",
              respects_effective_time(h, s5b) ? "yes" : "no");

  std::printf("model verdicts: SC %s, CC %s, LIN %s (paper: yes, yes, no)\n\n",
              to_cstring(check_sc(h).verdict), to_cstring(check_cc(h).verdict),
              to_cstring(check_lin(h).verdict));

  std::printf("TSC threshold sweep:\n\n  %10s %6s  %s\n", "Delta", "TSC?",
              "binding late read");
  for (const std::int64_t d : {10, 26, 27, 50, 95, 96, 97, 200}) {
    const auto r = check_tsc(h, TimedSpecEpsilon{SimTime::micros(d), SimTime::zero()});
    std::string blame;
    if (!r.timing.all_on_time) {
      const auto& lr = r.timing.late_reads.front();
      blame = h.op(lr.read).to_string() + " misses " +
              h.op(lr.w_r.front()).to_string();
    }
    std::printf("  %8lldus %6s  %s\n", (long long)d, r.ok() ? "yes" : "no",
                blame.c_str());
  }

  const auto gaps = staleness_gaps(h);
  std::printf("\nstaleness-gap spectrum (descending): ");
  for (SimTime g : gaps) std::printf("%s ", g.to_string().c_str());
  std::printf("\npaper anchors: 96 (r4(C)6@436 vs w2(C)7@340) and 27\n");
  std::printf("(r3(B)2@301 vs w2(B)5@274); min TSC Delta measured = %s\n",
              min_timed_delta(h).to_string().c_str());
  return 0;
}
