// FIG7 — reproduces Figure 7: the geometric interpretation of vector
// clocks through xi maps (Section 5.4). Prints the paper's worked values
// (xi(<3,4>) = 5, xi(<3,2>) = 3.61, xi(<2,4>) = 4.47), demonstrates the
// containment property for causally ordered timestamps, and validates
// Definition 5 for every implemented map over a random computation.
#include <cstdio>

#include "clocks/xi_map.hpp"
#include "common/rng.hpp"

using namespace timedc;

namespace {

VectorTimestamp vt(std::vector<std::uint64_t> v) {
  return VectorTimestamp(std::move(v));
}

}  // namespace

int main() {
  const SumXiMap sum;
  const NormXiMap norm;

  std::printf("Figure 7: xi maps on vector clocks\n\n");
  std::printf("%-16s %10s %10s\n", "timestamp", "xi=length", "xi=sum");
  for (const auto& t : {vt({3, 4}), vt({3, 2}), vt({2, 4})}) {
    std::printf("%-16s %10.2f %10.0f\n", t.to_string().c_str(), norm(t),
                sum(t));
  }
  std::printf("\npaper: xi(<3,4>) = 5, xi(<3,2>) = 3.61, xi(<2,4>) = 4.47\n\n");

  std::printf("7b: <3,2> < <3,4> (causally ordered) => xi respects it: %.2f < %.2f\n",
              norm(vt({3, 2})), norm(vt({3, 4})));
  std::printf("7c: <2,4> || <3,2> (concurrent), yet <2,4> knows more global\n"
              "    activity: xi(<3,2>) = %.2f < xi(<2,4>) = %.2f\n\n",
              norm(vt({3, 2})), norm(vt({2, 4})));

  std::printf("Section 5.4's worked example: a site at <35,4,0,72> is aware of\n"
              "%.0f global events; its copy of X written at <2,1,0,18> knew %.0f;\n"
              "for any Delta < 90 that version is invalidated or marked old.\n\n",
              sum(vt({35, 4, 0, 72})), sum(vt({2, 1, 0, 18})));

  // Definition 5 validation over a random 4-site computation.
  constexpr std::size_t kSites = 4, kEvents = 400;
  Rng rng(777);
  std::vector<VectorClock> clocks;
  for (std::uint32_t s = 0; s < kSites; ++s) clocks.emplace_back(kSites, SiteId{s});
  std::vector<VectorTimestamp> stamps;
  for (std::size_t e = 0; e < kEvents; ++e) {
    const auto s = static_cast<std::size_t>(rng.uniform_int(0, kSites - 1));
    if (!stamps.empty() && rng.bernoulli(0.4)) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stamps.size()) - 1));
      stamps.push_back(clocks[s].receive(stamps[k]));
    } else {
      stamps.push_back(clocks[s].tick());
    }
  }
  const WeightedSumXiMap weighted({1.0, 2.0, 0.5, 1.5});
  const XiMap* maps[] = {&sum, &norm, &weighted};
  std::uint64_t pairs = 0, failures = 0;
  for (const XiMap* map : maps) {
    for (const auto& t : stamps) {
      for (const auto& u : stamps) {
        ++pairs;
        if (!xi_respects_definition5(*map, t, u)) ++failures;
      }
    }
  }
  std::printf("Definition 5 audit: %llu (timestamp, timestamp) pairs across\n"
              "3 maps -> %llu violations (paper: a valid xi map has none)\n",
              static_cast<unsigned long long>(pairs),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
