// FIG1 — reproduces Figure 1: "A non-timed sequentially consistent
// execution". One site writes x=7; the other wrote x=1 earlier and keeps
// reading 1. SC and CC hold (serialize the reader before the writer), LIN
// does not, and the execution is timed only through the reader's first read.
#include <cstdio>

#include "core/checkers.hpp"
#include "core/paper_figures.hpp"
#include "core/render.hpp"

using namespace timedc;

int main() {
  const History h = figure1();
  std::printf("Figure 1: a non-timed sequentially consistent execution\n\n");
  std::printf("%s\n", render_timeline(h).c_str());

  const auto lin = check_lin(h);
  const auto sc = check_sc(h);
  const auto cc = check_cc(h);
  std::printf("SC:  %s (paper: yes)\n", to_cstring(sc.verdict));
  std::printf("CC:  %s (paper: yes)\n", to_cstring(cc.verdict));
  std::printf("LIN: %s (paper: no)\n\n", to_cstring(lin.verdict));

  std::printf("Timed analysis at the figure's Delta = %s:\n",
              kFigure1Delta.to_string().c_str());
  const auto timing = reads_on_time(h, TimedSpecPerfect{kFigure1Delta});
  std::printf("%s\n", render_timed_result(h, timing).c_str());
  std::printf(
      "Reads after w(x)7 + Delta keep returning the old value: exactly the\n"
      "behaviour TSC/TCC rule out while SC tolerates it. The execution\n"
      "becomes timed again only at Delta >= %s.\n",
      min_timed_delta(h).to_string().c_str());
  return 0;
}
