// SIM-I — push-everything replication vs pull-based lifetime caching.
//
// The paper's conclusion notes that as Delta shrinks, "in extreme cases,
// local caches become useless". The logical endpoint of that slide is full
// replication over Delta-causal broadcast (Section 4 / [7,8]): writes cost
// N-1 messages, reads cost none, and every update is visible within Delta
// by construction. This bench runs both architectures on the same workload
// and sweeps the write ratio to expose the crossover: read-heavy sharing
// favors push replication, write-heavy favors the lifetime cache.
#include <cstdio>
#include <memory>
#include <vector>

#include "broadcast/replicated_store.hpp"
#include "protocol/experiment.hpp"
#include "sim/workload.hpp"

using namespace timedc;

namespace {

struct PushResult {
  double messages_per_op = 0;
  double bytes_per_op = 0;
  double mean_staleness_us = 0;
};

PushResult run_push(const WorkloadParams& workload, SimTime delta,
                    SimTime min_lat, SimTime max_lat, std::uint64_t seed) {
  Simulator sim;
  NetworkConfig config;
  config.fifo_links = false;
  Network net(sim, workload.num_clients,
              std::make_unique<UniformLatency>(min_lat, max_lat), config,
              Rng(seed));
  std::vector<std::unique_ptr<ReplicatedStore>> stores;
  for (std::uint32_t c = 0; c < workload.num_clients; ++c) {
    stores.push_back(std::make_unique<ReplicatedStore>(
        sim, net, SiteId{c}, workload.num_clients, delta));
    stores.back()->attach();
  }
  Rng rng(seed ^ 0x5151);
  const auto ops = generate_workload(workload, rng);
  // Oracle: per object, the globally winning write timeline.
  struct GlobalWrite {
    SimTime at;
    Value value;
  };
  std::unordered_map<ObjectId, std::vector<GlobalWrite>> timeline;
  std::int64_t next_value = 1;
  double staleness_sum = 0;
  std::uint64_t reads = 0;
  for (const WorkloadOp& op : ops) {
    if (op.is_write) {
      const Value v{next_value++};
      timeline[op.object].push_back({op.at, v});
      sim.schedule_at(op.at, [&stores, op, v] {
        stores[op.client.value]->write(op.object, v);
      });
    } else {
      sim.schedule_at(op.at, [&, op] {
        const Value got = stores[op.client.value]->read(op.object);
        ++reads;
        // Staleness: time since the winning value current at `op.at` that
        // is newer than `got` took over (0 when got is current).
        const auto& writes = timeline[op.object];
        SimTime got_at = SimTime::micros(-1);
        for (const auto& w : writes) {
          if (w.value == got) got_at = w.at;
        }
        for (const auto& w : writes) {
          if (w.at > got_at && w.at < op.at && w.value != got) {
            staleness_sum += static_cast<double>((op.at - w.at).as_micros());
            break;
          }
        }
      });
    }
  }
  sim.run_until();
  PushResult result;
  const std::size_t total_ops = ops.size();
  result.messages_per_op =
      static_cast<double>(net.stats().messages_sent) / total_ops;
  result.bytes_per_op =
      static_cast<double>(net.stats().bytes_sent) / total_ops;
  result.mean_staleness_us = reads ? staleness_sum / reads : 0;
  return result;
}

}  // namespace

int main() {
  const SimTime delta = SimTime::millis(5);
  const SimTime min_lat = SimTime::micros(300);
  const SimTime max_lat = SimTime::millis(2);
  std::printf(
      "SIM-I: push replication (Delta-causal broadcast) vs pull (TSC\n"
      "lifetime cache), Delta = 5ms, 8 clients, 16 objects, 10s\n\n");
  std::printf("%11s | %21s | %21s\n", "", "push (replicate all)",
              "pull (TSC cache)");
  std::printf("%11s | %10s %10s | %10s %10s\n", "write-ratio", "msgs/op",
              "stale-us", "msgs/op", "stale-us");
  for (const double wr : {0.02, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    WorkloadParams workload;
    workload.num_clients = 8;
    workload.num_objects = 16;
    workload.write_ratio = wr;
    workload.mean_think_time = SimTime::millis(6);
    workload.zipf_exponent = 0.6;
    workload.horizon = SimTime::seconds(10);

    const PushResult push = run_push(workload, delta, min_lat, max_lat, 3);

    ExperimentConfig pull;
    pull.kind = ProtocolKind::kTimedSerial;
    pull.delta = delta;
    pull.workload = workload;
    pull.min_latency = min_lat;
    pull.max_latency = max_lat;
    pull.seed = 3;
    const auto r = run_experiment(pull);

    std::printf("%10.0f%% | %10.2f %10.0f | %10.2f %10.0f\n", 100 * wr,
                push.messages_per_op, push.mean_staleness_us,
                r.messages_per_op, r.mean_staleness_us);
  }
  std::printf(
      "\nShape check: push costs ~(N-1) x write-ratio messages per op and\n"
      "keeps staleness at the propagation latency regardless of mix; the\n"
      "pull cache costs ~2 messages per (mostly read) op at small Delta.\n"
      "The crossover arrives once writes are rare enough that N-1 pushes\n"
      "per write undercut per-read validations — the paper's \"local\n"
      "caches become useless\" endpoint, quantified.\n");
  return 0;
}
