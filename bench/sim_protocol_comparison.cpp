// SIM-B — the protocol family side by side (Section 5): SC, TSC(Delta),
// CC, TCC(Delta) on one workload, plus two ablations of the Section 5.2
// optimizations: mark-old-and-validate vs invalidate-outright, and the
// push policies (none / invalidate / update).
//
// Expected shape (Section 5.3): under the same Delta, TCC invalidates more
// than CC but less than TSC; SC/CC (Delta = inf) are cheapest and stalest.
// Flags:
//   --quick               2s horizon instead of 20s (CI smoke runs)
//   --trace-out <path>    write the TSC run's event stream as JSONL
//   --chrome-out <path>   same trace in Chrome trace_event format
//   --metrics-out <path>  per-protocol metrics JSON {sc, tsc, cc, tcc}
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "protocol/experiment.hpp"

using namespace timedc;

namespace {

SimTime g_horizon = SimTime::seconds(20);

ExperimentConfig base() {
  ExperimentConfig config;
  config.workload.num_clients = 6;
  config.workload.num_objects = 24;
  config.workload.write_ratio = 0.2;
  config.workload.mean_think_time = SimTime::millis(8);
  config.workload.zipf_exponent = 0.8;
  config.workload.horizon = g_horizon;
  config.min_latency = SimTime::micros(300);
  config.max_latency = SimTime::millis(2);
  config.eviction = CausalEvictionRule::kServerKnowledge;
  config.seed = 4242;
  return config;
}

void row(const char* name, const ExperimentResult& r) {
  const double churn =
      static_cast<double>(r.cache.invalidations + r.cache.marked_old) /
      static_cast<double>(r.operations);
  std::printf("  %-14s %8.1f%% %9.2f %9.0f %11.3f %11.0fus %9lldus\n", name,
              100.0 * r.cache.hit_ratio(), r.messages_per_op, r.bytes_per_op,
              churn, r.mean_staleness_us,
              (long long)r.max_staleness.as_micros());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string chrome_out;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      g_horizon = SimTime::seconds(2);
    } else if (arg == "--trace-out") {
      if (const char* v = next()) trace_out = v;
    } else if (arg == "--chrome-out") {
      if (const char* v = next()) chrome_out = v;
    } else if (arg == "--metrics-out") {
      if (const char* v = next()) metrics_out = v;
    } else {
      std::fprintf(stderr,
                   "usage: sim_protocol_comparison [--quick] "
                   "[--trace-out PATH] [--chrome-out PATH] "
                   "[--metrics-out PATH]\n");
      return 2;
    }
  }

  const SimTime delta = SimTime::millis(5);
  std::printf("SIM-B: the lifetime protocol family at Delta = 5ms\n\n");
  std::printf("  %-14s %9s %9s %9s %11s %13s %11s\n", "protocol", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale");

  // All 13 runs (family + three ablations) are independent simulations:
  // collect the configs, fan them over the deterministic thread pool, then
  // print the tables in order.
  std::vector<ExperimentConfig> configs;
  const auto push_config = [&](ProtocolKind kind, SimTime d) -> ExperimentConfig& {
    auto c = base();
    c.kind = kind;
    c.delta = d;
    configs.push_back(c);
    return configs.back();
  };
  push_config(ProtocolKind::kTimedSerial, SimTime::infinity());  // 0: SC
  push_config(ProtocolKind::kTimedSerial, delta);                // 1: TSC
  push_config(ProtocolKind::kTimedCausal, SimTime::infinity());  // 2: CC
  push_config(ProtocolKind::kTimedCausal, delta);                // 3: TCC
  push_config(ProtocolKind::kTimedSerial, delta).mark_old = true;    // 4
  push_config(ProtocolKind::kTimedSerial, delta).mark_old = false;   // 5
  push_config(ProtocolKind::kTimedSerial, delta).push = PushPolicy::kNone;        // 6
  push_config(ProtocolKind::kTimedSerial, delta).push = PushPolicy::kInvalidate;  // 7
  push_config(ProtocolKind::kTimedSerial, delta).push = PushPolicy::kUpdate;      // 8
  const std::int64_t lease_ms[] = {0, 2, 10, 50};
  for (std::int64_t l : lease_ms) {
    push_config(ProtocolKind::kTimedSerial, delta).lease = SimTime::millis(l);  // 9..12
  }
  // Only the TSC run (index 1) is traced: one protocol's full event stream
  // is what the trace/chrome exports document.
  if (!trace_out.empty() || !chrome_out.empty()) configs[1].trace.enabled = true;
  const auto results =
      parallel_map(configs.size(), [&](std::size_t i) { return run_experiment(configs[i]); });

  const ExperimentResult& sc = results[0];
  const ExperimentResult& tsc = results[1];
  const ExperimentResult& cc = results[2];
  const ExperimentResult& tcc = results[3];
  row("SC   (D=inf)", sc);
  row("TSC  (D=5ms)", tsc);
  row("CC   (D=inf)", cc);
  row("TCC  (D=5ms)", tcc);

  // Fault-path delivery counters (all zero on this lossless workload, but
  // the columns exist so a lossy variant shows up immediately).
  std::printf(
      "\n  delivery: dropped %llu/%llu/%llu/%llu, duplicated "
      "%llu/%llu/%llu/%llu (SC/TSC/CC/TCC)\n",
      (unsigned long long)sc.messages_dropped,
      (unsigned long long)tsc.messages_dropped,
      (unsigned long long)cc.messages_dropped,
      (unsigned long long)tcc.messages_dropped,
      (unsigned long long)sc.messages_duplicated,
      (unsigned long long)tsc.messages_duplicated,
      (unsigned long long)cc.messages_duplicated,
      (unsigned long long)tcc.messages_duplicated);

  const auto churn = [](const ExperimentResult& r) {
    return r.cache.invalidations + r.cache.marked_old;
  };
  std::printf("\ncache churn ordering: TSC %llu >= TCC %llu >= CC %llu  %s\n",
              (unsigned long long)churn(tsc), (unsigned long long)churn(tcc),
              (unsigned long long)churn(cc),
              churn(tsc) >= churn(tcc) && churn(tcc) >= churn(cc)
                  ? "(matches Section 5.3)"
                  : "(!! expected TSC >= TCC >= CC)");

  std::printf("\nAblation 1 — Section 5.2 optimization, TSC at Delta = 5ms:\n\n");
  std::printf("  %-14s %9s %9s %9s %11s %13s %11s\n", "stale entries", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale");
  row("mark-old", results[4]);
  row("drop", results[5]);
  std::printf("  (mark-old converts full refetches into cheap 304-style\n"
              "   validations — fewer bytes for the same timeliness)\n");

  std::printf("\nAblation 2 — push policies, TSC at Delta = 5ms:\n\n");
  std::printf("  %-14s %9s %9s %9s %11s %13s %11s\n", "push", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale");
  row("none", results[6]);
  row("invalidate", results[7]);
  row("update", results[8]);
  std::printf("  (\"the faster a recent update reaches the caches, the more\n"
              "   efficient the system becomes; correctness never depends on\n"
              "   it\" — Section 5.2)\n");

  std::printf("\nAblation 3 — read leases (Section 5.2 \"leased objects\"),\n"
              "TSC at Delta = 5ms:\n\n");
  std::printf("  %-14s %9s %9s %9s %12s %14s\n", "lease", "hit", "msgs/op",
              "bytes/op", "deferred-wr", "mean-stale");
  for (std::size_t k = 0; k < std::size(lease_ms); ++k) {
    const ExperimentResult& r = results[9 + k];
    std::printf("  %12lldms %8.1f%% %9.2f %9.0f %12llu %12.0fus\n",
                (long long)lease_ms[k], 100.0 * r.cache.hit_ratio(),
                r.messages_per_op, r.bytes_per_op,
                (unsigned long long)r.server.writes_deferred,
                r.mean_staleness_us);
  }
  std::printf("  (leases convert read validations into local hits and move\n"
              "   the cost onto writers, who wait out live leases; reads can\n"
              "   never be stale while a lease is held)\n");

  if (!trace_out.empty()) {
    write_text_file(trace_out, trace_to_jsonl(tsc.trace));
    std::printf("\ntrace: %zu events -> %s\n", tsc.trace.size(),
                trace_out.c_str());
  }
  if (!chrome_out.empty()) {
    write_text_file(chrome_out, trace_to_chrome(tsc.trace));
    std::printf("chrome trace -> %s\n", chrome_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::string json = "{\n";
    const char* names[] = {"sc", "tsc", "cc", "tcc"};
    for (std::size_t k = 0; k < 4; ++k) {
      json += "\"" + std::string(names[k]) + "\": " +
              experiment_metrics(configs[k], results[k]).to_json(2);
      json += k + 1 < 4 ? ",\n" : "\n";
    }
    json += "}\n";
    write_text_file(metrics_out, json);
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  return 0;
}
