// SIM-B — the protocol family side by side (Section 5): SC, TSC(Delta),
// CC, TCC(Delta) on one workload, plus two ablations of the Section 5.2
// optimizations: mark-old-and-validate vs invalidate-outright, and the
// push policies (none / invalidate / update).
//
// Expected shape (Section 5.3): under the same Delta, TCC invalidates more
// than CC but less than TSC; SC/CC (Delta = inf) are cheapest and stalest.
#include <cstdio>

#include "protocol/experiment.hpp"

using namespace timedc;

namespace {

ExperimentConfig base() {
  ExperimentConfig config;
  config.workload.num_clients = 6;
  config.workload.num_objects = 24;
  config.workload.write_ratio = 0.2;
  config.workload.mean_think_time = SimTime::millis(8);
  config.workload.zipf_exponent = 0.8;
  config.workload.horizon = SimTime::seconds(20);
  config.min_latency = SimTime::micros(300);
  config.max_latency = SimTime::millis(2);
  config.eviction = CausalEvictionRule::kServerKnowledge;
  config.seed = 4242;
  return config;
}

void row(const char* name, const ExperimentResult& r) {
  const double churn =
      static_cast<double>(r.cache.invalidations + r.cache.marked_old) /
      static_cast<double>(r.operations);
  std::printf("  %-14s %8.1f%% %9.2f %9.0f %11.3f %11.0fus %9lldus\n", name,
              100.0 * r.cache.hit_ratio(), r.messages_per_op, r.bytes_per_op,
              churn, r.mean_staleness_us,
              (long long)r.max_staleness.as_micros());
}

}  // namespace

int main() {
  const SimTime delta = SimTime::millis(5);
  std::printf("SIM-B: the lifetime protocol family at Delta = 5ms\n\n");
  std::printf("  %-14s %9s %9s %9s %11s %13s %11s\n", "protocol", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale");

  ExperimentResult tsc, tcc, sc, cc;
  {
    auto c = base();
    c.kind = ProtocolKind::kTimedSerial;
    c.delta = SimTime::infinity();
    sc = run_experiment(c);
    row("SC   (D=inf)", sc);
  }
  {
    auto c = base();
    c.kind = ProtocolKind::kTimedSerial;
    c.delta = delta;
    tsc = run_experiment(c);
    row("TSC  (D=5ms)", tsc);
  }
  {
    auto c = base();
    c.kind = ProtocolKind::kTimedCausal;
    c.delta = SimTime::infinity();
    cc = run_experiment(c);
    row("CC   (D=inf)", cc);
  }
  {
    auto c = base();
    c.kind = ProtocolKind::kTimedCausal;
    c.delta = delta;
    tcc = run_experiment(c);
    row("TCC  (D=5ms)", tcc);
  }

  const auto churn = [](const ExperimentResult& r) {
    return r.cache.invalidations + r.cache.marked_old;
  };
  std::printf("\ncache churn ordering: TSC %llu >= TCC %llu >= CC %llu  %s\n",
              (unsigned long long)churn(tsc), (unsigned long long)churn(tcc),
              (unsigned long long)churn(cc),
              churn(tsc) >= churn(tcc) && churn(tcc) >= churn(cc)
                  ? "(matches Section 5.3)"
                  : "(!! expected TSC >= TCC >= CC)");

  std::printf("\nAblation 1 — Section 5.2 optimization, TSC at Delta = 5ms:\n\n");
  std::printf("  %-14s %9s %9s %9s %11s %13s %11s\n", "stale entries", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale");
  {
    auto c = base();
    c.kind = ProtocolKind::kTimedSerial;
    c.delta = delta;
    c.mark_old = true;
    row("mark-old", run_experiment(c));
    c.mark_old = false;
    row("drop", run_experiment(c));
  }
  std::printf("  (mark-old converts full refetches into cheap 304-style\n"
              "   validations — fewer bytes for the same timeliness)\n");

  std::printf("\nAblation 2 — push policies, TSC at Delta = 5ms:\n\n");
  std::printf("  %-14s %9s %9s %9s %11s %13s %11s\n", "push", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale");
  for (const auto& [name, push] :
       {std::pair{"none", PushPolicy::kNone},
        std::pair{"invalidate", PushPolicy::kInvalidate},
        std::pair{"update", PushPolicy::kUpdate}}) {
    auto c = base();
    c.kind = ProtocolKind::kTimedSerial;
    c.delta = delta;
    c.push = push;
    row(name, run_experiment(c));
  }
  std::printf("  (\"the faster a recent update reaches the caches, the more\n"
              "   efficient the system becomes; correctness never depends on\n"
              "   it\" — Section 5.2)\n");

  std::printf("\nAblation 3 — read leases (Section 5.2 \"leased objects\"),\n"
              "TSC at Delta = 5ms:\n\n");
  std::printf("  %-14s %9s %9s %9s %12s %14s\n", "lease", "hit", "msgs/op",
              "bytes/op", "deferred-wr", "mean-stale");
  for (const std::int64_t lease_ms : {0, 2, 10, 50}) {
    auto c = base();
    c.kind = ProtocolKind::kTimedSerial;
    c.delta = delta;
    c.lease = SimTime::millis(lease_ms);
    const auto r = run_experiment(c);
    std::printf("  %12lldms %8.1f%% %9.2f %9.0f %12llu %12.0fus\n",
                (long long)lease_ms, 100.0 * r.cache.hit_ratio(),
                r.messages_per_op, r.bytes_per_op,
                (unsigned long long)r.server.writes_deferred,
                r.mean_staleness_us);
  }
  std::printf("  (leases convert read validations into local hits and move\n"
              "   the cost onto writers, who wait out live leases; reads can\n"
              "   never be stale while a lease is held)\n");
  return 0;
}
