// SIM-D — Definition 1 vs Definition 2 under clock skew (Section 3.2).
//
// Part 1: the TSC protocol runs with eps-approximately-synchronized client
// clocks (Cristian/NTP-style resync, Section 3.2's model). Each recorded
// run is then judged twice: by Definition 1 (which pretends clocks are
// perfect) and by Definition 2 with the matching eps. As skew grows,
// Definition 1 starts flagging reads the system could never have ordered —
// Definition 2 keeps accepting them.
//
// Part 2: on one fixed replicated-store history, the minimal accepted Delta
// shrinks linearly with eps (every interference gap loses eps), so larger
// clock imprecision makes MORE executions timed — Definition 2 weakens
// Definition 1, never strengthens it.
#include <cstdio>

#include "common/parallel.hpp"
#include "core/history_gen.hpp"
#include "core/timed.hpp"
#include "protocol/experiment.hpp"

using namespace timedc;

int main() {
  std::printf("SIM-D: epsilon sensitivity of reading on time\n\n");

  const SimTime delta = SimTime::millis(5);
  std::printf("Part 1 — TSC protocol runs with skewed clocks, Delta = 5ms\n");
  std::printf("(checking threshold = Delta + messaging slack)\n\n");
  std::printf("  %10s %8s %14s %14s\n", "clock eps", "reads", "late by Def 1",
              "late by Def 2");
  // Six independent protocol runs (one per eps) — fan them over the
  // deterministic thread pool, judge and print in order.
  const std::vector<std::int64_t> eps_points = {0, 200, 500, 1000, 2000, 5000};
  const SimTime max_latency = SimTime::micros(500);
  const auto runs = parallel_map(eps_points.size(), [&](std::size_t i) {
    ExperimentConfig config;
    config.kind = ProtocolKind::kTimedSerial;
    config.delta = delta;
    config.eps = SimTime::micros(eps_points[i]);
    config.workload.num_clients = 5;
    config.workload.num_objects = 12;
    config.workload.write_ratio = 0.3;
    config.workload.mean_think_time = SimTime::millis(4);
    config.workload.horizon = SimTime::seconds(8);
    config.min_latency = SimTime::micros(100);
    config.max_latency = max_latency;
    config.seed = 777;
    return run_experiment(config);
  });
  for (std::size_t i = 0; i < eps_points.size(); ++i) {
    const std::int64_t eps_us = eps_points[i];
    const ExperimentResult& r = runs[i];
    const SimTime check = delta + max_latency * 4;
    const auto def1 = reads_on_time(r.history, TimedSpecPerfect{check});
    const auto def2 = reads_on_time(
        r.history, TimedSpecEpsilon{check, SimTime::micros(eps_us)});
    std::printf("  %8lldus %8llu %14zu %14zu\n", (long long)eps_us,
                (unsigned long long)r.cache.reads, def1.late_reads.size(),
                def2.late_reads.size());
  }
  std::printf(
      "\n  With perfect clocks both definitions agree; as skew approaches\n"
      "  Delta, Definition 1 (wrongly) blames the protocol for lateness\n"
      "  the clocks cannot even express, while Definition 2's verdict\n"
      "  stays clean — the reason the paper needs Section 3.2 at all.\n\n");

  std::printf("Part 2 — acceptance threshold vs eps on one fixed history\n\n");
  Rng rng(2718);
  ReplicaHistoryParams p;
  p.num_ops = 400;
  p.num_sites = 6;
  p.num_objects = 8;
  p.max_delay_micros = 900;
  const History h = replica_history(p, rng);
  std::printf("  %10s %22s\n", "eps", "min accepted Delta");
  const SimTime d0 = min_timed_delta(h);
  for (const std::int64_t eps_us : {0, 50, 100, 200, 400, 800}) {
    const SimTime d = min_timed_delta(h, SimTime::micros(eps_us));
    std::printf("  %8lldus %20s%s\n", (long long)eps_us, d.to_string().c_str(),
                d <= d0 ? "" : "  (!! must be monotone)");
  }
  std::printf(
      "\n  Every staleness gap shrinks by eps under Definition 2, so the\n"
      "  smallest Delta at which the execution is timed falls with eps.\n");
  return 0;
}
