// SIM-H — where does Definition 2's eps come from? (Section 3.2, [12, 28]).
//
// Runs the Cristian synchronization protocol among 6 drifting sites and one
// time server, sweeping the resynchronization period and the network's
// latency jitter, and reports the achieved pairwise skew next to the
// analytic bound eps = 2*(RTT_max/2 + drift*period). The measured skew is
// the eps a deployment should plug into Definition 2 / the TCC beta rule.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/clock_sync.hpp"

using namespace timedc;

namespace {

SimTime us(std::int64_t n) { return SimTime::micros(n); }

struct Measured {
  std::int64_t worst_pairwise_us = 0;
  std::int64_t worst_absolute_us = 0;
};

Measured run(SimTime period, SimTime min_lat, SimTime max_lat, double ppm,
             std::uint64_t seed) {
  constexpr std::size_t kClients = 6;
  Simulator sim;
  Network net(sim, kClients + 1,
              std::make_unique<UniformLatency>(min_lat, max_lat),
              NetworkConfig{}, Rng(seed));
  PerfectClock server_clock;
  TimeServer server(sim, net, SiteId{kClients}, &server_clock);
  server.attach();
  std::vector<std::unique_ptr<DriftingClock>> hw;
  std::vector<std::unique_ptr<SyncedSiteClock>> clocks;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    hw.push_back(std::make_unique<DriftingClock>(
        us(500 * (c + 1)), (c % 2 ? -1.0 : 1.0) * ppm));
    clocks.push_back(std::make_unique<SyncedSiteClock>(
        sim, net, SiteId{c}, SiteId{kClients}, hw.back().get()));
    clocks.back()->attach();
    clocks.back()->start(period);
  }
  Measured m;
  for (std::int64_t t = 200000; t <= 5000000; t += 41000) {
    sim.run_until(us(t));
    for (std::size_t a = 0; a < clocks.size(); ++a) {
      m.worst_absolute_us = std::max(
          m.worst_absolute_us, std::abs(clocks[a]->error().as_micros()));
      for (std::size_t b = a + 1; b < clocks.size(); ++b) {
        const std::int64_t d =
            (clocks[a]->now() - clocks[b]->now()).as_micros();
        m.worst_pairwise_us = std::max(m.worst_pairwise_us, std::abs(d));
      }
    }
  }
  return m;
}

}  // namespace

int main() {
  const double ppm = 150.0;
  std::printf(
      "SIM-H: achieved clock skew under Cristian resynchronization\n"
      "(6 sites, drift +-150ppm, 5 simulated seconds)\n\n");
  std::printf("%12s %18s %14s %14s %14s\n", "period", "one-way latency",
              "worst |err|", "worst skew", "analytic eps");
  for (const std::int64_t period_ms : {10, 50, 200}) {
    for (const auto& [lo, hi] : {std::pair{200, 600}, std::pair{200, 5000}}) {
      const SimTime period = SimTime::millis(period_ms);
      const Measured m = run(period, us(lo), us(hi), ppm, 99);
      const std::int64_t eps =
          2 * (hi + static_cast<std::int64_t>(
                        static_cast<double>(period.as_micros()) * ppm / 1e6));
      std::printf("%10lldms %11d..%dus %12lldus %12lldus %12lldus\n",
                  (long long)period_ms, lo, hi,
                  (long long)m.worst_absolute_us,
                  (long long)m.worst_pairwise_us, (long long)eps);
    }
  }
  std::printf(
      "\nShape check: skew grows with both the resync period (drift has\n"
      "longer to accumulate) and the latency jitter (Cristian's midpoint\n"
      "estimate is off by up to the RTT asymmetry); every measured value\n"
      "sits under the analytic eps bound — the number Definition 2 needs.\n");
  return 0;
}
