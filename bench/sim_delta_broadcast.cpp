// SIM-E — Delta-causal broadcast (Section 4, Baldoni et al. [7,8]): the
// message-passing counterpart of timed consistency. Sweeps the message
// lifetime Delta under two latency distributions and reports delivery vs
// discard rates and worst delivery lag.
//
// Expected shape: delivery ratio rises monotonically with Delta toward
// 100%; every delivered message arrives within its lifetime; discarded
// traffic is exactly the price of the freshness guarantee.
#include <cstdio>
#include <memory>
#include <vector>

#include "broadcast/delta_causal.hpp"

using namespace timedc;

namespace {

struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t discarded = 0;
  SimTime worst_lag = SimTime::zero();
};

RunResult run(SimTime delta, std::unique_ptr<LatencyModel> latency,
              double drop, std::uint64_t seed) {
  constexpr std::size_t kGroup = 5;
  constexpr int kMessages = 400;
  Simulator sim;
  NetworkConfig config;
  config.drop_probability = drop;
  config.fifo_links = false;
  Network net(sim, kGroup, std::move(latency), config, Rng(seed));
  RunResult result;
  std::vector<std::unique_ptr<DeltaCausalEndpoint>> members;
  for (std::uint32_t i = 0; i < kGroup; ++i) {
    members.push_back(std::make_unique<DeltaCausalEndpoint>(
        sim, net, SiteId{i}, kGroup, delta,
        [&result, i](const BroadcastMessage& m, SimTime at) {
          if (m.sender.value != i) {
            result.worst_lag = max(result.worst_lag, at - m.sent_at);
          }
        }));
    members.back()->attach();
  }
  Rng rng(seed ^ 0xabcdef);
  SimTime t = SimTime::zero();
  for (int k = 0; k < kMessages; ++k) {
    t += SimTime::micros(rng.uniform_int(200, 3000));
    const auto who = static_cast<std::size_t>(rng.uniform_int(0, kGroup - 1));
    sim.schedule_at(t, [&members, who, k] {
      members[who]->broadcast(static_cast<std::uint64_t>(k));
    });
  }
  sim.run_until();
  for (const auto& m : members) {
    result.sent += m->stats().sent;
    // Local self-deliveries are free; count remote deliveries only.
    result.delivered += m->stats().delivered - m->stats().sent;
    result.discarded += m->stats().discarded_late;
  }
  return result;
}

void sweep(const char* name,
           const std::function<std::unique_ptr<LatencyModel>()>& make,
           double drop) {
  std::printf("%s (drop %.0f%%):\n\n", name, 100 * drop);
  std::printf("  %10s %10s %10s %12s %12s\n", "Delta", "delivered",
              "discarded", "delivery%", "worst-lag");
  for (const std::int64_t delta_us :
       {500, 1000, 2000, 5000, 10000, 50000, -1}) {
    const SimTime delta =
        delta_us < 0 ? SimTime::infinity() : SimTime::micros(delta_us);
    const auto r = run(delta, make(), drop, 97);
    const std::uint64_t expected = r.sent * 4;  // 4 remote receivers each
    char label[16];
    if (delta_us < 0)
      std::snprintf(label, sizeof label, "inf");
    else
      std::snprintf(label, sizeof label, "%lldus", (long long)delta_us);
    std::printf("  %10s %10llu %10llu %11.1f%% %12s\n", label,
                (unsigned long long)r.delivered,
                (unsigned long long)r.discarded,
                100.0 * static_cast<double>(r.delivered) /
                    static_cast<double>(expected),
                r.worst_lag.to_string().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("SIM-E: Delta-causal broadcast, 5 processes, 400 broadcasts\n\n");
  sweep("uniform latency 100us..4ms",
        [] { return std::make_unique<UniformLatency>(SimTime::micros(100),
                                                     SimTime::micros(4000)); },
        0.0);
  sweep("exponential latency (floor 200us, mean +1.5ms, cap 30ms)",
        [] {
          return std::make_unique<ExponentialLatency>(
              SimTime::micros(200), SimTime::micros(1500), SimTime::millis(30));
        },
        0.05);
  std::printf(
      "Shape check: delivery ratio climbs to ~100%% as Delta passes the\n"
      "latency tail; worst observed lag never exceeds Delta (late messages\n"
      "are discarded, never delivered — the [7,8] contract).\n\n"
      "Note the Delta = inf row under loss: without deadlines a dropped\n"
      "message blocks all of its sender's (and dependents') later traffic\n"
      "forever — plain causal broadcast loses liveness on lossy channels,\n"
      "and the finite lifetime is precisely what restores it.\n");
  return 0;
}
