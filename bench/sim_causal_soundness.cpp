// SIM-G — the soundness/efficiency dial of lifetime-based causal caching.
//
// [39]'s eviction rule derives a copy's logical ending time from the
// *server's* merged knowledge; it keeps quiet objects cached almost forever
// but can let a causally-hidden overwrite slip through when the server knew
// more than the reader ever learns. Our kContextDominates rule bounds
// omega_l by the reader's own context, which is provably safe but demotes
// older entries whenever the context grows.
//
// This bench runs both rules on identical workloads and counts the actual
// causal violations in the recorded histories (hidden writes / init reads,
// the Bouajjani-style bad patterns) next to the cost metrics — making the
// paper's "unnecessary invalidations" remark quantitative.
#include <cstdio>

#include "common/parallel.hpp"
#include "core/causal.hpp"
#include "protocol/experiment.hpp"

using namespace timedc;

namespace {

struct Audit {
  std::uint64_t reads = 0;
  std::uint64_t hidden_write_reads = 0;
  double hit = 0;
  double validations_per_op = 0;
  double bytes_per_op = 0;
};

Audit audit_run(const ExperimentResult& r) {
  Audit audit;
  audit.reads = r.cache.reads;
  audit.hit = r.cache.hit_ratio();
  audit.validations_per_op =
      static_cast<double>(r.cache.validations) /
      static_cast<double>(r.operations);
  audit.bytes_per_op = r.bytes_per_op;

  const History& h = r.history;
  const CausalOrder co = CausalOrder::build(h);
  for (const Operation& rd : h.operations()) {
    if (!rd.is_read()) continue;
    const auto src = h.forced_source(rd.index);
    if (!src) {
      for (OpIndex w : h.writes_to(rd.object)) {
        if (co.precedes(w, rd.index)) {
          ++audit.hidden_write_reads;
          break;
        }
      }
      continue;
    }
    for (OpIndex b : h.writes_to(rd.object)) {
      if (b != *src && co.precedes(*src, b) && co.precedes(b, rd.index)) {
        ++audit.hidden_write_reads;
        break;
      }
    }
  }
  return audit;
}

}  // namespace

int main() {
  std::printf(
      "SIM-G: causal eviction rules — [39] server-knowledge vs provably\n"
      "sound context-bounded (10 clients, 24 objects, Delta = inf, 12s)\n\n");
  std::printf("%-18s %6s %9s %9s %12s %16s\n", "rule", "seed", "hit",
              "valid/op", "bytes/op", "causal-violations");
  // 3 seeds x 2 rules: run the multi-seed replication for each rule on the
  // thread pool, audit the recorded histories, then print interleaved.
  const std::vector<std::uint64_t> seeds = {101, 202, 303};
  const std::pair<const char*, CausalEvictionRule> rules[] = {
      {"server-knowledge", CausalEvictionRule::kServerKnowledge},
      {"context-bounded", CausalEvictionRule::kContextDominates}};
  std::vector<Audit> audits[2];
  for (std::size_t ri = 0; ri < 2; ++ri) {
    ExperimentConfig config;
    config.kind = ProtocolKind::kTimedCausal;
    config.delta = SimTime::infinity();  // pure CC: the causal rules do all work
    config.eviction = rules[ri].second;
    config.workload.num_clients = 10;
    config.workload.num_objects = 24;
    config.workload.write_ratio = 0.25;
    config.workload.mean_think_time = SimTime::millis(6);
    config.workload.zipf_exponent = 0.7;
    config.workload.horizon = SimTime::seconds(12);
    config.min_latency = SimTime::micros(300);
    config.max_latency = SimTime::millis(2);
    const auto results = run_experiment_seeds(config, seeds);
    for (const auto& r : results) audits[ri].push_back(audit_run(r));
  }
  for (std::size_t si = 0; si < seeds.size(); ++si) {
    for (std::size_t ri = 0; ri < 2; ++ri) {
      const Audit& a = audits[ri][si];
      std::printf("%-18s %6llu %8.1f%% %9.3f %12.0f %10llu / %llu\n",
                  rules[ri].first, (unsigned long long)seeds[si], 100.0 * a.hit,
                  a.validations_per_op, a.bytes_per_op,
                  (unsigned long long)a.hidden_write_reads,
                  (unsigned long long)a.reads);
    }
  }
  std::printf(
      "\nShape check: the sound rule shows ZERO violating reads at the cost\n"
      "of a much lower hit ratio (each context growth costs one 304-style\n"
      "revalidation per older entry); the [39] rule keeps hits high and is\n"
      "usually — but not provably — causally clean. This is the concrete\n"
      "form of the paper's Section 5.2 remark that lifetime protocols \"may\n"
      "generate unnecessary invalidations for arbitrary objects whose\n"
      "lifetimes are not known accurately\": knowing them *safely* is what\n"
      "costs the messages.\n");
  return 0;
}
