// FIG4 — reproduces Figure 4: (a) the hierarchy of consistency models
// LIN ⊂ TSC ⊂ SC ⊂ CC, TCC = T ∩ CC, TSC = T ∩ SC, TCC ∩ SC = TSC, audited
// empirically over thousands of generated histories; (b) the effect of
// varying Delta: Delta = 0 recovers LIN-like strictness, Delta = infinity
// recovers SC/CC.
//
// The audit itself lives in core/hierarchy_audit.{hpp,cpp}; rounds run on
// the deterministic thread pool (TIMEDC_THREADS to override the worker
// count), with counters bit-identical at any thread count.
#include <cstdio>

#include "common/parallel.hpp"
#include "core/hierarchy_audit.hpp"

using namespace timedc;

int main() {
  HierarchyAuditConfig config;
  const HierarchyAuditResult r = run_hierarchy_audit(config);

  std::printf("Figure 4a: hierarchy audit over %d generated histories\n", r.rounds);
  std::printf("  (Delta = %s for the timed models, %zu worker threads)\n\n",
              config.delta.to_string().c_str(), ThreadPool(config.num_threads).num_threads());
  std::printf("  |LIN| = %4d   |TSC| = %4d   |SC| = %4d\n", r.n_lin, r.n_tsc, r.n_sc);
  std::printf("  |TCC| = %4d   |CC|  = %4d   |T|  = %4d\n", r.n_tcc, r.n_cc, r.n_timed);
  std::printf("\n  set-identity violations (LIN⊆SC, SC⊆CC, TSC=T∩SC, TCC=T∩CC,\n"
              "  TCC∩SC=TSC, TSC⊆TCC): %d (paper: 0)\n", r.violations);
  std::printf("  rounds hitting the search node budget: %d (expected: 0)\n\n",
              r.limit_rounds);

  std::printf("Figure 4b: varying Delta (acceptance counts out of %d)\n\n", r.rounds);
  std::printf("  %10s %8s %8s\n", "Delta", "TSC", "TCC");
  for (std::size_t k = 0; k < config.sweep_micros.size(); ++k) {
    std::printf("  %8lldus %8d %8d\n", (long long)config.sweep_micros[k],
                r.accept_tsc[k], r.accept_tcc[k]);
  }
  std::printf("  %10s %8d %8d   <- equals |SC|, |CC|: TSC(inf)=SC, TCC(inf)=CC\n",
              "inf", r.tsc_inf, r.tcc_inf);
  std::printf(
      "\nAcceptance grows monotonically with Delta, from LIN-strictness at\n"
      "Delta = 0 to exactly SC / CC at Delta = infinity — Figure 4b's arrow.\n");
  return r.ok() ? 0 : 1;
}
