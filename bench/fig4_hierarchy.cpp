// FIG4 — reproduces Figure 4: (a) the hierarchy of consistency models
// LIN ⊂ TSC ⊂ SC ⊂ CC, TCC = T ∩ CC, TSC = T ∩ SC, TCC ∩ SC = TSC, audited
// empirically over thousands of generated histories; (b) the effect of
// varying Delta: Delta = 0 recovers LIN-like strictness, Delta = infinity
// recovers SC/CC.
#include <cstdio>

#include "core/checkers.hpp"
#include "core/history_gen.hpp"

using namespace timedc;

int main() {
  constexpr int kRounds = 1500;
  Rng rng(20240601);

  // Membership counters for Figure 4a.
  int n_lin = 0, n_sc = 0, n_cc = 0, n_timed = 0, n_tsc = 0, n_tcc = 0;
  int violations = 0;
  const SimTime delta = SimTime::micros(60);

  // Delta sweep accumulators for Figure 4b.
  const std::int64_t sweep[] = {0, 10, 20, 40, 80, 160, 320, 640};
  int accept_tsc[8] = {0};
  int accept_tcc[8] = {0};

  for (int round = 0; round < kRounds; ++round) {
    History h = [&]() {
      if (round % 2 == 0) {
        RandomHistoryParams p;
        p.num_ops = 12;
        p.num_sites = 3;
        p.num_objects = 2;
        return random_history(p, rng);
      }
      ReplicaHistoryParams p;
      p.num_ops = 16;
      p.num_sites = 3;
      p.num_objects = 2;
      p.max_delay_micros = 120;
      return replica_history(p, rng);
    }();

    const bool lin = check_lin(h).ok();
    const bool sc = check_sc(h).ok();
    const bool cc = check_cc(h).ok();
    const bool timed =
        reads_on_time(h, TimedSpecEpsilon{delta, SimTime::zero()}).all_on_time;
    const bool tsc = check_tsc(h, TimedSpecEpsilon{delta, SimTime::zero()}).ok();
    const bool tcc = check_tcc(h, TimedSpecEpsilon{delta, SimTime::zero()}).ok();

    n_lin += lin;
    n_sc += sc;
    n_cc += cc;
    n_timed += timed;
    n_tsc += tsc;
    n_tcc += tcc;

    // The paper's set identities, checked per history.
    if (lin && !sc) ++violations;                    // LIN ⊆ SC
    if (sc && !cc) ++violations;                     // SC ⊆ CC
    if (tsc != (timed && sc)) ++violations;          // TSC = T ∩ SC
    if (tcc != (timed && cc)) ++violations;          // TCC = T ∩ CC
    if ((tcc && sc) != tsc) ++violations;            // TCC ∩ SC = TSC
    if (tsc && !tcc) ++violations;                   // TSC ⊆ TCC

    for (int k = 0; k < 8; ++k) {
      const TimedSpecEpsilon spec{SimTime::micros(sweep[k]), SimTime::zero()};
      accept_tsc[k] += check_tsc(h, spec).ok();
      accept_tcc[k] += check_tcc(h, spec).ok();
    }
  }

  std::printf("Figure 4a: hierarchy audit over %d generated histories\n", kRounds);
  std::printf("  (Delta = %s for the timed models)\n\n", delta.to_string().c_str());
  std::printf("  |LIN| = %4d   |TSC| = %4d   |SC| = %4d\n", n_lin, n_tsc, n_sc);
  std::printf("  |TCC| = %4d   |CC|  = %4d   |T|  = %4d\n", n_tcc, n_cc, n_timed);
  std::printf("\n  set-identity violations (LIN⊆SC, SC⊆CC, TSC=T∩SC, TCC=T∩CC,\n"
              "  TCC∩SC=TSC, TSC⊆TCC): %d (paper: 0)\n\n", violations);

  std::printf("Figure 4b: varying Delta (acceptance counts out of %d)\n\n", kRounds);
  std::printf("  %10s %8s %8s\n", "Delta", "TSC", "TCC");
  for (int k = 0; k < 8; ++k) {
    std::printf("  %8lldus %8d %8d\n", (long long)sweep[k], accept_tsc[k],
                accept_tcc[k]);
  }
  {
    int tsc_inf = 0, tcc_inf = 0;
    Rng rng2(20240601);
    for (int round = 0; round < kRounds; ++round) {
      History h = [&]() {
        if (round % 2 == 0) {
          RandomHistoryParams p;
          p.num_ops = 12;
          p.num_sites = 3;
          p.num_objects = 2;
          return random_history(p, rng2);
        }
        ReplicaHistoryParams p;
        p.num_ops = 16;
        p.num_sites = 3;
        p.num_objects = 2;
        p.max_delay_micros = 120;
        return replica_history(p, rng2);
      }();
      const TimedSpecEpsilon inf{SimTime::infinity(), SimTime::zero()};
      tsc_inf += check_tsc(h, inf).ok();
      tcc_inf += check_tcc(h, inf).ok();
    }
    std::printf("  %10s %8d %8d   <- equals |SC|, |CC|: TSC(inf)=SC, TCC(inf)=CC\n",
                "inf", tsc_inf, tcc_inf);
  }
  std::printf(
      "\nAcceptance grows monotonically with Delta, from LIN-strictness at\n"
      "Delta = 0 to exactly SC / CC at Delta = infinity — Figure 4b's arrow.\n");
  return violations == 0 ? 0 : 1;
}
