// SIM-C — the web-cache application of Section 4: weak (TTL-based,
// Gwertzman-Seltzer [19]) versus strong (invalidation, Cao-Liu [10]) web
// consistency as points on the timed-consistency Delta spectrum.
//
// Expected shape: TTL == Delta sweeps smoothly from poll-every-time
// freshness to large-Delta cheapness; adaptive TTL sits between; server
// invalidation achieves near-zero staleness at push cost + server state.
#include <cstdio>
#include <string>

#include "web/web_experiment.hpp"

using namespace timedc;

namespace {

WebExperimentConfig base() {
  WebExperimentConfig config;
  config.num_proxies = 4;
  config.num_documents = 64;
  config.mean_update_interval = SimTime::seconds(2);
  config.mean_request_interval = SimTime::millis(10);
  config.zipf_exponent = 0.9;
  config.min_latency = SimTime::millis(2);
  config.max_latency = SimTime::millis(25);
  config.horizon = SimTime::seconds(30);
  config.seed = 31337;
  return config;
}

void row(const std::string& name, const WebExperimentResult& r) {
  std::printf("  %-20s %8.2f%% %11.2f %12.0f %9.2f%% %12.0fus\n", name.c_str(),
              100.0 * static_cast<double>(r.cache.hits) /
                  static_cast<double>(r.requests),
              r.origin_msgs_per_request, r.bytes_per_request,
              100.0 * r.stale_fraction, r.mean_stale_age_us);
}

}  // namespace

int main() {
  std::printf("SIM-C: web cache consistency (4 proxies, 64 docs, Zipf 0.9,\n"
              "updates ~2s, GETs ~10ms, 30s simulated)\n\n");
  std::printf("  %-20s %9s %11s %12s %10s %14s\n", "policy", "hit",
              "origin/req", "bytes/req", "stale", "stale-age");

  for (const std::int64_t ttl_ms : {20, 100, 500, 2000, 10000}) {
    auto config = base();
    config.policy.policy = WebPolicy::kFixedTtl;
    config.policy.fixed_ttl = SimTime::millis(ttl_ms);
    row("ttl=" + std::to_string(ttl_ms) + "ms (Delta)",
        run_web_experiment(config));
  }
  {
    auto config = base();
    config.policy.policy = WebPolicy::kAdaptiveTtl;
    config.policy.adaptive_factor = 0.2;
    row("adaptive (Alex)", run_web_experiment(config));
  }
  {
    auto config = base();
    config.policy.policy = WebPolicy::kPollEveryTime;
    row("poll-every-time", run_web_experiment(config));
  }
  {
    auto config = base();
    config.policy.policy = WebPolicy::kInvalidate;
    const auto r = run_web_experiment(config);
    row("invalidation", r);
    std::printf("    invalidations pushed: %llu, peak per-doc subscriber "
                "state: %zu\n",
                (unsigned long long)r.origin.invalidations_sent,
                r.origin.invalidation_state);
  }
  std::printf(
      "\nShape check ([10],[19]): staleness grows and per-request cost\n"
      "falls monotonically along the TTL (= Delta) sweep; invalidation\n"
      "pins staleness at the propagation latency for the price of pushes\n"
      "and per-document server state; adaptive TTL trades between them.\n");
  return 0;
}
