// SIM-A — the experiment the paper's conclusion calls for: "the
// relationship between the value of Delta and the cost of accomplishing
// that particular level of timeliness". Sweeps Delta for both the TSC
// (physical clocks) and TCC (vector clocks + beta) lifetime protocols and
// reports cost (messages, bytes, hit ratio, cache churn) against achieved
// timeliness (mean/max staleness).
//
// Expected shape (Section 6): small Delta => more communication, lower hit
// ratio, fresher reads; Delta -> infinity recovers plain SC/CC costs.
#include <cstdio>

#include "common/parallel.hpp"
#include "protocol/experiment.hpp"

using namespace timedc;

namespace {

constexpr std::int64_t kDeltasMs[] = {1, 2, 5, 10, 20, 50, 100, 500, -1};

SimTime to_delta(std::int64_t delta_ms) {
  return delta_ms < 0 ? SimTime::infinity() : SimTime::millis(delta_ms);
}

ExperimentConfig base(ProtocolKind kind, SimTime delta) {
  ExperimentConfig config;
  config.kind = kind;
  config.delta = delta;
  config.workload.num_clients = 6;
  config.workload.num_objects = 24;
  config.workload.write_ratio = 0.2;
  config.workload.mean_think_time = SimTime::millis(8);
  config.workload.zipf_exponent = 0.8;
  config.workload.horizon = SimTime::seconds(20);
  config.min_latency = SimTime::micros(300);
  config.max_latency = SimTime::millis(2);
  config.eviction = CausalEvictionRule::kServerKnowledge;
  config.seed = 42;
  return config;
}

void sweep(ProtocolKind kind, const std::vector<ExperimentResult>& results) {
  std::printf("%s protocol (Delta = inf is plain %s):\n\n",
              to_cstring(kind),
              kind == ProtocolKind::kTimedSerial ? "SC" : "CC");
  std::printf("  %10s %9s %9s %9s %11s %11s %11s %9s\n", "Delta", "hit",
              "msgs/op", "bytes/op", "churn/op", "mean-stale", "max-stale",
              ">Delta");
  for (std::size_t k = 0; k < std::size(kDeltasMs); ++k) {
    const std::int64_t delta_ms = kDeltasMs[k];
    const ExperimentResult& r = results[k];
    const double churn =
        static_cast<double>(r.cache.invalidations + r.cache.marked_old) /
        static_cast<double>(r.operations);
    char delta_label[16];
    if (delta_ms < 0)
      std::snprintf(delta_label, sizeof delta_label, "inf");
    else
      std::snprintf(delta_label, sizeof delta_label, "%lldms",
                    (long long)delta_ms);
    std::printf("  %10s %8.1f%% %9.2f %9.0f %11.3f %9.0fus %9lldus %8.2f%%\n",
                delta_label, 100.0 * r.cache.hit_ratio(), r.messages_per_op,
                r.bytes_per_op, churn, r.mean_staleness_us,
                (long long)r.max_staleness.as_micros(),
                100.0 * r.late_fraction);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "SIM-A: cost of timeliness vs Delta\n"
      "(6 clients, 24 objects, Zipf 0.8, 20%% writes, 20s simulated)\n\n");
  // All 2 kinds x 9 Delta points are independent simulations: fan the full
  // grid over the thread pool (deterministic — each cell depends only on
  // its config), then print in order.
  constexpr std::size_t kN = std::size(kDeltasMs);
  const auto grid = parallel_map(2 * kN, [&](std::size_t i) {
    const ProtocolKind kind =
        i < kN ? ProtocolKind::kTimedSerial : ProtocolKind::kTimedCausal;
    return run_experiment(base(kind, to_delta(kDeltasMs[i % kN])));
  });
  sweep(ProtocolKind::kTimedSerial, {grid.begin(), grid.begin() + kN});
  sweep(ProtocolKind::kTimedCausal, {grid.begin() + kN, grid.end()});
  std::printf(
      "Shape check: as Delta shrinks, hit ratio falls and messages/op rise\n"
      "while staleness falls — the tradeoff of the paper's Section 6. The\n"
      "Delta = inf rows are the plain SC/CC lifetime protocols of [39].\n");
  return 0;
}
