// FIG6 — reproduces Figure 6: the 5-site execution that satisfies CC but
// not SC, the per-site causal serializations (6b), and the TCC discussion:
// at Delta = 30, r4(C)0@155 violates TCC because it ignores w2(C)3@100.
//
// Reconstruction note: the literal OCR of Figure 6a admits an SC
// serialization; site 3's observation order of the concurrent writes
// w0(B)4 / w4(B)2 was restored (4-then-2) to recover the paper's
// CC-but-not-SC property. See DESIGN.md.
#include <cstdio>

#include "core/checkers.hpp"
#include "core/paper_figures.hpp"
#include "core/render.hpp"
#include "core/serialization.hpp"

using namespace timedc;

int main() {
  const History h = figure6a();
  std::printf("Figure 6a: causally consistent (not SC) execution\n\n%s\n",
              render_timeline(h, {.width = 110}).c_str());

  const auto sc = check_sc(h);
  const auto cc = check_cc(h);
  std::printf("SC:  %s (paper: no)\n", to_cstring(sc.verdict));
  std::printf("CC:  %s (paper: yes)\n\n", to_cstring(cc.verdict));

  if (cc.ok()) {
    std::printf("Figure 6b: per-site serializations of H_{i+w} found by the\n"
                "checker (legal + causal-order-respecting):\n\n");
    for (std::uint32_t s = 0; s < cc.per_site_witness.size(); ++s) {
      std::printf("S_%u: %s\n", s,
                  serialization_to_string(h, cc.per_site_witness[s]).c_str());
    }
  }

  std::printf("\nTCC threshold sweep:\n\n  %10s %6s  %s\n", "Delta", "TCC?",
              "a late read");
  for (const std::int64_t d : {10, 30, 54, 55, 150, 299, 300}) {
    const auto r = check_tcc(h, TimedSpecEpsilon{SimTime::micros(d), SimTime::zero()});
    std::string blame;
    if (!r.timing.all_on_time) {
      const auto& lr = r.timing.late_reads.front();
      blame = h.op(lr.read).to_string() + " misses " +
              h.op(lr.w_r.front()).to_string();
    }
    std::printf("  %8lldus %6s  %s\n", (long long)d, r.ok() ? "yes" : "no",
                blame.c_str());
  }

  std::printf("\npaper anchor at Delta = 30: ");
  const auto at30 = reads_on_time(h, TimedSpecPerfect{kFigure6TccViolationDelta});
  for (const LateRead& lr : at30.late_reads) {
    if (h.op(lr.read).to_string() == "r4(C)0@155") {
      std::printf("r4(C)0@155 ignores %s — violates TCC ✓\n",
                  h.op(lr.w_r.front()).to_string().c_str());
    }
  }
  std::printf("TSC never holds (not SC), even at Delta = infinity: %s\n",
              check_tsc(h, TimedSpecEpsilon{SimTime::infinity(), SimTime::zero()})
                      .ok()
                  ? "WRONG"
                  : "confirmed");
  std::printf("TCC holds from Delta = %s upward.\n",
              min_timed_delta(h).to_string().c_str());
  return 0;
}
