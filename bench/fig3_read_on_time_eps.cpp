// FIG3 — reproduces Figure 3: the same layout as Figure 2 but under
// Definition 2 with approximately-synchronized clocks (skew bound eps).
// w and w2 become concurrent, and w3 can no longer be shown to be more than
// Delta old, so W_r = {} and r DOES read on time.
#include <cstdio>

#include "core/paper_figures.hpp"
#include "core/render.hpp"
#include "core/timed.hpp"

using namespace timedc;

int main() {
  const History h = figure2();
  std::printf(
      "Figure 3: with eps = %s the same read IS on time (Definition 2)\n\n",
      kFigure3Eps.to_string().c_str());
  std::printf("%s\n", render_timeline(h).c_str());

  std::printf("sweep of the clock-skew bound eps at Delta = %s:\n\n",
              kFigure2Delta.to_string().c_str());
  std::printf("%8s  %-10s %s\n", "eps", "on time?", "W_r");
  for (const std::int64_t eps_us : {0, 10, 20, 25, 29, 30, 35, 50}) {
    const auto timing = reads_on_time(
        h, TimedSpecEpsilon{kFigure2Delta, SimTime::micros(eps_us)});
    std::string wr = "{";
    if (!timing.all_on_time) {
      for (std::size_t k = 0; k < timing.late_reads[0].w_r.size(); ++k) {
        if (k > 0) wr += ", ";
        wr += h.op(timing.late_reads[0].w_r[k]).to_string();
      }
    }
    wr += "}";
    std::printf("%6lldus  %-10s %s\n", (long long)eps_us,
                timing.all_on_time ? "yes" : "no", wr.c_str());
  }
  std::printf(
      "\nThe interval defining W_r shrinks by eps at both ends (Figure 3's\n"
      "shaded area is 2*eps shorter than Figure 2's); at eps = 0 Definition 2\n"
      "reduces to Definition 1. Paper's claim holds at eps = %s: W_r = {}.\n",
      kFigure3Eps.to_string().c_str());
  return 0;
}
