// PERF — engineering microbenchmarks (google-benchmark): scaling of the
// consistency checkers with history size, clock operation costs, timed-scan
// throughput, and simulator/protocol step costs. Not a paper artifact; kept
// so regressions in the hot paths are visible.
#include <benchmark/benchmark.h>

#include "clocks/plausible_clock.hpp"
#include "clocks/vector_clock.hpp"
#include "clocks/xi_map.hpp"
#include "core/checkers.hpp"
#include "core/history_gen.hpp"
#include "protocol/experiment.hpp"
#include "sim/simulator.hpp"

namespace timedc {
namespace {

void BM_VectorClockTick(benchmark::State& state) {
  VectorClock clock(static_cast<std::size_t>(state.range(0)), SiteId{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.tick());
  }
}
BENCHMARK(BM_VectorClockTick)->Arg(4)->Arg(16)->Arg(64);

void BM_VectorClockCompare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  VectorClock a(n, SiteId{0}), b(n, SiteId{1});
  for (std::size_t i = 0; i < 100; ++i) {
    a.tick();
    b.tick();
  }
  const VectorTimestamp ta = a.now(), tb = b.now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ta.compare(tb));
  }
}
BENCHMARK(BM_VectorClockCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_PlausibleClockReceive(benchmark::State& state) {
  PlausibleClock a(8, SiteId{0}), b(8, SiteId{1});
  auto ts = a.tick();
  for (auto _ : state) {
    ts = b.receive(ts);
    benchmark::DoNotOptimize(ts);
  }
}
BENCHMARK(BM_PlausibleClockReceive);

void BM_XiNorm(benchmark::State& state) {
  const NormXiMap norm;
  VectorClock clock(32, SiteId{0});
  for (int i = 0; i < 1000; ++i) clock.tick();
  const VectorTimestamp t = clock.now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(norm(t));
  }
}
BENCHMARK(BM_XiNorm);

History make_replica_history(std::size_t ops, std::uint64_t seed) {
  Rng rng(seed);
  ReplicaHistoryParams p;
  p.num_ops = ops;
  p.num_sites = 4;
  p.num_objects = 4;
  p.max_delay_micros = 60;
  return replica_history(p, rng);
}

void BM_CheckSc(benchmark::State& state) {
  const History h =
      make_replica_history(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_sc(h).ok());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CheckSc)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

void BM_CheckCc(benchmark::State& state) {
  const History h =
      make_replica_history(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_cc(h).ok());
  }
}
BENCHMARK(BM_CheckCc)->Arg(10)->Arg(20)->Arg(30);

void BM_ReadsOnTimeScan(benchmark::State& state) {
  const History h =
      make_replica_history(static_cast<std::size_t>(state.range(0)), 9);
  const TimedSpecEpsilon spec{SimTime::micros(50), SimTime::zero()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(reads_on_time(h, spec).all_on_time);
  }
}
BENCHMARK(BM_ReadsOnTimeScan)->Arg(100)->Arg(400)->Arg(1600);

void BM_CausalOrderBuild(benchmark::State& state) {
  const History h =
      make_replica_history(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CausalOrder::build(h).cyclic());
  }
}
BENCHMARK(BM_CausalOrderBuild)->Arg(50)->Arg(100)->Arg(200);

void BM_SimulatorChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(SimTime::micros(i), [&counter] { ++counter; });
    }
    sim.run_until();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_SimulatorChurn);

void BM_ProtocolExperimentSmall(benchmark::State& state) {
  for (auto _ : state) {
    ExperimentConfig config;
    config.kind = state.range(0) == 0 ? ProtocolKind::kTimedSerial
                                      : ProtocolKind::kTimedCausal;
    config.delta = SimTime::millis(5);
    config.workload.num_clients = 4;
    config.workload.num_objects = 8;
    config.workload.mean_think_time = SimTime::millis(2);
    config.workload.horizon = SimTime::millis(200);
    config.seed = 1;
    benchmark::DoNotOptimize(run_experiment(config).operations);
  }
}
BENCHMARK(BM_ProtocolExperimentSmall)->Arg(0)->Arg(1);

}  // namespace
}  // namespace timedc
