// SIM-F — plausible clocks in the TCC lifetime protocol (Section 5.3 /
// [37, 38, 40]): sweep the logical clock width R from full vector clocks
// (R = number of clients) down to a single Lamport-like entry, and measure
// the cost of the folding: REV clocks may order concurrent timestamps, so
// the causal sweep over-invalidates — hit ratio falls and traffic rises as
// R shrinks, while correctness (causality of the recorded run) never does.
#include <cstdio>

#include "protocol/experiment.hpp"

using namespace timedc;

int main() {
  constexpr std::size_t kClients = 12;
  std::printf(
      "SIM-F: TCC with plausible clocks — logical width R vs cost\n"
      "(%zu clients, 32 objects, Delta = inf so only causal churn shows;\n"
      "[39]-style server-knowledge eviction — see sim_causal_soundness for\n"
      "the soundness dial, which is orthogonal to the fold width)\n\n",
      kClients);
  std::printf("  %10s %9s %9s %11s %14s\n", "R", "hit", "msgs/op",
              "churn/op", "ts-bytes/msg");

  for (const std::size_t entries : {kClients, std::size_t{8}, std::size_t{4},
                                    std::size_t{2}, std::size_t{1}}) {
    ExperimentConfig config;
    config.kind = ProtocolKind::kTimedCausal;
    config.delta = SimTime::infinity();  // isolate the causal sweep
    config.clock_entries = entries;
    config.workload.num_clients = kClients;
    config.workload.num_objects = 32;
    config.workload.write_ratio = 0.25;
    config.workload.mean_think_time = SimTime::millis(6);
    config.workload.zipf_exponent = 0.7;
    config.workload.horizon = SimTime::seconds(15);
    config.min_latency = SimTime::micros(300);
    config.max_latency = SimTime::millis(2);
    config.eviction = CausalEvictionRule::kServerKnowledge;
    config.seed = 20240704;
    const auto r = run_experiment(config);
    const double churn =
        static_cast<double>(r.cache.invalidations + r.cache.marked_old) /
        static_cast<double>(r.operations);
    std::printf("  %10zu %8.1f%% %9.2f %11.3f %14zu\n", entries,
                100.0 * r.cache.hit_ratio(), r.messages_per_op, churn,
                entries * sizeof(std::uint64_t));
  }
  std::printf(
      "\nShape check ([37]): plausible clocks only ever ADD order, so folding\n"
      "sites onto fewer entries never weakens the eviction rule — each fold\n"
      "collision turns a concurrent pair into a spurious happened-before and\n"
      "the causal sweep evicts more. Constant-size timestamps are paid for\n"
      "in cache churn (hit ratio falls monotonically with R), never by\n"
      "missing an eviction the full vector clock would have made.\n");
  return 0;
}
