// FIG2 — reproduces Figure 2: Definition 1 (perfect clocks). Operation r
// reads the value of w while newer writes w2, w3 have been visible for more
// than Delta: W_r = {w2, w3} is non-empty, so r does NOT read on time.
#include <cstdio>

#include "core/paper_figures.hpp"
#include "core/render.hpp"
#include "core/timed.hpp"

using namespace timedc;

int main() {
  const History h = figure2();
  const Figure2Ops ops = figure2_ops();
  std::printf("Figure 2: operation r does not read on time (Definition 1)\n\n");
  std::printf("%s\n", render_timeline(h).c_str());
  std::printf("Delta = %s, so the W_r window closes at T(r) - Delta = %s\n\n",
              kFigure2Delta.to_string().c_str(),
              (h.op(ops.r).time - kFigure2Delta).to_string().c_str());

  std::printf("%-14s %-10s %s\n", "operation", "T", "role under Definition 1");
  struct Row {
    OpIndex op;
    const char* role;
  };
  const Row rows[] = {
      {ops.w1, "older than w: no effect"},
      {ops.w, "the write r returns"},
      {ops.w2, "in W_r: newer than w, older than T(r)-Delta"},
      {ops.w3, "in W_r: newer than w, older than T(r)-Delta"},
      {ops.w4, "newer than T(r)-Delta: acceptable to miss"},
      {ops.r, "the read"},
  };
  for (const Row& row : rows) {
    std::printf("%-14s %-10s %s\n", h.op(row.op).to_string().c_str(),
                h.op(row.op).time.to_string().c_str(), row.role);
  }

  const auto timing = reads_on_time(h, TimedSpecPerfect{kFigure2Delta});
  std::printf("\nchecker says: %s", render_timed_result(h, timing).c_str());
  std::printf("(paper: W_r = {w2, w3}, r is late)\n");
  return 0;
}
