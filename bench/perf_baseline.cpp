// PERF — the recorded performance baseline behind BENCH_checkers.json.
//
// Measures, on fixed-seed inputs:
//   * the consistency checkers (LIN/SC/CC) with fast paths on vs off:
//     ns/op and backtracking nodes expanded — the constant-factor and
//     pruning wins of the forced-order constraint graph, the packed memo
//     key and the seed-order pass;
//   * the timed predicate (Def 2): the O(R log W) sorted-scan vs the naive
//     O(R x W) reference scan (reimplemented here for comparison);
//   * the Figure 4 hierarchy audit at thread counts {1, 2, 4, 8}: wall
//     clock, speedup vs 1 thread, and a determinism self-check (counters
//     must be bit-identical at every thread count — the engine's contract);
//   * the net stack: wire-codec encode/decode ns/msg over a representative
//     message mix, the TCP loopback request/reply RTT between two
//     EventLoop threads (the floor under every timedc-load latency), and
//     the time-sync round-trip (one Cristian kTimeRequest/kTimeReply
//     exchange — the overhead a TimeSyncClient adds per resync).
//
// Usage: perf_baseline [--quick] [--out FILE.json]
//   --quick   CI-sized run (fewer rounds/reps); exit non-zero on any
//             determinism failure or unwritable output.
//   --out     where to write the JSON report (default: BENCH_checkers.json
//             in the current directory).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "common/parallel.hpp"
#include "core/checkers.hpp"
#include "core/hierarchy_audit.hpp"
#include "core/history_gen.hpp"
#include "core/timed.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"
#include "protocol/experiment.hpp"

using namespace timedc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<History> fig4_shaped_histories(int n, std::uint64_t seed) {
  std::vector<History> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(i));
    if (i % 2 == 0) {
      RandomHistoryParams p;
      p.num_ops = 12;
      p.num_sites = 3;
      p.num_objects = 2;
      out.push_back(random_history(p, rng));
    } else {
      ReplicaHistoryParams p;
      p.num_ops = 16;
      p.num_sites = 3;
      p.num_objects = 2;
      p.max_delay_micros = 120;
      out.push_back(replica_history(p, rng));
    }
  }
  return out;
}

struct CheckerSample {
  double ns_per_history = 0;
  std::uint64_t nodes = 0;
  int yes = 0;  // cross-mode agreement check
};

template <typename CheckFn>
CheckerSample time_checker(const std::vector<History>& hs, int reps, CheckFn&& fn) {
  CheckerSample s;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const History& h : hs) {
      const auto r = fn(h);
      if (rep == 0) {
        s.nodes += r.nodes;
        s.yes += r.verdict == Verdict::kYes;
      }
    }
  }
  s.ns_per_history =
      seconds_since(t0) * 1e9 / (static_cast<double>(reps) * hs.size());
  return s;
}

/// The pre-optimization Def 2 scan: every (read, write) pair probed.
TimedCheckResult naive_reads_on_time(const History& h, const TimedSpecEpsilon& spec) {
  TimedCheckResult result;
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const auto src = h.forced_source(r.index);
    std::vector<OpIndex> w_r;
    for (OpIndex w2 : h.writes_to(r.object)) {
      if (src && w2 == *src) continue;
      const bool newer =
          !src || definitely_before(h.op(*src).time, h.op(w2).time, spec.eps);
      const bool stale =
          definitely_before(h.op(w2).time, r.time - spec.delta, spec.eps);
      if (newer && stale) w_r.push_back(w2);
    }
    if (!w_r.empty()) {
      result.all_on_time = false;
      result.late_reads.push_back(LateRead{r.index, src, std::move(w_r)});
    }
  }
  return result;
}

std::string json_escape_free(double v) {  // plain finite numbers only
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_checkers.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE.json]\n", argv[0]);
      return 2;
    }
  }

#ifndef NDEBUG
  std::fprintf(stderr,
               "WARNING: this is a Debug/assert-enabled build; the recorded "
               "numbers will not be representative. Configure with "
               "-DCMAKE_BUILD_TYPE=Release before committing a baseline.\n");
#endif

  const int micro_histories = quick ? 120 : 600;
  const int micro_reps = quick ? 3 : 20;
  const int audit_rounds = quick ? 300 : 1500;
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("PERF: checker + parallel-audit baseline (%s mode, %u hw threads)\n\n",
              quick ? "quick" : "full", hw);

  // --- checker micro: fast paths on vs off --------------------------------
  const auto hs = fig4_shaped_histories(micro_histories, 20240601);
  SearchLimits fast, slow;
  fast.fast_paths = true;
  slow.fast_paths = false;

  struct NamedChecker {
    const char* name;
    CheckerSample on, off;
  };
  std::vector<NamedChecker> checkers;
  checkers.push_back(
      {"lin",
       time_checker(hs, micro_reps, [&](const History& h) { return check_lin(h, fast); }),
       time_checker(hs, micro_reps, [&](const History& h) { return check_lin(h, slow); })});
  checkers.push_back(
      {"sc",
       time_checker(hs, micro_reps, [&](const History& h) { return check_sc(h, fast); }),
       time_checker(hs, micro_reps, [&](const History& h) { return check_sc(h, slow); })});
  checkers.push_back(
      {"cc",
       time_checker(hs, micro_reps, [&](const History& h) { return check_cc(h, fast); }),
       time_checker(hs, micro_reps, [&](const History& h) { return check_cc(h, slow); })});

  bool agree = true;
  std::printf("  checker      ns/hist(fast)  ns/hist(exh)  speedup   nodes(fast)  nodes(exh)\n");
  for (const auto& c : checkers) {
    if (c.on.yes != c.off.yes) agree = false;
    std::printf("  %-10s %14.0f %13.0f %8.2fx %12llu %11llu\n", c.name,
                c.on.ns_per_history, c.off.ns_per_history,
                c.off.ns_per_history / c.on.ns_per_history,
                (unsigned long long)c.on.nodes, (unsigned long long)c.off.nodes);
  }
  std::printf("  verdict agreement fast vs exhaustive: %s\n\n", agree ? "yes" : "NO (BUG)");

  // --- timed predicate micro: sorted-scan vs naive ------------------------
  const TimedSpecEpsilon tspec{SimTime::micros(60), SimTime::zero()};
  double timed_fast_ns = 0, timed_naive_ns = 0;
  bool timed_agree = true;
  {
    const int reps = micro_reps * 5;
    auto t0 = Clock::now();
    int on_time = 0;
    for (int rep = 0; rep < reps; ++rep) {
      for (const History& h : hs) on_time += reads_on_time(h, tspec).all_on_time;
    }
    timed_fast_ns = seconds_since(t0) * 1e9 / (static_cast<double>(reps) * hs.size());
    t0 = Clock::now();
    int on_time_naive = 0;
    for (int rep = 0; rep < reps; ++rep) {
      for (const History& h : hs) on_time_naive += naive_reads_on_time(h, tspec).all_on_time;
    }
    timed_naive_ns = seconds_since(t0) * 1e9 / (static_cast<double>(reps) * hs.size());
    timed_agree = on_time == on_time_naive;
  }
  std::printf("  reads_on_time (fig4-sized): %0.0f ns/hist sorted-scan vs %0.0f "
              "ns/hist naive (%.2fx), agreement: %s\n",
              timed_fast_ns, timed_naive_ns, timed_naive_ns / timed_fast_ns,
              timed_agree ? "yes" : "NO (BUG)");

  // Large histories are where O(R log W) vs O(R x W) separates: many writes
  // per object, many reads.
  double timed_fast_big_ns = 0, timed_naive_big_ns = 0;
  bool timed_big_agree = true;
  {
    std::vector<History> big;
    const int n_big = quick ? 8 : 32;
    for (int i = 0; i < n_big; ++i) {
      Rng rng = Rng::stream(777, static_cast<std::uint64_t>(i));
      ReplicaHistoryParams p;
      p.num_ops = 2000;
      p.num_sites = 6;
      p.num_objects = 4;
      p.max_delay_micros = 900;
      big.push_back(replica_history(p, rng));
    }
    const int reps = quick ? 2 : 5;
    auto t0 = Clock::now();
    std::size_t late_fast = 0;
    for (int rep = 0; rep < reps; ++rep) {
      for (const History& h : big) late_fast += reads_on_time(h, tspec).late_reads.size();
    }
    timed_fast_big_ns = seconds_since(t0) * 1e9 / (static_cast<double>(reps) * big.size());
    t0 = Clock::now();
    std::size_t late_naive = 0;
    for (int rep = 0; rep < reps; ++rep) {
      for (const History& h : big) late_naive += naive_reads_on_time(h, tspec).late_reads.size();
    }
    timed_naive_big_ns = seconds_since(t0) * 1e9 / (static_cast<double>(reps) * big.size());
    timed_big_agree = late_fast == late_naive;
  }
  std::printf("  reads_on_time (2000-op histories): %0.0f ns/hist sorted-scan vs "
              "%0.0f ns/hist naive (%.2fx), agreement: %s\n\n",
              timed_fast_big_ns, timed_naive_big_ns,
              timed_naive_big_ns / timed_fast_big_ns,
              timed_big_agree ? "yes" : "NO (BUG)");

  // --- hierarchy audit scaling --------------------------------------------
  HierarchyAuditConfig audit_config;
  audit_config.rounds = audit_rounds;
  const int thread_counts[] = {1, 2, 4, 8};
  struct AuditPoint {
    int threads;
    double seconds;
  };
  std::vector<AuditPoint> points;
  HierarchyAuditResult reference;
  bool deterministic = true, audit_clean = true;
  std::printf("  hierarchy audit (%d rounds): wall clock by thread count\n", audit_rounds);
  for (int t : thread_counts) {
    audit_config.num_threads = t;
    const auto t0 = Clock::now();
    const HierarchyAuditResult r = run_hierarchy_audit(audit_config);
    const double secs = seconds_since(t0);
    points.push_back({t, secs});
    if (t == 1) {
      reference = r;
    } else if (r.n_lin != reference.n_lin || r.n_sc != reference.n_sc ||
               r.n_cc != reference.n_cc || r.n_tsc != reference.n_tsc ||
               r.n_tcc != reference.n_tcc || r.n_timed != reference.n_timed ||
               r.accept_tsc != reference.accept_tsc ||
               r.accept_tcc != reference.accept_tcc) {
      deterministic = false;
    }
    if (!r.ok()) audit_clean = false;
    std::printf("    threads=%d  %.3fs  speedup %.2fx\n", t, secs,
                points.front().seconds / secs);
  }
  std::printf("  determinism across thread counts: %s; violations/limits clean: %s\n\n",
              deterministic ? "yes" : "NO (BUG)", audit_clean ? "yes" : "NO (BUG)");

  // --- tracer overhead ----------------------------------------------------
  // The same small TSC experiment with tracing off vs on. "Off" is the
  // default config (null Tracer*: one pointer test per potential event), so
  // this measures exactly what every untraced simulation pays for the
  // instrumentation, and what a fully-traced run costs on top.
  double tracer_off_us = 0, tracer_on_us = 0;
  std::uint64_t tracer_events = 0;
  {
    ExperimentConfig tc;
    tc.kind = ProtocolKind::kTimedSerial;
    tc.delta = SimTime::millis(5);
    tc.workload.num_clients = 4;
    tc.workload.num_objects = 16;
    tc.workload.horizon = SimTime::seconds(2);
    tc.seed = 99;
    const int reps = quick ? 3 : 10;
    const auto time_runs = [&](bool traced) {
      ExperimentConfig c = tc;
      c.trace.enabled = traced;
      const auto t0 = Clock::now();
      for (int rep = 0; rep < reps; ++rep) {
        const ExperimentResult r = run_experiment(c);
        if (traced) tracer_events = r.trace.size();
      }
      return seconds_since(t0) * 1e6 / reps;
    };
    tracer_off_us = time_runs(false);
    tracer_on_us = time_runs(true);
  }
  std::printf("  tracer overhead (2s TSC experiment): %.0fus off, %.0fus on "
              "(%.2fx), %llu events/run\n\n",
              tracer_off_us, tracer_on_us, tracer_on_us / tracer_off_us,
              (unsigned long long)tracer_events);

  // --- net: wire codec + loopback RTT -------------------------------------
  double codec_encode_ns = 0, codec_decode_ns = 0, codec_decode_view_ns = 0;
  {
    // A representative mix: every message type once, copies carrying
    // 3-entry plausible timestamps (the common REV width in the benches).
    const PlausibleTimestamp ts3({4, 9, 2}, SiteId{1});
    ObjectCopy copy{ObjectId{7}, Value{42}, 5, SimTime::micros(100),
                    SimTime::micros(900), SimTime::micros(400), ts3, ts3};
    std::vector<Message> msgs = {
        FetchRequest{ObjectId{7}, SiteId{1}, 11},
        FetchReply{copy, 11},
        WriteRequest{ObjectId{7}, Value{43}, SimTime::micros(150), ts3,
                     SiteId{1}, 12},
        WriteAck{ObjectId{7}, 6, 12},
        ValidateRequest{ObjectId{7}, 5, SiteId{1}, 13},
        ValidateReply{ObjectId{7}, true, copy, 13},
        Invalidate{ObjectId{7}, 6},
        PushUpdate{copy},
    };
    const int reps = quick ? 20000 : 200000;
    std::vector<std::uint8_t> buf;
    auto t0 = Clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      for (const Message& m : msgs) {
        buf.clear();
        wire::encode_frame(SiteId{1}, SiteId{2}, m, buf);
      }
    }
    codec_encode_ns =
        seconds_since(t0) * 1e9 / (static_cast<double>(reps) * msgs.size());

    std::vector<std::vector<std::uint8_t>> frames;
    for (const Message& m : msgs) {
      frames.emplace_back();
      wire::encode_frame(SiteId{1}, SiteId{2}, m, frames.back());
    }
    std::size_t decoded_ok = 0;
    t0 = Clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      for (const auto& fbuf : frames) {
        decoded_ok += wire::decode_frame(fbuf).ok();
      }
    }
    codec_decode_ns =
        seconds_since(t0) * 1e9 / (static_cast<double>(reps) * frames.size());
    if (decoded_ok != static_cast<std::size_t>(reps) * frames.size()) {
      std::fprintf(stderr, "BUG: codec decode failures in the bench mix\n");
      return 1;
    }

    // The transport hot path: peek (header-only view) + decode into a
    // REUSED DecodedFrame, no owning allocation per message. The delta
    // against codec_decode_ns is what the FrameView refactor bought.
    std::size_t viewed_ok = 0;
    wire::DecodedFrame scratch;
    t0 = Clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      for (const auto& fbuf : frames) {
        const wire::FrameView view = wire::peek_frame(fbuf);
        viewed_ok += wire::decode_frame_view(view, scratch) ==
                     wire::DecodeStatus::kOk;
      }
    }
    codec_decode_view_ns =
        seconds_since(t0) * 1e9 / (static_cast<double>(reps) * frames.size());
    if (viewed_ok != static_cast<std::size_t>(reps) * frames.size()) {
      std::fprintf(stderr, "BUG: codec view-decode failures in the bench mix\n");
      return 1;
    }
  }

  double loopback_rtt_us = 0;
  double time_sync_round_us = 0;
  {
    const int pings = quick ? 2000 : 20000;
    net::EventLoop server_loop;
    net::TcpTransport server_tx(server_loop);
    const std::uint16_t port = server_tx.listen(0);
    server_tx.register_site(SiteId{0},
                            [&](SiteId from, const Message& m) {
                              server_tx.send_message(SiteId{0}, from, m, 64);
                            });
    std::thread server_thread([&] { server_loop.run(); });

    net::EventLoop client_loop;
    net::TcpTransport client_tx(client_loop);
    client_tx.add_route(SiteId{0}, "127.0.0.1", port);
    int done = 0;
    client_tx.register_site(SiteId{1}, [&](SiteId, const Message& m) {
      if (++done == pings) {
        client_loop.stop();
        return;
      }
      client_tx.send_message(SiteId{1}, SiteId{0}, m, 64);
    });
    const Message ping = FetchRequest{ObjectId{1}, SiteId{1}, 1};
    const auto t0 = Clock::now();  // includes the dial, amortized over pings
    client_loop.post(
        [&] { client_tx.send_message(SiteId{1}, SiteId{0}, ping, 64); });
    client_loop.run();
    loopback_rtt_us = seconds_since(t0) * 1e6 / pings;
    server_loop.stop();
    server_thread.join();
  }

  // Batched round trips: 16 pings in flight per round, flushed by the
  // tick-end batching as one gather write each way. The amortized per-op
  // figure against loopback_rtt_us is the syscall-coalescing win.
  double batched_rtt_us = 0;
  {
    const int depth = 16;
    const int rounds = quick ? 500 : 5000;
    net::EventLoop server_loop;
    net::TcpTransport server_tx(server_loop);
    const std::uint16_t port = server_tx.listen(0);
    server_tx.register_site(SiteId{0},
                            [&](SiteId from, const Message& m) {
                              server_tx.send_message(SiteId{0}, from, m, 64);
                            });
    std::thread server_thread([&] { server_loop.run(); });

    net::EventLoop client_loop;
    net::TcpTransport client_tx(client_loop);
    client_tx.add_route(SiteId{0}, "127.0.0.1", port);
    const Message ping = FetchRequest{ObjectId{1}, SiteId{1}, 1};
    int got = 0, round = 0;
    auto send_batch = [&] {
      for (int i = 0; i < depth; ++i) {
        client_tx.send_message(SiteId{1}, SiteId{0}, ping, 64);
      }
    };
    client_tx.register_site(SiteId{1}, [&](SiteId, const Message&) {
      if (++got < depth) return;
      got = 0;
      if (++round == rounds) {
        client_loop.stop();
        return;
      }
      send_batch();
    });
    const auto t0 = Clock::now();  // includes the dial, amortized over rounds
    client_loop.post(send_batch);
    client_loop.run();
    batched_rtt_us =
        seconds_since(t0) * 1e6 / (static_cast<double>(rounds) * depth);
    server_loop.stop();
    server_thread.join();
  }

  // Time-sync round-trip: one Cristian exchange (kTimeRequest out,
  // kTimeReply back, answered at the transport layer) per round — the
  // per-round cost a TimeSyncClient adds on top of protocol traffic.
  {
    const int rounds = quick ? 2000 : 20000;
    net::EventLoop server_loop;
    net::TcpTransport server_tx(server_loop);
    const std::uint16_t port = server_tx.listen(0);
    std::thread server_thread([&] { server_loop.run(); });

    net::EventLoop client_loop;
    net::TcpTransport client_tx(client_loop);
    client_tx.add_route(SiteId{0}, "127.0.0.1", port);
    int done = 0;
    auto send_request = [&](std::uint64_t seq) {
      wire::TimeSync req;
      req.seq = seq;
      req.client_send_us = client_loop.now().as_micros();
      return client_tx.send_time_sync(SiteId{1}, SiteId{0}, req);
    };
    client_tx.set_time_sync_handler([&](SiteId, const wire::TimeSync& ts) {
      if (++done == rounds) {
        client_loop.stop();
        return;
      }
      send_request(ts.seq + 1);
    });
    // The first send races the dial; retry on a short timer until the
    // connection is up, then the reply handler drives the rest.
    std::function<void()> kick = [&] {
      if (!send_request(1)) client_loop.run_after(SimTime::millis(1), kick);
    };
    const auto t0 = Clock::now();  // includes the dial, amortized over rounds
    client_loop.post(kick);
    client_loop.run();
    time_sync_round_us = seconds_since(t0) * 1e6 / rounds;
    server_loop.stop();
    server_thread.join();
  }
  std::printf("  net: codec %.0f ns/msg encode, %.0f ns/msg decode "
              "(%.0f into view); TCP loopback RTT %.1f us "
              "(%.1f us/op batched x16); time-sync round %.1f us\n\n",
              codec_encode_ns, codec_decode_ns, codec_decode_view_ns,
              loopback_rtt_us, batched_rtt_us, time_sync_round_us);

  // --- JSON report --------------------------------------------------------
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"checkers+parallel-audit\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
#ifdef NDEBUG
  std::fprintf(f, "  \"build\": \"release\",\n");
#else
  std::fprintf(f, "  \"build\": \"debug\",\n");
#endif
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"micro_histories\": %d,\n", micro_histories);
  std::fprintf(f, "  \"checkers\": {\n");
  for (std::size_t i = 0; i < checkers.size(); ++i) {
    const auto& c = checkers[i];
    std::fprintf(f,
                 "    \"%s\": {\"ns_per_history_fast\": %s, "
                 "\"ns_per_history_exhaustive\": %s, \"speedup\": %s, "
                 "\"nodes_fast\": %llu, \"nodes_exhaustive\": %llu}%s\n",
                 c.name, json_escape_free(c.on.ns_per_history).c_str(),
                 json_escape_free(c.off.ns_per_history).c_str(),
                 json_escape_free(c.off.ns_per_history / c.on.ns_per_history).c_str(),
                 (unsigned long long)c.on.nodes, (unsigned long long)c.off.nodes,
                 i + 1 < checkers.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"reads_on_time\": {\"ns_per_history_fast\": %s, "
               "\"ns_per_history_naive\": %s, \"speedup\": %s},\n",
               json_escape_free(timed_fast_ns).c_str(),
               json_escape_free(timed_naive_ns).c_str(),
               json_escape_free(timed_naive_ns / timed_fast_ns).c_str());
  std::fprintf(f,
               "  \"reads_on_time_2000op\": {\"ns_per_history_fast\": %s, "
               "\"ns_per_history_naive\": %s, \"speedup\": %s},\n",
               json_escape_free(timed_fast_big_ns).c_str(),
               json_escape_free(timed_naive_big_ns).c_str(),
               json_escape_free(timed_naive_big_ns / timed_fast_big_ns).c_str());
  std::fprintf(f, "  \"audit\": {\n");
  std::fprintf(f, "    \"rounds\": %d,\n", audit_rounds);
  std::fprintf(f, "    \"by_threads\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "      {\"threads\": %d, \"seconds\": %s, \"speedup\": %s}%s\n",
                 points[i].threads, json_escape_free(points[i].seconds).c_str(),
                 json_escape_free(points.front().seconds / points[i].seconds).c_str(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"deterministic_across_threads\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "    \"violations\": %d,\n", reference.violations);
  std::fprintf(f, "    \"limit_rounds\": %d\n", reference.limit_rounds);
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"tracer\": {\"experiment_us_off\": %s, "
               "\"experiment_us_on\": %s, \"overhead_ratio\": %s, "
               "\"events_per_run\": %llu},\n",
               json_escape_free(tracer_off_us).c_str(),
               json_escape_free(tracer_on_us).c_str(),
               json_escape_free(tracer_on_us / tracer_off_us).c_str(),
               (unsigned long long)tracer_events);
  std::fprintf(f,
               "  \"net\": {\"codec_encode_ns_per_msg\": %s, "
               "\"codec_decode_ns_per_msg\": %s, "
               "\"codec_decode_view_ns_per_msg\": %s, "
               "\"loopback_rtt_us\": %s, \"batched_rtt_us\": %s, "
               "\"time_sync_round_us\": %s},\n",
               json_escape_free(codec_encode_ns).c_str(),
               json_escape_free(codec_decode_ns).c_str(),
               json_escape_free(codec_decode_view_ns).c_str(),
               json_escape_free(loopback_rtt_us).c_str(),
               json_escape_free(batched_rtt_us).c_str(),
               json_escape_free(time_sync_round_us).c_str());
  std::fprintf(f, "  \"checker_verdicts_agree\": %s,\n", agree ? "true" : "false");
  std::fprintf(f, "  \"timed_verdicts_agree\": %s\n",
               timed_agree && timed_big_agree ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  return (agree && timed_agree && timed_big_agree && deterministic && audit_clean)
             ? 0
             : 1;
}
