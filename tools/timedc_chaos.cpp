// timedc-chaos: a fault-injecting TCP proxy, the real-socket counterpart of
// the simulator's FaultPlan (src/sim/faults.hpp).
//
// Sits between timedc-load and timedc-server (or between servers) and
// applies a scheduled fault plan to the byte streams flowing through it:
//
//   * --latency-ms / --jitter-ms   one-way forwarding delay, uniform jitter,
//                                  FIFO-preserving per direction (a delayed
//                                  chunk can never overtake an earlier one)
//   * --latency-up-ms / --latency-down-ms (and --jitter-up-ms /
//     --jitter-down-ms)            asymmetric per-direction overrides: "up"
//                                  is client->server (the accepted side
//                                  toward the dialed side), "down" the
//                                  reverse. Unset directions fall back to
//                                  the symmetric --latency-ms/--jitter-ms.
//                                  Asymmetry is the worst case for
//                                  Cristian-style sync: the RTT/2 midpoint
//                                  estimate is off by half the asymmetry.
//   * --storm-ms S:E               a latency storm: extra one-way delay
//                                  ramps linearly 0 -> --storm-peak-ms at
//                                  the window midpoint and back to 0 at E
//                                  (triangular), plus uniform jitter of
//                                  --storm-jitter-pct percent of the
//                                  current extra. Applied to BOTH
//                                  directions on top of the base delay.
//
// The injected one-way delay distribution is reported per direction as the
// chaos.delay_up_us / chaos.delay_down_us histograms in the metrics JSON.
//   * --throttle-kbps              token-bucket bandwidth cap per direction
//   * --reset-every-ms             periodically RST one random active link
//                                  (SO_LINGER{1,0} close: the peer sees
//                                  ECONNRESET, not a clean FIN)
//   * --reset-at-ms                RST every active link at a fixed offset
//   * --partition-ms S:E           network partition from S to E ms after
//                                  start: established links stop moving
//                                  bytes (TCP backpressure, exactly like a
//                                  blackholed path — connect() still
//                                  succeeds, so clients must detect silence
//                                  by heartbeat, not by refusal); at heal
//                                  every zombie link is RST so endpoints
//                                  reconnect over the healthy path
//
// All randomness is seeded (--seed): a chaos schedule is reproducible
// modulo kernel timing. Per-link buffering is capped; a full buffer pauses
// reading from the source socket so memory stays bounded under throttle.
//
// Usage:
//   timedc-chaos --route lport:rhost:rport [--route ...]
//                [--latency-ms 0] [--jitter-ms 0]
//                [--latency-up-ms L] [--latency-down-ms L]
//                [--jitter-up-ms J] [--jitter-down-ms J]
//                [--storm-ms S:E] [--storm-peak-ms P] [--storm-jitter-pct X]
//                [--throttle-kbps 0]
//                [--reset-every-ms 0] [--reset-at-ms T]...
//                [--partition-ms S:E]... [--seed 42] [--duration-s 0]
//                [--metrics-out FILE]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace timedc;

constexpr std::size_t kReadChunk = 64 * 1024;
/// Per-direction cap on bytes held inside the proxy (delayed + unwritten).
/// Above it the source socket stops being read: TCP backpressure propagates
/// to the sender, as a real slow link would.
constexpr std::size_t kMaxBuffered = 4 * 1024 * 1024;

struct RouteSpec {
  std::uint16_t lport = 0;
  std::string rhost;
  std::uint16_t rport = 0;
};

struct Window {
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
};

struct Options {
  std::vector<RouteSpec> routes;
  std::int64_t latency_ms = 0;
  std::int64_t jitter_ms = 0;
  // Per-direction overrides; -1 falls back to the symmetric knobs above.
  std::int64_t latency_up_ms = -1;
  std::int64_t latency_down_ms = -1;
  std::int64_t jitter_up_ms = -1;
  std::int64_t jitter_down_ms = -1;
  // Latency storm: triangular extra delay over each window.
  std::vector<Window> storms;
  std::int64_t storm_peak_ms = 0;
  std::int64_t storm_jitter_pct = 0;
  std::int64_t throttle_kbps = 0;
  std::int64_t reset_every_ms = 0;
  std::vector<std::int64_t> reset_at_ms;
  std::vector<Window> partitions;
  std::uint64_t seed = 42;
  std::int64_t duration_s = 0;
  std::string metrics_out;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --route lport:rhost:rport [--route ...]\n"
      "          [--latency-ms L] [--jitter-ms J]\n"
      "          [--latency-up-ms L] [--latency-down-ms L]\n"
      "          [--jitter-up-ms J] [--jitter-down-ms J]\n"
      "          [--storm-ms S:E] [--storm-peak-ms P] [--storm-jitter-pct X]\n"
      "          [--throttle-kbps K]\n"
      "          [--reset-every-ms M] [--reset-at-ms T]...\n"
      "          [--partition-ms S:E]... [--seed S] [--duration-s D]\n"
      "          [--metrics-out FILE]\n",
      argv0);
  return 2;
}

bool parse_route(const char* spec, RouteSpec& route) {
  const char* c1 = std::strchr(spec, ':');
  const char* c2 = std::strrchr(spec, ':');
  if (c1 == nullptr || c2 == c1) return false;
  route.lport = static_cast<std::uint16_t>(std::atoi(spec));
  route.rhost.assign(c1 + 1, c2);
  route.rport = static_cast<std::uint16_t>(std::atoi(c2 + 1));
  return route.lport != 0 && !route.rhost.empty() && route.rport != 0;
}

bool parse_window(const char* spec, Window& w) {
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) return false;
  w.start_ms = std::atoll(spec);
  w.end_ms = std::atoll(colon + 1);
  return w.end_ms > w.start_ms && w.start_ms >= 0;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--route") {
      RouteSpec route;
      if ((v = next()) == nullptr || !parse_route(v, route)) return false;
      opt.routes.push_back(std::move(route));
    } else if (arg == "--latency-ms") {
      if ((v = next()) == nullptr) return false;
      opt.latency_ms = std::atoll(v);
    } else if (arg == "--jitter-ms") {
      if ((v = next()) == nullptr) return false;
      opt.jitter_ms = std::atoll(v);
    } else if (arg == "--latency-up-ms") {
      if ((v = next()) == nullptr) return false;
      opt.latency_up_ms = std::atoll(v);
    } else if (arg == "--latency-down-ms") {
      if ((v = next()) == nullptr) return false;
      opt.latency_down_ms = std::atoll(v);
    } else if (arg == "--jitter-up-ms") {
      if ((v = next()) == nullptr) return false;
      opt.jitter_up_ms = std::atoll(v);
    } else if (arg == "--jitter-down-ms") {
      if ((v = next()) == nullptr) return false;
      opt.jitter_down_ms = std::atoll(v);
    } else if (arg == "--storm-ms") {
      Window w;
      if ((v = next()) == nullptr || !parse_window(v, w)) return false;
      opt.storms.push_back(w);
    } else if (arg == "--storm-peak-ms") {
      if ((v = next()) == nullptr) return false;
      opt.storm_peak_ms = std::atoll(v);
    } else if (arg == "--storm-jitter-pct") {
      if ((v = next()) == nullptr) return false;
      opt.storm_jitter_pct = std::atoll(v);
    } else if (arg == "--throttle-kbps") {
      if ((v = next()) == nullptr) return false;
      opt.throttle_kbps = std::atoll(v);
    } else if (arg == "--reset-every-ms") {
      if ((v = next()) == nullptr) return false;
      opt.reset_every_ms = std::atoll(v);
    } else if (arg == "--reset-at-ms") {
      if ((v = next()) == nullptr) return false;
      opt.reset_at_ms.push_back(std::atoll(v));
    } else if (arg == "--partition-ms") {
      Window w;
      if ((v = next()) == nullptr || !parse_window(v, w)) return false;
      opt.partitions.push_back(w);
    } else if (arg == "--seed") {
      if ((v = next()) == nullptr) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--duration-s") {
      if ((v = next()) == nullptr) return false;
      opt.duration_s = std::atoll(v);
    } else if (arg == "--metrics-out") {
      if ((v = next()) == nullptr) return false;
      opt.metrics_out = v;
    } else {
      return false;
    }
  }
  return !opt.routes.empty() && opt.latency_ms >= 0 && opt.jitter_ms >= 0 &&
         opt.throttle_kbps >= 0 && opt.reset_every_ms >= 0 &&
         opt.storm_peak_ms >= 0 && opt.storm_jitter_pct >= 0 &&
         (opt.storms.empty() || opt.storm_peak_ms > 0);
}

struct ChaosStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t dial_failures = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t chunks_delayed = 0;
  std::uint64_t resets_injected = 0;
  std::uint64_t partitions_started = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t accepted_while_partitioned = 0;
};

class Proxy;

/// One proxied TCP link: downstream client fd `a`, upstream server fd `b`,
/// and a delayed/throttled byte pipe per direction.
struct Link {
  struct Chunk {
    std::vector<std::uint8_t> data;
    std::int64_t release_us = 0;  // steady deadline when it may move on
  };
  struct Pipe {
    std::deque<Chunk> delayed;   // read but not yet released
    std::vector<std::uint8_t> out;  // released but not yet written
    std::size_t out_at = 0;
    std::size_t buffered = 0;    // delayed + (out.size() - out_at)
    std::int64_t last_release_us = 0;  // FIFO floor for the next chunk
    double tokens = 0;           // throttle bucket, in bytes
    std::int64_t tokens_at_us = 0;
    bool src_paused = false;
    bool flush_pending = false;  // a release timer is already armed
  };

  std::uint64_t id = 0;
  int a = -1;
  int b = -1;
  bool b_connected = false;
  Pipe a_to_b;  // reads from a, writes to b
  Pipe b_to_a;
  bool zombie = false;  // accepted during a partition; never dialed upstream
};

class Proxy {
 public:
  Proxy(const Options& opt, net::EventLoop& loop)
      : opt_(opt),
        loop_(loop),
        rng_(opt.seed),
        delay_up_hist_(Histogram::time_us()),
        delay_down_hist_(Histogram::time_us()) {}

  ChaosStats& stats() { return stats_; }
  const Histogram& delay_up_hist() const { return delay_up_hist_; }
  const Histogram& delay_down_hist() const { return delay_down_hist_; }

  /// Binds every route. Returns false (after perror) on failure.
  bool start() {
    start_us_ = steady_us();
    for (const RouteSpec& route : opt_.routes) {
      const int fd = listen_on(route.lport);
      if (fd < 0) return false;
      listeners_.push_back(fd);
      const RouteSpec* spec = &route;
      loop_.add_fd(fd, EPOLLIN, [this, fd, spec](std::uint32_t) {
        accept_ready(fd, *spec);
      });
    }
    for (const Window& w : opt_.partitions) {
      loop_.run_after(SimTime::millis(w.start_ms), [this] { partition_start(); });
      loop_.run_after(SimTime::millis(w.end_ms), [this] { partition_heal(); });
    }
    for (const std::int64_t t : opt_.reset_at_ms) {
      loop_.run_after(SimTime::millis(t), [this] { reset_all("scheduled"); });
    }
    if (opt_.reset_every_ms > 0) schedule_random_reset();
    return true;
  }

  void shutdown() {
    for (const int fd : listeners_) {
      loop_.remove_fd(fd);
      ::close(fd);
    }
    listeners_.clear();
    while (!links_.empty()) destroy(links_.begin()->second.get(), false);
  }

 private:
  static std::int64_t steady_us() {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1000000 + ts.tv_nsec / 1000;
  }

  static int listen_on(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      std::perror("timedc-chaos: socket");
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
      std::perror("timedc-chaos: bind/listen");
      ::close(fd);
      return -1;
    }
    return fd;
  }

  void accept_ready(int listen_fd, const RouteSpec& route) {
    for (;;) {
      const int a = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (a < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      ++stats_.connections_accepted;
      const int one = 1;
      ::setsockopt(a, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto link = std::make_unique<Link>();
      link->id = next_link_id_++;
      link->a = a;
      Link* l = link.get();
      links_[l->id] = std::move(link);
      if (partitioned_) {
        // Blackhole: the TCP handshake succeeds (the kernel completed it
        // before accept), but no upstream dial happens and no byte will
        // ever move. The client must notice via heartbeat silence.
        ++stats_.accepted_while_partitioned;
        l->zombie = true;
        loop_.add_fd(a, 0, [this, l](std::uint32_t ev) { on_a_event(l, ev); });
        continue;
      }
      if (!dial_upstream(l, route)) {
        ++stats_.dial_failures;
        destroy(l, true);
        continue;
      }
      loop_.add_fd(a, EPOLLIN, [this, l](std::uint32_t ev) { on_a_event(l, ev); });
    }
  }

  bool dial_upstream(Link* l, const RouteSpec& route) {
    const int b = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (b < 0) return false;
    const int one = 1;
    ::setsockopt(b, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(route.rport);
    if (inet_pton(AF_INET, route.rhost.c_str(), &addr.sin_addr) != 1) {
      ::close(b);
      return false;
    }
    const int rc =
        ::connect(b, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(b);
      return false;
    }
    l->b = b;
    l->b_connected = (rc == 0);
    loop_.add_fd(b, l->b_connected ? EPOLLIN : (EPOLLIN | EPOLLOUT),
                 [this, l](std::uint32_t ev) { on_b_event(l, ev); });
    return true;
  }

  // --- data movement --------------------------------------------------------

  bool alive(std::uint64_t id) const { return links_.find(id) != links_.end(); }

  void on_a_event(Link* l, std::uint32_t ev) {
    const std::uint64_t id = l->id;  // destroy() frees l; re-check via id
    if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
      destroy(l, true);
      return;
    }
    if ((ev & EPOLLIN) != 0) read_side(l, /*from_a=*/true);
    if ((ev & EPOLLOUT) != 0 && alive(id)) write_side(l, /*to_a=*/true);
  }

  void on_b_event(Link* l, std::uint32_t ev) {
    const std::uint64_t id = l->id;
    if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
      destroy(l, true);
      return;
    }
    if (!l->b_connected && (ev & EPOLLOUT) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(l->b, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ++stats_.dial_failures;
        destroy(l, true);
        return;
      }
      l->b_connected = true;
      update_interest(l);
      flush(l, /*to_a=*/false);
      if (!alive(id)) return;
    }
    if ((ev & EPOLLIN) != 0) read_side(l, /*from_a=*/false);
    if ((ev & EPOLLOUT) != 0 && alive(id) && l->b_connected) {
      write_side(l, /*to_a=*/false);
    }
  }

  void read_side(Link* l, bool from_a) {
    Link::Pipe& pipe = from_a ? l->a_to_b : l->b_to_a;
    std::uint8_t buf[kReadChunk];
    for (;;) {
      const ssize_t n = ::read(from_a ? l->a : l->b, buf, sizeof(buf));
      if (n == 0) {
        destroy(l, true);  // graceful peer close tears the whole link down
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        destroy(l, true);
        return;
      }
      Link::Chunk chunk;
      chunk.data.assign(buf, buf + n);
      const std::int64_t now = steady_us();
      const std::int64_t delay_us = injected_delay_us(from_a, now);
      if (delay_us > 0) ++stats_.chunks_delayed;
      (from_a ? delay_up_hist_ : delay_down_hist_).record(delay_us);
      // FIFO floor: jitter may not reorder chunks within a direction.
      chunk.release_us = std::max(pipe.last_release_us, now + delay_us);
      pipe.last_release_us = chunk.release_us;
      pipe.buffered += chunk.data.size();
      pipe.delayed.push_back(std::move(chunk));
      if (pipe.buffered >= kMaxBuffered) break;
    }
    if (pipe.buffered >= kMaxBuffered) pipe.src_paused = true;
    update_interest(l);
    flush(l, /*to_a=*/!from_a);
  }

  /// The one-way delay to inject on a chunk read at `now` heading
  /// client->server (`from_a`) or back: per-direction base latency +
  /// per-direction jitter + the storm's current triangular extra.
  std::int64_t injected_delay_us(bool from_a, std::int64_t now) {
    const std::int64_t base_ms =
        from_a ? (opt_.latency_up_ms >= 0 ? opt_.latency_up_ms : opt_.latency_ms)
               : (opt_.latency_down_ms >= 0 ? opt_.latency_down_ms
                                            : opt_.latency_ms);
    const std::int64_t jitter_ms =
        from_a ? (opt_.jitter_up_ms >= 0 ? opt_.jitter_up_ms : opt_.jitter_ms)
               : (opt_.jitter_down_ms >= 0 ? opt_.jitter_down_ms
                                           : opt_.jitter_ms);
    std::int64_t delay_us = base_ms * 1000;
    if (jitter_ms > 0) delay_us += rng_.uniform_int(0, jitter_ms * 1000);
    const std::int64_t extra_us = storm_extra_us(now);
    if (extra_us > 0) {
      delay_us += extra_us;
      if (opt_.storm_jitter_pct > 0) {
        delay_us +=
            rng_.uniform_int(0, extra_us * opt_.storm_jitter_pct / 100);
      }
    }
    return delay_us;
  }

  /// Triangular storm profile: 0 at the window edges, --storm-peak-ms at
  /// the midpoint, linear in between. Outside every window: 0.
  std::int64_t storm_extra_us(std::int64_t now) const {
    const std::int64_t elapsed_ms = (now - start_us_) / 1000;
    for (const Window& w : opt_.storms) {
      if (elapsed_ms < w.start_ms || elapsed_ms >= w.end_ms) continue;
      const std::int64_t span = w.end_ms - w.start_ms;
      const std::int64_t into = elapsed_ms - w.start_ms;
      // ramp in [0, 1] scaled by 2: up to the midpoint then back down.
      const std::int64_t ramp_ms =
          opt_.storm_peak_ms * 2 * std::min(into, span - into) / span;
      return std::min(ramp_ms, opt_.storm_peak_ms) * 1000;
    }
    return 0;
  }

  /// Moves released chunks of the pipe feeding `to_a ? a : b` into the
  /// write buffer (respecting delay schedule and token bucket), writes what
  /// the socket accepts, and arms a timer for the next release.
  void flush(Link* l, bool to_a) {
    if (partitioned_ || l->zombie) return;  // nothing moves during an outage
    Link::Pipe& pipe = to_a ? l->b_to_a : l->a_to_b;
    if (!to_a && !l->b_connected) return;
    const std::int64_t now = steady_us();
    refill_tokens(pipe, now);
    std::int64_t next_wake_us = -1;
    while (!pipe.delayed.empty()) {
      Link::Chunk& chunk = pipe.delayed.front();
      if (chunk.release_us > now) {
        next_wake_us = chunk.release_us - now;
        break;
      }
      if (opt_.throttle_kbps > 0 &&
          pipe.tokens < static_cast<double>(chunk.data.size())) {
        const double deficit =
            static_cast<double>(chunk.data.size()) - pipe.tokens;
        const double rate = static_cast<double>(opt_.throttle_kbps) * 125.0;
        next_wake_us = static_cast<std::int64_t>(deficit / rate * 1e6) + 1;
        break;
      }
      if (opt_.throttle_kbps > 0) {
        pipe.tokens -= static_cast<double>(chunk.data.size());
      }
      pipe.out.insert(pipe.out.end(), chunk.data.begin(), chunk.data.end());
      pipe.delayed.pop_front();
    }
    const std::uint64_t id = l->id;
    write_side(l, to_a);  // may destroy the link on a write error
    if (!alive(id)) return;
    if (next_wake_us >= 0 && !pipe.flush_pending) {
      pipe.flush_pending = true;
      const std::uint64_t id = l->id;
      loop_.run_after(SimTime::micros(next_wake_us), [this, id, to_a] {
        auto it = links_.find(id);
        if (it == links_.end()) return;
        Link* link = it->second.get();
        (to_a ? link->b_to_a : link->a_to_b).flush_pending = false;
        flush(link, to_a);
      });
    }
  }

  void refill_tokens(Link::Pipe& pipe, std::int64_t now) {
    if (opt_.throttle_kbps <= 0) return;
    if (pipe.tokens_at_us == 0) pipe.tokens_at_us = now;
    // 1 kbps = 125 bytes/s.
    const double rate = static_cast<double>(opt_.throttle_kbps) * 125.0;
    pipe.tokens += rate * static_cast<double>(now - pipe.tokens_at_us) / 1e6;
    const double burst = rate / 4;  // at most 250ms worth of burst
    if (pipe.tokens > burst) pipe.tokens = burst;
    pipe.tokens_at_us = now;
  }

  void write_side(Link* l, bool to_a) {
    Link::Pipe& pipe = to_a ? l->b_to_a : l->a_to_b;
    const int fd = to_a ? l->a : l->b;
    while (pipe.out_at < pipe.out.size()) {
      const ssize_t n = ::write(fd, pipe.out.data() + pipe.out_at,
                                pipe.out.size() - pipe.out_at);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        destroy(l, true);
        return;
      }
      pipe.out_at += static_cast<std::size_t>(n);
      pipe.buffered -= static_cast<std::size_t>(n);
      stats_.bytes_forwarded += static_cast<std::uint64_t>(n);
    }
    if (pipe.out_at == pipe.out.size()) {
      pipe.out.clear();
      pipe.out_at = 0;
    }
    if (pipe.src_paused && pipe.buffered < kMaxBuffered / 2) {
      pipe.src_paused = false;
    }
    update_interest(l);
  }

  /// Recomputes both fds' epoll interest from pipe state. Reading from a
  /// socket stops while its pipe is over the buffer cap or a partition is
  /// active; EPOLLOUT is armed only while its write buffer is non-empty.
  void update_interest(Link* l) {
    const bool blackhole = partitioned_ || l->zombie;
    std::uint32_t a_ev = 0;
    if (!blackhole && !l->a_to_b.src_paused) a_ev |= EPOLLIN;
    if (l->b_to_a.out_at < l->b_to_a.out.size()) a_ev |= EPOLLOUT;
    loop_.modify_fd(l->a, a_ev);
    if (l->b >= 0) {
      std::uint32_t b_ev = 0;
      if (!l->b_connected) {
        b_ev = EPOLLIN | EPOLLOUT;  // waiting for connect completion
      } else {
        if (!blackhole && !l->b_to_a.src_paused) b_ev |= EPOLLIN;
        if (l->a_to_b.out_at < l->a_to_b.out.size()) b_ev |= EPOLLOUT;
      }
      loop_.modify_fd(l->b, b_ev);
    }
  }

  // --- faults ---------------------------------------------------------------

  static void hard_reset(int fd) {
    // Arm an RST-on-close: the peer observes ECONNRESET, the signature of a
    // crashed process or middlebox, rather than an orderly FIN.
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }

  void destroy(Link* l, bool reset) {
    if (l->a >= 0) {
      if (reset) hard_reset(l->a);
      loop_.remove_fd(l->a);
      ::close(l->a);
    }
    if (l->b >= 0) {
      if (reset) hard_reset(l->b);
      loop_.remove_fd(l->b);
      ::close(l->b);
    }
    ++stats_.connections_closed;
    links_.erase(l->id);
  }

  void reset_all(const char* why) {
    if (links_.empty()) return;
    std::fprintf(stderr, "timedc-chaos: resetting %zu links (%s)\n",
                 links_.size(), why);
    while (!links_.empty()) {
      ++stats_.resets_injected;
      destroy(links_.begin()->second.get(), true);
    }
  }

  void schedule_random_reset() {
    // Uniform in [0.5, 1.5) x the period, so resets decorrelate from any
    // client-side timer with the same nominal rate.
    const std::int64_t base_us = opt_.reset_every_ms * 1000;
    const std::int64_t delay =
        base_us / 2 + rng_.uniform_int(0, std::max<std::int64_t>(base_us, 1));
    loop_.run_after(SimTime::micros(delay), [this] {
      if (!links_.empty() && !partitioned_) {
        auto it = links_.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng_.uniform_int(
                             0, static_cast<std::int64_t>(links_.size()) - 1)));
        ++stats_.resets_injected;
        std::fprintf(stderr, "timedc-chaos: injecting reset on link %llu\n",
                     static_cast<unsigned long long>(it->second->id));
        destroy(it->second.get(), true);
      }
      schedule_random_reset();
    });
  }

  void partition_start() {
    if (partitioned_) return;
    partitioned_ = true;
    ++stats_.partitions_started;
    std::fprintf(stderr, "timedc-chaos: partition start (%zu links stalled)\n",
                 links_.size());
    // Established links stay open but go silent: stop reading both ends.
    for (auto& [id, l] : links_) update_interest(l.get());
  }

  void partition_heal() {
    if (!partitioned_) return;
    partitioned_ = false;
    ++stats_.partitions_healed;
    // Every stalled link is RST at heal: its endpoints have likely already
    // given up on it (liveness expiry), and a fresh dial over the healthy
    // path is the clean way back.
    reset_all("partition healed");
  }

  const Options& opt_;
  net::EventLoop& loop_;
  Rng rng_;
  ChaosStats stats_;
  Histogram delay_up_hist_;
  Histogram delay_down_hist_;
  std::int64_t start_us_ = 0;
  std::vector<int> listeners_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Link>> links_;
  std::uint64_t next_link_id_ = 1;
  bool partitioned_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  net::EventLoop loop;
  Proxy proxy(opt, loop);
  bool ok = true;
  loop.post([&] {
    if (!proxy.start()) {
      ok = false;
      loop.stop();
      return;
    }
    std::printf("PROXYING");
    for (const RouteSpec& r : opt.routes) {
      std::printf(" %u->%s:%u", r.lport, r.rhost.c_str(), r.rport);
    }
    std::printf("\n");
    std::fflush(stdout);
  });

  std::thread loop_thread([&] { loop.run(); });
  if (opt.duration_s > 0) {
    timespec deadline{opt.duration_s, 0};
    sigtimedwait(&sigs, nullptr, &deadline);
  } else {
    int got = 0;
    sigwait(&sigs, &got);
  }
  loop.post([&] { proxy.shutdown(); });
  loop.stop();
  loop_thread.join();
  if (!ok) return 1;

  const ChaosStats& st = proxy.stats();
  MetricsRegistry reg;
  reg.set_counter("chaos.connections_accepted", st.connections_accepted);
  reg.set_counter("chaos.connections_closed", st.connections_closed);
  reg.set_counter("chaos.dial_failures", st.dial_failures);
  reg.set_counter("chaos.bytes_forwarded", st.bytes_forwarded);
  reg.set_counter("chaos.chunks_delayed", st.chunks_delayed);
  reg.set_counter("chaos.resets_injected", st.resets_injected);
  reg.set_counter("chaos.partitions_started", st.partitions_started);
  reg.set_counter("chaos.partitions_healed", st.partitions_healed);
  reg.set_counter("chaos.accepted_while_partitioned",
                  st.accepted_while_partitioned);
  reg.add_histogram("chaos.delay_up_us", proxy.delay_up_hist());
  reg.add_histogram("chaos.delay_down_us", proxy.delay_down_hist());
  const std::string json = reg.to_json(2);
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    out << json << "\n";
  } else {
    std::cout << json << "\n";
  }
  return 0;
}
