// timedc-server: the lifetime-cache ObjectServer on real TCP ports.
//
// Hosts one or more ObjectServer shards (hash-partitioned object ownership,
// exactly the cluster layout of the sim experiments), each on its own
// 127.0.0.1 port with its own EventLoop thread and TcpTransport. Clients
// route requests to the owning shard by object id (object % shards);
// inter-shard routes exist so a misrouted request is forwarded server-side
// just as in the sim.
//
// Prints "LISTENING <port0> <port1> ..." on stdout once all shards are
// bound — harnesses (tests/net_loopback_test.cpp, ci) parse this line.
// Runs until SIGINT/SIGTERM or --duration-s, then writes a metrics JSON
// snapshot (per-shard ServerStats + transport counters) to --metrics-out.
//
// Usage:
//   timedc-server [--port 0] [--shards 1] [--lease-us 0]
//                 [--push none|invalidate|update] [--duration-s 0]
//                 [--metrics-out FILE]
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_bridge.hpp"
#include "protocol/server.hpp"

namespace {

using namespace timedc;

struct Options {
  std::uint16_t port = 0;  // base port; 0 = ephemeral per shard
  std::size_t shards = 1;
  std::int64_t lease_us = 0;
  PushPolicy push = PushPolicy::kNone;
  std::int64_t duration_s = 0;  // 0 = until SIGINT/SIGTERM
  std::string metrics_out;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--shards N] [--lease-us L]\n"
               "          [--push none|invalidate|update] [--duration-s S]\n"
               "          [--metrics-out FILE]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shards = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--lease-us") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.lease_us = std::atoll(v);
    } else if (arg == "--push") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "none") == 0) {
        opt.push = PushPolicy::kNone;
      } else if (std::strcmp(v, "invalidate") == 0) {
        opt.push = PushPolicy::kInvalidate;
      } else if (std::strcmp(v, "update") == 0) {
        opt.push = PushPolicy::kUpdate;
      } else {
        return false;
      }
    } else if (arg == "--duration-s") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.duration_s = std::atoll(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metrics_out = v;
    } else {
      return false;
    }
  }
  return opt.shards >= 1;
}

struct Shard {
  std::unique_ptr<net::EventLoop> loop;
  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<ObjectServer> server;
  std::thread thread;
  std::uint16_t port = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  // Block the shutdown signals before any thread exists so every loop
  // thread inherits the mask and only main consumes them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  std::vector<SiteId> cluster;
  cluster.reserve(opt.shards);
  for (std::size_t i = 0; i < opt.shards; ++i) {
    cluster.push_back(SiteId{static_cast<std::uint32_t>(i)});
  }

  ServerConfig config;
  config.lease_duration = SimTime::micros(opt.lease_us);

  // Bind every shard first (the loops are not running yet), so ephemeral
  // ports are known before inter-shard routes are added.
  std::vector<Shard> shards(opt.shards);
  for (std::size_t i = 0; i < opt.shards; ++i) {
    Shard& s = shards[i];
    s.loop = std::make_unique<net::EventLoop>();
    s.transport = std::make_unique<net::TcpTransport>(*s.loop);
    const std::uint16_t want =
        opt.port == 0 ? 0 : static_cast<std::uint16_t>(opt.port + i);
    s.port = s.transport->listen(want);
    s.server = std::make_unique<ObjectServer>(
        *s.transport, cluster[i], opt.shards, opt.push, MessageSizes{},
        opt.shards > 1 ? cluster : std::vector<SiteId>{}, config);
    s.server->attach();
  }
  for (std::size_t i = 0; i < opt.shards; ++i) {
    for (std::size_t j = 0; j < opt.shards; ++j) {
      if (i == j) continue;
      shards[i].transport->add_route(cluster[j], "127.0.0.1", shards[j].port);
    }
  }

  for (Shard& s : shards) {
    s.thread = std::thread([&s] { s.loop->run(); });
  }

  std::printf("LISTENING");
  for (const Shard& s : shards) std::printf(" %u", s.port);
  std::printf("\n");
  std::fflush(stdout);

  if (opt.duration_s > 0) {
    timespec deadline{opt.duration_s, 0};
    sigtimedwait(&sigs, nullptr, &deadline);  // early signal also stops us
  } else {
    int got = 0;
    sigwait(&sigs, &got);
  }

  for (Shard& s : shards) {
    net::TcpTransport* transport = s.transport.get();
    s.loop->post([transport] { transport->close_all(); });
    s.loop->stop();
    s.thread.join();
  }

  MetricsRegistry reg;
  for (std::size_t i = 0; i < opt.shards; ++i) {
    const std::string prefix = "server." + std::to_string(i);
    publish_server_stats(reg, prefix, shards[i].server->stats());
    const net::TcpTransportStats& t = shards[i].transport->stats();
    reg.add_counter(prefix + ".net.frames_received", t.frames_received);
    reg.add_counter(prefix + ".net.frames_sent", t.frames_sent);
    reg.add_counter(prefix + ".net.connections_accepted",
                    t.connections_accepted);
    reg.add_counter(prefix + ".net.decode_errors", t.decode_errors);
    reg.add_counter(prefix + ".net.unroutable", t.unroutable);
  }
  const std::string json = reg.to_json(2);
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    out << json << "\n";
  } else {
    std::cout << json << "\n";
  }
  return 0;
}
