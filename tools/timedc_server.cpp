// timedc-server: the lifetime-cache ObjectServer on real TCP ports.
//
// Hosts one or more ObjectServer shards (hash-partitioned object ownership,
// exactly the cluster layout of the sim experiments), each on its own
// 127.0.0.1 port with its own EventLoop thread and TcpTransport. Clients
// route requests to the owning shard by object id (object % cluster size);
// inter-shard and --peer routes exist so a misrouted request is forwarded
// server-side just as in the sim.
//
// Replication topology: --site-base and --cluster-size let several
// timedc-server *processes* form one cluster (each process hosts a
// contiguous band of sites), with --peer SITE:HOST:PORT naming the remote
// members. Peer routes are supervised: reconnect with capped backoff,
// heartbeats, DEAD detection (src/net/tcp_transport.hpp).
//
// Durability: --state-file FILE keeps a per-shard write-ahead log
// (FILE.<site>). Every write decision is appended and flushed before its
// ack leaves; a restarted process replays the log before listening, so
// object values, versions and the write-dedup slots (retransmission acks)
// all survive a kill -9. With leases enabled the restart arms the
// Gray-Cheriton grace window.
//
// Prints "LISTENING <port0> <port1> ..." on stdout once all shards are
// bound — harnesses (tests/net_loopback_test.cpp, ci) parse this line.
// Runs until SIGINT/SIGTERM or --duration-s. Shutdown is a graceful drain:
// stop accepting, release leases (begin_drain), give in-flight replies
// --drain-ms to flush, then close. Metrics JSON (per-shard ServerStats +
// full transport/supervision counters) goes to --metrics-out.
//
// Observability: every shard gets a StatsBoard (answering wire
// kStatsRequest scrapes from timedc-top, locally or from any reactor's
// hub) and an allocation-free flight recorder on its hot path. SIGUSR1
// dumps a live metrics snapshot to --metrics-out (or stdout) without
// stopping the server; --metrics-interval-ms does the same on a timer.
// --flight-dump PREFIX installs the fatal-signal handler that writes
// every recorder to PREFIX.site<id>.fr on SIGSEGV/SIGBUS/SIGFPE/SIGABRT
// (convert with timedc-flight). --segv-after-s is a test hook that
// crashes the process on purpose so CI can validate that path.
//
// Reactor mode: --reactors N runs N shards on ONE shared SO_REUSEPORT port
// (kernel accept sharding + object-hash connection steering) instead of N
// separate ports — the 1M-ops/s serving layout. The LISTENING line repeats
// the shared port once per shard, so harnesses keep their ports[i] -> site
// mapping unchanged.
//
// Usage:
//   timedc-server [--port 0] [--shards 1 | --reactors N] [--lease-us 0]
//                 [--push none|invalidate|update] [--duration-s 0]
//                 [--site-base 0] [--cluster-size N] [--peer SITE:HOST:PORT]
//                 [--state-file FILE] [--drain-ms 200] [--heartbeat-ms 200]
//                 [--metrics-out FILE] [--metrics-interval-ms 0]
//                 [--flight-dump PREFIX] [--flight-capacity 16384]
#include <signal.h>
#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/ring.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_board.hpp"
#include "obs/stats_bridge.hpp"
#include "protocol/server.hpp"

namespace {

using namespace timedc;

struct PeerSpec {
  std::uint32_t site = 0;
  std::string host;
  std::uint16_t port = 0;
};

struct Options {
  std::uint16_t port = 0;  // base port; 0 = ephemeral per shard
  std::size_t shards = 1;
  /// --reactors mode: all shards share ONE SO_REUSEPORT port; the kernel
  /// shards accepts and object-hash connection steering moves each
  /// connection to the shard owning its destination site. The LISTENING
  /// line repeats the shared port once per shard so load generators keep
  /// their ports[i] -> site i mapping.
  bool shared_port = false;
  std::int64_t lease_us = 0;
  PushPolicy push = PushPolicy::kNone;
  std::int64_t duration_s = 0;  // 0 = until SIGINT/SIGTERM
  std::string metrics_out;
  std::uint32_t site_base = 0;
  std::size_t cluster_size = 0;  // 0 = local shards only
  std::vector<PeerSpec> peers;
  std::string state_file;  // WAL base path; empty = no durability
  std::int64_t drain_ms = 200;
  std::int64_t heartbeat_ms = 200;
  std::int64_t metrics_interval_ms = 0;  // 0 = no periodic dump
  std::string flight_dump;               // fatal-dump prefix; empty = off
  std::size_t flight_capacity = 1u << 14;
  std::int64_t segv_after_s = 0;  // test hook: crash on purpose after S s
  /// --cluster: full cluster mode. Ownership moves from modulo partitioning
  /// to the consistent-hash ring, transports wrap/unwrap/relay kForward
  /// frames, membership gossip rides the heartbeats, and non-owners keep
  /// push-fed replicas of peer-owned objects (Section 5.2 propagation).
  bool cluster = false;
  std::uint8_t cluster_push_mode = 1;  // 0 invalidate / 1 update
  std::int64_t replica_ttl_us = 0;     // 0 = uncapped
  /// Self-healing knobs (cluster mode). dead_grace_ms is how long a SUSPECT
  /// member stays in the serving set past the suspicion timeout before
  /// gossip declares it DEAD and ownership rebalances; warm_up makes this
  /// process start WARMING (forward-through + kSliceSync anti-entropy from
  /// every peer) and only flip to SERVING once every donor reports done or
  /// warm_timeout_ms expires.
  std::int64_t dead_grace_ms = 500;
  bool warm_up = false;
  std::int64_t warm_timeout_ms = 3000;
  /// Admission control (see ServerConfig): 0 = gate disabled.
  std::uint32_t admit_rate = 0;
  std::uint32_t admit_burst = 64;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--shards N | --reactors N] [--lease-us L]\n"
               "          [--push none|invalidate|update] [--duration-s S]\n"
               "          [--site-base B] [--cluster-size C]\n"
               "          [--peer SITE:HOST:PORT]... [--state-file FILE]\n"
               "          [--drain-ms MS] [--heartbeat-ms MS]\n"
               "          [--metrics-out FILE] [--metrics-interval-ms MS]\n"
               "          [--flight-dump PREFIX] [--flight-capacity N]\n"
               "          [--cluster] [--cluster-push invalidate|update]\n"
               "          [--replica-ttl-us N] [--dead-grace-ms MS]\n"
               "          [--warm-up] [--warm-timeout-ms MS]\n"
               "          [--admit-rate OPS_PER_S] [--admit-burst N]\n",
               argv0);
  return 2;
}

bool parse_peer(const char* spec, PeerSpec& peer) {
  // SITE:HOST:PORT, HOST a dotted quad.
  const char* c1 = std::strchr(spec, ':');
  if (c1 == nullptr) return false;
  const char* c2 = std::strrchr(spec, ':');
  if (c2 == c1) return false;
  peer.site = static_cast<std::uint32_t>(std::atol(spec));
  peer.host.assign(c1 + 1, c2);
  peer.port = static_cast<std::uint16_t>(std::atoi(c2 + 1));
  return !peer.host.empty() && peer.port != 0;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shards = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--reactors") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shards = static_cast<std::size_t>(std::atol(v));
      opt.shared_port = true;
    } else if (arg == "--lease-us") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.lease_us = std::atoll(v);
    } else if (arg == "--push") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "none") == 0) {
        opt.push = PushPolicy::kNone;
      } else if (std::strcmp(v, "invalidate") == 0) {
        opt.push = PushPolicy::kInvalidate;
      } else if (std::strcmp(v, "update") == 0) {
        opt.push = PushPolicy::kUpdate;
      } else {
        return false;
      }
    } else if (arg == "--duration-s") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.duration_s = std::atoll(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metrics_out = v;
    } else if (arg == "--site-base") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.site_base = static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--cluster-size") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.cluster_size = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--peer") {
      const char* v = next();
      PeerSpec peer;
      if (v == nullptr || !parse_peer(v, peer)) return false;
      opt.peers.push_back(std::move(peer));
    } else if (arg == "--state-file") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.state_file = v;
    } else if (arg == "--drain-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.drain_ms = std::atoll(v);
    } else if (arg == "--heartbeat-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.heartbeat_ms = std::atoll(v);
    } else if (arg == "--metrics-interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metrics_interval_ms = std::atoll(v);
    } else if (arg == "--flight-dump") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.flight_dump = v;
    } else if (arg == "--flight-capacity") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.flight_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--cluster") {
      opt.cluster = true;
    } else if (arg == "--cluster-push") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "invalidate") == 0) {
        opt.cluster_push_mode = 0;
      } else if (std::strcmp(v, "update") == 0) {
        opt.cluster_push_mode = 1;
      } else {
        return false;
      }
    } else if (arg == "--replica-ttl-us") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.replica_ttl_us = std::atoll(v);
    } else if (arg == "--dead-grace-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.dead_grace_ms = std::atoll(v);
    } else if (arg == "--warm-up") {
      opt.warm_up = true;
    } else if (arg == "--warm-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.warm_timeout_ms = std::atoll(v);
    } else if (arg == "--admit-rate") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.admit_rate = static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--admit-burst") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.admit_burst = static_cast<std::uint32_t>(std::atol(v));
    } else if (arg == "--segv-after-s") {
      // Undocumented on purpose: CI uses it to validate the fatal-signal
      // flight dump end to end.
      const char* v = next();
      if (v == nullptr) return false;
      opt.segv_after_s = std::atoll(v);
    } else {
      return false;
    }
  }
  if (opt.cluster_size == 0) opt.cluster_size = opt.shards;
  return opt.shards >= 1 && opt.site_base + opt.shards <= opt.cluster_size +
                                opt.site_base  // no overflow nonsense
         && opt.shards <= opt.cluster_size;
}

// --- write-ahead log --------------------------------------------------------
//
// One text record per write decision:
//   W <object> <value> <version> <alpha_us> <writer> <request_id>
//     <ts_origin> <ts_n> <entry>...
// version 0 records a write that lost the last-writer-wins race (its dedup
// ack must still be reconstructable). Records are flushed before the ack is
// sent; on load, parsing stops at the first torn record (a kill -9 mid-
// append) and the file is rewritten with only the complete prefix.

struct WalRecord {
  WriteRequest request;
  std::uint64_t version = 0;
};

bool parse_wal_line(const std::string& line, WalRecord& rec) {
  if (line.empty() || line[0] != 'W') return false;
  const char* p = line.c_str() + 1;
  char* end = nullptr;
  auto u64 = [&](std::uint64_t& out) {
    out = std::strtoull(p, &end, 10);
    const bool ok = end != p;
    p = end;
    return ok;
  };
  auto i64 = [&](std::int64_t& out) {
    out = std::strtoll(p, &end, 10);
    const bool ok = end != p;
    p = end;
    return ok;
  };
  std::uint64_t object = 0, version = 0, writer = 0, request_id = 0;
  std::uint64_t ts_origin = 0, ts_n = 0;
  std::int64_t value = 0, alpha_us = 0;
  if (!u64(object) || !i64(value) || !u64(version) || !i64(alpha_us) ||
      !u64(writer) || !u64(request_id) || !u64(ts_origin) || !u64(ts_n)) {
    return false;
  }
  if (ts_n > 4096) return false;
  std::vector<std::uint64_t> entries(ts_n);
  for (std::uint64_t k = 0; k < ts_n; ++k) {
    if (!u64(entries[k])) return false;
  }
  rec.request.object = ObjectId{static_cast<std::uint32_t>(object)};
  rec.request.value = Value{value};
  rec.request.client_time = SimTime::micros(alpha_us);
  rec.request.write_ts = ts_n == 0
      ? PlausibleTimestamp{}
      : PlausibleTimestamp(std::move(entries),
                           SiteId{static_cast<std::uint32_t>(ts_origin)});
  rec.request.reply_to = SiteId{static_cast<std::uint32_t>(writer)};
  rec.request.request_id = request_id;
  rec.version = version;
  return true;
}

void append_wal_record(std::FILE* f, const WriteRequest& req,
                       std::uint64_t version) {
  std::fprintf(f, "W %u %lld %llu %lld %u %llu %u %u",
               req.object.value, static_cast<long long>(req.value.value),
               static_cast<unsigned long long>(version),
               static_cast<long long>(req.client_time.as_micros()),
               req.reply_to.value,
               static_cast<unsigned long long>(req.request_id),
               req.write_ts.origin().value,
               static_cast<unsigned>(req.write_ts.num_entries()));
  for (const std::uint64_t e : req.write_ts.entries()) {
    std::fprintf(f, " %llu", static_cast<unsigned long long>(e));
  }
  std::fputc('\n', f);
  // The ack is the durability promise: the record must reach the kernel
  // before the reply can leave (the page cache survives a process kill).
  std::fflush(f);
}

/// Replays FILE into `server`, rewrites FILE to its parseable prefix, and
/// returns the handle left open for appending. Returns the replayed count
/// through `restored`.
std::FILE* load_and_open_wal(const std::string& path, ObjectServer& server,
                             std::size_t& restored) {
  std::vector<std::string> good_lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      WalRecord rec;
      if (!parse_wal_line(line, rec)) break;  // torn tail: stop here
      server.restore_write(rec.request, rec.version);
      good_lines.push_back(line);
    }
  }
  restored = good_lines.size();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "timedc-server: cannot open WAL %s\n", path.c_str());
    std::exit(1);
  }
  for (const std::string& line : good_lines) {
    std::fputs(line.c_str(), f);
    std::fputc('\n', f);
  }
  std::fflush(f);
  return f;
}

/// Per-shard self-healing state. Written only on the shard's loop thread
/// once serving starts (membership / ring-update / slice-sync handlers all
/// run there), so no locks: the serving ring that decides ownership, the
/// donor ring a WARMING shard forwards cold reads through (the previous
/// owners: serving \ {self}), and the per-donor warm-up cursors.
struct ShardCluster {
  cluster::HashRing ring;        // ownership among serving members
  cluster::HashRing donor_ring;  // serving \ {self}: warm-up donors
  std::vector<std::uint32_t> serving;  // sorted serving member sites
  std::vector<std::uint32_t> scratch;  // serving_members() compare buffer
  std::uint64_t ring_epoch = 0;        // 0 = configured baseline ring
  std::uint64_t rebalances = 0;
  struct WarmPeer {
    std::uint32_t site = 0;
    std::uint32_t cursor = 0;  // resume point for the next kSliceSync
    std::uint64_t seq = 0;     // latest request seq; older replies dropped
    bool done = false;
  };
  std::vector<WarmPeer> warm_peers;
  std::uint64_t next_seq = 1;
  std::int64_t warm_deadline_us = 0;  // armed on the first pump tick
};

struct Shard {
  std::unique_ptr<net::EventLoop> loop;
  std::unique_ptr<net::TcpTransport> transport;
  std::unique_ptr<ObjectServer> server;
  std::unique_ptr<StatsBoard> board;
  std::unique_ptr<FlightRecorder> flight;
  std::unique_ptr<cluster::MembershipTable> membership;
  std::unique_ptr<ShardCluster> cs;
  std::shared_ptr<std::function<void()>> warm_pump;  // posted after run()
  std::thread thread;
  std::uint16_t port = 0;
  SiteId site{0};
  std::FILE* wal = nullptr;
};

/// Rebuild both deterministic rings from the sorted serving list. Every
/// member computes the identical ring from the identical list (seedless
/// hash — see cluster/ring.hpp), so ownership agrees bit-for-bit cluster
/// wide without any coordination beyond gossip convergence.
void rebuild_rings(ShardCluster& cs, SiteId self) {
  std::vector<SiteId> members;
  std::vector<SiteId> donors;
  members.reserve(cs.serving.size());
  for (const std::uint32_t site : cs.serving) {
    members.push_back(SiteId{site});
    if (site != self.value) donors.push_back(SiteId{site});
  }
  cs.ring.set_members(members);
  cs.donor_ring.set_members(donors);
}

/// The tentpole: gossip drives the ring. Recompute the serving set from the
/// membership table; when it changed, purge learned paths and queued
/// forwards for members that left (gossip-confirmed dead — queueing more at
/// them only delays the client's retry), rebuild the rings, bump the
/// cross-node ring epoch and stamp it into the transport so stale-epoch
/// forwards bounce back with a kRingUpdate hint.
void maybe_rebalance(cluster::MembershipTable& table, ShardCluster& cs,
                     net::TcpTransport& transport, StatsBoard& board,
                     SiteId self) {
  table.serving_members(cs.scratch);
  if (cs.scratch == cs.serving) return;
  for (const std::uint32_t site : cs.serving) {
    if (site != self.value &&
        std::find(cs.scratch.begin(), cs.scratch.end(), site) ==
            cs.scratch.end()) {
      transport.purge_member(SiteId{site});
    }
  }
  cs.serving.swap(cs.scratch);
  rebuild_rings(cs, self);
  // Monotonic bump: the membership epoch versioned the change and normally
  // dominates, but an adopted kRingUpdate hint may have pushed us ahead.
  cs.ring_epoch = std::max(table.epoch(), cs.ring_epoch + 1);
  ++cs.rebalances;
  transport.set_ring(cs.ring_epoch, cs.serving);
  board.set(StatKey::kClusterRingEpoch,
            static_cast<std::int64_t>(cs.ring_epoch));
  board.set(StatKey::kClusterRebalances,
            static_cast<std::int64_t>(cs.rebalances));
}

/// Per-site board gauges (watchdog age, stage/staleness percentiles, ...):
/// the boards are lock-free, so this is safe whether the loops run or not.
void publish_boards(MetricsRegistry& reg, const std::vector<Shard>& shards) {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  const std::int64_t now_us =
      static_cast<std::int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
  std::vector<StatsEntry> entries;
  for (const Shard& s : shards) {
    entries.clear();
    s.board->collect(now_us, entries);
    const std::string prefix =
        "site." + std::to_string(s.board->site()) + ".stats.";
    for (const StatsEntry& e : entries) {
      const char* name = to_cstring(static_cast<StatKey>(e.key));
      if (name != nullptr) {
        reg.set_gauge(prefix + name, static_cast<double>(e.value));
      }
    }
  }
}

/// Live snapshot while the loops are serving: ServerStats/TcpTransportStats
/// are loop-thread-owned plain structs, so each shard copies its own on its
/// loop. A wedged loop must not wedge the dump — after one second its
/// non-board sections are simply skipped (the boards, which is where the
/// stall watchdog lives, are always readable).
MetricsRegistry build_live_registry(std::vector<Shard>& shards) {
  MetricsRegistry reg;
  for (Shard& s : shards) {
    // Shared, not stack-captured: if the wait below times out, the posted
    // task may still run later and must not touch a dead promise.
    auto prom = std::make_shared<
        std::promise<std::pair<ServerStats, net::TcpTransportStats>>>();
    auto fut = prom->get_future();
    ObjectServer* server = s.server.get();
    net::TcpTransport* transport = s.transport.get();
    s.loop->post([prom, server, transport] {
      prom->set_value({server->stats(), transport->stats()});
    });
    if (fut.wait_for(std::chrono::seconds(1)) != std::future_status::ready) {
      continue;
    }
    const auto snap = fut.get();
    const std::string prefix = "server." + std::to_string(s.site.value);
    publish_server_stats(reg, prefix, snap.first);
    publish_tcp_transport_stats(reg, prefix + ".net", snap.second);
  }
  publish_boards(reg, shards);
  return reg;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  // Block the shutdown signals before any thread exists so every loop
  // thread inherits the mask and only main consumes them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGUSR1);  // live metrics dump, consumed by main
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  // The full cluster (all processes): sites 0..cluster_size-1 own objects
  // by hash partition. This process hosts sites site_base..site_base+shards-1.
  std::vector<SiteId> cluster;
  cluster.reserve(opt.cluster_size);
  for (std::size_t i = 0; i < opt.cluster_size; ++i) {
    cluster.push_back(SiteId{static_cast<std::uint32_t>(i)});
  }

  ServerConfig config;
  config.lease_duration = SimTime::micros(opt.lease_us);
  config.cluster_replicas = opt.cluster;
  config.cluster_push_mode = opt.cluster_push_mode;
  config.replica_ttl = SimTime::micros(opt.replica_ttl_us);
  config.admit_rate_per_s = opt.admit_rate;
  config.admit_burst = opt.admit_burst;

  // Bind every shard first (the loops are not running yet), so ephemeral
  // ports are known before inter-shard routes are added.
  std::vector<Shard> shards(opt.shards);
  StatsHub hub;
  std::size_t total_restored = 0;
  for (std::size_t i = 0; i < opt.shards; ++i) {
    Shard& s = shards[i];
    s.site = SiteId{opt.site_base + static_cast<std::uint32_t>(i)};
    s.loop = std::make_unique<net::EventLoop>();
    s.transport = std::make_unique<net::TcpTransport>(*s.loop);
    s.board = std::make_unique<StatsBoard>(s.site.value);
    s.flight = std::make_unique<FlightRecorder>(s.site.value,
                                                opt.flight_capacity);
    hub.add(s.board.get());
    register_flight_recorder(s.flight.get());
    s.transport->set_stats_board(s.board.get());
    s.transport->set_stats_hub(&hub);
    s.transport->set_flight_recorder(s.flight.get());
    if (opt.shared_port) {
      // All shards on one SO_REUSEPORT port: shard 0 binds (ephemeral if
      // --port 0), the rest join its port.
      const std::uint16_t want = i == 0 ? opt.port : shards[0].port;
      s.port = s.transport->listen(want, /*reuse_port=*/true);
    } else {
      const std::uint16_t want =
          opt.port == 0 ? 0 : static_cast<std::uint16_t>(opt.port + i);
      s.port = s.transport->listen(want);
    }
    s.server = std::make_unique<ObjectServer>(
        *s.transport, s.site, opt.cluster_size, opt.push, MessageSizes{},
        opt.cluster_size > 1 ? cluster : std::vector<SiteId>{}, config);
    if (!opt.state_file.empty()) {
      const std::string path =
          opt.state_file + "." + std::to_string(s.site.value);
      std::size_t restored = 0;
      s.wal = load_and_open_wal(path, *s.server, restored);
      total_restored += restored;
      if (restored > 0) s.server->arm_restart_grace();
      std::FILE* wal = s.wal;
      s.server->set_write_log(
          [wal](const WriteRequest& req, std::uint64_t version) {
            append_wal_record(wal, req, version);
          });
    }
    s.server->set_stats_board(s.board.get());
    s.server->set_flight_recorder(s.flight.get());
    s.server->attach();
    if (opt.admit_rate > 0) {
      // Admission shed replies: kOverloaded over the client's learned
      // return path (or its own connection when it dialed us directly).
      net::TcpTransport* transport = s.transport.get();
      const SiteId self = s.site;
      s.server->set_overloaded_sender(
          [transport, self](SiteId client, ObjectId object,
                            std::uint64_t request_id,
                            std::int64_t retry_after_us) {
            transport->send_overloaded(
                self, client,
                wire::Overloaded{object.value, request_id, retry_after_us});
          });
    }
    if (opt.cluster) {
      s.transport->enable_cluster(s.site);
      s.cs = std::make_unique<ShardCluster>();
      ShardCluster* cs = s.cs.get();
      for (const SiteId member : cluster) cs->serving.push_back(member.value);
      rebuild_rings(*cs, s.site);
      s.transport->set_ring(0, cs->serving);  // epoch 0: baseline, no hints
      s.server->set_ownership(
          [cs](ObjectId object) { return cs->ring.owner_of(object); });
      net::TcpTransport* transport = s.transport.get();
      ObjectServer* server = s.server.get();
      const SiteId self = s.site;
      s.server->set_subscribe_sender(
          [transport, self](SiteId owner, ObjectId object,
                            std::uint8_t mode) {
            transport->send_cacher_subscribe(
                self, owner, wire::CacherSubscribe{object, self, mode});
          });
      s.transport->set_cacher_subscribe_handler(
          [server](SiteId, const wire::CacherSubscribe& cs) {
            server->register_server_cacher(cs.object, cs.cacher, cs.mode);
          });
      // Incarnation from wall time: a restarted process refutes any stale
      // suspicion of itself without persisted membership state.
      timespec now{};
      clock_gettime(CLOCK_REALTIME, &now);
      s.membership = std::make_unique<cluster::MembershipTable>(
          s.site, static_cast<std::uint64_t>(now.tv_sec));
      for (const SiteId member : cluster) {
        if (member != s.site) s.membership->add_configured(member);
      }
      cluster::MembershipTable* table = s.membership.get();
      s.transport->set_membership_provider(
          [table](std::uint64_t& epoch,
                  std::vector<wire::MemberEntry>& out) {
            table->fill_digest(out);
            epoch = table->epoch();
          });
      net::EventLoop* loop = s.loop.get();
      StatsBoard* board = s.board.get();
      FlightRecorder* flight = s.flight.get();
      const std::int64_t suspect_us = 3 * opt.heartbeat_ms * 1000;
      const std::int64_t dead_grace_us = opt.dead_grace_ms * 1000;
      s.transport->set_membership_handler(
          [table, board, flight, loop, transport, cs, self, suspect_us,
           dead_grace_us](SiteId from, std::uint64_t epoch,
                          std::uint64_t /*peer_ring_epoch*/,
                          std::span<const wire::MemberEntry> members) {
            const std::int64_t now_us = loop->now().as_micros();
            bool changed = table->heard_from(from.value, now_us);
            changed |= table->merge(epoch, members, now_us);
            changed |= table->suspect_silent(now_us, suspect_us);
            changed |= table->kill_silent(now_us, suspect_us, dead_grace_us);
            board->set(StatKey::kClusterMembers,
                       static_cast<std::int64_t>(table->alive_count()));
            board->set(StatKey::kClusterEpoch,
                       static_cast<std::int64_t>(table->epoch()));
            if (!changed) return;
            if (flight != nullptr) {
              for (const cluster::Member& m : table->members()) {
                flight->record(TraceEventType::kClusterMember, now_us,
                               kNoObject, 0,
                               static_cast<std::int64_t>(m.site), m.status);
              }
            }
            maybe_rebalance(*table, *cs, *transport, *board, self);
          });
      // A bounced stale forward comes back with the bouncer's ring: adopt
      // any strictly newer view immediately instead of waiting for our own
      // gossip to re-derive it.
      s.transport->set_ring_update_handler(
          [cs, transport, board, self](
              SiteId, std::uint64_t epoch,
              std::span<const std::uint32_t> members) {
            if (epoch <= cs->ring_epoch || members.empty()) return;
            cs->serving.assign(members.begin(), members.end());
            rebuild_rings(*cs, self);
            cs->ring_epoch = epoch;
            ++cs->rebalances;
            transport->set_ring(cs->ring_epoch, cs->serving);
            board->set(StatKey::kClusterRingEpoch,
                       static_cast<std::int64_t>(cs->ring_epoch));
            board->set(StatKey::kClusterRebalances,
                       static_cast<std::int64_t>(cs->rebalances));
          });
      // Donor side of anti-entropy: answer a warming requester with the
      // slice our CURRENT ring assigns to it. Not-ready (rather than an
      // empty done) while our view lags the requester's epoch or has not
      // yet re-admitted it to the serving set — an empty "done" would end
      // its warm-up with nothing.
      s.transport->set_slice_sync_server(
          [server, cs](SiteId requester, const wire::SliceSyncRequest& rq,
                       std::vector<wire::SliceRecord>& out,
                       std::uint32_t& next_cursor) -> std::uint8_t {
            const bool known =
                std::find(cs->serving.begin(), cs->serving.end(),
                          requester.value) != cs->serving.end();
            if (rq.ring_epoch > cs->ring_epoch || !known) {
              return wire::kSliceNotReady;
            }
            const bool done = server->collect_slice(
                requester, rq.cursor, rq.max_records, rq.if_newer_than_us,
                out, next_cursor);
            return done ? wire::kSliceDone : wire::kSliceMore;
          });
      // A WARMING owner answers writes locally but forwards reads it has no
      // copy of through the previous owner, flagged serve-here.
      s.server->set_warm_miss_forwarder(
          [transport, cs, self](ObjectId object, const Message& m) {
            if (cs->donor_ring.empty()) return false;
            const SiteId donor = cs->donor_ring.owner_of(object);
            if (donor == self) return false;
            return transport->forward_serve_here(self, donor, m);
          });
      if (opt.warm_up) {
        // Requester side: WARMING until every peer has streamed the slice
        // it holds for us (resumable cursors, not-ready retried on the pump
        // cadence) or the deadline passes. WAL replay already ran, so
        // install keeps whichever copy has the newer write time.
        for (const SiteId member : cluster) {
          if (member != s.site) {
            cs->warm_peers.push_back(
                ShardCluster::WarmPeer{member.value, 0, 0, false});
          }
        }
        // A cluster of one has nobody to warm from.
        if (!cs->warm_peers.empty()) s.server->begin_warming();
        auto warm_send = [transport, cs, self](ShardCluster::WarmPeer& p) {
          p.seq = cs->next_seq++;
          wire::SliceSyncRequest rq;
          rq.seq = p.seq;
          rq.ring_epoch = cs->ring_epoch;
          rq.cursor = p.cursor;
          rq.max_records = wire::kMaxSliceRecords;
          rq.if_newer_than_us = -1;  // everything, even write-time-zero
          transport->send_slice_sync(self, SiteId{p.site}, rq);
        };
        auto warm_finish = [server, self](const char* why) {
          if (!server->warming()) return;
          server->finish_warming();
          std::printf("WARMED %u %s\n", self.value, why);
          std::fflush(stdout);
        };
        s.transport->set_slice_sync_reply_handler(
            [server, cs, warm_send, warm_finish](
                SiteId donor, std::uint64_t seq, std::uint64_t /*epoch*/,
                std::uint8_t status, std::uint32_t next_cursor,
                std::span<const wire::SliceRecord> records) {
              if (!server->warming()) return;
              for (ShardCluster::WarmPeer& p : cs->warm_peers) {
                if (p.site != donor.value || p.seq != seq || p.done) continue;
                for (const wire::SliceRecord& rec : records) {
                  server->install_sync_record(rec);
                }
                if (status == wire::kSliceNotReady) return;  // pump retries
                if (status == wire::kSliceMore) {
                  p.cursor = next_cursor;
                  warm_send(p);
                  return;
                }
                p.done = true;
                bool all = true;
                for (const ShardCluster::WarmPeer& q : cs->warm_peers) {
                  all &= q.done;
                }
                if (all) warm_finish("synced");
                return;
              }
            });
        const std::int64_t warm_timeout_us = opt.warm_timeout_ms * 1000;
        s.warm_pump = std::make_shared<std::function<void()>>();
        auto pump = s.warm_pump;
        *pump = [loop, server, cs, warm_send, warm_finish, warm_timeout_us,
                 pump]() {
          if (!server->warming()) return;
          const std::int64_t now_us = loop->now().as_micros();
          if (cs->warm_deadline_us == 0) {
            cs->warm_deadline_us = now_us + warm_timeout_us;
          }
          if (now_us >= cs->warm_deadline_us) {
            warm_finish("timeout");
            return;
          }
          // Re-send for every unfinished peer: loss, a dead route, or a
          // not-ready donor all heal here (the seq filter drops whatever
          // stale reply the resend obsoletes).
          for (ShardCluster::WarmPeer& p : cs->warm_peers) {
            if (!p.done) warm_send(p);
          }
          loop->run_after(SimTime::millis(200), [pump] { (*pump)(); });
        };
      }
      s.board->set(StatKey::kClusterMembers,
                   static_cast<std::int64_t>(s.membership->alive_count()));
      s.board->set(StatKey::kClusterEpoch,
                   static_cast<std::int64_t>(s.membership->epoch()));
    }
  }
  if (!opt.flight_dump.empty()) install_fatal_dump(opt.flight_dump.c_str());
  // Shared-port mode: a new connection lands on whichever shard the kernel
  // picked; its first protocol frame names the destination site, and if a
  // different local shard owns that site the fd is steered there. Sites
  // outside this process (clients, --peer members) stay where they landed.
  if (opt.shared_port && opt.shards > 1) {
    std::vector<net::TcpTransport*> local;
    local.reserve(opt.shards);
    for (Shard& s : shards) local.push_back(s.transport.get());
    const std::uint32_t base = opt.site_base;
    const std::uint32_t count = static_cast<std::uint32_t>(opt.shards);
    for (Shard& s : shards) {
      s.transport->set_steering(
          [local, base, count](SiteId to) -> net::TcpTransport* {
            if (to.value < base || to.value >= base + count) return nullptr;
            return local[to.value - base];
          });
    }
  }
  // Routes to the other local shards and to every --peer process, all
  // supervised: a crashed/partitioned member is re-dialed with backoff and
  // detected DEAD by heartbeat silence.
  for (std::size_t i = 0; i < opt.shards; ++i) {
    bool any_route = false;
    for (std::size_t j = 0; j < opt.shards; ++j) {
      if (i == j) continue;
      shards[i].transport->add_route(shards[j].site, "127.0.0.1",
                                     shards[j].port);
      any_route = true;
    }
    for (const PeerSpec& peer : opt.peers) {
      shards[i].transport->add_route(SiteId{peer.site}, peer.host, peer.port);
      any_route = true;
    }
    if (any_route) {
      net::SupervisionConfig sup;
      sup.enabled = true;
      sup.heartbeat_interval = SimTime::millis(opt.heartbeat_ms);
      sup.seed = 0x5eed0000 + shards[i].site.value;
      shards[i].transport->set_supervision(sup);
    }
  }

  if (total_restored > 0) {
    std::fprintf(stderr, "timedc-server: restored %zu WAL records\n",
                 total_restored);
  }

  for (Shard& s : shards) {
    s.thread = std::thread([&s] { s.loop->run(); });
  }

  // Cluster mode: dial every routed member eagerly so heartbeats (and the
  // membership gossip riding them) flow before any request traffic.
  if (opt.cluster) {
    for (std::size_t i = 0; i < opt.shards; ++i) {
      std::vector<SiteId> targets;
      for (std::size_t j = 0; j < opt.shards; ++j) {
        if (i != j) targets.push_back(shards[j].site);
      }
      for (const PeerSpec& peer : opt.peers) {
        targets.push_back(SiteId{peer.site});
      }
      net::TcpTransport* transport = shards[i].transport.get();
      shards[i].loop->post([transport, targets]() {
        for (const SiteId t : targets) transport->prime_supervised(t);
      });
      if (shards[i].warm_pump) {
        shards[i].loop->post([pump = shards[i].warm_pump] { (*pump)(); });
      }
    }
  }

  std::printf("LISTENING");
  for (const Shard& s : shards) std::printf(" %u", s.port);
  std::printf("\n");
  std::fflush(stdout);

  // Main wait loop: multiplexes shutdown signals with the live-dump
  // deadlines (SIGUSR1 is edge-triggered by the operator, --metrics-
  // interval-ms and --segv-after-s by the clock, --duration-s ends it).
  const auto t_start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&t_start]() -> std::int64_t {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t_start)
        .count();
  };
  const auto write_live_metrics = [&](const char* why) {
    const std::string json = build_live_registry(shards).to_json(2);
    if (!opt.metrics_out.empty()) {
      std::ofstream out(opt.metrics_out);
      out << json << "\n";
    } else {
      std::cout << json << "\n" << std::flush;
    }
    std::fprintf(stderr, "timedc-server: metrics dump (%s)\n", why);
  };
  std::int64_t next_dump_ms =
      opt.metrics_interval_ms > 0 ? opt.metrics_interval_ms : -1;
  const std::int64_t end_ms = opt.duration_s > 0 ? opt.duration_s * 1000 : -1;
  const std::int64_t segv_ms =
      opt.segv_after_s > 0 ? opt.segv_after_s * 1000 : -1;
  for (;;) {
    // Earliest pending deadline; -1 = none, wait for a signal forever.
    std::int64_t wake_ms = end_ms;
    if (next_dump_ms >= 0 && (wake_ms < 0 || next_dump_ms < wake_ms)) {
      wake_ms = next_dump_ms;
    }
    if (segv_ms >= 0 && (wake_ms < 0 || segv_ms < wake_ms)) wake_ms = segv_ms;
    int got = 0;
    if (wake_ms < 0) {
      sigwait(&sigs, &got);
    } else {
      const std::int64_t rel =
          std::max<std::int64_t>(0, wake_ms - elapsed_ms());
      timespec ts{rel / 1000, (rel % 1000) * 1000000};
      got = sigtimedwait(&sigs, nullptr, &ts);  // -1 = deadline reached
    }
    if (got == SIGUSR1) {
      write_live_metrics("SIGUSR1");
      continue;
    }
    if (got == SIGINT || got == SIGTERM) break;
    const std::int64_t now_ms = elapsed_ms();
    if (segv_ms >= 0 && now_ms >= segv_ms) {
      // Deliberate crash: CI validates that the fatal-signal handler dumps
      // every flight recorder before the default action kills us.
      std::fflush(nullptr);
      ::raise(SIGSEGV);
    }
    if (next_dump_ms >= 0 && now_ms >= next_dump_ms) {
      write_live_metrics("interval");
      next_dump_ms += opt.metrics_interval_ms;
    }
    if (end_ms >= 0 && now_ms >= end_ms) break;
  }

  // Graceful drain: stop accepting and release leases on every shard, let
  // in-flight replies flush for --drain-ms, then close the sockets.
  for (Shard& s : shards) {
    net::TcpTransport* transport = s.transport.get();
    ObjectServer* server = s.server.get();
    s.loop->post([transport, server] {
      transport->stop_listening();
      server->begin_drain();
    });
  }
  if (opt.drain_ms > 0) {
    timespec drain{opt.drain_ms / 1000, (opt.drain_ms % 1000) * 1000000};
    nanosleep(&drain, nullptr);
  }
  for (Shard& s : shards) {
    net::TcpTransport* transport = s.transport.get();
    s.loop->post([transport] { transport->close_all(); });
    s.loop->stop();
    s.thread.join();
    if (s.wal != nullptr) std::fclose(s.wal);
    unregister_flight_recorder(s.flight.get());
  }

  MetricsRegistry reg;
  for (std::size_t i = 0; i < opt.shards; ++i) {
    const std::string prefix = "server." + std::to_string(shards[i].site.value);
    publish_server_stats(reg, prefix, shards[i].server->stats());
    publish_tcp_transport_stats(reg, prefix + ".net",
                                shards[i].transport->stats());
  }
  publish_boards(reg, shards);
  const std::string json = reg.to_json(2);
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    out << json << "\n";
  } else {
    std::cout << json << "\n";
  }
  return 0;
}
