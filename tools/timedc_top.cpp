// timedc-top: live wire-level introspection of a running timedc-server.
//
// Connects one plain blocking TCP socket to any port of a serving process
// and polls it with kStatsRequest frames (codec version 4). The answering
// reactor replies from its lock-free StatsHub snapshot WITHOUT involving
// the protocol layer or any other reactor's thread, so polling a loaded —
// or even a wedged — server never perturbs the serving path: the stall
// watchdog gauge (stats.last_tick_age_us) is precisely the value that
// keeps growing when a reactor stops ticking.
//
// Modes:
//   (default)      full-screen refresh every --interval-ms: one row per
//                  reactor board with throughput deltas, stage p99s, the
//                  staleness percentiles and the watchdog age.
//   --once         poll once, print, exit (scriptable).
//   --json         machine-readable dump of every (site, key, value) row,
//                  keys named by StatKey::to_cstring. Implies no screen
//                  handling; combine with --once for CI scrapes.
//   --prom         Prometheus text exposition (one gauge per row) via
//                  obs::MetricsRegistry, for textfile-collector scraping.
//   --site S       target one reactor's board instead of kAllSites.
//
// Usage:
//   timedc-top --port P [--host 127.0.0.1] [--site S] [--interval-ms 1000]
//              [--once] [--json | --prom] [--timeout-ms 2000]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_board.hpp"

namespace {

using namespace timedc;

/// Poller's own site id in the (from, to) routing header. Any value works —
/// the reply travels back over the same connection — but staying far above
/// every shard/client band keeps the server's logs unambiguous.
constexpr std::uint32_t kPollerSite = 0xfffffff0u;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t target_site = wire::kAllSites;
  std::int64_t interval_ms = 1000;
  std::int64_t timeout_ms = 2000;
  bool once = false;
  bool json = false;
  bool prom = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--site S] [--interval-ms MS]\n"
               "          [--once] [--json | --prom] [--timeout-ms MS]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host") {
      if ((v = next()) == nullptr) return false;
      opt.host = v;
    } else if (arg == "--port") {
      if ((v = next()) == nullptr) return false;
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--site") {
      if ((v = next()) == nullptr) return false;
      opt.target_site = static_cast<std::uint32_t>(std::atoll(v));
    } else if (arg == "--interval-ms") {
      if ((v = next()) == nullptr) return false;
      opt.interval_ms = std::atoll(v);
    } else if (arg == "--timeout-ms") {
      if ((v = next()) == nullptr) return false;
      opt.timeout_ms = std::atoll(v);
    } else if (arg == "--once") {
      opt.once = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--prom") {
      opt.prom = true;
    } else {
      return false;
    }
  }
  return opt.port != 0 && opt.interval_ms > 0 && opt.timeout_ms > 0 &&
         !(opt.json && opt.prom);
}

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// One request/reply exchange: send kStatsRequest(seq), read frames until
/// the matching kStatsReply (skipping anything else — heartbeats from a
/// supervised peer, late replies) or until timeout_ms of socket silence.
bool poll_stats(int fd, std::uint64_t seq, std::uint32_t target,
                std::int64_t timeout_ms, std::vector<std::uint8_t>& rxbuf,
                std::vector<wire::StatsRow>& rows) {
  std::vector<std::uint8_t> tx;
  wire::StatsRequest rq;
  rq.seq = seq;
  rq.target_site = target;
  wire::encode_stats_request_frame(SiteId{kPollerSite}, SiteId{0}, rq, tx);
  if (!send_all(fd, tx.data(), tx.size())) return false;

  for (;;) {
    // Drain complete frames already buffered.
    for (;;) {
      wire::DecodedFrame frame = wire::decode_frame(rxbuf);
      if (frame.status == wire::DecodeStatus::kNeedMore) break;
      if (!frame.ok()) return false;  // corrupt stream; reconnect upstream
      rxbuf.erase(rxbuf.begin(),
                  rxbuf.begin() + static_cast<std::ptrdiff_t>(frame.consumed));
      if (frame.is_stats_reply && frame.stats_seq == seq) {
        rows = std::move(frame.stats_rows);
        return true;
      }
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) return false;  // timeout or error
    std::uint8_t chunk[4096];
    const ssize_t r = ::read(fd, chunk, sizeof chunk);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;  // peer closed
    }
    rxbuf.insert(rxbuf.end(), chunk, chunk + r);
  }
}

using BoardMap = std::map<std::uint32_t, std::map<std::uint16_t, std::int64_t>>;

BoardMap group_rows(const std::vector<wire::StatsRow>& rows) {
  BoardMap boards;
  for (const wire::StatsRow& row : rows) boards[row.site][row.key] = row.value;
  return boards;
}

std::int64_t val(const std::map<std::uint16_t, std::int64_t>& board,
                 StatKey key) {
  const auto it = board.find(static_cast<std::uint16_t>(key));
  return it == board.end() ? 0 : it->second;
}

void print_json(const BoardMap& boards, std::uint64_t seq) {
  std::printf("{\"seq\":%" PRIu64 ",\"sites\":[", seq);
  bool first_site = true;
  for (const auto& [site, stats] : boards) {
    std::printf("%s{\"site\":%u,\"stats\":{", first_site ? "" : ",", site);
    first_site = false;
    bool first_key = true;
    for (const auto& [key, value] : stats) {
      const char* name = to_cstring(static_cast<StatKey>(key));
      if (name == nullptr) continue;
      std::printf("%s\"%s\":%" PRId64, first_key ? "" : ",", name, value);
      first_key = false;
    }
    std::printf("}}");
  }
  std::printf("]}\n");
}

void print_prom(const BoardMap& boards) {
  MetricsRegistry reg;
  for (const auto& [site, stats] : boards) {
    const std::string prefix = "timedc.site." + std::to_string(site) + ".";
    for (const auto& [key, value] : stats) {
      const char* name = to_cstring(static_cast<StatKey>(key));
      if (name == nullptr) continue;
      reg.set_gauge(prefix + name, static_cast<double>(value));
    }
  }
  std::fputs(reg.to_prometheus().c_str(), stdout);
}

/// Interactive table. `prev`/`prev_ms` feed the ops/s column (delta over
/// the previous poll); pass prev_ms < 0 on the first frame. DROPS counts
/// frames shed at the transport (full SendQueue or dead peer), OVFL the
/// flight-recorder ring overwrites, FWD/PUSH/MEMB the cluster layer
/// (forwards out+in, owner pushes, alive member count), RBAL the ring
/// rebalances this process has applied, WARM the slice records installed
/// by anti-entropy warm-up, SHED the operations the admission gate
/// refused or deferred (reads shed + writes deferred) — all zero on a
/// standalone server.
void print_table(const BoardMap& boards, const BoardMap& prev,
                 std::int64_t dt_ms, bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[H\x1b[2J", stdout);
  std::printf("%8s %12s %10s %10s %10s %6s %7s %6s %6s %7s %7s %5s %5s %7s "
              "%6s %8s %9s %9s %9s %9s %9s\n",
              "SITE", "OPS", "OPS/S", "FRAMES_IN", "FRAMES_OUT", "CONN",
              "SLOW", "DROPS", "OVFL", "FWD", "PUSH", "MEMB", "RBAL", "WARM",
              "SHED", "AGE_MS", "DEC_P99", "APPLY_P99", "FLUSH_P99",
              "STALE_P50", "STALE_P99");
  for (const auto& [site, stats] : boards) {
    const std::int64_t ops = val(stats, StatKey::kOpsApplied);
    double ops_per_s = 0;
    const auto p = prev.find(site);
    if (p != prev.end() && dt_ms > 0) {
      ops_per_s = static_cast<double>(ops - val(p->second,
                                                StatKey::kOpsApplied)) *
                  1000.0 / static_cast<double>(dt_ms);
    }
    std::printf("%8u %12" PRId64 " %10.0f %10" PRId64 " %10" PRId64
                " %6" PRId64 " %7" PRId64 " %6" PRId64 " %6" PRId64
                " %7" PRId64 " %7" PRId64 " %5" PRId64 " %5" PRId64
                " %7" PRId64 " %6" PRId64 " %8.1f %9" PRId64
                " %9" PRId64 " %9" PRId64 " %9" PRId64 " %9" PRId64 "\n",
                site, ops, ops_per_s, val(stats, StatKey::kFramesIn),
                val(stats, StatKey::kFramesOut),
                val(stats, StatKey::kConnections),
                val(stats, StatKey::kSlowTicks),
                val(stats, StatKey::kFramesDropped),
                val(stats, StatKey::kFlightOverwritten),
                val(stats, StatKey::kClusterForwardsOut) +
                    val(stats, StatKey::kClusterForwardsIn),
                val(stats, StatKey::kClusterPushes),
                val(stats, StatKey::kClusterMembers),
                val(stats, StatKey::kClusterRebalances),
                val(stats, StatKey::kClusterSlicesSynced),
                val(stats, StatKey::kClusterReadsShed) +
                    val(stats, StatKey::kClusterWritesDeferred),
                static_cast<double>(val(stats, StatKey::kLastTickAgeUs)) /
                    1000.0,
                val(stats, StatKey::kStageDecodeP99Us),
                val(stats, StatKey::kStageApplyP99Us),
                val(stats, StatKey::kStageFlushP99Us),
                val(stats, StatKey::kStalenessP50Us),
                val(stats, StatKey::kStalenessP99Us));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);

  const int fd = connect_to(opt.host, opt.port);
  if (fd < 0) {
    std::fprintf(stderr, "timedc-top: cannot connect to %s:%u\n",
                 opt.host.c_str(), opt.port);
    return 1;
  }

  std::vector<std::uint8_t> rxbuf;
  std::vector<wire::StatsRow> rows;
  BoardMap prev;
  std::uint64_t seq = 0;
  for (;;) {
    ++seq;
    if (!poll_stats(fd, seq, opt.target_site, opt.timeout_ms, rxbuf, rows)) {
      std::fprintf(stderr, "timedc-top: poll %" PRIu64 " failed (timeout, "
                   "closed or corrupt stream)\n", seq);
      ::close(fd);
      return 1;
    }
    const BoardMap boards = group_rows(rows);
    if (boards.empty()) {
      std::fprintf(stderr, "timedc-top: empty reply (no boards registered "
                   "or unknown --site)\n");
      ::close(fd);
      return 1;
    }
    if (opt.json) {
      print_json(boards, seq);
    } else if (opt.prom) {
      print_prom(boards);
    } else {
      print_table(boards, prev, seq > 1 ? opt.interval_ms : -1,
                  /*clear_screen=*/!opt.once);
    }
    if (opt.once) break;
    prev = boards;
    timespec ts{opt.interval_ms / 1000, (opt.interval_ms % 1000) * 1000000};
    nanosleep(&ts, nullptr);
  }
  ::close(fd);
  return 0;
}
