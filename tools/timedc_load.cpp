// timedc-load: multi-threaded load generator for timedc-server.
//
// Each worker thread owns one EventLoop + TcpTransport and drives a set of
// TimedSerialCache (TSC, Section 5) clients. By default that is a closed
// loop: every client keeps exactly one operation in flight, issuing the
// next as soon as the previous completes (--pipeline N raises the in-flight
// bound). --open-loop RATE switches to a fixed arrival schedule at RATE
// aggregate ops/s, with latency charged from each op's INTENDED arrival
// time so a slow server cannot slow the offered load and hide its own tail
// (coordinated omission). The mix is --write-pct writes over a
// Zipf-distributed object population, with the timeliness bound --delta-us
// configuring the caches' Context advance (rule 3).
//
// Reporting: throughput (ops/s), exact p50/p99/max operation latency, and
// the Def-1 per-read staleness histogram computed from the captured global
// history — the same `per_read_staleness` feed the sim experiments use —
// all exported through obs::MetricsRegistry JSON (--metrics-out). The
// captured history itself can be stored with --history-out in the
// timedc-check trace format, closing the loop: a real-socket run is
// checkable against TSC exactly like a simulated one.
//
// History conventions match src/protocol/experiment.cpp: writes are
// recorded at their ISSUE time (the client_time the server orders by),
// reads at their COMPLETION time; equal-microsecond collisions per site are
// bumped by +1us to satisfy the History invariant.
//
// Reliability: --max-attempts > 1 turns on the client retry layer
// (exponential backoff, deterministic jitter, failover across every shard
// when the current target keeps timing out or its connection is DEAD).
// Operations the retry layer abandons are excluded from the history and the
// staleness oracle and counted in load.ops_abandoned; --max-abandoned gates
// the exit status on that count. SIGINT/SIGTERM stop the workers early but
// still flush --metrics-out/--history-out and print the summary, so an
// interrupted run keeps its data.
//
// Clocks: by default every worker reads the loop's monotonic clock (perfect
// synchronization). --clock-offset-us O skews worker w's hardware clock by
// +O/-O microseconds (sign alternates per worker, so two workers disagree by
// 2*O); --clock-drift-ppm adds a matching rate error. --time-sync-ms MS runs
// one Cristian-style TimeSyncClient per worker against shard 0's transport
// time service and stamps the history with the CORRECTED clock, recording
// the measured pairwise skew bound (2x the largest one-sided epsilon any
// worker observed) as the trace's `eps` directive. --adaptive-delta
// (requires --time-sync-ms) makes every cache shed measured epsilon + RTT
// margin from its Delta budget before each operation (never exceeding the
// configured --delta-us). --trace-out captures the merged client-side event
// stream (op/cache/clock.sync/clock.eps/delta.adapt) as JSONL.
//
// Usage:
//   timedc-load --ports p0[,p1,...] [--threads 2] [--clients 8]
//               [--duration-s 5 | --ops N] [--write-pct 10] [--objects 64]
//               [--zipf 0.9] [--delta-us 20000] [--think-us 0] [--seed 42]
//               [--open-loop RATE] [--pipeline N]
//               [--max-attempts 1] [--retry-base-ms 0] [--max-abandoned -1]
//               [--heartbeat-ms 0] [--clock-offset-us 0] [--clock-drift-ppm 0]
//               [--time-sync-ms 0] [--adaptive-delta] [--trace-out FILE]
//               [--metrics-out FILE] [--history-out FILE]
//               [--min-ops-per-sec X] [--cluster] [--misroute-pct P]
//
// Cluster mode (--cluster): each operation is dispatched to the endpoint
// that OWNS the object under the same deterministic consistent-hash ring
// the servers build (ports[i] serves site i), and --misroute-pct sends a
// deliberate fraction to a wrong endpoint to exercise server-to-server
// forwarding. Client identities are structured as one 4096-wide sub-band
// per endpoint inside the pid-derived super-band, so repeat runs cannot
// collide on (site, request_id) dedup keys anywhere in the group.
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <deque>
#include <optional>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "cluster/ring.hpp"
#include "common/rng.hpp"
#include "core/history.hpp"
#include "core/timed.hpp"
#include "core/trace_io.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"
#include "net/time_sync.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_bridge.hpp"
#include "obs/trace.hpp"
#include "protocol/timed_serial_cache.hpp"

namespace {

using namespace timedc;

// Client network site ids. Shard sites are 0..S-1 and must not collide;
// beyond that, a fresh invocation must not RE-USE site ids a previous run
// presented to the same server: write dedup is keyed by (site, request_id),
// so a new process restarting request ids at 1 under an old identity looks
// like a stream of stale retransmissions and is silently dropped. With
// clustering the stakes rise: forwarding propagates the dedup key to the
// OWNER, so "point the rerun at a different server" no longer yields a
// fresh dedup table — any endpoint of the group may have seen the key.
//
// The identity space is therefore structured in two levels. Each run
// claims a pid-derived SUPER-BAND (--site-base overrides it, e.g. to make
// captured traces reproducible byte-for-byte); inside the super-band every
// ENDPOINT owns a deterministic 4096-wide sub-band, and a client is
// numbered within its home endpoint's sub-band (home = global index mod
// endpoints). The layout is a pure function of (site_base, endpoints,
// threads, clients): repeat runs with --site-base fixed reproduce the
// exact same identities, auto-derived runs land in disjoint super-bands,
// and two invocations sharing a super-band but targeting different
// endpoint lists still cannot cross sub-band boundaries.
constexpr std::uint32_t kClientSiteBase = 1000;
constexpr std::uint32_t kEndpointBand = 4096;   // identities per endpoint
constexpr std::uint32_t kMaxEndpointBands = 16;  // sub-bands per super-band

std::uint32_t auto_site_base() {
  return kClientSiteBase +
         (static_cast<std::uint32_t>(::getpid()) & 0xFFFF) *
             (kEndpointBand * kMaxEndpointBands);
}

/// Network identity of global client `global`: its home endpoint's
/// sub-band, indexed by its slot within that endpoint's client population.
std::uint32_t client_site(std::uint32_t site_base, std::size_t global,
                          std::size_t num_endpoints) {
  const auto home = static_cast<std::uint32_t>(global % num_endpoints);
  const auto slot = static_cast<std::uint32_t>(global / num_endpoints);
  return site_base + home * kEndpointBand + slot;
}

struct Options {
  std::vector<std::uint16_t> ports;
  std::size_t threads = 2;
  std::size_t clients = 8;  // per thread
  std::int64_t duration_s = 5;
  std::uint64_t ops = 0;  // per client; 0 = run for duration
  int write_pct = 10;
  std::size_t objects = 64;
  // First object id. A capture run (--history-out) meant for an EXACT
  // timedc-check verdict must target objects no other client ever wrote:
  // a read returning an untraced writer's value has no writer inside the
  // captured history and can serialize nowhere. Point --object-base at a
  // fresh range (or use a fresh server) for checkable traces.
  std::uint32_t object_base = 0;
  double zipf = 0.9;
  std::int64_t delta_us = 20000;
  std::int64_t think_us = 0;
  std::uint64_t seed = 42;
  std::uint32_t site_base = 0;  // 0 = derive from pid (auto_site_base)
  // Cluster mode: route each operation to the endpoint that OWNS the
  // object under the same deterministic consistent-hash ring the servers
  // build from their --cluster list (sites 0..S-1), instead of the legacy
  // object-id modulo. --misroute-pct deliberately sends that fraction of
  // operations to a WRONG endpoint, exercising the server-to-server
  // forwarding path under load.
  bool cluster = false;
  int misroute_pct = 0;
  // Reliability. max_attempts 1 keeps the seed behavior (one send, wait
  // forever). heartbeat_ms 0 = auto: connection supervision (reconnect,
  // heartbeats, DEAD detection) is enabled at 200ms exactly when retries
  // are on — failover needs peer_reachable() to mean something.
  int max_attempts = 1;
  std::int64_t retry_base_ms = 0;  // 0 = derive from the latency bound
  std::int64_t max_abandoned = -1;  // >= 0: exit 1 when exceeded
  std::int64_t heartbeat_ms = 0;
  // Clock skew injection + synchronization (see the header comment).
  std::int64_t clock_offset_us = 0;  // worker w gets +/-offset, alternating
  double clock_drift_ppm = 0;
  std::int64_t time_sync_ms = 0;  // 0 = no sync; > 0 = resync period
  bool adaptive_delta = false;    // requires time_sync_ms > 0
  std::string trace_out;
  std::string metrics_out;
  std::string history_out;
  double min_ops_per_sec = 0;
  /// Open-loop mode: arrivals come on a fixed schedule at this aggregate
  /// rate (ops/s across all threads) instead of as fast as completions
  /// allow, and latency is measured from the INTENDED arrival time — so a
  /// stalled server accrues the queueing delay it caused instead of
  /// silently slowing the arrival schedule (coordinated omission). 0 keeps
  /// the closed loop.
  double open_loop = 0;
  /// Bound on concurrently outstanding operations per worker (and thus per
  /// connection). 0 = one per client, the closed-loop default. In open-
  /// loop mode arrivals beyond the bound queue in a backlog, charged from
  /// their intended time.
  std::size_t pipeline = 0;

  bool supervised() const { return heartbeat_ms > 0 || max_attempts > 1; }
  std::int64_t effective_heartbeat_ms() const {
    return heartbeat_ms > 0 ? heartbeat_ms : 200;
  }
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --ports p0[,p1,...] [--threads T] [--clients C]\n"
      "          [--duration-s S | --ops N] [--write-pct P] [--objects K]\n"
      "          [--object-base B]\n"
      "          [--zipf E] [--delta-us D] [--think-us U] [--seed S]\n"
      "          [--max-attempts A] [--retry-base-ms MS] [--max-abandoned N]\n"
      "          [--heartbeat-ms MS]\n"
      "          [--clock-offset-us O] [--clock-drift-ppm D]\n"
      "          [--time-sync-ms MS] [--adaptive-delta] [--trace-out FILE]\n"
      "          [--site-base B] [--metrics-out FILE] [--history-out FILE]\n"
      "          [--min-ops-per-sec X] [--open-loop RATE] [--pipeline N]\n"
      "          [--cluster] [--misroute-pct P]\n",
      argv0);
  return 2;
}

bool parse_ports(const std::string& arg, std::vector<std::uint16_t>& out) {
  std::size_t at = 0;
  while (at < arg.size()) {
    std::size_t comma = arg.find(',', at);
    if (comma == std::string::npos) comma = arg.size();
    const int port = std::atoi(arg.substr(at, comma - at).c_str());
    if (port <= 0 || port > 65535) return false;
    out.push_back(static_cast<std::uint16_t>(port));
    at = comma + 1;
  }
  return !out.empty();
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--ports") {
      if ((v = next()) == nullptr || !parse_ports(v, opt.ports)) return false;
    } else if (arg == "--threads") {
      if ((v = next()) == nullptr) return false;
      opt.threads = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--clients") {
      if ((v = next()) == nullptr) return false;
      opt.clients = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--duration-s") {
      if ((v = next()) == nullptr) return false;
      opt.duration_s = std::atoll(v);
    } else if (arg == "--ops") {
      if ((v = next()) == nullptr) return false;
      opt.ops = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--write-pct") {
      if ((v = next()) == nullptr) return false;
      opt.write_pct = std::atoi(v);
    } else if (arg == "--objects") {
      if ((v = next()) == nullptr) return false;
      opt.objects = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--object-base") {
      if ((v = next()) == nullptr) return false;
      opt.object_base = static_cast<std::uint32_t>(std::atoll(v));
    } else if (arg == "--zipf") {
      if ((v = next()) == nullptr) return false;
      opt.zipf = std::atof(v);
    } else if (arg == "--delta-us") {
      if ((v = next()) == nullptr) return false;
      opt.delta_us = std::atoll(v);
    } else if (arg == "--think-us") {
      if ((v = next()) == nullptr) return false;
      opt.think_us = std::atoll(v);
    } else if (arg == "--seed") {
      if ((v = next()) == nullptr) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--site-base") {
      if ((v = next()) == nullptr) return false;
      opt.site_base = static_cast<std::uint32_t>(std::atoll(v));
    } else if (arg == "--max-attempts") {
      if ((v = next()) == nullptr) return false;
      opt.max_attempts = std::atoi(v);
    } else if (arg == "--retry-base-ms") {
      if ((v = next()) == nullptr) return false;
      opt.retry_base_ms = std::atoll(v);
    } else if (arg == "--max-abandoned") {
      if ((v = next()) == nullptr) return false;
      opt.max_abandoned = std::atoll(v);
    } else if (arg == "--heartbeat-ms") {
      if ((v = next()) == nullptr) return false;
      opt.heartbeat_ms = std::atoll(v);
    } else if (arg == "--clock-offset-us") {
      if ((v = next()) == nullptr) return false;
      opt.clock_offset_us = std::atoll(v);
    } else if (arg == "--clock-drift-ppm") {
      if ((v = next()) == nullptr) return false;
      opt.clock_drift_ppm = std::atof(v);
    } else if (arg == "--time-sync-ms") {
      if ((v = next()) == nullptr) return false;
      opt.time_sync_ms = std::atoll(v);
    } else if (arg == "--adaptive-delta") {
      opt.adaptive_delta = true;
    } else if (arg == "--trace-out") {
      if ((v = next()) == nullptr) return false;
      opt.trace_out = v;
    } else if (arg == "--metrics-out") {
      if ((v = next()) == nullptr) return false;
      opt.metrics_out = v;
    } else if (arg == "--history-out") {
      if ((v = next()) == nullptr) return false;
      opt.history_out = v;
    } else if (arg == "--min-ops-per-sec") {
      if ((v = next()) == nullptr) return false;
      opt.min_ops_per_sec = std::atof(v);
    } else if (arg == "--open-loop") {
      if ((v = next()) == nullptr) return false;
      opt.open_loop = std::atof(v);
    } else if (arg == "--pipeline") {
      if ((v = next()) == nullptr) return false;
      opt.pipeline = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--cluster") {
      opt.cluster = true;
    } else if (arg == "--misroute-pct") {
      if ((v = next()) == nullptr) return false;
      opt.misroute_pct = std::atoi(v);
    } else {
      return false;
    }
  }
  return !opt.ports.empty() && opt.threads >= 1 && opt.clients >= 1 &&
         opt.max_attempts >= 1 &&
         opt.objects >= 1 && opt.write_pct >= 0 && opt.write_pct <= 100 &&
         (opt.duration_s > 0 || opt.ops > 0) &&
         (opt.site_base == 0 || opt.site_base >= opt.ports.size()) &&
         opt.clock_offset_us >= 0 && opt.time_sync_ms >= 0 &&
         // Adaptation feeds on measured epsilon/RTT; without sync there is
         // no measurement and the budget would be pinned at zero.
         (!opt.adaptive_delta || opt.time_sync_ms > 0) &&
         // Open loop is paced by wall time; a per-client op cap has no
         // meaning on an arrival schedule.
         opt.open_loop >= 0 && (opt.open_loop == 0 || opt.duration_s > 0) &&
         (opt.open_loop == 0 || opt.ops == 0) &&
         // Misrouting needs a ring to misroute against, and at least one
         // wrong endpoint to aim at.
         opt.misroute_pct >= 0 && opt.misroute_pct <= 100 &&
         (opt.misroute_pct == 0 || (opt.cluster && opt.ports.size() >= 2)) &&
         // The structured identity space must hold everything: one
         // sub-band per endpoint, each endpoint's client share inside its
         // sub-band, and the per-worker sync sites in band ports.size().
         opt.ports.size() <= kMaxEndpointBands - 1 &&
         (opt.threads * opt.clients + opt.ports.size() - 1) /
                 opt.ports.size() <=
             kEndpointBand &&
         opt.threads <= kEndpointBand;
}

/// One recorded operation of the global history.
struct OpRecord {
  std::uint32_t site;  // global client index (history site)
  bool is_write;
  ObjectId object;
  Value value;
  std::int64_t time_us;  // issue time (writes) / completion time (reads)
};

/// One worker thread: an EventLoop, a TcpTransport and `clients` closed-loop
/// TSC clients. All mutable state is loop-thread-confined; main reads it
/// only after join().
class Worker {
 public:
  Worker(const Options& opt, std::size_t index)
      : opt_(opt),
        index_(index),
        transport_(loop_, SimTime::millis(100)),
        tracer_(TraceConfig{!opt.trace_out.empty()}),
        zipf_(opt.objects, opt.zipf) {
    // Hardware clock: perfect unless skew is injected. The sign alternates
    // per worker so any two adjacent workers disagree by the full 2*offset
    // (the worst pair Definition 2's eps has to cover).
    const std::int64_t sign = (index % 2 == 0) ? 1 : -1;
    if (opt_.clock_offset_us != 0 || opt_.clock_drift_ppm != 0) {
      hardware_ = std::make_unique<DriftingClock>(
          SimTime::micros(sign * opt_.clock_offset_us),
          sign * opt_.clock_drift_ppm);
    } else {
      hardware_ = std::make_unique<PerfectClock>();
    }
    std::vector<SiteId> shard_sites;
    for (std::size_t s = 0; s < opt_.ports.size(); ++s) {
      shard_sites.push_back(SiteId{static_cast<std::uint32_t>(s)});
      transport_.add_route(shard_sites.back(), "127.0.0.1", opt_.ports[s]);
    }
    if (opt_.supervised()) {
      net::SupervisionConfig sup;
      sup.enabled = true;
      sup.heartbeat_interval = SimTime::millis(opt_.effective_heartbeat_ms());
      sup.seed = opt_.seed + 0x10ad + index;
      transport_.set_supervision(sup);
    }
    client_clock_ = hardware_.get();
    if (opt_.time_sync_ms > 0) {
      // One sync client per worker, against shard 0's transport-level time
      // service, in the first sub-band no endpoint claims (band S for S
      // endpoints) so it can never shadow a cache client's identity.
      const std::uint32_t sync_site =
          opt_.site_base +
          static_cast<std::uint32_t>(opt_.ports.size()) * kEndpointBand +
          static_cast<std::uint32_t>(index);
      net::TimeSyncConfig sync_config;
      sync_config.period = SimTime::millis(opt_.time_sync_ms);
      sync_ = std::make_unique<net::TimeSyncClient>(
          transport_, SiteId{sync_site}, SiteId{0}, hardware_.get(),
          sync_config, tracer());
      corrected_ = std::make_unique<net::CorrectedClock>(hardware_.get(),
                                                         sync_.get());
      client_clock_ = corrected_.get();
      if (opt_.adaptive_delta) adaptive_.emplace(sync_.get());
    }
    const std::size_t num_shards = opt_.ports.size();
    if (opt_.cluster) {
      // The SAME deterministic ring the servers build from their --cluster
      // list: ring_hash is seedless, so owner_of here and owner_of inside
      // timedc-server agree on every object without any exchange.
      ring_ = std::make_shared<cluster::HashRing>();
      ring_->set_members(shard_sites);
      // Self-healing: a server that sees one of our requests stamped with a
      // stale ring bounces a kRingUpdate hint carrying its serving set.
      // Re-learn the ring from it (epochs only move forward), so after a
      // rebalance our dispatch goes straight to the new owner instead of
      // paying the forward hop on every op. Sites map to ports positionally
      // (ports[i] serves site i), so members beyond the endpoint list —
      // ones we could not dial anyway — are dropped.
      transport_.set_ring_update_handler(
          [this, num_shards](SiteId, std::uint64_t epoch,
                             std::span<const std::uint32_t> members) {
            if (epoch <= learned_ring_epoch_ || members.empty()) return;
            std::vector<SiteId> sites;
            for (const std::uint32_t site : members) {
              if (site < num_shards) sites.push_back(SiteId{site});
            }
            if (sites.empty()) return;
            learned_ring_epoch_ = epoch;
            ring_->set_members(sites);
            ++ring_updates_;
          });
    }
    // Admission-shed replies: the request was not served; the client's
    // retry timer already covers it (the next attempt rotates endpoints),
    // so all we do is count the explicit sheds.
    transport_.set_overloaded_handler(
        [this](SiteId, const wire::Overloaded&) { ++overloaded_; });
    route_rng_ = Rng::stream(opt_.seed + 0x707e, index_);
    clients_.reserve(opt_.clients);
    state_.resize(opt_.clients);
    for (std::size_t k = 0; k < opt_.clients; ++k) {
      const std::uint32_t global = global_index(k);
      auto client = std::make_unique<TimedSerialCache>(
          transport_, SiteId{client_site(opt_.site_base, global, num_shards)},
          SiteId{0}, client_clock_,
          SimTime::micros(opt_.delta_us), /*mark_old=*/true, MessageSizes{});
      if (opt_.cluster) {
        // Owner-aware dispatch, with an optional deliberate error rate:
        // a misrouted op lands on a uniformly chosen WRONG endpoint and
        // must come back through the server-to-server forward path.
        client->set_route([this, num_shards](ObjectId object) {
          SiteId owner = ring_->owner_of(object);
          if (opt_.misroute_pct > 0 &&
              route_rng_.uniform_int(0, 99) <
                  static_cast<std::int64_t>(opt_.misroute_pct)) {
            const auto hop = static_cast<std::uint32_t>(route_rng_.uniform_int(
                1, static_cast<std::int64_t>(num_shards) - 1));
            owner = SiteId{(owner.value + hop) %
                           static_cast<std::uint32_t>(num_shards)};
            ++misrouted_;
          }
          return owner;
        });
      } else {
        client->set_route([num_shards](ObjectId object) {
          return SiteId{
              static_cast<std::uint32_t>(object.value % num_shards)};
        });
      }
      if (opt_.max_attempts > 1) {
        RetryPolicy policy;
        policy.max_attempts = opt_.max_attempts;
        policy.base_timeout = SimTime::millis(opt_.retry_base_ms);
        client->configure_reliability(policy, shard_sites,
                                      opt_.seed + 0x5eed + global);
      }
      if (adaptive_) {
        client->set_delta_provider([this](SimTime configured) {
          return adaptive_->effective(configured);
        });
      }
      client->set_tracer(tracer());
      client->attach();
      state_[k].rng = Rng::stream(opt_.seed, global);
      clients_.push_back(std::move(client));
    }
  }

  void start() {
    thread_ = std::thread([this] {
      deadline_ = loop_.now() + SimTime::seconds(
                                    opt_.duration_s > 0 ? opt_.duration_s
                                                        : 3600);
      if (sync_) {
        // Warm-up barrier: stamping history with a clock that is about to
        // snap by the full injected offset would poison every later per-site
        // timestamp, so hold the first ops until the estimator converges
        // (capped at 5s — an unreachable time server degrades, not hangs).
        sync_->start();
        await_sync_then_issue(/*polls_left=*/5000);
      } else {
        begin_issuing();
      }
      loop_.run();
      if (sync_) {
        sync_->stop();
        sample_epsilon();
        sync_stats_ = sync_->stats();
      }
    });
  }

  void join() { thread_.join(); }

  /// Early shutdown (SIGINT/SIGTERM): stop issuing, give in-flight
  /// operations a short grace to resolve through the retry layer, then
  /// force the loop down so main can still flush histograms and the trace.
  void request_stop() {
    loop_.post([this] {
      if (stop_requested_) return;
      stop_requested_ = true;
      loop_.run_after(SimTime::millis(500), [this] { loop_.stop(); });
    });
  }

  const std::vector<OpRecord>& records() const { return records_; }
  const std::vector<std::int64_t>& latencies() const { return latencies_; }
  const std::vector<std::int64_t>& read_latencies() const {
    return read_latencies_;
  }
  std::uint64_t abandoned() const { return abandoned_; }
  /// Operations deliberately sent to a non-owner endpoint (--misroute-pct).
  std::uint64_t misrouted() const { return misrouted_; }
  /// kRingUpdate hints that actually moved this worker's learned ring.
  std::uint64_t ring_updates() const { return ring_updates_; }
  /// kOverloaded admission-shed replies received.
  std::uint64_t overloaded() const { return overloaded_; }
  /// Deepest the open-loop backlog ever got (0 in closed-loop mode): how
  /// far demand outran the pipeline at the worst moment.
  std::uint64_t backlog_peak() const { return backlog_peak_; }
  /// Open-loop arrivals still queued when the run ended — unserved demand
  /// that would have inflated the tail had the run continued.
  std::uint64_t arrivals_dropped() const { return arrivals_dropped_; }
  CacheStats total_cache_stats() const {
    CacheStats total;
    for (const auto& c : clients_) total += c->stats();
    return total;
  }
  const net::TcpTransportStats& transport_stats() const {
    return transport_.stats();
  }
  bool time_synced() const { return sync_ != nullptr; }
  const net::TimeSyncStats& sync_stats() const { return sync_stats_; }
  /// Largest one-sided epsilon this worker measured at any op completion
  /// (infinity when it never achieved synchronization).
  SimTime max_epsilon() const {
    return eps_sampled_ ? max_eps_ : SimTime::infinity();
  }
  std::vector<TraceEvent> flush_trace() const { return tracer_.flush(); }

 private:
  struct ClientState {
    Rng rng{0};
    std::uint64_t issued = 0;
    std::uint64_t value_seq = 0;
    std::int64_t issued_at_us = 0;
    bool done = false;
  };

  std::uint32_t global_index(std::size_t k) const {
    return static_cast<std::uint32_t>(index_ * opt_.clients + k);
  }

  Tracer* tracer() { return opt_.trace_out.empty() ? nullptr : &tracer_; }

  /// The history timestamp source: the clients' (possibly skewed, possibly
  /// sync-corrected) clock — the clock the server's LWW ordering and the
  /// TSC lifetime rules actually saw, which is what timedc-check judges.
  std::int64_t client_clock_us() const {
    return client_clock_->read(loop_.now()).as_micros();
  }

  void await_sync_then_issue(int polls_left) {
    if (sync_->synced() || polls_left <= 0 || stop_requested_) {
      begin_issuing();
      return;
    }
    loop_.run_after(SimTime::millis(1), [this, polls_left] {
      await_sync_then_issue(polls_left - 1);
    });
  }

  bool open_loop() const { return opt_.open_loop > 0; }

  void begin_issuing() {
    cap_ = opt_.pipeline == 0 ? opt_.clients
                              : std::min(opt_.pipeline, opt_.clients);
    for (std::size_t k = 0; k < opt_.clients; ++k) ready_.push_back(k);
    if (open_loop()) {
      // Each worker serves an equal slice of the aggregate arrival rate.
      arrival_period_us_ = 1e6 * static_cast<double>(opt_.threads) /
                           opt_.open_loop;
      next_arrival_at_us_ = static_cast<double>(loop_.now().as_micros());
      schedule_arrivals();
    } else {
      pump();
    }
  }

  /// Enqueue every arrival whose intended time has come, dispatch, and
  /// re-arm for the next one. Arrivals keep their schedule regardless of
  /// completions: if the server stalls, the backlog grows and each queued
  /// op is charged from its intended time (no coordinated omission). The
  /// loop's ms-granularity timer can make arrivals land in small bursts;
  /// their intended times stay exact.
  void schedule_arrivals() {
    if (stop_requested_ || loop_.now() >= deadline_) {
      arrivals_done_ = true;
      arrivals_dropped_ += backlog_.size();  // unserved demand at the bell
      backlog_.clear();
      check_open_finish();
      return;
    }
    const double now_us = static_cast<double>(loop_.now().as_micros());
    while (next_arrival_at_us_ <= now_us) {
      backlog_.push_back(static_cast<std::int64_t>(next_arrival_at_us_));
      next_arrival_at_us_ += arrival_period_us_;
    }
    if (backlog_.size() > backlog_peak_) backlog_peak_ = backlog_.size();
    pump();
    const auto delay_us = static_cast<std::int64_t>(
        std::max(0.0, next_arrival_at_us_ - now_us));
    loop_.run_after(SimTime::micros(delay_us), [this] { schedule_arrivals(); });
  }

  /// Dispatch as much queued work as the pipeline bound allows. Bounded by
  /// the entry-time ready count: a synchronous completion (cache hit) puts
  /// its client straight back into ready_, and an unbounded loop would
  /// spin hit -> complete -> hit forever without returning to the loop.
  void pump() {
    if (open_loop()) {
      std::size_t budget = std::min(ready_.size(), backlog_.size());
      while (budget-- > 0 && outstanding_ < cap_ && !ready_.empty() &&
             !backlog_.empty()) {
        const std::size_t k = ready_.front();
        ready_.pop_front();
        const std::int64_t intended = backlog_.front();
        backlog_.pop_front();
        issue_open(k, intended);
      }
      check_open_finish();
    } else {
      std::size_t budget = ready_.size();
      while (budget-- > 0 && outstanding_ < cap_ && !ready_.empty()) {
        const std::size_t k = ready_.front();
        ready_.pop_front();
        issue(k);
      }
    }
  }

  void check_open_finish() {
    if (arrivals_done_ && outstanding_ == 0 && backlog_.empty()) loop_.stop();
  }

  void sample_epsilon() {
    if (sync_ == nullptr || !sync_->synced()) return;
    const SimTime eps = sync_->epsilon();
    if (!eps_sampled_ || eps > max_eps_) max_eps_ = eps;
    eps_sampled_ = true;
  }

  void issue(std::size_t k) {
    ClientState& st = state_[k];
    if (stop_requested_ || (opt_.ops > 0 && st.issued >= opt_.ops) ||
        (opt_.duration_s > 0 && loop_.now() >= deadline_)) {
      st.done = true;
      if (++done_clients_ == opt_.clients) loop_.stop();
      return;
    }
    // Closed loop: latency is measured from the actual issue instant.
    issue_op(k, loop_.now().as_micros());
  }

  /// Open-loop issue: the op is charged from `intended_us` — its scheduled
  /// arrival — which is already in the past when it waited in the backlog.
  void issue_open(std::size_t k, std::int64_t intended_us) {
    issue_op(k, intended_us);
  }

  void issue_op(std::size_t k, std::int64_t charged_from_us) {
    ClientState& st = state_[k];
    ++st.issued;
    ++outstanding_;
    const ObjectId object{
        opt_.object_base + static_cast<std::uint32_t>(zipf_.sample(st.rng))};
    const bool is_write =
        st.rng.uniform_int(0, 99) < static_cast<std::int64_t>(opt_.write_pct);
    st.issued_at_us = charged_from_us;
    // Writes enter the history at their issue time AS THE CLIENT CLOCK SAW
    // IT: that is the client_time the server's last-writer-wins ordering
    // used (with skew injected, loop time and client time differ).
    const std::int64_t issued_clock_us = client_clock_us();
    const std::uint32_t site = global_index(k);
    if (is_write) {
      const Value value{
          (static_cast<std::int64_t>(site + 1) << 32) +
          static_cast<std::int64_t>(++st.value_seq)};
      clients_[k]->write(
          object, value, [this, k, site, object, value, issued_clock_us](SimTime) {
            complete(k, OpRecord{site, true, object, value, issued_clock_us});
          });
    } else {
      clients_[k]->read(object, [this, k, site, object](Value v, SimTime) {
        // Reads are stamped at completion, again on the client clock.
        complete(k, OpRecord{site, false, object, v, client_clock_us()});
      });
    }
  }

  void complete(std::size_t k, OpRecord record) {
    // An abandoned operation's result is a degraded local guess, not a
    // server answer: it must stay out of the history (its value could
    // serialize nowhere) and out of the latency distribution.
    if (clients_[k]->last_op_abandoned()) {
      ++abandoned_;
    } else {
      const std::int64_t lat = loop_.now().as_micros() - state_[k].issued_at_us;
      latencies_.push_back(lat);
      if (!record.is_write) read_latencies_.push_back(lat);
      records_.push_back(record);
    }
    // The measured bound enters the trace's eps directive as the max over
    // the run; sampling at every completion tracks its growth between
    // resyncs without a dedicated timer.
    sample_epsilon();
    --outstanding_;
    // Return the client to the ready pool and dispatch through the loop,
    // never synchronously: a chain of cache hits would otherwise recurse
    // completion -> issue -> completion unboundedly.
    if (!open_loop() && opt_.think_us > 0) {
      loop_.run_after(SimTime::micros(opt_.think_us), [this, k] {
        ready_.push_back(k);
        pump();
      });
    } else {
      ready_.push_back(k);
      loop_.post([this] { pump(); });
    }
    if (open_loop()) check_open_finish();
  }

  const Options& opt_;
  std::size_t index_;
  net::EventLoop loop_;
  net::TcpTransport transport_;
  Tracer tracer_;
  std::unique_ptr<PhysicalClockModel> hardware_;
  std::unique_ptr<net::TimeSyncClient> sync_;
  std::unique_ptr<net::CorrectedClock> corrected_;
  std::optional<net::AdaptiveDelta> adaptive_;
  const PhysicalClockModel* client_clock_ = nullptr;
  net::TimeSyncStats sync_stats_;
  ZipfDistribution zipf_;
  std::vector<std::unique_ptr<TimedSerialCache>> clients_;
  std::vector<ClientState> state_;
  std::vector<OpRecord> records_;
  std::vector<std::int64_t> latencies_;
  std::vector<std::int64_t> read_latencies_;
  SimTime deadline_;
  SimTime max_eps_ = SimTime::zero();
  bool eps_sampled_ = false;
  std::size_t done_clients_ = 0;
  std::uint64_t abandoned_ = 0;
  bool stop_requested_ = false;
  // Cluster routing state (loop-thread-confined, like everything above).
  std::shared_ptr<cluster::HashRing> ring_;
  Rng route_rng_{0};
  std::uint64_t misrouted_ = 0;
  std::uint64_t learned_ring_epoch_ = 0;  // newest kRingUpdate adopted
  std::uint64_t ring_updates_ = 0;
  std::uint64_t overloaded_ = 0;
  // Issuing state, shared by both modes: clients rotate through ready_,
  // at most cap_ operations are in flight, and (open loop only) arrivals
  // that found every client busy wait in backlog_ with their intended
  // timestamps.
  std::deque<std::size_t> ready_;
  std::deque<std::int64_t> backlog_;
  std::size_t outstanding_ = 0;
  std::size_t cap_ = 0;
  double arrival_period_us_ = 0;
  double next_arrival_at_us_ = 0;
  bool arrivals_done_ = false;
  std::uint64_t backlog_peak_ = 0;
  std::uint64_t arrivals_dropped_ = 0;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);
  if (opt.site_base == 0) opt.site_base = auto_site_base();

  // Block SIGINT/SIGTERM in every thread; a dedicated watcher consumes
  // them and asks the workers to stop, so an interrupted run still flows
  // through the normal reporting/flush path below. SIGUSR2 is the private
  // "run finished naturally, watcher can exit" wake-up.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGUSR2);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(opt.threads);
  for (std::size_t t = 0; t < opt.threads; ++t) {
    workers.push_back(std::make_unique<Worker>(opt, t));
  }
  bool interrupted = false;
  std::thread watcher([&] {
    int got = 0;
    sigwait(&sigs, &got);
    if (got == SIGUSR2) return;
    interrupted = true;
    std::fprintf(stderr, "timedc-load: signal %d, draining and flushing\n",
                 got);
    for (auto& w : workers) w->request_stop();
  });
  timespec t0;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  for (auto& w : workers) w->start();
  for (auto& w : workers) w->join();
  kill(getpid(), SIGUSR2);
  watcher.join();
  timespec t1;
  clock_gettime(CLOCK_MONOTONIC, &t1);
  const double elapsed_s =
      static_cast<double>(t1.tv_sec - t0.tv_sec) +
      static_cast<double>(t1.tv_nsec - t0.tv_nsec) / 1e9;

  // Merge per-thread op records into the global history. Each history site
  // is owned by exactly one thread, so per-site order is append order;
  // equal-microsecond neighbors are bumped to keep per-site times strictly
  // increasing (History invariant).
  const std::size_t num_clients = opt.threads * opt.clients;
  std::uint64_t total_ops = 0;
  HistoryBuilder builder(num_clients);
  std::vector<std::int64_t> last_time(num_clients, -1);
  for (const auto& w : workers) {
    for (const OpRecord& r : w->records()) {
      ++total_ops;
      std::int64_t t = std::max(r.time_us, last_time[r.site] + 1);
      last_time[r.site] = t;
      if (r.is_write) {
        builder.write(SiteId{r.site}, r.object, r.value, SimTime::micros(t));
      } else {
        builder.read(SiteId{r.site}, r.object, r.value, SimTime::micros(t));
      }
    }
  }
  const History history = builder.build();

  std::vector<std::int64_t> latencies;
  std::vector<std::int64_t> read_latencies;
  for (const auto& w : workers) {
    latencies.insert(latencies.end(), w->latencies().begin(),
                     w->latencies().end());
    read_latencies.insert(read_latencies.end(), w->read_latencies().begin(),
                          w->read_latencies().end());
  }
  const double ops_per_sec =
      elapsed_s > 0 ? static_cast<double>(total_ops) / elapsed_s : 0;
  double read_latency_sum = 0;
  for (const std::int64_t l : read_latencies) {
    read_latency_sum += static_cast<double>(l);
  }
  const double read_latency_mean_us =
      read_latencies.empty()
          ? 0
          : read_latency_sum / static_cast<double>(read_latencies.size());

  // The run's measured pairwise skew bound (Definition 2's eps): each
  // worker's one-sided bound covers |its clock - time server|, so any two
  // workers disagree by at most the sum of theirs <= 2x the max. Unknown
  // (and not recorded) if any worker never reached synchronization.
  SimTime measured_eps = SimTime::infinity();
  if (opt.time_sync_ms > 0) {
    SimTime worst = SimTime::zero();
    bool all_synced = true;
    for (const auto& w : workers) {
      const SimTime eps = w->max_epsilon();
      if (eps.is_infinite()) all_synced = false;
      if (all_synced && eps > worst) worst = eps;
    }
    if (all_synced) measured_eps = worst + worst;
  }

  // Def-1 staleness of every read, judged against the configured Delta.
  const std::vector<ReadStaleness> staleness = per_read_staleness(history);
  Histogram staleness_hist = Histogram::time_us();
  std::uint64_t late_reads = 0;
  for (const ReadStaleness& s : staleness) {
    staleness_hist.record(s.staleness.as_micros());
    if (s.staleness > SimTime::micros(opt.delta_us)) ++late_reads;
  }
  Histogram latency_hist = Histogram::time_us();
  for (const std::int64_t l : latencies) latency_hist.record(l);

  std::uint64_t total_abandoned = 0;
  std::uint64_t total_misrouted = 0;
  std::uint64_t total_ring_updates = 0;
  std::uint64_t total_overloaded = 0;
  for (const auto& w : workers) {
    total_abandoned += w->abandoned();
    total_misrouted += w->misrouted();
    total_ring_updates += w->ring_updates();
    total_overloaded += w->overloaded();
  }

  MetricsRegistry reg;
  reg.set_counter("load.ops", total_ops);
  reg.set_counter("load.reads", staleness.size());
  reg.set_counter("load.writes", total_ops - staleness.size());
  reg.set_counter("load.reads_late", late_reads);
  reg.set_counter("load.ops_abandoned", total_abandoned);
  reg.set_counter("load.interrupted", interrupted ? 1 : 0);
  if (opt.cluster) {
    reg.set_counter("load.cluster", 1);
    reg.set_counter("load.misrouted", total_misrouted);
    reg.set_counter("load.ring_updates", total_ring_updates);
  }
  reg.set_counter("load.overloaded", total_overloaded);
  if (opt.open_loop > 0) {
    std::uint64_t backlog_peak = 0, arrivals_dropped = 0;
    for (const auto& w : workers) {
      backlog_peak = std::max(backlog_peak, w->backlog_peak());
      arrivals_dropped += w->arrivals_dropped();
    }
    reg.set_gauge("load.open_loop_rate", opt.open_loop);
    reg.set_gauge("load.backlog_peak", static_cast<double>(backlog_peak));
    reg.set_counter("load.arrivals_dropped", arrivals_dropped);
  }
  CacheStats cache_total;
  for (const auto& w : workers) {
    cache_total += w->total_cache_stats();
    // Publishers add counters, so calling once per worker aggregates the
    // full transport counter set (reconnects, heartbeats, per-status
    // decode errors, queue drops, ...) under one "net" prefix.
    publish_tcp_transport_stats(reg, "net", w->transport_stats());
    if (w->time_synced()) {
      publish_time_sync_stats(reg, "client.sync", w->sync_stats());
    }
  }
  publish_cache_stats(reg, "client", cache_total);
  reg.set_gauge("load.ops_per_sec", ops_per_sec);
  reg.set_gauge("load.elapsed_s", elapsed_s);
  reg.set_gauge("load.delta_us", static_cast<double>(opt.delta_us));
  reg.set_gauge("load.read_latency_mean_us", read_latency_mean_us);
  reg.set_gauge("load.eps_us",
                measured_eps.is_infinite()
                    ? -1.0
                    : static_cast<double>(measured_eps.as_micros()));
  reg.add_histogram("latency_us", latency_hist);
  Histogram read_latency_hist = Histogram::time_us();
  for (const std::int64_t l : read_latencies) read_latency_hist.record(l);
  reg.add_histogram("read_latency_us", read_latency_hist);
  reg.add_histogram("staleness_us", staleness_hist);

  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    out << reg.to_json(2) << "\n";
  }
  if (!opt.history_out.empty()) {
    std::ofstream out(opt.history_out);
    out << (measured_eps.is_infinite() ? write_trace(history)
                                       : write_trace(history, measured_eps));
  }
  if (!opt.trace_out.empty()) {
    // One merged client-side event stream. Workers trace independently, so
    // re-sort globally by (time, site) to keep timestamps monotone for
    // downstream consumers (ci/validate_trace.py).
    std::vector<TraceEvent> events;
    for (const auto& w : workers) {
      std::vector<TraceEvent> part = w->flush_trace();
      events.insert(events.end(), part.begin(), part.end());
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.at != b.at) return a.at < b.at;
                       return a.site.value < b.site.value;
                     });
    write_text_file(opt.trace_out, trace_to_jsonl(events));
    std::printf("timedc-load: %zu trace events -> %s\n", events.size(),
                opt.trace_out.c_str());
  }

  std::printf(
      "timedc-load: %llu ops in %.2fs = %.0f ops/s | latency p50 %lld us "
      "p99 %lld us max %lld us | read mean %.0f us | reads %zu late %llu "
      "(Delta %lld us) | "
      "hit ratio %.2f | retries %llu failovers %llu abandoned %llu%s\n",
      static_cast<unsigned long long>(total_ops), elapsed_s, ops_per_sec,
      static_cast<long long>(latency_hist.p50()),
      static_cast<long long>(latency_hist.p99()),
      static_cast<long long>(latency_hist.count() == 0 ? 0
                                                       : latency_hist.max()),
      read_latency_mean_us,
      staleness.size(), static_cast<unsigned long long>(late_reads),
      static_cast<long long>(opt.delta_us), cache_total.hit_ratio(),
      static_cast<unsigned long long>(cache_total.retries),
      static_cast<unsigned long long>(cache_total.failovers),
      static_cast<unsigned long long>(total_abandoned),
      interrupted ? " | INTERRUPTED" : "");
  if (opt.time_sync_ms > 0) {
    std::printf("timedc-load: measured eps %s (pairwise, Def 2)\n",
                measured_eps.to_string().c_str());
  }
  if (opt.cluster) {
    std::printf(
        "timedc-load: ring dispatch over %zu endpoints, %llu ops misrouted "
        "(%d%% target)\n",
        opt.ports.size(), static_cast<unsigned long long>(total_misrouted),
        opt.misroute_pct);
  }

  if (opt.min_ops_per_sec > 0 && ops_per_sec < opt.min_ops_per_sec) {
    std::fprintf(stderr, "FAIL: %.0f ops/s below the %.0f ops/s floor\n",
                 ops_per_sec, opt.min_ops_per_sec);
    return 1;
  }
  if (opt.max_abandoned >= 0 &&
      total_abandoned > static_cast<std::uint64_t>(opt.max_abandoned)) {
    std::fprintf(stderr,
                 "FAIL: %llu abandoned operations exceed the budget of %lld\n",
                 static_cast<unsigned long long>(total_abandoned),
                 static_cast<long long>(opt.max_abandoned));
    return 1;
  }
  return 0;
}
