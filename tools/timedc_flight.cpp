// timedc-flight: offline converter for binary flight-recorder dumps.
//
// A .fr file is the raw ring a FlightRecorder wrote — either on demand
// (dump_to_file) or from the fatal-signal handler ("<prefix>.site<id>.fr"
// after a SIGSEGV/SIGBUS/SIGFPE/SIGABRT). This tool parses one or more
// dumps back into the canonical TraceEvent stream and emits it as JSONL
// (the ci/validate_trace.py schema) or as a Chrome/Perfetto trace. Multiple
// dumps (one per reactor) merge into a single time-sorted stream.
//
// Usage:
//   timedc-flight [--chrome] [--out FILE] DUMP.fr [DUMP.fr ...]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"

namespace {

using namespace timedc;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--chrome] [--out FILE] DUMP.fr [DUMP.fr ...]\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool chrome = false;
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chrome") == 0) {
      chrome = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<TraceEvent> events;
  std::uint64_t total_overwritten = 0;
  for (const std::string& path : inputs) {
    std::string bytes;
    if (!read_file(path, bytes)) {
      std::fprintf(stderr, "timedc-flight: cannot read %s\n", path.c_str());
      return 1;
    }
    std::uint64_t overwritten = 0;
    const std::size_t before = events.size();
    if (!flight_to_events(bytes, &events, &overwritten)) {
      std::fprintf(stderr, "timedc-flight: %s is not a valid flight dump\n",
                   path.c_str());
      return 1;
    }
    total_overwritten += overwritten;
    std::fprintf(stderr,
                 "timedc-flight: %s: %zu events (%" PRIu64
                 " overwritten before the dump)\n",
                 path.c_str(), events.size() - before, overwritten);
  }
  // Merge per-reactor rings into one stream: sort by time, ties by site so
  // the output is deterministic across runs.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.site.value < b.site.value;
                   });

  const std::string text =
      chrome ? trace_to_chrome(events) : trace_to_jsonl(events);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else if (!write_text_file(out_path, text)) {
    std::fprintf(stderr, "timedc-flight: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "timedc-flight: %zu events total\n", events.size());
  return 0;
}
