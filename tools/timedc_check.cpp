// timedc-check: command-line consistency checker for execution traces.
//
// Usage:
//   timedc-check [options] [trace-file]       (stdin when no file)
//
// Options:
//   --delta <micros>   timeliness threshold Delta (default: infinity)
//   --eps <micros>     clock skew bound for Definition 2. --epsilon is an
//                      alias. Default: the `eps` directive recorded in the
//                      trace (the producing run's measured bound) when
//                      present, else 0. An explicit flag always wins.
//   --xi sum|norm      check Definition 6 with this xi map instead of
//                      real time (logical times are reconstructed from the
//                      trace's reads-from relation)
//   --xdelta <real>    the xi-difference threshold for --xi (default 1.0)
//   --render           print the execution as an ASCII timeline
//   --witness          print the serializations found
//   --trace-out <path> write the checker's search/verdict telemetry plus a
//                      per-read staleness summary as JSONL trace events (in
//                      this output, op.reply's b field carries the read's
//                      Definition-1 staleness in us, not an op duration)
//   --metrics          print the metrics JSON block (operation counts,
//                      checker nodes/fast-paths, staleness histogram)
//
// Exit status: 0 if every requested check passes, 1 otherwise, 2 on usage
// or parse errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkers.hpp"
#include "core/history_gen.hpp"
#include "core/render.hpp"
#include "core/serialization.hpp"
#include "core/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace timedc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: timedc-check [--delta US] [--eps|--epsilon US] "
               "[--xi sum|norm] "
               "[--xdelta X] [--render] [--witness] [--trace-out PATH] "
               "[--metrics] [trace-file]\n");
  return 2;
}

std::string read_all(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  SimTime delta = SimTime::infinity();
  SimTime eps = SimTime::zero();
  bool eps_from_cli = false;
  std::string xi_name;
  double xdelta = 1.0;
  bool render = false;
  bool show_witness = false;
  bool metrics = false;
  std::string trace_out;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--delta") {
      const char* v = next();
      if (!v) return usage();
      delta = SimTime::micros(std::atoll(v));
    } else if (arg == "--eps" || arg == "--epsilon") {
      const char* v = next();
      if (!v) return usage();
      eps = SimTime::micros(std::atoll(v));
      eps_from_cli = true;
    } else if (arg == "--xi") {
      const char* v = next();
      if (!v) return usage();
      xi_name = v;
      if (xi_name != "sum" && xi_name != "norm") return usage();
    } else if (arg == "--xdelta") {
      const char* v = next();
      if (!v) return usage();
      xdelta = std::atof(v);
    } else if (arg == "--render") {
      render = true;
    } else if (arg == "--witness") {
      show_witness = true;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return usage();
      trace_out = v;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }

  std::string text;
  if (path.empty()) {
    text = read_all(std::cin);
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "timedc-check: cannot open %s\n", path.c_str());
      return 2;
    }
    text = read_all(file);
  }

  const TraceParseResult parsed = parse_trace(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "timedc-check: %s\n", parsed.error.c_str());
    return 2;
  }
  const History& h = *parsed.history;
  if (h.size() == 0) {
    // An empty history is vacuously consistent under every check, so a
    // truncated or empty input would otherwise "pass" silently.
    std::fprintf(stderr,
                 "timedc-check: trace contains no operations (empty or "
                 "truncated input?)\n");
    return 2;
  }
  if (!eps_from_cli && parsed.measured_eps.has_value()) {
    // The producing run recorded its measured skew bound; check against
    // what its sites could actually observe (Definition 2).
    eps = *parsed.measured_eps;
  }
  std::printf("trace: %zu operations, %zu sites\n", h.size(), h.num_sites());
  if (!eps_from_cli && parsed.measured_eps.has_value()) {
    std::printf("eps ingested from trace: %s\n", eps.to_string().c_str());
  }
  if (render) std::printf("\n%s\n", render_timeline(h).c_str());

  bool all_ok = true;
  std::optional<Tracer> tracer;
  SearchLimits limits;
  if (!trace_out.empty()) {
    tracer.emplace();
    limits.tracer = &*tracer;
  }
  const auto lin = check_lin(h, limits);
  const auto sc = check_sc(h, limits);
  const auto cc = check_cc(h, limits);
  std::printf("LIN: %s\n", to_cstring(lin.verdict));
  std::printf("SC:  %s\n", to_cstring(sc.verdict));
  std::printf("CC:  %s\n", to_cstring(cc.verdict));
  if (show_witness && sc.ok()) {
    std::printf("  SC witness: %s\n",
                serialization_to_string(h, sc.witness).c_str());
  }

  const SimTime min_delta = min_timed_delta(h);
  std::printf("min timed Delta (Def 1): %s\n", min_delta.to_string().c_str());
  if (eps > SimTime::zero()) {
    std::printf("min timed Delta (Def 2, eps=%s): %s\n", eps.to_string().c_str(),
                min_timed_delta(h, eps).to_string().c_str());
  }

  if (!delta.is_infinite()) {
    const TimedSpecEpsilon spec{delta, eps};
    const auto tsc = check_tsc(h, spec, limits);
    const auto tcc = check_tcc(h, spec, limits);
    std::printf("TSC(Delta=%s, eps=%s): %s\n", delta.to_string().c_str(),
                eps.to_string().c_str(), to_cstring(tsc.verdict()));
    std::printf("TCC(Delta=%s, eps=%s): %s\n", delta.to_string().c_str(),
                eps.to_string().c_str(), to_cstring(tcc.verdict()));
    if (!tsc.timing.all_on_time) {
      std::printf("%s", render_timed_result(h, tsc.timing).c_str());
    }
    all_ok = all_ok && tsc.ok() && tcc.ok();
  }

  if (!xi_name.empty()) {
    const History annotated = annotate_logical_times(h);
    const SumXiMap sum;
    const NormXiMap norm;
    const XiMap* xi = xi_name == "sum" ? static_cast<const XiMap*>(&sum)
                                       : static_cast<const XiMap*>(&norm);
    const auto timing = reads_on_time(annotated, TimedSpecXi{xi, xdelta});
    std::printf("Def 6 (xi=%s, delta=%g): %s\n", xi_name.c_str(), xdelta,
                timing.all_on_time ? "every read on time" : "late reads exist");
    if (!timing.all_on_time) {
      std::printf("%s", render_timed_result(annotated, timing).c_str());
    }
    all_ok = all_ok && timing.all_on_time;
  }

  const std::vector<ReadStaleness> staleness = per_read_staleness(h);

  if (tracer) {
    // Append the per-read staleness summary: one op.reply per read, stamped
    // at the read's effective time, with b = Definition-1 staleness (us).
    for (const ReadStaleness& rs : staleness) {
      const Operation& r = h.op(rs.read);
      tracer->emit(TraceEventType::kOpReply, r.time, r.site, r.object,
                   static_cast<std::uint64_t>(rs.read.value), 0,
                   rs.staleness.as_micros());
    }
    const std::vector<TraceEvent> events = tracer->flush();
    write_text_file(trace_out, trace_to_jsonl(events));
    std::printf("checker trace: %zu events -> %s\n", events.size(),
                trace_out.c_str());
  }

  if (metrics) {
    MetricsRegistry reg;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (const Operation& op : h.operations()) {
      (op.is_read() ? reads : writes) += 1;
    }
    reg.set_counter("operations", h.size());
    reg.set_counter("reads", reads);
    reg.set_counter("writes", writes);
    reg.set_counter("checker.lin.nodes", lin.nodes);
    reg.set_counter("checker.sc.nodes", sc.nodes);
    reg.set_counter("checker.cc.nodes", cc.nodes);
    reg.set_counter("checker.fast_paths",
                    static_cast<std::uint64_t>(lin.fast_path) + sc.fast_path);
    reg.set_gauge("min_timed_delta_us",
                  min_delta.is_infinite()
                      ? -1.0
                      : static_cast<double>(min_delta.as_micros()));
    Histogram stale = Histogram::time_us();
    for (const ReadStaleness& rs : staleness) {
      stale.record(rs.staleness.as_micros());
    }
    reg.add_histogram("staleness_us", stale);
    std::printf("%s\n", reg.to_json(2).c_str());
  }

  return all_ok ? 0 : 1;
}
