file(REMOVE_RECURSE
  "CMakeFiles/web_cache_policies.dir/web_cache_policies.cpp.o"
  "CMakeFiles/web_cache_policies.dir/web_cache_policies.cpp.o.d"
  "web_cache_policies"
  "web_cache_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_cache_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
