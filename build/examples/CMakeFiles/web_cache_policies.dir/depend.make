# Empty dependencies file for web_cache_policies.
# This may be replaced when dependencies are built.
