file(REMOVE_RECURSE
  "CMakeFiles/shared_scoreboard.dir/shared_scoreboard.cpp.o"
  "CMakeFiles/shared_scoreboard.dir/shared_scoreboard.cpp.o.d"
  "shared_scoreboard"
  "shared_scoreboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
