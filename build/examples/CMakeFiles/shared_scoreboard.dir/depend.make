# Empty dependencies file for shared_scoreboard.
# This may be replaced when dependencies are built.
