file(REMOVE_RECURSE
  "CMakeFiles/collaborative_chat.dir/collaborative_chat.cpp.o"
  "CMakeFiles/collaborative_chat.dir/collaborative_chat.cpp.o.d"
  "collaborative_chat"
  "collaborative_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
