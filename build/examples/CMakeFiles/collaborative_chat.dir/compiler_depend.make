# Empty compiler generated dependencies file for collaborative_chat.
# This may be replaced when dependencies are built.
