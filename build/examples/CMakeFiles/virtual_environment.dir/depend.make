# Empty dependencies file for virtual_environment.
# This may be replaced when dependencies are built.
