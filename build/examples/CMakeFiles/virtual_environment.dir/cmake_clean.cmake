file(REMOVE_RECURSE
  "CMakeFiles/virtual_environment.dir/virtual_environment.cpp.o"
  "CMakeFiles/virtual_environment.dir/virtual_environment.cpp.o.d"
  "virtual_environment"
  "virtual_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
