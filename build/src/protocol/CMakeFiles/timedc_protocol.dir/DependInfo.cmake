
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/client_base.cpp" "src/protocol/CMakeFiles/timedc_protocol.dir/client_base.cpp.o" "gcc" "src/protocol/CMakeFiles/timedc_protocol.dir/client_base.cpp.o.d"
  "/root/repo/src/protocol/experiment.cpp" "src/protocol/CMakeFiles/timedc_protocol.dir/experiment.cpp.o" "gcc" "src/protocol/CMakeFiles/timedc_protocol.dir/experiment.cpp.o.d"
  "/root/repo/src/protocol/server.cpp" "src/protocol/CMakeFiles/timedc_protocol.dir/server.cpp.o" "gcc" "src/protocol/CMakeFiles/timedc_protocol.dir/server.cpp.o.d"
  "/root/repo/src/protocol/timed_causal_cache.cpp" "src/protocol/CMakeFiles/timedc_protocol.dir/timed_causal_cache.cpp.o" "gcc" "src/protocol/CMakeFiles/timedc_protocol.dir/timed_causal_cache.cpp.o.d"
  "/root/repo/src/protocol/timed_serial_cache.cpp" "src/protocol/CMakeFiles/timedc_protocol.dir/timed_serial_cache.cpp.o" "gcc" "src/protocol/CMakeFiles/timedc_protocol.dir/timed_serial_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/timedc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/timedc_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/timedc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/timedc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
