file(REMOVE_RECURSE
  "libtimedc_protocol.a"
)
