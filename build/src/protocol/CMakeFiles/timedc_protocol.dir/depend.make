# Empty dependencies file for timedc_protocol.
# This may be replaced when dependencies are built.
