file(REMOVE_RECURSE
  "CMakeFiles/timedc_protocol.dir/client_base.cpp.o"
  "CMakeFiles/timedc_protocol.dir/client_base.cpp.o.d"
  "CMakeFiles/timedc_protocol.dir/experiment.cpp.o"
  "CMakeFiles/timedc_protocol.dir/experiment.cpp.o.d"
  "CMakeFiles/timedc_protocol.dir/server.cpp.o"
  "CMakeFiles/timedc_protocol.dir/server.cpp.o.d"
  "CMakeFiles/timedc_protocol.dir/timed_causal_cache.cpp.o"
  "CMakeFiles/timedc_protocol.dir/timed_causal_cache.cpp.o.d"
  "CMakeFiles/timedc_protocol.dir/timed_serial_cache.cpp.o"
  "CMakeFiles/timedc_protocol.dir/timed_serial_cache.cpp.o.d"
  "libtimedc_protocol.a"
  "libtimedc_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
