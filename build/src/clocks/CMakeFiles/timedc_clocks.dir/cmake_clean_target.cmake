file(REMOVE_RECURSE
  "libtimedc_clocks.a"
)
