# Empty dependencies file for timedc_clocks.
# This may be replaced when dependencies are built.
