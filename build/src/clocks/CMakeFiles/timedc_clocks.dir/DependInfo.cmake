
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocks/lamport_clock.cpp" "src/clocks/CMakeFiles/timedc_clocks.dir/lamport_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/timedc_clocks.dir/lamport_clock.cpp.o.d"
  "/root/repo/src/clocks/physical_clock.cpp" "src/clocks/CMakeFiles/timedc_clocks.dir/physical_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/timedc_clocks.dir/physical_clock.cpp.o.d"
  "/root/repo/src/clocks/plausible_clock.cpp" "src/clocks/CMakeFiles/timedc_clocks.dir/plausible_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/timedc_clocks.dir/plausible_clock.cpp.o.d"
  "/root/repo/src/clocks/vector_clock.cpp" "src/clocks/CMakeFiles/timedc_clocks.dir/vector_clock.cpp.o" "gcc" "src/clocks/CMakeFiles/timedc_clocks.dir/vector_clock.cpp.o.d"
  "/root/repo/src/clocks/xi_map.cpp" "src/clocks/CMakeFiles/timedc_clocks.dir/xi_map.cpp.o" "gcc" "src/clocks/CMakeFiles/timedc_clocks.dir/xi_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/timedc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
