file(REMOVE_RECURSE
  "CMakeFiles/timedc_clocks.dir/lamport_clock.cpp.o"
  "CMakeFiles/timedc_clocks.dir/lamport_clock.cpp.o.d"
  "CMakeFiles/timedc_clocks.dir/physical_clock.cpp.o"
  "CMakeFiles/timedc_clocks.dir/physical_clock.cpp.o.d"
  "CMakeFiles/timedc_clocks.dir/plausible_clock.cpp.o"
  "CMakeFiles/timedc_clocks.dir/plausible_clock.cpp.o.d"
  "CMakeFiles/timedc_clocks.dir/vector_clock.cpp.o"
  "CMakeFiles/timedc_clocks.dir/vector_clock.cpp.o.d"
  "CMakeFiles/timedc_clocks.dir/xi_map.cpp.o"
  "CMakeFiles/timedc_clocks.dir/xi_map.cpp.o.d"
  "libtimedc_clocks.a"
  "libtimedc_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
