file(REMOVE_RECURSE
  "libtimedc_sim.a"
)
