file(REMOVE_RECURSE
  "CMakeFiles/timedc_sim.dir/clock_sync.cpp.o"
  "CMakeFiles/timedc_sim.dir/clock_sync.cpp.o.d"
  "CMakeFiles/timedc_sim.dir/network.cpp.o"
  "CMakeFiles/timedc_sim.dir/network.cpp.o.d"
  "CMakeFiles/timedc_sim.dir/simulator.cpp.o"
  "CMakeFiles/timedc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/timedc_sim.dir/workload.cpp.o"
  "CMakeFiles/timedc_sim.dir/workload.cpp.o.d"
  "libtimedc_sim.a"
  "libtimedc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
