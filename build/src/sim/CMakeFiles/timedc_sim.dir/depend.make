# Empty dependencies file for timedc_sim.
# This may be replaced when dependencies are built.
