file(REMOVE_RECURSE
  "libtimedc_web.a"
)
