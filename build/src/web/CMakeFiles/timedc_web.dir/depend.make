# Empty dependencies file for timedc_web.
# This may be replaced when dependencies are built.
