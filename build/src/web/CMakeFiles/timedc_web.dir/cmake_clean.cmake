file(REMOVE_RECURSE
  "CMakeFiles/timedc_web.dir/web_cache.cpp.o"
  "CMakeFiles/timedc_web.dir/web_cache.cpp.o.d"
  "CMakeFiles/timedc_web.dir/web_experiment.cpp.o"
  "CMakeFiles/timedc_web.dir/web_experiment.cpp.o.d"
  "libtimedc_web.a"
  "libtimedc_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
