file(REMOVE_RECURSE
  "CMakeFiles/timedc_core.dir/causal.cpp.o"
  "CMakeFiles/timedc_core.dir/causal.cpp.o.d"
  "CMakeFiles/timedc_core.dir/checkers.cpp.o"
  "CMakeFiles/timedc_core.dir/checkers.cpp.o.d"
  "CMakeFiles/timedc_core.dir/history.cpp.o"
  "CMakeFiles/timedc_core.dir/history.cpp.o.d"
  "CMakeFiles/timedc_core.dir/history_gen.cpp.o"
  "CMakeFiles/timedc_core.dir/history_gen.cpp.o.d"
  "CMakeFiles/timedc_core.dir/interval.cpp.o"
  "CMakeFiles/timedc_core.dir/interval.cpp.o.d"
  "CMakeFiles/timedc_core.dir/paper_figures.cpp.o"
  "CMakeFiles/timedc_core.dir/paper_figures.cpp.o.d"
  "CMakeFiles/timedc_core.dir/render.cpp.o"
  "CMakeFiles/timedc_core.dir/render.cpp.o.d"
  "CMakeFiles/timedc_core.dir/serialization.cpp.o"
  "CMakeFiles/timedc_core.dir/serialization.cpp.o.d"
  "CMakeFiles/timedc_core.dir/timed.cpp.o"
  "CMakeFiles/timedc_core.dir/timed.cpp.o.d"
  "CMakeFiles/timedc_core.dir/trace_io.cpp.o"
  "CMakeFiles/timedc_core.dir/trace_io.cpp.o.d"
  "CMakeFiles/timedc_core.dir/transactions.cpp.o"
  "CMakeFiles/timedc_core.dir/transactions.cpp.o.d"
  "libtimedc_core.a"
  "libtimedc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
