# Empty compiler generated dependencies file for timedc_core.
# This may be replaced when dependencies are built.
