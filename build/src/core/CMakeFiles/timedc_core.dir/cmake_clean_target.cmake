file(REMOVE_RECURSE
  "libtimedc_core.a"
)
