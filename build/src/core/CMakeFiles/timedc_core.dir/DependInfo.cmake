
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/causal.cpp" "src/core/CMakeFiles/timedc_core.dir/causal.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/causal.cpp.o.d"
  "/root/repo/src/core/checkers.cpp" "src/core/CMakeFiles/timedc_core.dir/checkers.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/checkers.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/timedc_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/history.cpp.o.d"
  "/root/repo/src/core/history_gen.cpp" "src/core/CMakeFiles/timedc_core.dir/history_gen.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/history_gen.cpp.o.d"
  "/root/repo/src/core/interval.cpp" "src/core/CMakeFiles/timedc_core.dir/interval.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/interval.cpp.o.d"
  "/root/repo/src/core/paper_figures.cpp" "src/core/CMakeFiles/timedc_core.dir/paper_figures.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/paper_figures.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/timedc_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/render.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/timedc_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/timed.cpp" "src/core/CMakeFiles/timedc_core.dir/timed.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/timed.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/timedc_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/trace_io.cpp.o.d"
  "/root/repo/src/core/transactions.cpp" "src/core/CMakeFiles/timedc_core.dir/transactions.cpp.o" "gcc" "src/core/CMakeFiles/timedc_core.dir/transactions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/timedc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/timedc_clocks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
