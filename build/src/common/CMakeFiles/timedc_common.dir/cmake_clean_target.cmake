file(REMOVE_RECURSE
  "libtimedc_common.a"
)
