# Empty compiler generated dependencies file for timedc_common.
# This may be replaced when dependencies are built.
