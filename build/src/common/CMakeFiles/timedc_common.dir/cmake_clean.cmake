file(REMOVE_RECURSE
  "CMakeFiles/timedc_common.dir/rng.cpp.o"
  "CMakeFiles/timedc_common.dir/rng.cpp.o.d"
  "CMakeFiles/timedc_common.dir/sim_time.cpp.o"
  "CMakeFiles/timedc_common.dir/sim_time.cpp.o.d"
  "libtimedc_common.a"
  "libtimedc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
