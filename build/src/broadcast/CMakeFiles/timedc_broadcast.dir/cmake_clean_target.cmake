file(REMOVE_RECURSE
  "libtimedc_broadcast.a"
)
