file(REMOVE_RECURSE
  "CMakeFiles/timedc_broadcast.dir/delta_causal.cpp.o"
  "CMakeFiles/timedc_broadcast.dir/delta_causal.cpp.o.d"
  "CMakeFiles/timedc_broadcast.dir/replicated_store.cpp.o"
  "CMakeFiles/timedc_broadcast.dir/replicated_store.cpp.o.d"
  "libtimedc_broadcast.a"
  "libtimedc_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
