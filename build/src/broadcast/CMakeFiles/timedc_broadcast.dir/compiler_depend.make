# Empty compiler generated dependencies file for timedc_broadcast.
# This may be replaced when dependencies are built.
