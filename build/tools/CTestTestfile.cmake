# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_figure1_untimed "/root/repo/build/tools/timedc-check" "--delta" "120" "/root/repo/tools/testdata/figure1.trace")
set_tests_properties(cli_figure1_untimed PROPERTIES  PASS_REGULAR_EXPRESSION "TSC\\(Delta=120us, eps=0us\\): no" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_figure1_timed_at_350 "/root/repo/build/tools/timedc-check" "--delta" "350" "/root/repo/tools/testdata/figure1.trace")
set_tests_properties(cli_figure1_timed_at_350 PROPERTIES  PASS_REGULAR_EXPRESSION "TSC\\(Delta=350us, eps=0us\\): yes" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_malformed_trace "/root/repo/build/tools/timedc-check" "/root/repo/tools/CMakeLists.txt")
set_tests_properties(cli_rejects_malformed_trace PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
