file(REMOVE_RECURSE
  "CMakeFiles/timedc-check.dir/timedc_check.cpp.o"
  "CMakeFiles/timedc-check.dir/timedc_check.cpp.o.d"
  "timedc-check"
  "timedc-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timedc-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
