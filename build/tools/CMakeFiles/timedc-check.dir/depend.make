# Empty dependencies file for timedc-check.
# This may be replaced when dependencies are built.
