
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/replicated_store_test.cpp" "tests/CMakeFiles/replicated_store_test.dir/replicated_store_test.cpp.o" "gcc" "tests/CMakeFiles/replicated_store_test.dir/replicated_store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broadcast/CMakeFiles/timedc_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/timedc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/timedc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/timedc_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/timedc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
