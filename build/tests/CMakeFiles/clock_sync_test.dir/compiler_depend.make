# Empty compiler generated dependencies file for clock_sync_test.
# This may be replaced when dependencies are built.
