file(REMOVE_RECURSE
  "CMakeFiles/clock_sync_test.dir/clock_sync_test.cpp.o"
  "CMakeFiles/clock_sync_test.dir/clock_sync_test.cpp.o.d"
  "clock_sync_test"
  "clock_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
