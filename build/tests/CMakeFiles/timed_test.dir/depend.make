# Empty dependencies file for timed_test.
# This may be replaced when dependencies are built.
