file(REMOVE_RECURSE
  "CMakeFiles/timed_test.dir/timed_test.cpp.o"
  "CMakeFiles/timed_test.dir/timed_test.cpp.o.d"
  "timed_test"
  "timed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
