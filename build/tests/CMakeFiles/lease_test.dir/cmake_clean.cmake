file(REMOVE_RECURSE
  "CMakeFiles/lease_test.dir/lease_test.cpp.o"
  "CMakeFiles/lease_test.dir/lease_test.cpp.o.d"
  "lease_test"
  "lease_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
