# Empty compiler generated dependencies file for sim_web_cache.
# This may be replaced when dependencies are built.
