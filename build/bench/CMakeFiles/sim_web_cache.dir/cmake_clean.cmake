file(REMOVE_RECURSE
  "CMakeFiles/sim_web_cache.dir/sim_web_cache.cpp.o"
  "CMakeFiles/sim_web_cache.dir/sim_web_cache.cpp.o.d"
  "sim_web_cache"
  "sim_web_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_web_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
