# Empty compiler generated dependencies file for sim_cost_vs_delta.
# This may be replaced when dependencies are built.
