file(REMOVE_RECURSE
  "CMakeFiles/sim_cost_vs_delta.dir/sim_cost_vs_delta.cpp.o"
  "CMakeFiles/sim_cost_vs_delta.dir/sim_cost_vs_delta.cpp.o.d"
  "sim_cost_vs_delta"
  "sim_cost_vs_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cost_vs_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
