# Empty compiler generated dependencies file for sim_epsilon_sensitivity.
# This may be replaced when dependencies are built.
