file(REMOVE_RECURSE
  "CMakeFiles/sim_epsilon_sensitivity.dir/sim_epsilon_sensitivity.cpp.o"
  "CMakeFiles/sim_epsilon_sensitivity.dir/sim_epsilon_sensitivity.cpp.o.d"
  "sim_epsilon_sensitivity"
  "sim_epsilon_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_epsilon_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
