file(REMOVE_RECURSE
  "CMakeFiles/sim_push_vs_pull.dir/sim_push_vs_pull.cpp.o"
  "CMakeFiles/sim_push_vs_pull.dir/sim_push_vs_pull.cpp.o.d"
  "sim_push_vs_pull"
  "sim_push_vs_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_push_vs_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
