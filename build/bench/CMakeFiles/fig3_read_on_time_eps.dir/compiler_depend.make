# Empty compiler generated dependencies file for fig3_read_on_time_eps.
# This may be replaced when dependencies are built.
