file(REMOVE_RECURSE
  "CMakeFiles/fig3_read_on_time_eps.dir/fig3_read_on_time_eps.cpp.o"
  "CMakeFiles/fig3_read_on_time_eps.dir/fig3_read_on_time_eps.cpp.o.d"
  "fig3_read_on_time_eps"
  "fig3_read_on_time_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_read_on_time_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
