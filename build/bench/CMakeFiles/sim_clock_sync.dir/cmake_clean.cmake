file(REMOVE_RECURSE
  "CMakeFiles/sim_clock_sync.dir/sim_clock_sync.cpp.o"
  "CMakeFiles/sim_clock_sync.dir/sim_clock_sync.cpp.o.d"
  "sim_clock_sync"
  "sim_clock_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_clock_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
