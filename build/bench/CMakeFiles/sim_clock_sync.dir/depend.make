# Empty dependencies file for sim_clock_sync.
# This may be replaced when dependencies are built.
