file(REMOVE_RECURSE
  "CMakeFiles/fig4_hierarchy.dir/fig4_hierarchy.cpp.o"
  "CMakeFiles/fig4_hierarchy.dir/fig4_hierarchy.cpp.o.d"
  "fig4_hierarchy"
  "fig4_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
