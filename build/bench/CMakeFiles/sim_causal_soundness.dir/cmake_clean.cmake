file(REMOVE_RECURSE
  "CMakeFiles/sim_causal_soundness.dir/sim_causal_soundness.cpp.o"
  "CMakeFiles/sim_causal_soundness.dir/sim_causal_soundness.cpp.o.d"
  "sim_causal_soundness"
  "sim_causal_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_causal_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
