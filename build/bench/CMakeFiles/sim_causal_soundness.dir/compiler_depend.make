# Empty compiler generated dependencies file for sim_causal_soundness.
# This may be replaced when dependencies are built.
