file(REMOVE_RECURSE
  "CMakeFiles/fig6_cc_execution.dir/fig6_cc_execution.cpp.o"
  "CMakeFiles/fig6_cc_execution.dir/fig6_cc_execution.cpp.o.d"
  "fig6_cc_execution"
  "fig6_cc_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cc_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
