# Empty dependencies file for fig6_cc_execution.
# This may be replaced when dependencies are built.
