# Empty dependencies file for fig2_read_on_time_perfect.
# This may be replaced when dependencies are built.
