file(REMOVE_RECURSE
  "CMakeFiles/fig2_read_on_time_perfect.dir/fig2_read_on_time_perfect.cpp.o"
  "CMakeFiles/fig2_read_on_time_perfect.dir/fig2_read_on_time_perfect.cpp.o.d"
  "fig2_read_on_time_perfect"
  "fig2_read_on_time_perfect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_read_on_time_perfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
