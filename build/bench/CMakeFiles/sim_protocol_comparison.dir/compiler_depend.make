# Empty compiler generated dependencies file for sim_protocol_comparison.
# This may be replaced when dependencies are built.
