file(REMOVE_RECURSE
  "CMakeFiles/sim_protocol_comparison.dir/sim_protocol_comparison.cpp.o"
  "CMakeFiles/sim_protocol_comparison.dir/sim_protocol_comparison.cpp.o.d"
  "sim_protocol_comparison"
  "sim_protocol_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
