file(REMOVE_RECURSE
  "CMakeFiles/sim_plausible_clocks.dir/sim_plausible_clocks.cpp.o"
  "CMakeFiles/sim_plausible_clocks.dir/sim_plausible_clocks.cpp.o.d"
  "sim_plausible_clocks"
  "sim_plausible_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_plausible_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
