# Empty dependencies file for sim_plausible_clocks.
# This may be replaced when dependencies are built.
