file(REMOVE_RECURSE
  "CMakeFiles/fig7_xi_maps.dir/fig7_xi_maps.cpp.o"
  "CMakeFiles/fig7_xi_maps.dir/fig7_xi_maps.cpp.o.d"
  "fig7_xi_maps"
  "fig7_xi_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_xi_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
