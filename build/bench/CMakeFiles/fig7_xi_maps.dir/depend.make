# Empty dependencies file for fig7_xi_maps.
# This may be replaced when dependencies are built.
