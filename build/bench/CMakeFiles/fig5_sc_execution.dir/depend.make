# Empty dependencies file for fig5_sc_execution.
# This may be replaced when dependencies are built.
