file(REMOVE_RECURSE
  "CMakeFiles/sim_delta_broadcast.dir/sim_delta_broadcast.cpp.o"
  "CMakeFiles/sim_delta_broadcast.dir/sim_delta_broadcast.cpp.o.d"
  "sim_delta_broadcast"
  "sim_delta_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_delta_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
