# Empty compiler generated dependencies file for sim_delta_broadcast.
# This may be replaced when dependencies are built.
