
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_nontimed_sc.cpp" "bench/CMakeFiles/fig1_nontimed_sc.dir/fig1_nontimed_sc.cpp.o" "gcc" "bench/CMakeFiles/fig1_nontimed_sc.dir/fig1_nontimed_sc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/timedc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/timedc_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/timedc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/timedc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/timedc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/timedc_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/timedc_web.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
