file(REMOVE_RECURSE
  "CMakeFiles/fig1_nontimed_sc.dir/fig1_nontimed_sc.cpp.o"
  "CMakeFiles/fig1_nontimed_sc.dir/fig1_nontimed_sc.cpp.o.d"
  "fig1_nontimed_sc"
  "fig1_nontimed_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_nontimed_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
