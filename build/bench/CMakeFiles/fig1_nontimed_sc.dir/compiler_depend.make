# Empty compiler generated dependencies file for fig1_nontimed_sc.
# This may be replaced when dependencies are built.
