// Web cache consistency policies compared (Section 4): the paper frames
// weak (TTL) versus strong (invalidation) web caching as timed consistency
// with different Delta. This demo reproduces the qualitative comparison of
// Gwertzman-Seltzer [19] and Cao-Liu [10] on one synthetic trace.
//
//   $ ./web_cache_policies
#include <cstdio>

#include "web/web_experiment.hpp"

using namespace timedc;

namespace {

WebExperimentConfig base_config() {
  WebExperimentConfig config;
  config.num_proxies = 4;
  config.num_documents = 48;
  config.mean_update_interval = SimTime::seconds(3);
  config.mean_request_interval = SimTime::millis(12);
  config.zipf_exponent = 0.9;
  config.horizon = SimTime::seconds(40);
  config.seed = 99;
  return config;
}

void report(const char* name, const WebExperimentResult& r) {
  std::printf("%-22s %8.2f%% %11.2f %12.0f %10.2f%% %11.0fus\n", name,
              100.0 * static_cast<double>(r.cache.hits) /
                  static_cast<double>(r.requests),
              r.origin_msgs_per_request, r.bytes_per_request,
              100.0 * r.stale_fraction, r.mean_stale_age_us);
}

}  // namespace

int main() {
  std::printf("4 proxies, 48 documents (Zipf 0.9), doc updates every ~3s,\n");
  std::printf("GET every ~12ms per proxy, 40 simulated seconds.\n\n");
  std::printf("%-22s %9s %11s %12s %11s %12s\n", "policy", "hit", "origin/req",
              "bytes/req", "stale", "stale-age");

  for (const std::int64_t ttl_ms : {50, 500, 5000}) {
    auto config = base_config();
    config.policy.policy = WebPolicy::kFixedTtl;
    config.policy.fixed_ttl = SimTime::millis(ttl_ms);
    const std::string name = "fixed-ttl " + std::to_string(ttl_ms) + "ms";
    report(name.c_str(), run_web_experiment(config));
  }
  {
    auto config = base_config();
    config.policy.policy = WebPolicy::kAdaptiveTtl;
    config.policy.adaptive_factor = 0.2;
    report("adaptive-ttl (Alex)", run_web_experiment(config));
  }
  {
    auto config = base_config();
    config.policy.policy = WebPolicy::kPollEveryTime;
    report("poll-every-time", run_web_experiment(config));
  }
  {
    auto config = base_config();
    config.policy.policy = WebPolicy::kInvalidate;
    const auto r = run_web_experiment(config);
    report("server-invalidation", r);
    std::printf("  (origin pushed %llu invalidations, peak per-doc state %zu)\n",
                static_cast<unsigned long long>(r.origin.invalidations_sent),
                r.origin.invalidation_state);
  }

  std::printf(
      "\nReading the table through the paper's lens: fixed-ttl(Delta) IS the\n"
      "TSC cache rule restricted to read-only clients — the TTL is Delta.\n"
      "Small Delta: fresh but chatty. Large Delta: cheap but stale.\n"
      "Invalidation is the Delta ~ propagation-latency end of the spectrum,\n"
      "paid for with per-document server state.\n");
  return 0;
}
