// Multi-user virtual environment on the TSC lifetime protocol — the
// motivating application of Section 4: "the action of one user must be seen
// by others in a timely fashion".
//
// Each player owns an avatar-position object that it updates continuously,
// and renders the other players' avatars by reading their objects through a
// TSC cache. The demo sweeps the timeliness threshold Delta and reports how
// stale the rendered world is versus how much network traffic the cache
// generates — the exact tradeoff the paper's conclusion discusses.
//
//   $ ./virtual_environment
#include <cstdio>

#include "protocol/experiment.hpp"

using namespace timedc;

int main() {
  std::printf("Virtual environment: 6 players, each writing its avatar\n");
  std::printf("position and reading everyone else's through a TSC cache.\n\n");
  std::printf("%12s %10s %12s %12s %10s %12s\n", "Delta", "hit-ratio",
              "msgs/frame", "bytes/frame", "stale>Delta", "max-lag");

  for (const std::int64_t delta_ms : {2, 5, 10, 25, 50, 100, -1}) {
    ExperimentConfig config;
    config.kind = ProtocolKind::kTimedSerial;
    config.delta = delta_ms < 0 ? SimTime::infinity()
                                : SimTime::millis(delta_ms);
    // "Frames": every player touches the world every ~15ms; one object per
    // player, everyone reads everyone (high sharing), ~25% of operations
    // are own-position updates.
    config.workload.num_clients = 6;
    config.workload.num_objects = 6;
    config.workload.write_ratio = 0.25;
    config.workload.mean_think_time = SimTime::millis(15);
    config.workload.zipf_exponent = 0;  // uniform: all avatars equally watched
    config.workload.horizon = SimTime::seconds(10);
    config.min_latency = SimTime::millis(1);
    config.max_latency = SimTime::millis(8);
    config.push = PushPolicy::kNone;
    config.seed = 2024;

    const auto r = run_experiment(config);
    std::printf("%12s %9.1f%% %12.2f %12.0f %9.2f%% %12s\n",
                config.delta.is_infinite()
                    ? "inf (SC)"
                    : (std::to_string(delta_ms) + "ms").c_str(),
                100.0 * r.cache.hit_ratio(), r.messages_per_op,
                r.bytes_per_op, 100.0 * r.late_fraction,
                r.max_staleness.to_string().c_str());
  }

  std::printf(
      "\nSmall Delta keeps every player's view fresh (low lag) at the cost\n"
      "of validations on nearly every frame; Delta = inf is the plain SC\n"
      "lifetime protocol: cheap, but a player can render positions that\n"
      "are arbitrarily old.\n");

  std::printf(
      "\nSame world driven through push-based update propagation\n"
      "(Section 5.2's asynchronous optimization), Delta = 10ms:\n");
  for (const PushPolicy push :
       {PushPolicy::kNone, PushPolicy::kInvalidate, PushPolicy::kUpdate}) {
    ExperimentConfig config;
    config.kind = ProtocolKind::kTimedSerial;
    config.delta = SimTime::millis(10);
    config.workload.num_clients = 6;
    config.workload.num_objects = 6;
    config.workload.write_ratio = 0.25;
    config.workload.mean_think_time = SimTime::millis(15);
    config.workload.zipf_exponent = 0;
    config.workload.horizon = SimTime::seconds(10);
    config.min_latency = SimTime::millis(1);
    config.max_latency = SimTime::millis(8);
    config.push = push;
    config.seed = 2024;
    const auto r = run_experiment(config);
    const char* name = push == PushPolicy::kNone
                           ? "pull-only "
                           : (push == PushPolicy::kInvalidate ? "invalidate"
                                                              : "push-update");
    std::printf("  %s: hit %5.1f%%  msgs/frame %5.2f  mean-staleness %7.0fus\n",
                name, 100.0 * r.cache.hit_ratio(), r.messages_per_op,
                r.mean_staleness_us);
  }
  return 0;
}
