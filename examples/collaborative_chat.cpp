// Collaborative real-time chat over Delta-causal broadcast (Section 4 /
// Baldoni et al. [7,8]): messages carry a lifetime; causally-dependent
// messages are never shown out of order, and a message that cannot be
// delivered before its deadline is dropped — in a live conversation, a
// reply that arrives after everyone moved on is worse than no reply.
//
//   $ ./collaborative_chat
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "broadcast/delta_causal.hpp"

using namespace timedc;

namespace {

const char* kScript[] = {
    "alice: anyone up for lunch?",        // 0 (alice)
    "bob:   yes! the usual place?",       // 1 (bob, replies to 0)
    "carol: count me in",                 // 2 (carol, replies to 0)
    "alice: 12:30 then",                  // 3 (alice, replies to 1 and 2)
};

struct ChatRoom {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<DeltaCausalEndpoint>> members;
  std::vector<std::vector<std::string>> screens;

  ChatRoom(std::size_t n, SimTime delta, SimTime min_lat, SimTime max_lat,
           double drop) {
    NetworkConfig config;
    config.drop_probability = drop;
    config.fifo_links = false;  // the internet reorders
    net = std::make_unique<Network>(
        sim, n, std::make_unique<UniformLatency>(min_lat, max_lat), config,
        Rng(7));
    screens.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<DeltaCausalEndpoint>(
          sim, *net, SiteId{i}, n, delta,
          [this, i](const BroadcastMessage& m, SimTime at) {
            screens[i].push_back(std::string(kScript[m.payload]) + "   [+" +
                                 std::to_string((at - m.sent_at).as_micros() /
                                                1000) +
                                 "ms]");
          }));
      members.back()->attach();
    }
  }
};

}  // namespace

int main() {
  // Alice (0), Bob (1), Carol (2). Replies are sent only after the message
  // they answer has been *delivered* locally, so they are causally ordered.
  const SimTime delta = SimTime::millis(400);
  ChatRoom room(3, delta, SimTime::millis(20), SimTime::millis(350),
                /*drop=*/0.15);

  room.sim.schedule_at(SimTime::zero(), [&] { room.members[0]->broadcast(0); });
  // Bob and Carol answer two simulated "reading delays" after seeing line 0;
  // wire that through the delivery callbacks by polling the screens.
  room.sim.schedule_at(SimTime::millis(500), [&] {
    if (!room.screens[1].empty()) room.members[1]->broadcast(1);
  });
  room.sim.schedule_at(SimTime::millis(600), [&] {
    if (!room.screens[2].empty()) room.members[2]->broadcast(2);
  });
  room.sim.schedule_at(SimTime::millis(1200), [&] {
    room.members[0]->broadcast(3);
  });
  room.sim.run_until();

  for (std::uint32_t i = 0; i < 3; ++i) {
    static const char* kNames[] = {"Alice", "Bob", "Carol"};
    std::printf("--- %s's screen ---\n", kNames[i]);
    for (const auto& line : room.screens[i]) {
      std::printf("  %s\n", line.c_str());
    }
    const auto& s = room.members[i]->stats();
    std::printf("  (delivered %llu, dropped-late %llu)\n\n",
                static_cast<unsigned long long>(s.delivered),
                static_cast<unsigned long long>(s.discarded_late));
  }
  std::printf(
      "Every screen shows replies after the message they answer (causal\n"
      "order), and any line that could not make it within Delta = %s was\n"
      "dropped rather than shown hopelessly late.\n",
      delta.to_string().c_str());
  return 0;
}
