// A shared tournament scoreboard on the push-replication architecture
// (ReplicatedStore over Delta-causal broadcast): every referee updates
// scores locally and the update reaches every display within Delta — or,
// if the network cannot make it in time, is dropped in favor of the next
// update rather than shown stale-but-late.
//
//   $ ./shared_scoreboard
#include <cstdio>
#include <memory>
#include <vector>

#include "broadcast/replicated_store.hpp"

using namespace timedc;

namespace {

constexpr std::size_t kSites = 4;  // 2 referees + 2 venue displays
const char* kNames[kSites] = {"referee-A", "referee-B", "lobby-display",
                              "arena-display"};
constexpr ObjectId kMatch1{12};  // prints as "M"
constexpr ObjectId kMatch2{13};  // prints as "N"

}  // namespace

int main() {
  const SimTime delta = SimTime::millis(200);
  Simulator sim;
  NetworkConfig config;
  config.fifo_links = false;
  config.drop_probability = 0.1;  // flaky venue Wi-Fi
  Network net(sim, kSites,
              std::make_unique<UniformLatency>(SimTime::millis(5),
                                               SimTime::millis(120)),
              config, Rng(2026));
  std::vector<std::unique_ptr<ReplicatedStore>> sites;
  for (std::uint32_t i = 0; i < kSites; ++i) {
    sites.push_back(
        std::make_unique<ReplicatedStore>(sim, net, SiteId{i}, kSites, delta));
    sites.back()->attach();
  }

  // Referees post running scores (encoded as points*100 + set).
  Rng rng(7);
  SimTime t = SimTime::zero();
  for (int update = 1; update <= 12; ++update) {
    t += SimTime::millis(rng.uniform_int(20, 200));
    const bool match1 = update % 2 == 1;
    sim.schedule_at(t, [&sites, match1, update] {
      sites[match1 ? 0 : 1]->write(match1 ? kMatch1 : kMatch2,
                                   Value{update * 100});
    });
  }
  sim.run_until();

  std::printf("Scoreboard after the session (Delta = %s, lossy Wi-Fi):\n\n",
              delta.to_string().c_str());
  std::printf("%-15s %10s %10s %12s %14s\n", "site", "match-1", "match-2",
              "delivered", "dropped-late");
  for (std::uint32_t i = 0; i < kSites; ++i) {
    const auto& stats = sites[i]->broadcast_stats();
    std::printf("%-15s %10lld %10lld %12llu %14llu\n", kNames[i],
                (long long)sites[i]->read(kMatch1).value,
                (long long)sites[i]->read(kMatch2).value,
                (unsigned long long)stats.delivered,
                (unsigned long long)stats.discarded_late);
  }
  std::printf(
      "\nEach display shows the newest score it received on time — never a\n"
      "hopelessly late one (the Delta-causal rule). A dropped update is\n"
      "healed by the next write to the same match; if the LAST update was\n"
      "lost (see any column disagreeing above), the divergence persists —\n"
      "the price of pure push. That residual gap is exactly what the\n"
      "paper's pull-based lifetime validation (or periodic anti-entropy)\n"
      "exists to close; see bench/sim_push_vs_pull for the tradeoff.\n");
  return 0;
}
