// The paper's Dow Jones / CNN scenario (Section 4), run on the TCC cache.
//
// A reader caches two pages: the Dow Jones index and a CNN front page, with
// no causal relation — the cache is causally consistent. Then CNN publishes
// an article about a sudden fall of the index: the new CNN page is causally
// AFTER the index update. When the reader downloads the article, reading the
// old cached index would violate CC — the TCC cache invalidates it. And even
// if the reader never revisits CNN, the beta rule bounds how long the stale
// index can survive: that is TCC's added value over plain CC.
//
//   $ ./stock_ticker
#include <cstdio>
#include <memory>
#include <vector>

#include "protocol/server.hpp"
#include "protocol/timed_causal_cache.hpp"

using namespace timedc;

namespace {

constexpr ObjectId kDowJones{3};  // prints as "D"
constexpr ObjectId kCnnPage{2};   // prints as "C"
constexpr SiteId kReader{0}, kAgency{1}, kServer{2};

struct World {
  Simulator sim;
  PerfectClock clock;
  Network net;
  ObjectServer server;
  TimedCausalCache reader;
  TimedCausalCache agency;

  explicit World(SimTime delta)
      : net(sim, 3, std::make_unique<FixedLatency>(SimTime::millis(5)),
            NetworkConfig{}, Rng(42)),
        server(sim, net, kServer, 2, PushPolicy::kNone, MessageSizes{}),
        reader(sim, net, kReader, kServer, &clock, delta, /*mark_old=*/false,
               MessageSizes{}, 2),
        agency(sim, net, kAgency, kServer, &clock, delta, /*mark_old=*/false,
               MessageSizes{}, 2) {
    server.attach();
    reader.attach();
    agency.attach();
  }

  Value read(TimedCausalCache& who, ObjectId what) {
    Value got{-1};
    who.read(what, [&](Value v, SimTime) { got = v; });
    sim.run_until();
    return got;
  }

  void write(TimedCausalCache& who, ObjectId what, Value v) {
    who.write(what, v, [](SimTime) {});
    sim.run_until();
  }

  void wait(SimTime t) {
    sim.schedule_after(t, [] {});
    sim.run_until();
  }
};

const char* page(Value v) {
  switch (v.value) {
    case 10500: return "Dow Jones at 10,500";
    case 8200: return "Dow Jones at 8,200 (crash!)";
    case 1: return "CNN front page: quiet news day";
    case 2: return "CNN: 'Dow plunges' -> links to the index";
    case 0: return "(empty page)";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("== Causal invalidation (the CC part of TCC) ==\n\n");
  {
    World w(SimTime::infinity());  // plain CC: no beta rule
    // The agency publishes the initial index and front page.
    w.write(w.agency, kDowJones, Value{10500});
    w.write(w.agency, kCnnPage, Value{1});
    // The reader caches the index page.
    std::printf("reader opens index: %s\n", page(w.read(w.reader, kDowJones)));

    // The crash: index falls, THEN CNN writes about it (causally after).
    w.write(w.agency, kDowJones, Value{8200});
    w.write(w.agency, kCnnPage, Value{2});

    // The reader downloads the CNN article: its timestamp is causally after
    // the index update, so the cached index page must die (serving it after
    // the article would violate CC).
    std::printf("reader downloads CNN: %s\n", page(w.read(w.reader, kCnnPage)));
    const auto invalidations = w.reader.stats().invalidations;
    std::printf("  -> cache invalidated %llu dependent page(s)\n",
                static_cast<unsigned long long>(invalidations));
    std::printf("reader re-opens index: %s\n\n",
                page(w.read(w.reader, kDowJones)));
  }

  std::printf("== Timeliness (the T part of TCC) ==\n\n");
  {
    // Same story, but the reader NEVER refreshes CNN. Plain CC would keep
    // serving the stale index for weeks; with Delta = 1s the beta rule
    // forces a revalidation.
    World cc(SimTime::infinity());
    World tcc(SimTime::seconds(1));
    for (World* w : {&cc, &tcc}) {
      w->write(w->agency, kDowJones, Value{10500});
      (void)w->read(w->reader, kDowJones);  // cached at 10,500
      w->write(w->agency, kDowJones, Value{8200});
      w->wait(SimTime::seconds(5));  // the reader is idle for 5 seconds
    }
    std::printf("5s after the crash, plain CC reader sees:  %s\n",
                page(cc.read(cc.reader, kDowJones)));
    std::printf("5s after the crash, TCC(1s)  reader sees:  %s\n",
                page(tcc.read(tcc.reader, kDowJones)));
  }
  return 0;
}
