// Quickstart: build a small execution history, check it against every
// consistency model in the library (LIN, SC, CC, timed, TSC, TCC), and see
// how the verdicts move as the timeliness threshold Delta varies.
//
//   $ ./quickstart
#include <cstdio>

#include "core/checkers.hpp"
#include "core/render.hpp"
#include "core/serialization.hpp"

using namespace timedc;

int main() {
  // Two sites share object X. Site 0 updates it; site 1 keeps reading a
  // stale copy for a while (think of site 1 as caching aggressively).
  constexpr SiteId kAlice{0}, kBob{1};
  constexpr ObjectId kX{23};

  HistoryBuilder builder(2);
  builder.write(kBob, kX, Value{1}, SimTime::micros(50));
  builder.write(kAlice, kX, Value{7}, SimTime::micros(100));
  builder.read(kBob, kX, Value{1}, SimTime::micros(150));
  builder.read(kBob, kX, Value{1}, SimTime::micros(280));
  builder.read(kBob, kX, Value{7}, SimTime::micros(420));
  const History h = builder.build();

  std::printf("The execution:\n\n%s\n", render_timeline(h).c_str());

  // Classic (untimed) models.
  const auto lin = check_lin(h);
  const auto sc = check_sc(h);
  const auto cc = check_cc(h);
  std::printf("linearizable:           %s\n", to_cstring(lin.verdict));
  std::printf("sequentially consistent: %s\n", to_cstring(sc.verdict));
  std::printf("causally consistent:     %s\n", to_cstring(cc.verdict));
  if (sc.ok()) {
    std::printf("  SC witness: %s\n",
                serialization_to_string(h, sc.witness).c_str());
  }

  // Timed consistency: how fresh must reads be?
  std::printf("\nsmallest Delta making every read on time: %s\n",
              min_timed_delta(h).to_string().c_str());
  for (const std::int64_t delta_us : {50, 100, 180, 500}) {
    const TimedSpecEpsilon spec{SimTime::micros(delta_us), SimTime::zero()};
    const auto tsc = check_tsc(h, spec);
    const auto tcc = check_tcc(h, spec);
    std::printf("Delta = %4lldus: TSC %-3s TCC %-3s", (long long)delta_us,
                tsc.ok() ? "yes" : "no", tcc.ok() ? "yes" : "no");
    if (!tsc.timing.all_on_time) {
      const auto& lr = tsc.timing.late_reads.front();
      std::printf("   (late: %s misses %s)",
                  h.op(lr.read).to_string().c_str(),
                  h.op(lr.w_r.front()).to_string().c_str());
    }
    std::printf("\n");
  }

  // With approximately-synchronized clocks (skew bound eps), Definition 2
  // is more forgiving: borderline-late reads become acceptable.
  const SimTime delta = SimTime::micros(170);
  for (const std::int64_t eps_us : {0, 5, 15}) {
    const auto timing =
        reads_on_time(h, TimedSpecEpsilon{delta, SimTime::micros(eps_us)});
    std::printf("Delta = 170us, eps = %2lldus: %s\n", (long long)eps_us,
                timing.all_on_time ? "every read on time"
                                   : "some read misses its deadline");
  }
  return 0;
}
