#!/usr/bin/env bash
# NET-B: timedc-load driven through timedc-chaos against a 2-replica
# timedc-server cluster, with injected resets, a healing partition, and a
# hard kill + WAL restart of one replica mid-run. The captured trace must
# still satisfy TSC at a Delta that covers the worst outage, the load run
# must abandon zero operations, and the supervision counters (reconnects,
# heartbeats, failovers) must be visible in the exported metrics.
#
# usage: ci/chaos_smoke.sh [build-dir] [artifact-dir]
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-chaos-artifacts}
mkdir -p "$OUT"
rm -f "$OUT"/a.wal.* "$OUT"/b.wal.*

A_PORT=7101 B_PORT=7102   # real replicas (site 0 and site 1)
CA_PORT=7201 CB_PORT=7202 # chaos-proxied client-facing ports

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

start_server_a() {
  "$BUILD"/tools/timedc-server --port $A_PORT --shards 1 --site-base 0 \
    --cluster-size 2 --peer 1:127.0.0.1:$B_PORT \
    --state-file "$OUT/a.wal" --duration-s 60 --drain-ms 300 \
    --metrics-out "$OUT/server_a_metrics.json" \
    >>"$OUT/server_a_out.txt" 2>>"$OUT/server_a_err.txt" &
  A_PID=$!
  PIDS+=("$A_PID")
}

: >"$OUT/server_a_out.txt"
start_server_a
"$BUILD"/tools/timedc-server --port $B_PORT --shards 1 --site-base 1 \
  --cluster-size 2 --peer 0:127.0.0.1:$A_PORT \
  --state-file "$OUT/b.wal" --duration-s 60 --drain-ms 300 \
  --metrics-out "$OUT/server_b_metrics.json" \
  >"$OUT/server_b_out.txt" 2>"$OUT/server_b_err.txt" &
B_PID=$!
PIDS+=("$B_PID")

for f in server_a_out server_b_out; do
  for _ in $(seq 1 50); do
    grep -q LISTENING "$OUT/$f.txt" 2>/dev/null && break
    sleep 0.1
  done
  grep -q LISTENING "$OUT/$f.txt" || { echo "FAIL: $f never listened"; exit 1; }
done

"$BUILD"/tools/timedc-chaos \
  --route $CA_PORT:127.0.0.1:$A_PORT --route $CB_PORT:127.0.0.1:$B_PORT \
  --latency-ms 2 --jitter-ms 3 --reset-every-ms 1500 \
  --partition-ms 4000:4200 --seed 7 --duration-s 45 \
  --metrics-out "$OUT/chaos_metrics.json" \
  >"$OUT/chaos_out.txt" 2>"$OUT/chaos_err.txt" &
CHAOS_PID=$!
PIDS+=("$CHAOS_PID")
for _ in $(seq 1 50); do
  grep -q PROXYING "$OUT/chaos_out.txt" 2>/dev/null && break
  sleep 0.1
done
grep -q PROXYING "$OUT/chaos_out.txt" || { echo "FAIL: chaos never proxied"; exit 1; }

# Clients reach the replicas only through the proxy. Retries + failover are
# on; --max-abandoned 0 makes any abandoned operation a hard failure. The
# op count is capped and think time stretches the run across the kill +
# partition window: the exhaustive TSC check is exponential in concurrent
# conflicting operations, so the traced run stays modest (~200 ops) while
# still living through every injected fault.
timeout 60 "$BUILD"/tools/timedc-load --ports $CA_PORT,$CB_PORT \
  --threads 2 --clients 3 --ops 33 --duration-s 0 --write-pct 40 \
  --think-us 300000 \
  --objects 16 --object-base 500000 --delta-us 50000 --seed 11 \
  --max-attempts 8 --retry-base-ms 100 --max-abandoned 0 \
  --min-ops-per-sec 5 \
  --history-out "$OUT/chaos.trace" \
  --metrics-out "$OUT/load_metrics.json" \
  >"$OUT/load_out.txt" 2>"$OUT/load_err.txt" &
LOAD_PID=$!
PIDS+=("$LOAD_PID")

# Mid-run crash: SIGKILL replica A (no drain, no flush beyond the WAL's
# per-record fflush), then restart it from its write log a second later.
sleep 3
kill -KILL "$A_PID"
wait "$A_PID" 2>/dev/null || true
sleep 1
start_server_a

LOAD_RC=0
wait "$LOAD_PID" || LOAD_RC=$?
cat "$OUT/load_out.txt"
[ "$LOAD_RC" -eq 0 ] || { echo "FAIL: timedc-load exited $LOAD_RC"; exit 1; }

kill -TERM "$A_PID" "$B_PID" 2>/dev/null || true
wait "$A_PID" 2>/dev/null || true
wait "$B_PID" 2>/dev/null || true
kill -TERM "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
PIDS=()

# The trace must serialize with every write visible within Delta=3s: the
# budget covers the 1s replica outage plus retry backoff and the partition.
"$BUILD"/tools/timedc-check --delta 3000000 "$OUT/chaos.trace"

python3 ci/validate_trace.py --metrics "$OUT/load_metrics.json" \
  --require-histogram latency_us --require-histogram staleness_us
python3 ci/validate_trace.py --metrics "$OUT/chaos_metrics.json"
python3 ci/validate_trace.py --metrics "$OUT/server_b_metrics.json"

# The supervision machinery must actually have been exercised: the load saw
# resets and an outage, so its transport reconnected, heartbeats flowed,
# and at least one operation failed over to the healthy replica.
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
with open(f"{out}/load_metrics.json") as f:
    load = json.load(f)["counters"]
with open(f"{out}/chaos_metrics.json") as f:
    chaos = json.load(f)["counters"]
for name in ("net.reconnects", "net.heartbeats_sent",
             "client.retries", "client.failovers"):
    if load.get(name, 0) <= 0:
        sys.exit(f"expected {name} > 0, got {load.get(name, 0)}")
if load.get("client.ops_abandoned", 0) != 0:
    sys.exit("abandoned operations slipped past the --max-abandoned gate")
for name in ("chaos.resets_injected", "chaos.partitions_healed",
             "chaos.bytes_forwarded"):
    if chaos.get(name, 0) <= 0:
        sys.exit(f"expected {name} > 0, got {chaos.get(name, 0)}")
print("chaos smoke OK:",
      {k: load[k] for k in ("net.reconnects", "net.heartbeats_sent",
                            "client.retries", "client.failovers")},
      "resets", chaos["chaos.resets_injected"])
EOF

echo "chaos smoke passed"
