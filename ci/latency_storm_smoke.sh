#!/usr/bin/env bash
# NET-C: clock sync + adaptive Delta through a latency storm.
#
# One timedc-server, three timedc-load runs through per-run chaos proxies
# that inject asymmetric base delay (3ms up / 1ms down — the worst case for
# Cristian's midpoint estimate) plus a triangular latency storm ramping to
# 25ms with 30% jitter:
#
#   A  adaptive: +-60ms injected clock skew, time sync on, adaptive Delta.
#      Must pass timedc-check TSC at Delta=100ms with the measured epsilon
#      ingested from the trace, abandon zero ops, and beat run B's mean
#      read latency.
#   B  static-conservative: same skew and sync, adaptive off, Delta=5ms —
#      below the stormed RTT, so reads keep revalidating. Still correct
#      (checked at Delta=100ms) but pays for it in read latency.
#   C  mis-calibrated: same +-60ms skew, NO sync. Its trace carries raw
#      skewed timestamps and no measured epsilon; the checker at eps=0 must
#      catch the violation (exit non-zero) — the negative control showing
#      the check has teeth.
#
# usage: ci/latency_storm_smoke.sh [build-dir] [artifact-dir]
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-storm-artifacts}
mkdir -p "$OUT"

SRV_PORT=7301
PA_PORT=7401 PB_PORT=7402 PC_PORT=7403

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

"$BUILD"/tools/timedc-server --port $SRV_PORT --shards 1 --duration-s 180 \
  --metrics-out "$OUT/server_metrics.json" \
  >"$OUT/server_out.txt" 2>"$OUT/server_err.txt" &
SRV_PID=$!
PIDS+=("$SRV_PID")
for _ in $(seq 1 50); do
  grep -q LISTENING "$OUT/server_out.txt" 2>/dev/null && break
  sleep 0.1
done
grep -q LISTENING "$OUT/server_out.txt" || { echo "FAIL: server never listened"; exit 1; }

# One proxy per run so each sees the storm from its own t=0 (the ramp is
# anchored to proxy start). Storm window 0..10s, peak 25ms extra one-way.
start_proxy() { # $1 local port, $2 tag
  "$BUILD"/tools/timedc-chaos --route "$1":127.0.0.1:$SRV_PORT \
    --latency-up-ms 3 --latency-down-ms 1 \
    --storm-ms 0:10000 --storm-peak-ms 25 --storm-jitter-pct 30 \
    --seed 7 --duration-s 60 \
    --metrics-out "$OUT/chaos_$2_metrics.json" \
    >"$OUT/chaos_$2_out.txt" 2>"$OUT/chaos_$2_err.txt" &
  PROXY_PID=$!
  PIDS+=("$PROXY_PID")
  for _ in $(seq 1 50); do
    grep -q PROXYING "$OUT/chaos_$2_out.txt" 2>/dev/null && break
    sleep 0.1
  done
  grep -q PROXYING "$OUT/chaos_$2_out.txt" || { echo "FAIL: proxy $2 never proxied"; exit 1; }
}

# The op count stays modest (2x2x30 = 120 ops) so the exhaustive TSC
# serializability search in timedc-check terminates; distinct site/object
# bases per run keep the server's (site, request_id) write dedup and the
# traces' value-uniqueness invariant happy across runs.
COMMON="--threads 2 --clients 2 --ops 30 --duration-s 0 --write-pct 25 \
  --objects 12 --seed 11 --clock-offset-us 60000 \
  --max-attempts 8 --retry-base-ms 100 --max-abandoned 0"

echo "--- run A: sync + adaptive Delta"
start_proxy $PA_PORT a
timeout 90 "$BUILD"/tools/timedc-load --ports $PA_PORT $COMMON \
  --delta-us 100000 --time-sync-ms 100 --adaptive-delta \
  --site-base 3000 --object-base 610000 \
  --history-out "$OUT/a.trace" --trace-out "$OUT/a_events.jsonl" \
  --metrics-out "$OUT/a_metrics.json" \
  >"$OUT/a_out.txt" 2>"$OUT/a_err.txt" || { cat "$OUT/a_err.txt"; echo "FAIL: run A load"; exit 1; }
cat "$OUT/a_out.txt"
kill -TERM "$PROXY_PID" 2>/dev/null || true; wait "$PROXY_PID" 2>/dev/null || true

echo "--- run B: sync, static conservative Delta"
start_proxy $PB_PORT b
timeout 90 "$BUILD"/tools/timedc-load --ports $PB_PORT $COMMON \
  --delta-us 5000 --time-sync-ms 100 \
  --site-base 4000 --object-base 620000 \
  --history-out "$OUT/b.trace" \
  --metrics-out "$OUT/b_metrics.json" \
  >"$OUT/b_out.txt" 2>"$OUT/b_err.txt" || { cat "$OUT/b_err.txt"; echo "FAIL: run B load"; exit 1; }
cat "$OUT/b_out.txt"
kill -TERM "$PROXY_PID" 2>/dev/null || true; wait "$PROXY_PID" 2>/dev/null || true

echo "--- run C: no sync, raw +-60ms skew (negative control)"
start_proxy $PC_PORT c
timeout 90 "$BUILD"/tools/timedc-load --ports $PC_PORT $COMMON \
  --delta-us 100000 \
  --site-base 5000 --object-base 630000 \
  --history-out "$OUT/c.trace" \
  --metrics-out "$OUT/c_metrics.json" \
  >"$OUT/c_out.txt" 2>"$OUT/c_err.txt" || { cat "$OUT/c_err.txt"; echo "FAIL: run C load"; exit 1; }
cat "$OUT/c_out.txt"
kill -TERM "$PROXY_PID" 2>/dev/null || true; wait "$PROXY_PID" 2>/dev/null || true

kill -TERM "$SRV_PID" 2>/dev/null || true
wait "$SRV_PID" 2>/dev/null || true
PIDS=()

# A: the trace records the measured pairwise epsilon; the checker must
# ingest it (Definition 2's eps-shrunken interference set) and say yes.
"$BUILD"/tools/timedc-check --delta 100000 "$OUT/a.trace" | tee "$OUT/a_check.txt"
grep -q "eps ingested from trace" "$OUT/a_check.txt" \
  || { echo "FAIL: run A check did not ingest the recorded eps"; exit 1; }
grep -Eq "TSC\(Delta=[0-9]+us, eps=[0-9]+us\): yes" "$OUT/a_check.txt" \
  || { echo "FAIL: run A is not timed-consistent"; exit 1; }

# B: synced clocks, so also correct at the wide Delta.
"$BUILD"/tools/timedc-check --delta 100000 "$OUT/b.trace" | tee "$OUT/b_check.txt"
grep -Eq "TSC\(Delta=[0-9]+us, eps=[0-9]+us\): yes" "$OUT/b_check.txt" \
  || { echo "FAIL: run B is not timed-consistent"; exit 1; }

# C: raw skewed clocks must NOT pass at eps=0 — the checker has to catch it.
C_RC=0
"$BUILD"/tools/timedc-check --delta 100000 "$OUT/c.trace" \
  >"$OUT/c_check.txt" 2>&1 || C_RC=$?
cat "$OUT/c_check.txt"
[ "$C_RC" -ne 0 ] || { echo "FAIL: mis-calibrated run C passed the checker"; exit 1; }

python3 ci/validate_trace.py --jsonl "$OUT/a_events.jsonl"
python3 ci/validate_trace.py --metrics "$OUT/a_metrics.json" \
  --require-histogram latency_us --require-histogram read_latency_us
python3 ci/validate_trace.py --metrics "$OUT/b_metrics.json"
python3 ci/validate_trace.py --metrics "$OUT/chaos_a_metrics.json"

# Cross-run assertions: sync actually ran and adapted, the storm actually
# delayed traffic in both directions, and adaptation bought read latency.
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
def load(name):
    with open(f"{out}/{name}") as f:
        return json.load(f)
a, b = load("a_metrics.json"), load("b_metrics.json")
chaos = load("chaos_a_metrics.json")

for name in ("client.sync.rounds_accepted",):
    if a["counters"].get(name, 0) <= 0:
        sys.exit(f"expected {name} > 0 in run A, got {a['counters'].get(name, 0)}")
if a["counters"].get("client.delta_adaptations", 0) <= 0:
    sys.exit("run A never adapted Delta")
if b["counters"].get("client.delta_adaptations", 0) != 0:
    sys.exit("run B adapted Delta with --adaptive-delta off")
for run in (a, b):
    if run["counters"].get("client.ops_abandoned", 0) != 0:
        sys.exit("abandoned operations slipped past the --max-abandoned gate")

eps = a["gauges"].get("load.eps_us", -1)
if not 0 <= eps < 100000:
    sys.exit(f"run A measured eps {eps}us is not a finite bound below Delta")

for h in ("chaos.delay_up_us", "chaos.delay_down_us"):
    hist = chaos["histograms"].get(h)
    if not hist or hist["count"] <= 0:
        sys.exit(f"storm proxy recorded no samples in {h}")
if chaos["histograms"]["chaos.delay_up_us"]["max"] < 3000:
    sys.exit("storm never exceeded the base uplink delay")

ra = a["gauges"]["load.read_latency_mean_us"]
rb = b["gauges"]["load.read_latency_mean_us"]
if ra >= rb:
    sys.exit(f"adaptive run A mean read latency {ra}us not below "
             f"static-conservative run B {rb}us")
print(f"latency storm OK: eps {eps}us, adaptations "
      f"{a['counters']['client.delta_adaptations']}, read latency "
      f"A {ra:.0f}us < B {rb:.0f}us")
EOF

echo "latency storm smoke passed"
