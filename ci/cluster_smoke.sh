#!/usr/bin/env bash
# NET-E: a 3-server partitioned object space behind a chaos proxy, driven
# by owner-aware timedc-load with deliberate misrouting. Every server owns
# a hash slice of the object space; misrouted requests must be forwarded
# to their owner server-to-server, misrouted fetches subscribe the
# non-owner as a cacher so later writes are pushed to it, and gossip
# membership must converge on all three members. The merged capped trace
# must still satisfy TSC at the configured Delta with the measured epsilon
# ingested, the run must abandon zero operations, and the forwarding /
# push / membership counters must be visible through timedc-top in JSON,
# Prometheus, and table modes.
#
# usage: ci/cluster_smoke.sh [build-dir] [artifact-dir]
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-cluster-artifacts}
mkdir -p "$OUT"
rm -f "$OUT"/[abc].wal.*

A_PORT=7301 B_PORT=7302 C_PORT=7303   # real servers (sites 0, 1, 2)
CA_PORT=7401 CB_PORT=7402 CC_PORT=7403 # chaos-proxied client-facing ports

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# Single-shard servers: server-to-server forwarding rides the per-reactor
# peer connections, so each cluster member is one reactor. Membership
# gossip piggybacks on the supervision heartbeats over the --peer routes.
start_server() { # name site port peer1 peer2
  local name=$1 site=$2 port=$3 peer1=$4 peer2=$5
  "$BUILD"/tools/timedc-server --port "$port" --shards 1 \
    --site-base "$site" --cluster --cluster-size 3 --cluster-push update \
    --peer "$peer1" --peer "$peer2" \
    --state-file "$OUT/$name.wal" --duration-s 120 --drain-ms 300 \
    --metrics-out "$OUT/server_${name}_metrics.json" \
    >"$OUT/server_${name}_out.txt" 2>"$OUT/server_${name}_err.txt" &
  PIDS+=("$!")
}

start_server a 0 $A_PORT 1:127.0.0.1:$B_PORT 2:127.0.0.1:$C_PORT
A_PID=${PIDS[-1]}
start_server b 1 $B_PORT 0:127.0.0.1:$A_PORT 2:127.0.0.1:$C_PORT
B_PID=${PIDS[-1]}
start_server c 2 $C_PORT 0:127.0.0.1:$A_PORT 1:127.0.0.1:$B_PORT
C_PID=${PIDS[-1]}

for f in server_a_out server_b_out server_c_out; do
  for _ in $(seq 1 50); do
    grep -q LISTENING "$OUT/$f.txt" 2>/dev/null && break
    sleep 0.1
  done
  grep -q LISTENING "$OUT/$f.txt" || { echo "FAIL: $f never listened"; exit 1; }
done

"$BUILD"/tools/timedc-chaos \
  --route $CA_PORT:127.0.0.1:$A_PORT --route $CB_PORT:127.0.0.1:$B_PORT \
  --route $CC_PORT:127.0.0.1:$C_PORT \
  --latency-ms 1 --jitter-ms 2 --seed 9 --duration-s 90 \
  --metrics-out "$OUT/chaos_metrics.json" \
  >"$OUT/chaos_out.txt" 2>"$OUT/chaos_err.txt" &
CHAOS_PID=$!
PIDS+=("$CHAOS_PID")
for _ in $(seq 1 50); do
  grep -q PROXYING "$OUT/chaos_out.txt" 2>/dev/null && break
  sleep 0.1
done
grep -q PROXYING "$OUT/chaos_out.txt" || { echo "FAIL: chaos never proxied"; exit 1; }

# Owner-aware dispatch with a deliberate 25% misroute rate: the misrouted
# quarter exercises forwarding (writes hop to the owner) and the cacher
# path (fetches subscribe the non-owner; later owner writes push back).
# --time-sync-ms measures epsilon against each server so the trace carries
# the eps directive timedc-check ingests. Zipf contention keeps multiple
# clients on the same hot objects; the op count stays modest because the
# exhaustive TSC check is exponential in concurrent conflicting writes.
timeout 90 "$BUILD"/tools/timedc-load \
  --ports $CA_PORT,$CB_PORT,$CC_PORT --cluster --misroute-pct 25 \
  --threads 2 --clients 3 --ops 40 --duration-s 0 --write-pct 40 \
  --think-us 100000 --zipf 0.9 \
  --objects 12 --object-base 600000 --delta-us 50000 --seed 13 \
  --max-attempts 8 --retry-base-ms 50 --max-abandoned 0 \
  --min-ops-per-sec 5 --time-sync-ms 250 \
  --history-out "$OUT/cluster.trace" \
  --metrics-out "$OUT/load_metrics.json" \
  >"$OUT/load_out.txt" 2>"$OUT/load_err.txt" || {
    echo "FAIL: timedc-load exited nonzero"; cat "$OUT/load_out.txt";
    cat "$OUT/load_err.txt"; exit 1; }
cat "$OUT/load_out.txt"

# Scrape the live servers over the wire (the servers keep serving for the
# full --duration-s): all three introspection modes of timedc-top.
for s in a:$A_PORT b:$B_PORT c:$C_PORT; do
  name=${s%%:*}; port=${s##*:}
  "$BUILD"/tools/timedc-top --port "$port" --once --json \
    >"$OUT/top_${name}.json"
  python3 ci/validate_top.py "$OUT/top_${name}.json" --reactors 1 \
    --require-ops --require-members 3
done
"$BUILD"/tools/timedc-top --port $A_PORT --once --prom >"$OUT/top_a.prom"
for metric in timedc_site_0_frames_dropped timedc_site_0_flight_overwritten \
              timedc_site_0_cluster_forwards_in timedc_site_0_cluster_pushes \
              timedc_site_0_cluster_members timedc_site_0_cluster_epoch; do
  grep -q "^$metric " "$OUT/top_a.prom" || {
    echo "FAIL: prom scrape missing $metric"; exit 1; }
done
"$BUILD"/tools/timedc-top --port $A_PORT --once >"$OUT/top_a_table.txt"
for col in DROPS OVFL FWD PUSH MEMB; do
  grep -q "$col" "$OUT/top_a_table.txt" || {
    echo "FAIL: table scrape missing $col column"; exit 1; }
done

kill -TERM "$A_PID" "$B_PID" "$C_PID" 2>/dev/null || true
wait "$A_PID" 2>/dev/null || true
wait "$B_PID" 2>/dev/null || true
wait "$C_PID" 2>/dev/null || true
kill -TERM "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
PIDS=()

# The merged trace must serialize with every write visible within Delta=2s
# (proxy latency + one forwarding hop + retry backoff all fit); the eps
# directive measured by --time-sync-ms is ingested from the trace itself.
"$BUILD"/tools/timedc-check --delta 2000000 "$OUT/cluster.trace"

python3 ci/validate_trace.py --metrics "$OUT/load_metrics.json" \
  --require-histogram latency_us --require-histogram staleness_us
python3 ci/validate_trace.py --metrics "$OUT/chaos_metrics.json"
for name in a b c; do
  python3 ci/validate_trace.py --metrics "$OUT/server_${name}_metrics.json"
done

# The cluster machinery must actually have been exercised: requests were
# misrouted, so forwards crossed servers, fetch misses subscribed cachers,
# owner writes pushed to them, and gossip converged (validate_top already
# pinned cluster.members == 3 on every board).
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
with open(f"{out}/load_metrics.json") as f:
    load = json.load(f)["counters"]
if load.get("load.misrouted", 0) <= 0:
    sys.exit("expected load.misrouted > 0: ring dispatch never misrouted")
if load.get("client.ops_abandoned", 0) != 0:
    sys.exit("abandoned operations slipped past the --max-abandoned gate")

totals = {}
for name in ("a", "b", "c"):
    with open(f"{out}/top_{name}.json") as f:
        doc = json.load(f)
    for entry in doc["sites"]:
        for key, value in entry["stats"].items():
            totals[key] = totals.get(key, 0) + value
for key in ("cluster.forwards_out", "cluster.forwards_in",
            "cluster.pushes", "cluster.membership_sent",
            "cluster.membership_received"):
    if totals.get(key, 0) <= 0:
        sys.exit(f"expected summed {key} > 0, got {totals.get(key, 0)}")
if totals.get("cluster.hops_exceeded", 0) != 0:
    sys.exit("forwarding loop: cluster.hops_exceeded is nonzero")
print("cluster smoke OK:",
      {k: totals[k] for k in ("cluster.forwards_out", "cluster.forwards_in",
                              "cluster.pushes", "cluster.replica_hits")},
      "misrouted", load["load.misrouted"])
EOF

echo "cluster smoke passed"
