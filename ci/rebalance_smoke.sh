#!/usr/bin/env bash
# NET-F: self-healing under churn and overload. A 3-member cluster serves
# owner-aware load; one member is SIGKILLed mid-run and gossip must
# rebalance the ring onto the survivors without operator input. The killed
# member then restarts from its WAL and must warm its slice back up over
# kSliceSync (anti-entropy from the survivors) before it serves. A final
# overload burst must trip the admission gate — reads shed with
# kOverloaded, writes defer but never drop. Gates: zero abandoned
# operations in every phase, nonzero rebalance / slice-sync / shed
# counters, ring re-learning observed by the client, and the merged trace
# of all four phases passing timedc-check TSC.
#
# Each phase uses its own client site band and object range, so the merged
# history keeps per-site times strictly increasing and phase boundaries
# cannot manufacture cross-phase staleness (a slice whose owner died takes
# new writes under LWW; reads of never-rewritten cold objects are simply
# not part of the workload).
#
# usage: ci/rebalance_smoke.sh [build-dir] [artifact-dir]
set -euo pipefail

BUILD=${1:-build}
OUT=${2:-rebalance-artifacts}
mkdir -p "$OUT"
rm -f "$OUT"/[abc].wal.*

A_PORT=7501 B_PORT=7502 C_PORT=7503   # sites 0, 1, 2

PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# Fast failure detection for CI: suspect after 3 missed 100ms heartbeats,
# dead 400ms later. Admission is armed on every member (500 ops/s, burst
# 16) — the steady phases run far below the rate, only the burst phase
# trips it. The killed member's restart adds --warm-up.
start_server() { # name site port peer1 peer2 [extra flags...]
  local name=$1 site=$2 port=$3 peer1=$4 peer2=$5
  shift 5
  "$BUILD"/tools/timedc-server --port "$port" --shards 1 \
    --site-base "$site" --cluster --cluster-size 3 --cluster-push update \
    --peer "$peer1" --peer "$peer2" \
    --heartbeat-ms 100 --dead-grace-ms 400 \
    --admit-rate 500 --admit-burst 16 \
    --state-file "$OUT/$name.wal" --duration-s 240 --drain-ms 300 \
    --metrics-out "$OUT/server_${name}_metrics.json" "$@" \
    >>"$OUT/server_${name}_out.txt" 2>>"$OUT/server_${name}_err.txt" &
  PIDS+=("$!")
}

: >"$OUT/server_a_out.txt"; : >"$OUT/server_b_out.txt"; : >"$OUT/server_c_out.txt"
start_server a 0 $A_PORT 1:127.0.0.1:$B_PORT 2:127.0.0.1:$C_PORT
A_PID=${PIDS[-1]}
start_server b 1 $B_PORT 0:127.0.0.1:$A_PORT 2:127.0.0.1:$C_PORT
B_PID=${PIDS[-1]}
start_server c 2 $C_PORT 0:127.0.0.1:$A_PORT 1:127.0.0.1:$B_PORT
C_PID=${PIDS[-1]}

for f in server_a_out server_b_out server_c_out; do
  for _ in $(seq 1 50); do
    grep -q LISTENING "$OUT/$f.txt" 2>/dev/null && break
    sleep 0.1
  done
  grep -q LISTENING "$OUT/$f.txt" || { echo "FAIL: $f never listened"; exit 1; }
done

run_load() { # phase ports extra-flags...
  local phase=$1 ports=$2
  shift 2
  timeout 60 "$BUILD"/tools/timedc-load \
    --ports "$ports" --cluster \
    --threads 2 --duration-s 0 --delta-us 50000 \
    --max-abandoned 0 --min-ops-per-sec 3 --time-sync-ms 250 \
    --history-out "$OUT/phase${phase}.trace" \
    --metrics-out "$OUT/load${phase}_metrics.json" "$@" \
    >"$OUT/load${phase}_out.txt" 2>"$OUT/load${phase}_err.txt" || {
      echo "FAIL: phase $phase timedc-load exited nonzero"
      cat "$OUT/load${phase}_out.txt" "$OUT/load${phase}_err.txt"; exit 1; }
  cat "$OUT/load${phase}_out.txt"
}

# Expects the summed value of a stat key scraped from one server's board
# to reach a floor; polls until it does or times out.
wait_for_stat() { # port key floor tries what
  local port=$1 key=$2 floor=$3 tries=$4 what=$5
  for _ in $(seq 1 "$tries"); do
    if "$BUILD"/tools/timedc-top --port "$port" --once --json \
        >"$OUT/poll.json" 2>/dev/null; then
      if python3 - "$OUT/poll.json" "$key" "$floor" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
total = sum(e["stats"].get(sys.argv[2], 0) for e in doc["sites"])
sys.exit(0 if total >= int(sys.argv[3]) else 1)
EOF
      then return 0; fi
    fi
    sleep 0.2
  done
  echo "FAIL: $what (never saw $key >= $floor on port $port)"
  exit 1
}

# ---- Phase 1: healthy baseline, all three members serving -------------
run_load 1 $A_PORT,$B_PORT,$C_PORT \
  --clients 3 --ops 30 --write-pct 50 --think-us 50000 --zipf 0.9 \
  --objects 18 --object-base 600000 --site-base 100 --seed 21 \
  --max-attempts 8 --retry-base-ms 40

# ---- SIGKILL member C: gossip must rebalance without operator input ---
kill -KILL "$C_PID"
wait "$C_PID" 2>/dev/null || true
wait_for_stat $A_PORT cluster.rebalances 1 100 "A never rebalanced after C died"
wait_for_stat $B_PORT cluster.rebalances 1 100 "B never rebalanced after C died"
echo "rebalanced onto survivors"

# ---- Phase 2: degraded serving on the survivors -----------------------
# Writes-only: these objects are what the restarted C must later pull over
# kSliceSync (the survivors own them now; roughly a third remaps to C).
run_load 2 $A_PORT,$B_PORT \
  --clients 3 --ops 30 --write-pct 100 --think-us 20000 \
  --objects 24 --object-base 610000 --site-base 200 --seed 22 \
  --max-attempts 8 --retry-base-ms 40

# ---- Restart C: WAL replay + ring re-join + kSliceSync warm-up --------
start_server c 2 $C_PORT 0:127.0.0.1:$A_PORT 1:127.0.0.1:$B_PORT \
  --warm-up --warm-timeout-ms 10000
C_PID=${PIDS[-1]}
for _ in $(seq 1 100); do
  grep -q "WARMED 2 synced" "$OUT/server_c_out.txt" 2>/dev/null && break
  sleep 0.2
done
grep -q "WARMED 2 synced" "$OUT/server_c_out.txt" || {
  echo "FAIL: restarted member never finished anti-entropy warm-up"
  cat "$OUT/server_c_out.txt" "$OUT/server_c_err.txt"; exit 1; }
wait_for_stat $C_PORT cluster.slices_synced 1 50 "C warmed without syncing"
wait_for_stat $A_PORT cluster.rebalances 2 100 "A never re-added C"
wait_for_stat $B_PORT cluster.rebalances 2 100 "B never re-added C"
echo "member C warmed up and re-joined the ring"

# ---- Phase 3: healed cluster, deliberate misrouting -------------------
# The ring has moved off the configured baseline (epoch > 0), so misrouted
# requests must come back with kRingUpdate hints the client adopts.
run_load 3 $A_PORT,$B_PORT,$C_PORT \
  --clients 3 --ops 30 --write-pct 40 --think-us 20000 --misroute-pct 30 \
  --objects 18 --object-base 620000 --site-base 300 --seed 23 \
  --max-attempts 8 --retry-base-ms 40

# ---- Phase 4: overload burst — the admission gate must trip -----------
# Zero think time and read-heavy: demand far exceeds 500 ops/s per member,
# so reads shed (kOverloaded + client retry) while writes defer briefly
# and still land. --max-abandoned 0 proves shedding never strands an op.
run_load 4 $A_PORT,$B_PORT,$C_PORT \
  --clients 4 --ops 60 --write-pct 20 --think-us 0 \
  --objects 18 --object-base 630000 --site-base 400 --seed 24 \
  --max-attempts 10 --retry-base-ms 20

# ---- Scrape every board while the servers still serve -----------------
for s in a:$A_PORT b:$B_PORT c:$C_PORT; do
  name=${s%%:*}; port=${s##*:}
  "$BUILD"/tools/timedc-top --port "$port" --once --json \
    >"$OUT/top_${name}.json"
  python3 ci/validate_top.py "$OUT/top_${name}.json" --reactors 1 \
    --require-ops --require-members 3
done
"$BUILD"/tools/timedc-top --port $A_PORT --once --prom >"$OUT/top_a.prom"
for metric in timedc_site_0_cluster_ring_epoch \
              timedc_site_0_cluster_rebalances \
              timedc_site_0_cluster_slices_synced \
              timedc_site_0_cluster_reads_shed \
              timedc_site_0_cluster_writes_deferred \
              timedc_site_0_cluster_overloaded_replies; do
  grep -q "^$metric " "$OUT/top_a.prom" || {
    echo "FAIL: prom scrape missing $metric"; exit 1; }
done
"$BUILD"/tools/timedc-top --port $A_PORT --once >"$OUT/top_a_table.txt"
for col in RBAL WARM SHED; do
  grep -q "$col" "$OUT/top_a_table.txt" || {
    echo "FAIL: table scrape missing $col column"; exit 1; }
done

kill -TERM "$A_PID" "$B_PID" "$C_PID" 2>/dev/null || true
wait "$A_PID" 2>/dev/null || true
wait "$B_PID" 2>/dev/null || true
wait "$C_PID" 2>/dev/null || true
PIDS=()

# ---- Merge the four phase traces and check TSC ------------------------
# Site bands and object ranges are disjoint per phase, so the merge is a
# single header (max sites, max measured eps) over the union of the op
# lines. Delta=3s covers the forwarding hop, retry backoff under shedding,
# and the rebalance windows.
python3 - "$OUT" <<'EOF'
import sys
out = sys.argv[1]
sites, eps, ops = 0, None, []
for phase in (1, 2, 3, 4):
    with open(f"{out}/phase{phase}.trace") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head = line.split()
            if head[0] == "sites":
                sites = max(sites, int(head[1]))
            elif head[0] == "eps":
                eps = max(eps or 0, int(head[1]))
            else:
                ops.append(line)
with open(f"{out}/merged.trace", "w") as f:
    f.write(f"# NET-F merged trace\nsites {sites}\n")
    if eps is not None:
        f.write(f"eps {eps}\n")
    f.write("\n".join(ops) + "\n")
print(f"merged {len(ops)} ops across 4 phases (sites={sites}, eps={eps})")
EOF
"$BUILD"/tools/timedc-check --delta 3000000 "$OUT/merged.trace"

for phase in 1 2 3 4; do
  python3 ci/validate_trace.py --metrics "$OUT/load${phase}_metrics.json"
done

# ---- The self-healing machinery must actually have fired --------------
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]

loads = {}
for phase in (1, 2, 3, 4):
    with open(f"{out}/load{phase}_metrics.json") as f:
        loads[phase] = json.load(f)["counters"]
for phase, counters in loads.items():
    if counters.get("load.ops_abandoned", 0) != 0:
        sys.exit(f"phase {phase}: abandoned operations slipped past the gate")
if loads[3].get("load.ring_updates", 0) <= 0:
    sys.exit("phase 3: client never re-learned the ring from bounce hints")
if loads[4].get("load.overloaded", 0) <= 0:
    sys.exit("phase 4: client never saw a kOverloaded retry-after")

totals = {}
for name in ("a", "b", "c"):
    with open(f"{out}/top_{name}.json") as f:
        doc = json.load(f)
    for entry in doc["sites"]:
        for key, value in entry["stats"].items():
            totals[key] = totals.get(key, 0) + value
checks = {
    "cluster.rebalances": 4,     # kill + re-join on each survivor
    "cluster.slices_synced": 1,  # C pulled phase-2 state over kSliceSync
    "cluster.reads_shed": 1,     # the burst tripped the admission gate
    "cluster.overloaded_replies": 1,
    "cluster.ring_epoch": 1,     # the ring left the configured baseline
}
for key, floor in checks.items():
    if totals.get(key, 0) < floor:
        sys.exit(f"expected summed {key} >= {floor}, got {totals.get(key, 0)}")
if totals.get("cluster.hops_exceeded", 0) != 0:
    sys.exit("forwarding loop: cluster.hops_exceeded is nonzero")
print("rebalance smoke OK:",
      {k: totals[k] for k in checks})
EOF

echo "rebalance smoke passed"
