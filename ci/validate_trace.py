#!/usr/bin/env python3
"""Schema validation for the observability exports, used by CI.

Validates any combination of:
  --jsonl FILE    canonical JSONL trace (one event object per line)
  --chrome FILE   Chrome trace_event document (chrome://tracing / Perfetto)
  --metrics FILE  metrics JSON: either one registry document
                  {"counters","gauges","histograms"} or a map of named
                  registries (e.g. {"sc": {...}, "tsc": {...}})

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

# Must match to_cstring(TraceEventType) in src/obs/trace.cpp.
EVENT_TYPES = {
    "op.issue", "op.retry", "op.reply", "op.abandon",
    "cache.hit", "cache.miss", "cache.validate",
    "lease.grant", "lease.expire", "push.invalidate", "push.update",
    "write.apply", "write.defer", "server.crash", "server.restart",
    "net.send", "net.drop", "net.dup", "net.deliver",
    "partition.open", "partition.heal",
    "bcast.send", "bcast.deliver", "bcast.discard",
    "check.enter", "check.fastpath", "check.prune", "check.verdict",
    "clock.sync", "clock.reject", "clock.eps",
    "delta.adapt",
    "reactor.stage", "reactor.slowtick", "read.staleness", "stats.scrape",
    "cluster.forward", "cluster.push", "cluster.member",
}

# reactor.stage (a) indexes the Stage enum: decode/apply/enqueue/flush.
NUM_STAGES = 4
EVENT_KEYS = {"t", "type", "site", "obj", "op", "a", "b"}


def check_event_schema(ev, where):
    """Per-type field constraints beyond the generic key/type checks."""
    t, a, b = ev["type"], ev["a"], ev["b"]
    if t == "clock.sync" and b < 0:
        fail(f"{where}: clock.sync RTT (b) must be >= 0, got {b}")
    if t == "clock.reject":
        if a not in (0, 1):
            fail(f"{where}: clock.reject reason (a) must be 0|1, got {a}")
        if b < 0:
            fail(f"{where}: clock.reject RTT (b) must be >= 0, got {b}")
    if t == "clock.eps" and b < -1:
        fail(f"{where}: clock.eps bound (b) below the -1 sentinel, got {b}")
    if t == "delta.adapt" and (a < 0 or b < 0):
        fail(f"{where}: delta.adapt effective/shed (a/b) must be >= 0, "
             f"got {a}/{b}")
    if t == "reactor.stage":
        if not 0 <= a < NUM_STAGES:
            fail(f"{where}: reactor.stage stage (a) must be 0..{NUM_STAGES - 1}, "
                 f"got {a}")
        if b < 0:
            fail(f"{where}: reactor.stage duration (b) must be >= 0, got {b}")
    if t == "reactor.slowtick" and (b <= 0 or a < b):
        fail(f"{where}: reactor.slowtick needs duration (a) >= threshold (b) "
             f"> 0, got {a}/{b}")
    if t == "read.staleness":
        if ev["obj"] < 0:
            fail(f"{where}: read.staleness must name the object read")
        if b < 0:
            fail(f"{where}: read.staleness (b) must be >= 0, got {b}")
    if t == "stats.scrape" and (a < 0 or b <= 0):
        fail(f"{where}: stats.scrape requester/bytes (a/b) must be "
             f">= 0 / > 0, got {a}/{b}")
    if t == "cluster.forward":
        if ev["obj"] < 0:
            fail(f"{where}: cluster.forward must name the forwarded object")
        if a < 0 or b < 0:
            fail(f"{where}: cluster.forward owner/hops (a/b) must be >= 0, "
                 f"got {a}/{b}")
    if t == "cluster.push":
        if ev["obj"] < 0:
            fail(f"{where}: cluster.push must name the pushed object")
        if a < 0:
            fail(f"{where}: cluster.push cacher (a) must be >= 0, got {a}")
        if b not in (0, 1):
            fail(f"{where}: cluster.push mode (b) must be 0|1, got {b}")
    if t == "cluster.member":
        if a < 0:
            fail(f"{where}: cluster.member site (a) must be >= 0, got {a}")
        if b not in (0, 1, 2):
            fail(f"{where}: cluster.member status (b) must be 0|1|2, got {b}")


def fail(msg):
    sys.exit(f"validate_trace: {msg}")


def validate_jsonl(path):
    prev_t = None
    count = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{path}:{lineno}: blank line")
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not JSON ({e})")
            if set(ev) != EVENT_KEYS:
                fail(f"{path}:{lineno}: keys {sorted(ev)} != {sorted(EVENT_KEYS)}")
            if ev["type"] not in EVENT_TYPES:
                fail(f"{path}:{lineno}: unknown event type {ev['type']!r}")
            for k in ("t", "site", "obj", "op", "a", "b"):
                if not isinstance(ev[k], int):
                    fail(f"{path}:{lineno}: field {k!r} is not an integer")
            if ev["site"] < 0 or ev["op"] < 0:
                fail(f"{path}:{lineno}: negative site/op")
            if ev["obj"] < -1:
                fail(f"{path}:{lineno}: obj below the -1 sentinel")
            if prev_t is not None and ev["t"] < prev_t:
                fail(f"{path}:{lineno}: timestamps decrease ({ev['t']} < {prev_t})")
            check_event_schema(ev, f"{path}:{lineno}")
            prev_t = ev["t"]
            count += 1
    if count == 0:
        fail(f"{path}: empty trace")
    print(f"validate_trace: {path}: {count} events OK")


def validate_chrome(path):
    with open(path) as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents")
    events = doc["traceEvents"]
    if not events:
        fail(f"{path}: no trace events")
    begins = sum(1 for e in events if e.get("ph") == "B")
    ends = sum(1 for e in events if e.get("ph") == "E")
    if begins != ends:
        fail(f"{path}: unbalanced spans ({begins} B vs {ends} E)")
    for e in events:
        if "ph" not in e or "pid" not in e:
            fail(f"{path}: event missing ph/pid: {e}")
        if e["ph"] in ("B", "E", "i") and "ts" not in e:
            fail(f"{path}: timed event missing ts: {e}")
    print(f"validate_trace: {path}: {len(events)} chrome events OK "
          f"({begins} spans)")


def validate_registry(name, reg, require_histograms):
    for section in ("counters", "gauges", "histograms"):
        if section not in reg:
            fail(f"{name}: missing {section!r} section")
    for hname in require_histograms:
        if hname not in reg["histograms"]:
            fail(f"{name}: missing histogram {hname!r}")
    for hname, h in reg["histograms"].items():
        for key in ("count", "sum", "min", "max", "buckets"):
            if key not in h:
                fail(f"{name}: histogram {hname!r} missing {key!r}")
        if h["buckets"][-1]["le"] != "inf":
            fail(f"{name}: histogram {hname!r} last bucket is not overflow")
        total = sum(b["count"] for b in h["buckets"])
        if total != h["count"]:
            fail(f"{name}: histogram {hname!r} bucket sum {total} != "
                 f"count {h['count']}")


def validate_metrics(path, require_histograms):
    with open(path) as f:
        doc = json.load(f)
    if "histograms" in doc:
        registries = {path: doc}
    else:
        registries = {f"{path}[{k}]": v for k, v in doc.items()}
        if not registries:
            fail(f"{path}: empty metrics document")
    for name, reg in registries.items():
        validate_registry(name, reg, require_histograms)
    print(f"validate_trace: {path}: {len(registries)} metrics "
          f"registr{'y' if len(registries) == 1 else 'ies'} OK")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--jsonl")
    parser.add_argument("--chrome")
    parser.add_argument("--metrics")
    parser.add_argument(
        "--require-histogram", action="append", default=[],
        help="histogram name that must exist in every metrics registry")
    args = parser.parse_args()
    if not (args.jsonl or args.chrome or args.metrics):
        fail("nothing to validate (pass --jsonl/--chrome/--metrics)")
    if args.jsonl:
        validate_jsonl(args.jsonl)
    if args.chrome:
        validate_chrome(args.chrome)
    if args.metrics:
        validate_metrics(args.metrics, args.require_histogram)


if __name__ == "__main__":
    main()
