#!/usr/bin/env python3
"""Schema + floor validation for BENCH_net.json (bench/net_throughput), used
by the net-throughput CI job.

Checks:
  * the document shape: config block, non-empty sweep, per-point fields;
  * every sweep point hits --min-ops-per-sec (a generous floor well under
    the recorded numbers — this catches collapse, not jitter);
  * the steady-state hot path stayed allocation-free on every reactor
    thread (reactor_allocs == 0) unless --allow-allocs is given;
  * write coalescing actually happened (frames_per_sendmsg > 1);
  * the flight recorder was armed for the sweep and actually recorded
    (flight_recorded > 0 per point), and the off/on overhead comparison
    block is present — the zero-alloc and floor gates therefore hold WITH
    observability on, which is the claim the flight recorder makes.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

POINT_KEYS = {
    "reactors", "connections", "ops", "ops_per_sec", "speedup_vs_baseline",
    "reactor_allocs", "allocs_per_op", "frames_per_sendmsg", "batch_flushes",
    "steered_connections", "flight_recorded",
}

FLIGHT_KEYS = {"sweep_enabled", "off_ops_per_sec", "on_ops_per_sec",
               "overhead_pct"}


def fail(msg):
    sys.exit(f"validate_bench_net: {msg}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("--min-ops-per-sec", type=float, default=150000.0)
    ap.add_argument("--allow-allocs", action="store_true",
                    help="skip the zero-allocation gate (open-loop runs "
                    "idle between arrivals and may touch the heap)")
    args = ap.parse_args()

    with open(args.report) as f:
        d = json.load(f)

    if d.get("bench") != "net_throughput":
        fail(f"not a net_throughput report: bench={d.get('bench')!r}")
    for key in ("baseline_ops_per_sec", "config", "sweep",
                "peak_ops_per_sec", "peak_speedup_vs_baseline",
                "flight_recorder"):
        if key not in d:
            fail(f"missing top-level key {key!r}")
    flight = d["flight_recorder"]
    missing = FLIGHT_KEYS - flight.keys()
    if missing:
        fail(f"flight_recorder block missing keys {sorted(missing)}")
    if flight["sweep_enabled"] is not True:
        fail("sweep was not recorded with the flight recorder enabled")
    if flight["off_ops_per_sec"] < args.min_ops_per_sec:
        fail(f"flight-off control run {flight['off_ops_per_sec']:.0f} ops/s "
             f"is under the {args.min_ops_per_sec:.0f} floor")
    cfg = d["config"]
    for key in ("connections_per_reactor", "pipeline", "measure_s", "objects"):
        if key not in cfg:
            fail(f"missing config key {key!r}")
    sweep = d["sweep"]
    if not isinstance(sweep, list) or not sweep:
        fail("sweep must be a non-empty list")

    for i, p in enumerate(sweep):
        where = f"sweep[{i}]"
        missing = POINT_KEYS - p.keys()
        if missing:
            fail(f"{where}: missing keys {sorted(missing)}")
        if p["reactors"] < 1 or p["connections"] < p["reactors"]:
            fail(f"{where}: implausible reactors/connections")
        if p["ops"] <= 0:
            fail(f"{where}: no operations completed")
        if p["ops_per_sec"] < args.min_ops_per_sec:
            fail(f"{where}: {p['ops_per_sec']:.0f} ops/s is under the "
                 f"{args.min_ops_per_sec:.0f} floor at "
                 f"{p['reactors']} reactor(s)")
        if not args.allow_allocs and p["reactor_allocs"] != 0:
            fail(f"{where}: steady-state hot path allocated "
                 f"{p['reactor_allocs']} times "
                 f"({p['allocs_per_op']:.6f}/op) on reactor threads")
        if p["frames_per_sendmsg"] <= 1.0:
            fail(f"{where}: no write coalescing "
                 f"({p['frames_per_sendmsg']:.2f} frames/sendmsg)")
        if p["flight_recorded"] <= 0:
            fail(f"{where}: the flight recorder recorded nothing — the "
                 f"observability stack was not actually armed")

    reactors_seen = sorted(p["reactors"] for p in sweep)
    if len(set(reactors_seen)) != len(reactors_seen):
        fail("duplicate reactor counts in sweep")
    peak = max(p["ops_per_sec"] for p in sweep)
    if abs(peak - d["peak_ops_per_sec"]) > 0.5:
        fail("peak_ops_per_sec does not match the sweep maximum")

    print("bench net OK:",
          {p["reactors"]: round(p["ops_per_sec"]) for p in sweep},
          f"peak {d['peak_speedup_vs_baseline']:.1f}x baseline,"
          f" coalescing {max(p['frames_per_sendmsg'] for p in sweep):.0f}"
          " frames/sendmsg")


if __name__ == "__main__":
    main()
