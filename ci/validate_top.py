#!/usr/bin/env python3
"""Schema + liveness validation for a `timedc-top --once --json` scrape.

CI points this at a scrape taken from a live multi-reactor timedc-server
while (or just after) timedc-load drove traffic, and asserts the wire
introspection path end to end: every reactor board is present, the boards
carry real serving counters (nonzero ops and ticks), the stall watchdog is
sane, and the staleness percentiles are finite and ordered wherever reads
flowed.

Usage:
  validate_top.py SCRAPE.json [--reactors N] [--require-ops]
                  [--min-total-reads N]
"""

import argparse
import json
import sys

# Keys every board must report (dotted names from StatKey::to_cstring).
REQUIRED_KEYS = {
    "ops_applied", "frames_in", "frames_out", "bytes_in", "bytes_out",
    "batch_flushes", "flush_syscalls", "connections", "steered_out",
    "steered_in", "decode_errors", "ticks", "slow_ticks", "max_tick_us",
    "last_tick_end_us", "reads_served", "eps_us", "effective_delta_us",
    "flight_recorded", "flight_overwritten", "frames_dropped",
    "cluster.forwards_out", "cluster.forwards_in", "cluster.relayed",
    "cluster.hops_exceeded", "cluster.membership_sent",
    "cluster.membership_received", "cluster.members", "cluster.epoch",
    "cluster.pushes", "cluster.replica_hits", "cluster.ring_epoch",
    "cluster.rebalances", "cluster.stale_forwards", "cluster.slices_synced",
    "cluster.reads_shed", "cluster.writes_deferred",
    "cluster.overloaded_replies", "last_tick_age_us",
    "stage.decode.p99_us", "stage.apply.p99_us", "stage.enqueue.p99_us",
    "stage.flush.p99_us",
    "staleness.p50_us", "staleness.p95_us", "staleness.p99_us",
    "staleness.max_us",
}


def fail(msg):
    sys.exit(f"validate_top: {msg}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("scrape")
    parser.add_argument("--reactors", type=int, default=0,
                        help="exact number of boards the scrape must carry")
    parser.add_argument("--require-ops", action="store_true",
                        help="every board must show nonzero ops and ticks")
    parser.add_argument("--min-total-reads", type=int, default=0,
                        help="reads_served summed over boards must reach N")
    parser.add_argument("--require-members", type=int, default=0,
                        help="every board must report exactly N alive "
                             "cluster members")
    args = parser.parse_args()

    with open(args.scrape) as f:
        doc = json.load(f)
    for key in ("seq", "sites"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    sites = doc["sites"]
    if not sites:
        fail("scrape carries no boards")
    if args.reactors and len(sites) != args.reactors:
        fail(f"expected {args.reactors} boards, got {len(sites)}")

    total_reads = 0
    seen = set()
    for entry in sites:
        site = entry.get("site")
        stats = entry.get("stats")
        if site is None or not isinstance(stats, dict):
            fail(f"malformed site entry: {entry}")
        if site in seen:
            fail(f"site {site} reported twice")
        seen.add(site)
        where = f"site {site}"
        missing = REQUIRED_KEYS - set(stats)
        if missing:
            fail(f"{where}: missing keys {sorted(missing)}")
        for key, value in stats.items():
            if not isinstance(value, int):
                fail(f"{where}: {key} is not an integer")
        if stats["last_tick_age_us"] < -1:
            fail(f"{where}: watchdog age below the -1 sentinel")
        if stats["eps_us"] < -1 or stats["effective_delta_us"] < -1:
            fail(f"{where}: eps/delta below the -1 sentinel")
        if stats["flight_overwritten"] > stats["flight_recorded"]:
            fail(f"{where}: overwritten exceeds recorded")
        if args.require_ops:
            if stats["ops_applied"] <= 0:
                fail(f"{where}: ops_applied is zero under --require-ops")
            if stats["ticks"] <= 0:
                fail(f"{where}: ticks is zero under --require-ops")
        if args.require_members:
            if stats["cluster.members"] != args.require_members:
                fail(f"{where}: cluster.members {stats['cluster.members']} "
                     f"!= required {args.require_members}")
            if stats["cluster.epoch"] < 0:
                fail(f"{where}: negative cluster.epoch")
        reads = stats["reads_served"]
        total_reads += reads
        # Staleness summaries: -1 means "no reads yet"; with reads flowed
        # they must be finite and ordered.
        p50, p99, mx = (stats["staleness.p50_us"], stats["staleness.p99_us"],
                        stats["staleness.max_us"])
        for name, v in (("p50", p50), ("p99", p99), ("max", mx)):
            if v < -1:
                fail(f"{where}: staleness {name} below the -1 sentinel")
        if reads > 0 and mx >= 0:
            if p50 < 0 or p99 < 0:
                fail(f"{where}: reads flowed but staleness percentiles "
                     f"are not finite")
            if not p50 <= p99 <= mx:
                fail(f"{where}: staleness percentiles out of order "
                     f"({p50}/{p99}/{mx})")

    if total_reads < args.min_total_reads:
        fail(f"total reads_served {total_reads} below the "
             f"--min-total-reads {args.min_total_reads} floor")
    print(f"validate_top: {len(sites)} boards OK "
          f"({total_reads} reads served)")


if __name__ == "__main__":
    main()
