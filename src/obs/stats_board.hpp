// Lock-free per-reactor stats boards for live wire-level introspection.
//
// A StatsBoard is the cross-thread-readable face of one reactor: a fixed
// array of relaxed atomics (counters/gauges the owning reactor publishes at
// tick cadence) plus single-writer atomic log2-bucket histograms for the
// sampled hot-path stage latencies and per-read staleness. Every field is
// individually atomic, so ANY thread can read a consistent-enough monitor
// view with no locks and — critically — a *stalled* reactor's board stays
// readable: the stall watchdog gauge (kLastTickAgeUs) is computed by the
// READER from the victim's last published tick-end time, which is exactly
// the value a wedged event loop can no longer refresh.
//
// A StatsHub is the process-wide registry (fixed capacity, append-only
// before serving starts) that lets one reactor answer a wire kStatsRequest
// for ALL reactors. Key identities are the wire contract: kStatsReply
// bodies carry (StatKey as u16, i64 value) pairs, named by to_cstring for
// tools (timedc-top) and exporters.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace timedc {

/// One introspection datum, exactly as it travels in a kStatsReply body.
struct StatsEntry {
  std::uint16_t key = 0;  // StatKey
  std::int64_t value = 0;
};

enum class StatKey : std::uint16_t {
  // Plain values, published by the owning reactor (tick cadence or cheaper).
  kOpsApplied = 0,     // protocol frames delivered to handlers
  kFramesIn,
  kFramesOut,
  kBytesIn,
  kBytesOut,
  kBatchFlushes,
  kFlushSyscalls,
  kConnections,
  kSteeredOut,
  kSteeredIn,
  kDecodeErrors,
  kHeartbeatsSent,
  kHeartbeatsReceived,
  kTicks,
  kSlowTicks,
  kMaxTickUs,
  kLastTickEndUs,      // CLOCK_REALTIME us; 0 until the first tick
  kReadsServed,
  kEpsUs,              // measured clock error bound; -1 unknown
  kEffectiveDeltaUs,   // adaptive Delta in force; -1 not adapting
  kFlightRecorded,
  kFlightOverwritten,
  kFramesDropped,      // supervision saturation: queue-full + dead-peer drops
  // Cluster mode (zero on single-group servers).
  kClusterForwardsOut,        // kForward frames sent (wrap + re-forward)
  kClusterForwardsIn,         // kForward frames unwrapped here
  kClusterRelayed,            // raw replies relayed on a learned path
  kClusterHopsExceeded,       // frames past kMaxForwardHops (sent unwrapped
                              // or dropped)
  kClusterMembershipSent,
  kClusterMembershipReceived,
  kClusterMembers,            // alive members in the local table
  kClusterEpoch,              // local membership epoch
  kClusterPushes,             // owner-side pushes/invalidations to server
                              // cachers
  kClusterReplicaHits,        // fetches served from a pushed replica
  // Self-healing (zero until a rebalance / warm-up / overload happens).
  kClusterRingEpoch,          // serving-ring epoch (0 = configured baseline)
  kClusterRebalances,         // serving-set changes that rebuilt the ring
  kClusterStaleForwards,      // kForward arrivals stamped with an older ring
  kClusterSlicesSynced,       // slice records installed during warm-up
  kClusterReadsShed,          // reads refused with kOverloaded by admission
  kClusterWritesDeferred,     // writes delayed (never dropped) by admission
  kClusterOverloadedReplies,  // kOverloaded frames sent to clients
  // Derived at collect() time (not stored).
  kLastTickAgeUs,      // reader_now - kLastTickEndUs; the stall watchdog
  kStageDecodeP50Us, kStageDecodeP95Us, kStageDecodeP99Us, kStageDecodeMaxUs,
  kStageApplyP50Us, kStageApplyP95Us, kStageApplyP99Us, kStageApplyMaxUs,
  kStageEnqueueP50Us, kStageEnqueueP95Us, kStageEnqueueP99Us,
  kStageEnqueueMaxUs,
  kStageFlushP50Us, kStageFlushP95Us, kStageFlushP99Us, kStageFlushMaxUs,
  kStalenessP50Us, kStalenessP95Us, kStalenessP99Us, kStalenessMaxUs,
  kNumStatKeys,
};

inline constexpr std::size_t kNumStatKeys =
    static_cast<std::size_t>(StatKey::kNumStatKeys);
inline constexpr std::size_t kNumPlainStats =
    static_cast<std::size_t>(StatKey::kClusterOverloadedReplies) + 1;

/// Stable dotted name ("stage.decode.p99_us", "ticks", ...) used by
/// timedc-top and the Prometheus exporter. nullptr for out-of-range keys.
const char* to_cstring(StatKey key);

/// Hot-path stages whose latency is sampled 1-in-N (see
/// TcpTransport::kStageSamplePeriod) into the board's histograms.
enum class Stage : std::uint8_t {
  kDecode = 0,   // FrameView -> DecodedFrame
  kApply = 1,    // handler dispatch (server apply + reply build)
  kEnqueue = 2,  // reply enqueue into the send queue
  kFlush = 3,    // tick-end coalesced flush
};
inline constexpr std::size_t kNumStages = 4;

/// Single-writer log2-bucket histogram readable from any thread. record()
/// is one relaxed load+store per field — no RMW contention, because the
/// producer is exactly one thread; readers tolerate torn cross-field views
/// (monitoring data, not accounting).
class AtomicLogHistogram {
 public:
  void record(std::int64_t v) {
    const std::uint64_t mag =
        v <= 0 ? 0 : static_cast<std::uint64_t>(v);
    std::size_t bucket = 0;
    while ((1ull << bucket) <= mag && bucket + 1 < kBuckets) ++bucket;
    bump(counts_[bucket]);
    bump(count_);
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Quantile estimate via linear interpolation inside the log2 bucket,
  /// clamped to [0, max]. Empty -> -1 (distinguishes "no data" from 0 us).
  std::int64_t percentile(double q) const;

 private:
  static constexpr std::size_t kBuckets = 40;  // covers > 15 minutes in us

  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

class StatsBoard {
 public:
  explicit StatsBoard(std::uint32_t site) : site_(site) {
    set(StatKey::kEpsUs, -1);
    set(StatKey::kEffectiveDeltaUs, -1);
  }

  std::uint32_t site() const { return site_; }

  // Writer side (the owning reactor thread only).
  void set(StatKey key, std::int64_t value) {
    plain_[static_cast<std::size_t>(key)].store(value,
                                                std::memory_order_relaxed);
  }
  void add(StatKey key, std::int64_t delta) {
    auto& cell = plain_[static_cast<std::size_t>(key)];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }
  void record_stage(Stage stage, std::int64_t us) {
    stages_[static_cast<std::size_t>(stage)].record(us);
  }
  void record_staleness(std::int64_t us) { staleness_.record(us); }

  // Reader side (any thread).
  std::int64_t get(StatKey key) const {
    return plain_[static_cast<std::size_t>(key)].load(
        std::memory_order_relaxed);
  }
  const AtomicLogHistogram& stage(Stage s) const {
    return stages_[static_cast<std::size_t>(s)];
  }
  const AtomicLogHistogram& staleness() const { return staleness_; }

  /// Append every StatKey in enum order as (key, value) pairs. `now_us`
  /// feeds the kLastTickAgeUs watchdog gauge (-1 until the first tick).
  void collect(std::int64_t now_us, std::vector<StatsEntry>& out) const;

 private:
  std::uint32_t site_;
  std::atomic<std::int64_t> plain_[kNumPlainStats] = {};
  AtomicLogHistogram stages_[kNumStages];
  AtomicLogHistogram staleness_;
};

/// Process-wide board registry. Registration happens on the control thread
/// before reactors serve; readers only ever see a prefix of fully-published
/// boards (count is bumped with release after the slot store).
class StatsHub {
 public:
  static constexpr std::size_t kMaxBoards = 64;

  /// False when the hub is full (the board is then simply not announced).
  bool add(StatsBoard* board);
  std::size_t size() const { return count_.load(std::memory_order_acquire); }
  StatsBoard* board(std::size_t i) const {
    return boards_[i].load(std::memory_order_relaxed);
  }
  StatsBoard* find(std::uint32_t site) const;

 private:
  std::atomic<StatsBoard*> boards_[kMaxBoards] = {};
  std::atomic<std::size_t> count_{0};
};

}  // namespace timedc
