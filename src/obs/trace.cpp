#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace timedc {
namespace {

struct TypeInfo {
  const char* name;
  TraceCategory category;
};

// Indexed by TraceEventType; order must match the enum exactly.
constexpr TypeInfo kTypeInfo[kNumTraceEventTypes] = {
    {"op.issue", TraceCategory::kOps},
    {"op.retry", TraceCategory::kOps},
    {"op.reply", TraceCategory::kOps},
    {"op.abandon", TraceCategory::kOps},
    {"cache.hit", TraceCategory::kCache},
    {"cache.miss", TraceCategory::kCache},
    {"cache.validate", TraceCategory::kCache},
    {"lease.grant", TraceCategory::kServer},
    {"lease.expire", TraceCategory::kServer},
    {"push.invalidate", TraceCategory::kServer},
    {"push.update", TraceCategory::kServer},
    {"write.apply", TraceCategory::kServer},
    {"write.defer", TraceCategory::kServer},
    {"server.crash", TraceCategory::kServer},
    {"server.restart", TraceCategory::kServer},
    {"net.send", TraceCategory::kNetwork},
    {"net.drop", TraceCategory::kNetwork},
    {"net.dup", TraceCategory::kNetwork},
    {"net.deliver", TraceCategory::kNetwork},
    {"partition.open", TraceCategory::kFaults},
    {"partition.heal", TraceCategory::kFaults},
    {"bcast.send", TraceCategory::kBroadcast},
    {"bcast.deliver", TraceCategory::kBroadcast},
    {"bcast.discard", TraceCategory::kBroadcast},
    {"check.enter", TraceCategory::kChecker},
    {"check.fastpath", TraceCategory::kChecker},
    {"check.prune", TraceCategory::kChecker},
    {"check.verdict", TraceCategory::kChecker},
    {"clock.sync", TraceCategory::kClock},
    {"clock.reject", TraceCategory::kClock},
    {"clock.eps", TraceCategory::kClock},
    {"delta.adapt", TraceCategory::kCache},
    {"reactor.stage", TraceCategory::kReactor},
    {"reactor.slowtick", TraceCategory::kReactor},
    {"read.staleness", TraceCategory::kReactor},
    {"stats.scrape", TraceCategory::kReactor},
    {"cluster.forward", TraceCategory::kCluster},
    {"cluster.push", TraceCategory::kCluster},
    {"cluster.member", TraceCategory::kCluster},
};

}  // namespace

const char* to_cstring(TraceEventType type) {
  return kTypeInfo[static_cast<std::size_t>(type)].name;
}

std::optional<TraceEventType> trace_event_type_from(std::string_view name) {
  for (std::size_t i = 0; i < kNumTraceEventTypes; ++i) {
    if (name == kTypeInfo[i].name) return static_cast<TraceEventType>(i);
  }
  return std::nullopt;
}

TraceCategory category_of(TraceEventType type) {
  return kTypeInfo[static_cast<std::size_t>(type)].category;
}

const char* to_cstring(TraceCategory category) {
  switch (category) {
    case TraceCategory::kOps: return "ops";
    case TraceCategory::kCache: return "cache";
    case TraceCategory::kServer: return "server";
    case TraceCategory::kNetwork: return "network";
    case TraceCategory::kFaults: return "faults";
    case TraceCategory::kBroadcast: return "broadcast";
    case TraceCategory::kChecker: return "checker";
    case TraceCategory::kClock: return "clock";
    case TraceCategory::kReactor: return "reactor";
    case TraceCategory::kCluster: return "cluster";
  }
  return "?";
}

Tracer::Tracer(TraceConfig config) : config_(config) {}

void Tracer::emit(TraceEventType type, SimTime at, SiteId site,
                  ObjectId object, std::uint64_t op, std::int64_t a,
                  std::int64_t b) {
  if (!wants(category_of(type))) return;
  if (total_ >= config_.max_events) {
    ++dropped_;
    return;
  }
  if (site.value >= lanes_.size()) lanes_.resize(site.value + 1);
  lanes_[site.value].push_back(TraceEvent{at, type, site, object, op, a, b});
  ++total_;
}

std::vector<TraceEvent> Tracer::flush() const {
  std::vector<TraceEvent> out;
  out.reserve(adopted_.size() + total_);
  out.insert(out.end(), adopted_.begin(), adopted_.end());
  const std::size_t own_start = out.size();
  for (const auto& lane : lanes_) {
    out.insert(out.end(), lane.begin(), lane.end());
  }
  // Canonical order over this tracer's own events: (time, site, per-site
  // emission sequence). The sort is stable and the lanes were concatenated
  // in site order with per-lane emission order intact, so ties on
  // (time, site) keep emission order — the merge-sort contract.
  std::stable_sort(out.begin() + own_start, out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.at != y.at) return x.at < y.at;
                     return x.site.value < y.site.value;
                   });
  return out;
}

void Tracer::append_flushed(std::vector<TraceEvent> events) {
  adopted_.insert(adopted_.end(), events.begin(), events.end());
}

// --- exporters -----------------------------------------------------------

std::string trace_to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 72);
  char line[192];
  for (const TraceEvent& e : events) {
    const std::int64_t obj =
        e.object == kNoObject ? -1 : static_cast<std::int64_t>(e.object.value);
    std::snprintf(line, sizeof line,
                  "{\"t\":%" PRId64 ",\"type\":\"%s\",\"site\":%u,"
                  "\"obj\":%" PRId64 ",\"op\":%" PRIu64 ",\"a\":%" PRId64
                  ",\"b\":%" PRId64 "}\n",
                  e.at.as_micros(), to_cstring(e.type), e.site.value, obj,
                  e.op, e.a, e.b);
    out += line;
  }
  return out;
}

namespace {

/// Locate `"key":` in `line` and return the text immediately after the
/// colon, or nullopt when the key is missing.
std::optional<std::string_view> value_after(std::string_view line,
                                            std::string_view key) {
  std::string pattern = "\"";
  pattern += key;
  pattern += "\":";
  const std::size_t at = line.find(pattern);
  if (at == std::string_view::npos) return std::nullopt;
  return line.substr(at + pattern.size());
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  char* end = nullptr;
  std::string buf(text.substr(0, 32));
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end == buf.c_str()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<std::string_view> parse_string(std::string_view text) {
  if (text.empty() || text[0] != '"') return std::nullopt;
  const std::size_t close = text.find('"', 1);
  if (close == std::string_view::npos) return std::nullopt;
  return text.substr(1, close - 1);
}

std::optional<TraceEvent> parse_event_line(std::string_view line) {
  TraceEvent e;
  const auto t = value_after(line, "t");
  const auto type = value_after(line, "type");
  const auto site = value_after(line, "site");
  const auto obj = value_after(line, "obj");
  const auto op = value_after(line, "op");
  const auto a = value_after(line, "a");
  const auto b = value_after(line, "b");
  if (!t || !type || !site || !obj || !op || !a || !b) return std::nullopt;
  const auto tv = parse_int(*t);
  const auto sv = parse_int(*site);
  const auto ov = parse_int(*obj);
  const auto opv = parse_int(*op);
  const auto av = parse_int(*a);
  const auto bv = parse_int(*b);
  const auto name = parse_string(*type);
  if (!tv || !sv || !ov || !opv || !av || !bv || !name) return std::nullopt;
  const auto tt = trace_event_type_from(*name);
  if (!tt || *sv < 0 || *ov < -1) return std::nullopt;
  e.at = SimTime::micros(*tv);
  e.type = *tt;
  e.site = SiteId{static_cast<std::uint32_t>(*sv)};
  e.object = *ov < 0 ? kNoObject : ObjectId{static_cast<std::uint32_t>(*ov)};
  e.op = static_cast<std::uint64_t>(*opv);
  e.a = *av;
  e.b = *bv;
  return e;
}

}  // namespace

std::optional<std::vector<TraceEvent>> parse_trace_jsonl(
    std::string_view text, std::size_t* error_line) {
  std::vector<TraceEvent> out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto e = parse_event_line(line);
    if (!e) {
      if (error_line != nullptr) *error_line = line_no;
      return std::nullopt;
    }
    out.push_back(*e);
  }
  return out;
}

std::string trace_to_chrome(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char line[256];
  bool first = true;
  const auto append = [&](const char* text) {
    if (!first) out += ",\n";
    first = false;
    out += text;
  };
  // Name the per-site tracks once (metadata events, ts-less).
  std::vector<bool> seen;
  for (const TraceEvent& e : events) {
    if (e.site.value >= seen.size()) seen.resize(e.site.value + 1, false);
    if (seen[e.site.value]) continue;
    seen[e.site.value] = true;
    std::snprintf(line, sizeof line,
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"site %u\"}}",
                  e.site.value, e.site.value);
    append(line);
  }
  for (const TraceEvent& e : events) {
    const std::int64_t obj =
        e.object == kNoObject ? -1 : static_cast<std::int64_t>(e.object.value);
    if (e.type == TraceEventType::kOpIssue) {
      std::snprintf(line, sizeof line,
                    "{\"ph\":\"B\",\"name\":\"%s\",\"cat\":\"ops\",\"pid\":0,"
                    "\"tid\":%u,\"ts\":%" PRId64
                    ",\"args\":{\"obj\":%" PRId64 ",\"op\":%" PRIu64 "}}",
                    e.a != 0 ? "write" : "read", e.site.value,
                    e.at.as_micros(), obj, e.op);
      append(line);
      continue;
    }
    if (e.type == TraceEventType::kOpReply) {
      std::snprintf(line, sizeof line,
                    "{\"ph\":\"E\",\"name\":\"%s\",\"cat\":\"ops\",\"pid\":0,"
                    "\"tid\":%u,\"ts\":%" PRId64 "}",
                    e.a != 0 ? "write" : "read", e.site.value,
                    e.at.as_micros());
      append(line);
      continue;
    }
    std::snprintf(line, sizeof line,
                  "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,"
                  "\"tid\":%u,\"ts\":%" PRId64 ",\"s\":\"t\","
                  "\"args\":{\"obj\":%" PRId64 ",\"op\":%" PRIu64
                  ",\"a\":%" PRId64 ",\"b\":%" PRId64 "}}",
                  to_cstring(e.type), to_cstring(category_of(e.type)),
                  e.site.value, e.at.as_micros(), obj, e.op, e.a, e.b);
    append(line);
  }
  out += "\n]}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace timedc
