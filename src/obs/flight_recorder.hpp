// Allocation-free per-reactor flight recorder (black box) for the serving
// hot path.
//
// A FlightRecorder is a fixed-capacity single-producer ring of POD event
// records. The producer is ONE reactor thread; record() costs one enabled
// branch, one masked index, a 40-byte struct store and a relaxed counter
// bump — no locks, no allocation, no formatting. The ring overwrites its
// oldest entries forever (flight-recorder semantics: the last `capacity`
// events before an incident are what matter); overwritten_ counts what the
// wrap discarded.
//
// Reading happens two ways:
//   * snapshot(): any thread copies the live ring. Records the producer
//     might have been overwriting during the copy are discarded, so every
//     returned record is untorn (see the epoch check in the .cpp).
//   * dump_to_fd() / the fatal-signal path: the raw ring is written with
//     nothing but write(2) — async-signal-safe by construction. A process
//     installs install_fatal_dump(prefix) once; on SIGSEGV/SIGBUS/SIGFPE/
//     SIGABRT every registered recorder is dumped to
//     "<prefix>.site<id>.fr" before the default action re-raises.
//
// The binary dump format is versioned (FlightFileHeader) and converted
// offline into the canonical TraceEvent stream (flight_to_events), from
// which the existing JSONL / Perfetto exporters and ci/validate_trace.py
// take over. The tools wrapper is tools/timedc_flight.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"

namespace timedc {

/// One ring slot. POD on purpose: the fatal-signal dump writes raw memory,
/// and the offline converter reinterprets it, so the layout is the file
/// format (see FlightFileHeader::version).
struct FlightRecord {
  std::int64_t t_us = 0;      // CLOCK_REALTIME microseconds
  std::uint32_t site = 0;     // emitting reactor's site id
  std::uint8_t type = 0;      // TraceEventType
  std::uint8_t pad[3] = {};
  std::uint32_t obj = 0xffffffffu;  // kNoObject sentinel
  std::uint32_t op = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};
static_assert(std::is_trivially_copyable_v<FlightRecord>);
static_assert(sizeof(FlightRecord) == 40);

/// Header of a binary .fr dump (all fields little-endian, like the wire).
struct FlightFileHeader {
  std::uint32_t magic = 0x52434454;  // "TDCR"
  std::uint32_t version = 1;
  std::uint32_t site = 0;
  std::uint32_t capacity = 0;    // ring slots
  std::uint64_t next_index = 0;  // monotone producer index at dump time
  std::uint64_t overwritten = 0;
};
static_assert(std::is_trivially_copyable_v<FlightFileHeader>);
static_assert(sizeof(FlightFileHeader) == 32);

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (masked indexing); the ring
  /// is allocated here, once — record() never touches the heap. A disabled
  /// recorder costs exactly the one branch.
  explicit FlightRecorder(std::uint32_t site, std::size_t capacity = 1u << 14,
                          bool enabled = true);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  std::uint32_t site() const { return site_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Producer-side append (single producer: the owning reactor thread).
  void record(TraceEventType type, std::int64_t t_us,
              ObjectId object = kNoObject, std::uint64_t op = 0,
              std::int64_t a = 0, std::int64_t b = 0) {
    if (!enabled_) return;
    const std::uint64_t i = next_.load(std::memory_order_relaxed);
    FlightRecord& r = ring_[i & mask_];
    r.t_us = t_us;
    r.site = site_;
    r.type = static_cast<std::uint8_t>(type);
    r.obj = object.value;
    r.op = static_cast<std::uint32_t>(op);
    r.a = a;
    r.b = b;
    next_.store(i + 1, std::memory_order_release);
  }

  /// Total records ever appended.
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Records lost to ring wrap (recorded() - capacity, floored at 0).
  std::uint64_t overwritten() const;

  /// Cross-thread copy of the current ring contents in append order,
  /// oldest first. Only records guaranteed untorn are returned.
  std::vector<FlightRecord> snapshot() const;

  /// Write header + raw ring to an already-open fd using only write(2).
  /// Async-signal-safe. Returns false on short/failed write.
  bool dump_to_fd(int fd) const;
  /// open() + dump_to_fd() + close(). Not for signal handlers (allocates
  /// nothing, but callers should prefer install_fatal_dump for crashes).
  bool dump_to_file(const char* path) const;

 private:
  bool enabled_;
  const std::uint32_t site_;
  std::uint64_t mask_ = 0;
  std::vector<FlightRecord> ring_;
  std::atomic<std::uint64_t> next_{0};
};

/// Register `recorder` for the fatal-signal dump (a fixed-size process-wide
/// table; at most 64 recorders). The recorder must outlive the process or
/// be removed with unregister_flight_recorder before destruction.
void register_flight_recorder(FlightRecorder* recorder);
void unregister_flight_recorder(FlightRecorder* recorder);

/// Install SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump every
/// registered recorder to "<prefix>.site<id>.fr" and then re-raise with the
/// default action (so the exit status still reports the crash). The prefix
/// is copied into static storage (truncated to 200 bytes). Idempotent.
void install_fatal_dump(const char* path_prefix);

/// Parse one binary .fr dump back into canonical TraceEvents (oldest
/// first, times preserved). Returns false on a malformed header/size; on
/// success appends to `out` and reports the dump's overwritten count.
bool flight_to_events(const std::string& bytes, std::vector<TraceEvent>* out,
                      std::uint64_t* overwritten = nullptr);

}  // namespace timedc
