// Compatibility facade between the legacy *Stats structs and the metrics
// registry. The structs stay the hot-path counters each subsystem bumps;
// these publishers copy them into a MetricsRegistry under stable prefixed
// names at snapshot time. Header keeps only forward declarations so that
// timedc_obs never links against the protocol/sim/broadcast libraries.
#pragma once

#include <string_view>

#include "obs/metrics.hpp"

namespace timedc {

struct CacheStats;
struct ServerStats;
struct NetworkStats;
struct FaultStats;
struct DeltaBroadcastStats;
namespace net {
struct TcpTransportStats;
struct TimeSyncStats;
}  // namespace net

/// Each publisher adds (not sets) counters named `<prefix>.<field>`, so
/// calling one repeatedly aggregates across clients / servers / rounds.
void publish_cache_stats(MetricsRegistry& reg, std::string_view prefix,
                         const CacheStats& stats);
void publish_server_stats(MetricsRegistry& reg, std::string_view prefix,
                          const ServerStats& stats);
void publish_network_stats(MetricsRegistry& reg, std::string_view prefix,
                           const NetworkStats& stats);
void publish_fault_stats(MetricsRegistry& reg, std::string_view prefix,
                         const FaultStats& stats);
void publish_broadcast_stats(MetricsRegistry& reg, std::string_view prefix,
                             const DeltaBroadcastStats& stats);
/// Publishes the TCP transport counters, the per-status decode-error
/// counters (`<prefix>.decode_error.<status>`), and the supervision
/// connection-state gauges (`<prefix>.peers_<state>`).
void publish_tcp_transport_stats(MetricsRegistry& reg, std::string_view prefix,
                                 const net::TcpTransportStats& stats);
/// Publishes one TimeSyncClient's round counters plus its current
/// offset/epsilon/RTT as gauges (`<prefix>.eps_us` is the peer's measured
/// one-sided bound, -1 while unsynchronized). Call once per syncing peer
/// with a per-peer prefix for the per-peer epsilon export.
void publish_time_sync_stats(MetricsRegistry& reg, std::string_view prefix,
                             const net::TimeSyncStats& stats);

}  // namespace timedc
