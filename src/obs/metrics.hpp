// The unified metrics registry: counters, gauges and fixed-bucket
// histograms with a stable JSON export.
//
// The paper's evaluation quantities live here as first-class distributions
// rather than end-of-run averages: the *staleness histogram* (observed age
// of every read's value, to be judged against its Delta budget) and the
// *visibility-latency histogram* (server apply time minus client issue
// time, per accepted write). The existing *Stats structs stay the hot-path
// counters; stats_bridge.hpp publishes them into a registry under stable
// names at snapshot time, so aggregation costs nothing per event.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace timedc {

/// Fixed-bucket histogram over int64 samples. Bucket i counts samples v
/// with bounds[i-1] < v <= bounds[i] (upper bounds inclusive); one implicit
/// overflow bucket takes v > bounds.back(). Sum/min/max are exact.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<std::int64_t> upper_bounds);

  /// The canonical microsecond time scale: 0, 1, 2, 5, ... 10s, +overflow.
  static Histogram time_us();

  void record(std::int64_t v);

  /// Index of the bucket `v` falls into (bounds().size() = overflow).
  std::size_t bucket_index(std::int64_t v) const;

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Quantile estimate from the bucket counts, q in [0, 1]. The rank-q
  /// sample is located in its bucket and linearly interpolated between the
  /// bucket's bounds; the result is clamped to the exact [min, max] so the
  /// tails never overshoot what was actually recorded. Empty -> 0.
  std::int64_t percentile(double q) const;
  std::int64_t p50() const { return percentile(0.50); }
  std::int64_t p95() const { return percentile(0.95); }
  std::int64_t p99() const { return percentile(0.99); }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; size bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Merge `other` into this histogram (bucket layouts must match).
  Histogram& operator+=(const Histogram& other);

  /// {"count":N,"sum":S,"min":m,"max":M,"p50":...,"p95":...,"p99":...,
  ///  "buckets":[{"le":0,"count":0},...,{"le":"inf","count":k}]}
  std::string to_json() const;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Insertion-ordered name -> value store; to_json() output is therefore
/// deterministic for a fixed publish sequence.
class MetricsRegistry {
 public:
  void set_counter(std::string_view name, std::uint64_t value);
  void add_counter(std::string_view name, std::uint64_t delta);
  void set_gauge(std::string_view name, double value);
  void add_histogram(std::string_view name, Histogram histogram);

  std::uint64_t counter(std::string_view name) const;  // 0 when absent
  const Histogram* histogram(std::string_view name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with entries in
  /// insertion order. `indent` = 0 emits one line.
  std::string to_json(int indent = 0) const;

  /// Prometheus text exposition (version 0.0.4): counters and gauges as-is,
  /// histograms as cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
  /// Metric names are sanitized to [a-zA-Z0-9_:] (dots and dashes -> '_').
  std::string to_prometheus() const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
};

}  // namespace timedc
