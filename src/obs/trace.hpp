// Structured event tracing for the protocol / simulation / checker stack.
//
// A Tracer collects typed TraceEvents — op issue/retry/reply/abandon, cache
// hit/miss/validate, lease grant/expiry, pushes, server crash/restart,
// network send/drop/dup/deliver, partition open/heal, broadcast traffic and
// checker search telemetry — each stamped with sim-time, site id, object id
// and op id. Events are buffered per site (one append, no locking) and
// merge-sorted at flush into the canonical order (time, site, per-site
// sequence), so the flushed byte stream is a pure function of the run.
//
// Determinism rule: a Tracer belongs to ONE deterministic run (one
// Simulator, or one checker invocation). Cross-run parallelism — the
// thread pool fanning run_experiment_seeds or hierarchy-audit rounds over
// TIMEDC_THREADS workers — uses one Tracer per run and concatenates the
// flushed traces in run-index order (append_flushed), which is why trace
// output is bit-identical at any thread count: each run is a pure function
// of its config, and the merge order never depends on scheduling.
//
// Overhead rule: disabled tracing is a null Tracer* — every instrumented
// site costs exactly one pointer test per potential event. TraceConfig
// gates categories when tracing IS on; nothing is ever formatted until
// flush/export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace timedc {

/// Sentinel object id for events not about any particular object.
inline constexpr ObjectId kNoObject{0xffffffffu};

enum class TraceEventType : std::uint8_t {
  // Client operations (a: 0 = read, 1 = write; b: duration / detail us).
  kOpIssue,
  kOpRetry,    // a: attempt number, b: target site
  kOpReply,    // a: 0 read / 1 write, b: op duration us
  kOpAbandon,  // b: time spent before giving up, us
  // Cache decisions at begin_read.
  kCacheHit,
  kCacheMiss,
  kCacheValidate,
  // Server side.
  kLeaseGrant,   // a: client site, b: lease duration us
  kLeaseExpire,  // a: client site, b: us past expiry when pruned
  kPushInvalidate,  // a: cacher site
  kPushUpdate,      // a: cacher site
  kWriteApply,      // a: value, b: 1 accepted / 0 lost LWW race
  kWriteDefer,      // a: writer site, b: deferral us
  kServerCrash,
  kServerRestart,  // b: lease grace window us
  // Network.
  kNetSend,       // a: destination site, b: bytes
  kNetDrop,       // a: destination site, b: 0 at send / 1 at delivery
  kNetDuplicate,  // a: destination site
  kNetDeliver,    // a: source site
  // Fault timeline markers.
  kPartitionOpen,  // a: partition index, b: |side_a| * 1000 + |side_b|
  kPartitionHeal,  // a: partition index
  // Delta-causal broadcast.
  kBcastSend,     // op: payload
  kBcastDeliver,  // op: payload, a: sender, b: delivery latency us
  kBcastDiscard,  // op: payload, a: sender, b: us past the deadline
  // Checker search telemetry (a: model 0=LIN 1=SC 2=CC).
  kCheckEnter,     // b: operation count
  kCheckFastPath,  // b: 0 seed-order, 1 prefilter
  kCheckPrune,     // b: reason (see kPrune* in checkers.cpp)
  kCheckVerdict,   // op: verdict (0 yes / 1 no / 2 limit), b: nodes
  // Clock synchronization (site = the syncing client).
  kClockSync,    // a: correction us (signed), b: round RTT us
  kClockReject,  // a: 0 RTT outlier / 1 timeout, b: round RTT us (0 if timeout)
  kClockEps,     // b: one-sided measured error bound us
  // Adaptive Delta (site = the adapting cache client).
  kDeltaAdapt,  // a: effective Delta us, b: shed us (configured - effective)
  // Reactor / serving-path observability (site = the reactor's site id).
  // These are the flight-recorder event vocabulary: POD, hot-path-safe.
  kReactorStage,     // a: stage (0 decode / 1 apply / 2 enqueue / 3 flush),
                     // b: sampled duration us
  kReactorSlowTick,  // a: tick duration us, b: slow threshold us
  kReadStaleness,    // obj: object read, b: Definition-1 staleness us
  kStatsScrape,      // a: requesting site, b: reply bytes
  // Cluster: forwarding, push propagation and membership (site = the
  // acting server).
  kClusterForward,  // obj: forwarded object, a: owner site, b: hop depth
  kClusterPush,     // obj: pushed object, a: cacher site,
                    // b: 0 invalidate / 1 update
  kClusterMember,   // a: member site, b: status (0 alive/1 suspect/2 dead)
};

inline constexpr std::size_t kNumTraceEventTypes =
    static_cast<std::size_t>(TraceEventType::kClusterMember) + 1;

/// Stable dotted name ("net.send", "check.verdict", ...) used by every
/// exporter; parse_trace_jsonl round-trips through it.
const char* to_cstring(TraceEventType type);
std::optional<TraceEventType> trace_event_type_from(std::string_view name);

/// Category bits for TraceConfig::categories gating.
enum class TraceCategory : std::uint32_t {
  kOps = 1u << 0,
  kCache = 1u << 1,
  kServer = 1u << 2,
  kNetwork = 1u << 3,
  kFaults = 1u << 4,
  kBroadcast = 1u << 5,
  kChecker = 1u << 6,
  kClock = 1u << 7,
  kReactor = 1u << 8,
  kCluster = 1u << 9,
};
TraceCategory category_of(TraceEventType type);
const char* to_cstring(TraceCategory category);

struct TraceEvent {
  SimTime at = SimTime::zero();
  TraceEventType type = TraceEventType::kOpIssue;
  SiteId site;              // the emitting site
  ObjectId object = kNoObject;
  std::uint64_t op = 0;     // per-client op sequence / request id; 0 = none
  std::int64_t a = 0;       // per-type detail, see the enum comments
  std::int64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct TraceConfig {
  bool enabled = false;
  /// Bitmask over TraceCategory; default = everything.
  std::uint32_t categories = 0xffffffffu;
  /// Hard cap on buffered events; excess is counted in dropped(), not kept.
  std::size_t max_events = 1u << 20;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = TraceConfig{true});

  const TraceConfig& config() const { return config_; }

  bool wants(TraceCategory category) const {
    return config_.enabled &&
           (config_.categories & static_cast<std::uint32_t>(category)) != 0;
  }

  /// Append one event to the emitting site's lane. Category gating happens
  /// here, so call sites only pay the null-pointer test when tracing is off.
  void emit(TraceEventType type, SimTime at, SiteId site,
            ObjectId object = kNoObject, std::uint64_t op = 0,
            std::int64_t a = 0, std::int64_t b = 0);

  /// All events in canonical order: stable-sorted by (time, site, per-site
  /// emission sequence), preceded by any adopted sub-run traces in adoption
  /// order. Idempotent; does not clear the buffers.
  std::vector<TraceEvent> flush() const;

  /// Adopt an already-flushed trace (e.g. one audit round's events). The
  /// adopted block keeps its internal order and precedes this tracer's own
  /// lanes in flush(); adoption order is the caller's determinism contract.
  void append_flushed(std::vector<TraceEvent> events);

  /// Events discarded because max_events was hit.
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return total_ + adopted_.size(); }

 private:
  TraceConfig config_;
  // One lane per emitting site, each in emission order.
  std::vector<std::vector<TraceEvent>> lanes_;
  std::vector<TraceEvent> adopted_;
  std::size_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

// --- exporters -----------------------------------------------------------

/// One JSON object per line:
///   {"t":1234,"type":"net.send","site":0,"obj":3,"op":17,"a":4,"b":56}
/// obj is -1 for kNoObject. This is the canonical parse-back format.
std::string trace_to_jsonl(const std::vector<TraceEvent>& events);

/// Parse trace_to_jsonl output back into events (strict: every line must
/// carry every key with a known type name). Returns nullopt on any
/// malformed line, with the offending line number in *error_line if given.
std::optional<std::vector<TraceEvent>> parse_trace_jsonl(
    std::string_view text, std::size_t* error_line = nullptr);

/// Chrome trace_event JSON (one document), loadable in chrome://tracing and
/// https://ui.perfetto.dev. Client ops become B/E duration spans per site
/// track (issue opens, reply closes); everything else is an instant event.
std::string trace_to_chrome(const std::vector<TraceEvent>& events);

/// Write `content` to `path`; false (and errno preserved) on failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace timedc
