#include "obs/stats_bridge.hpp"

#include <string>

#include "broadcast/delta_causal.hpp"
#include "net/tcp_transport.hpp"
#include "net/time_sync.hpp"
#include "protocol/server.hpp"
#include "protocol/stats.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace timedc {
namespace {

std::string key(std::string_view prefix, std::string_view field) {
  std::string k(prefix);
  k += '.';
  k += field;
  return k;
}

}  // namespace

void publish_cache_stats(MetricsRegistry& reg, std::string_view prefix,
                         const CacheStats& stats) {
  reg.add_counter(key(prefix, "reads"), stats.reads);
  reg.add_counter(key(prefix, "writes"), stats.writes);
  reg.add_counter(key(prefix, "cache_hits"), stats.cache_hits);
  reg.add_counter(key(prefix, "cache_misses"), stats.cache_misses);
  reg.add_counter(key(prefix, "validations"), stats.validations);
  reg.add_counter(key(prefix, "validations_ok"), stats.validations_ok);
  reg.add_counter(key(prefix, "invalidations"), stats.invalidations);
  reg.add_counter(key(prefix, "marked_old"), stats.marked_old);
  reg.add_counter(key(prefix, "push_updates"), stats.push_updates);
  reg.add_counter(key(prefix, "push_invalidations"), stats.push_invalidations);
  reg.add_counter(key(prefix, "retries"), stats.retries);
  reg.add_counter(key(prefix, "failovers"), stats.failovers);
  reg.add_counter(key(prefix, "ops_abandoned"), stats.ops_abandoned);
  reg.add_counter(key(prefix, "duplicate_replies"), stats.duplicate_replies);
  reg.add_counter(key(prefix, "unavailable_us"), stats.unavailable_us);
  reg.add_counter(key(prefix, "delta_adaptations"), stats.delta_adaptations);
}

void publish_server_stats(MetricsRegistry& reg, std::string_view prefix,
                          const ServerStats& stats) {
  reg.add_counter(key(prefix, "fetches"), stats.fetches);
  reg.add_counter(key(prefix, "writes_applied"), stats.writes_applied);
  reg.add_counter(key(prefix, "validations"), stats.validations);
  reg.add_counter(key(prefix, "validations_ok"), stats.validations_ok);
  reg.add_counter(key(prefix, "pushes"), stats.pushes);
  reg.add_counter(key(prefix, "forwarded"), stats.forwarded);
  reg.add_counter(key(prefix, "writes_deferred"), stats.writes_deferred);
  reg.add_counter(key(prefix, "duplicate_writes"), stats.duplicate_writes);
  reg.add_counter(key(prefix, "crashes"), stats.crashes);
  reg.add_counter(key(prefix, "restarts"), stats.restarts);
  reg.add_counter(key(prefix, "rejected_unsequenced"),
                  stats.rejected_unsequenced);
}

void publish_network_stats(MetricsRegistry& reg, std::string_view prefix,
                           const NetworkStats& stats) {
  reg.add_counter(key(prefix, "messages_sent"), stats.messages_sent);
  reg.add_counter(key(prefix, "messages_delivered"), stats.messages_delivered);
  reg.add_counter(key(prefix, "messages_dropped"), stats.messages_dropped);
  reg.add_counter(key(prefix, "messages_duplicated"),
                  stats.messages_duplicated);
  reg.add_counter(key(prefix, "bytes_sent"), stats.bytes_sent);
}

void publish_fault_stats(MetricsRegistry& reg, std::string_view prefix,
                         const FaultStats& stats) {
  reg.add_counter(key(prefix, "dropped_by_window"), stats.dropped_by_window);
  reg.add_counter(key(prefix, "dropped_by_partition"),
                  stats.dropped_by_partition);
  reg.add_counter(key(prefix, "dropped_node_down"), stats.dropped_node_down);
  reg.add_counter(key(prefix, "duplicated"), stats.duplicated);
  reg.add_counter(key(prefix, "delayed"), stats.delayed);
  reg.add_counter(key(prefix, "crashes"), stats.crashes);
  reg.add_counter(key(prefix, "restarts"), stats.restarts);
}

void publish_broadcast_stats(MetricsRegistry& reg, std::string_view prefix,
                             const DeltaBroadcastStats& stats) {
  reg.add_counter(key(prefix, "sent"), stats.sent);
  reg.add_counter(key(prefix, "delivered"), stats.delivered);
  reg.add_counter(key(prefix, "discarded_late"), stats.discarded_late);
  reg.add_counter(key(prefix, "delivered_out_of_band"),
                  stats.delivered_out_of_band);
}

void publish_tcp_transport_stats(MetricsRegistry& reg, std::string_view prefix,
                                 const net::TcpTransportStats& stats) {
  reg.add_counter(key(prefix, "frames_sent"), stats.frames_sent);
  reg.add_counter(key(prefix, "frames_received"), stats.frames_received);
  reg.add_counter(key(prefix, "local_deliveries"), stats.local_deliveries);
  reg.add_counter(key(prefix, "connections_accepted"),
                  stats.connections_accepted);
  reg.add_counter(key(prefix, "connections_dialed"), stats.connections_dialed);
  reg.add_counter(key(prefix, "connections_closed"), stats.connections_closed);
  reg.add_counter(key(prefix, "decode_errors"), stats.decode_errors);
  reg.add_counter(key(prefix, "unroutable"), stats.unroutable);
  reg.add_counter(key(prefix, "connections_steered_out"),
                  stats.connections_steered_out);
  reg.add_counter(key(prefix, "connections_steered_in"),
                  stats.connections_steered_in);
  reg.add_counter(key(prefix, "batch_flushes"), stats.batch_flushes);
  reg.add_counter(key(prefix, "flush_syscalls"), stats.flush_syscalls);
  // One named counter per DecodeStatus; kOk and kNeedMore are not errors
  // and are skipped.
  for (std::size_t s = 0; s < wire::kDecodeStatusCount; ++s) {
    const auto status = static_cast<wire::DecodeStatus>(s);
    if (status == wire::DecodeStatus::kOk ||
        status == wire::DecodeStatus::kNeedMore) {
      continue;
    }
    reg.add_counter(key(prefix, std::string("decode_error.") +
                                    wire::to_cstring(status)),
                    stats.decode_errors_by_status[s]);
  }
  reg.add_counter(key(prefix, "reconnect_attempts"), stats.reconnect_attempts);
  reg.add_counter(key(prefix, "reconnects"), stats.reconnects);
  reg.add_counter(key(prefix, "dial_timeouts"), stats.dial_timeouts);
  reg.add_counter(key(prefix, "heartbeats_sent"), stats.heartbeats_sent);
  reg.add_counter(key(prefix, "heartbeats_received"),
                  stats.heartbeats_received);
  reg.add_counter(key(prefix, "time_requests_sent"),
                  stats.time_requests_sent);
  reg.add_counter(key(prefix, "time_requests_served"),
                  stats.time_requests_served);
  reg.add_counter(key(prefix, "time_replies_received"),
                  stats.time_replies_received);
  reg.add_counter(key(prefix, "stats_requests_served"),
                  stats.stats_requests_served);
  reg.add_counter(key(prefix, "stats_replies_received"),
                  stats.stats_replies_received);
  reg.add_counter(key(prefix, "liveness_expiries"), stats.liveness_expiries);
  reg.add_counter(key(prefix, "peers_marked_dead"), stats.peers_marked_dead);
  reg.add_counter(key(prefix, "frames_queued"), stats.frames_queued);
  reg.add_counter(key(prefix, "frames_requeued"), stats.frames_requeued);
  reg.add_counter(key(prefix, "frames_dropped_queue_full"),
                  stats.frames_dropped_queue_full);
  reg.add_counter(key(prefix, "frames_dropped_peer_dead"),
                  stats.frames_dropped_peer_dead);
  // Current supervised connection states (index = ConnectionState value).
  reg.set_gauge(key(prefix, "peers_connecting"),
                static_cast<double>(stats.peers_by_state[0]));
  reg.set_gauge(key(prefix, "peers_healthy"),
                static_cast<double>(stats.peers_by_state[1]));
  reg.set_gauge(key(prefix, "peers_backoff"),
                static_cast<double>(stats.peers_by_state[2]));
  reg.set_gauge(key(prefix, "peers_dead"),
                static_cast<double>(stats.peers_by_state[3]));
}

void publish_time_sync_stats(MetricsRegistry& reg, std::string_view prefix,
                             const net::TimeSyncStats& stats) {
  reg.add_counter(key(prefix, "rounds_sent"), stats.rounds_sent);
  reg.add_counter(key(prefix, "rounds_accepted"), stats.rounds_accepted);
  reg.add_counter(key(prefix, "rounds_rejected"), stats.rounds_rejected);
  reg.add_counter(key(prefix, "rounds_timed_out"), stats.rounds_timed_out);
  reg.add_counter(key(prefix, "send_failures"), stats.send_failures);
  reg.set_gauge(key(prefix, "last_rtt_us"),
                static_cast<double>(stats.last_rtt_us));
  reg.set_gauge(key(prefix, "offset_us"),
                static_cast<double>(stats.offset_us));
  reg.set_gauge(key(prefix, "eps_us"), static_cast<double>(stats.eps_us));
}

}  // namespace timedc
