#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

namespace timedc {
namespace {

std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::uint32_t site, std::size_t capacity,
                               bool enabled)
    : enabled_(enabled), site_(site) {
  const std::uint64_t cap = round_up_pow2(std::max<std::size_t>(capacity, 2));
  mask_ = cap - 1;
  ring_.resize(cap);
}

std::uint64_t FlightRecorder::overwritten() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return n > ring_.size() ? n - ring_.size() : 0;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const std::uint64_t cap = ring_.size();
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  // Anything the producer may have been rewriting while we copied is
  // suspect: a slot for index i is rewritten when the producer starts
  // index i + cap, so after re-reading the index only records with
  // i >= end2 + 1 - cap are certainly untorn (end2 itself may be mid-store).
  const std::uint64_t end2 = next_.load(std::memory_order_acquire);
  const std::uint64_t safe_begin = end2 + 1 > cap ? end2 + 1 - cap : 0;
  if (safe_begin > begin) {
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                std::min(safe_begin, end) - begin));
  }
  return out;
}

bool FlightRecorder::dump_to_fd(int fd) const {
  FlightFileHeader header;
  header.site = site_;
  header.capacity = static_cast<std::uint32_t>(ring_.size());
  header.next_index = next_.load(std::memory_order_acquire);
  header.overwritten = overwritten();

  auto write_all = [fd](const void* p, std::size_t n) {
    const char* cur = static_cast<const char*>(p);
    while (n > 0) {
      const ssize_t w = ::write(fd, cur, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      cur += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  };
  if (!write_all(&header, sizeof header)) return false;
  return write_all(ring_.data(), ring_.size() * sizeof(FlightRecord));
}

bool FlightRecorder::dump_to_file(const char* path) const {
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = dump_to_fd(fd);
  ::close(fd);
  return ok;
}

// --- fatal-signal dump ---------------------------------------------------

namespace {

// Fixed-size registry: the signal handler may not allocate or lock. Slots
// are claimed with a CAS and cleared on unregister; the handler snapshots
// whatever is non-null at crash time.
constexpr std::size_t kMaxRecorders = 64;
std::atomic<FlightRecorder*> g_recorders[kMaxRecorders];
char g_dump_prefix[201];
std::atomic<bool> g_fatal_installed{false};

// Minimal async-signal-safe number formatting for the dump filename.
char* append_str(char* p, char* end, const char* s) {
  while (*s && p < end) *p++ = *s++;
  return p;
}
char* append_u32(char* p, char* end, std::uint32_t v) {
  char digits[12];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  while (n > 0 && p < end) *p++ = digits[--n];
  return p;
}

void fatal_dump_handler(int signo) {
  for (auto& slot : g_recorders) {
    FlightRecorder* r = slot.load(std::memory_order_acquire);
    if (r == nullptr) continue;
    char path[256];
    char* const end = path + sizeof path - 1;
    char* p = append_str(path, end, g_dump_prefix);
    p = append_str(p, end, ".site");
    p = append_u32(p, end, r->site());
    p = append_str(p, end, ".fr");
    *p = '\0';
    const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) continue;
    r->dump_to_fd(fd);
    ::close(fd);
  }
  // Handlers were installed with SA_RESETHAND: re-raising runs the default
  // action so the process still dies with the original signal status.
  ::raise(signo);
}

}  // namespace

void register_flight_recorder(FlightRecorder* recorder) {
  for (auto& slot : g_recorders) {
    FlightRecorder* expected = nullptr;
    if (slot.compare_exchange_strong(expected, recorder,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

void unregister_flight_recorder(FlightRecorder* recorder) {
  for (auto& slot : g_recorders) {
    FlightRecorder* expected = recorder;
    slot.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
  }
}

void install_fatal_dump(const char* path_prefix) {
  std::snprintf(g_dump_prefix, sizeof g_dump_prefix, "%s", path_prefix);
  bool expected = false;
  if (!g_fatal_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  ::memset(&sa, 0, sizeof sa);
  sa.sa_handler = fatal_dump_handler;
  sa.sa_flags = SA_RESETHAND;
  ::sigemptyset(&sa.sa_mask);
  for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(signo, &sa, nullptr);
  }
}

// --- offline conversion --------------------------------------------------

bool flight_to_events(const std::string& bytes, std::vector<TraceEvent>* out,
                      std::uint64_t* overwritten) {
  if (bytes.size() < sizeof(FlightFileHeader)) return false;
  FlightFileHeader header;
  ::memcpy(&header, bytes.data(), sizeof header);
  if (header.magic != FlightFileHeader{}.magic || header.version != 1) {
    return false;
  }
  const std::uint64_t cap = header.capacity;
  if (cap == 0 || (cap & (cap - 1)) != 0) return false;
  if (bytes.size() != sizeof header + cap * sizeof(FlightRecord)) {
    return false;
  }
  const auto* records = reinterpret_cast<const FlightRecord*>(
      bytes.data() + sizeof header);
  const std::uint64_t end = header.next_index;
  const std::uint64_t begin = end > cap ? end - cap : 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    const FlightRecord& r = records[i & (cap - 1)];
    // Skip rather than fail: a fatal dump may contain one record the
    // producer was mid-write in, and a newer writer's dump may carry types
    // this converter does not know yet. The known prefix still converts.
    if (r.type >= kNumTraceEventTypes) continue;
    out->push_back(TraceEvent{SimTime::micros(r.t_us),
                              static_cast<TraceEventType>(r.type),
                              SiteId{r.site}, ObjectId{r.obj}, r.op, r.a,
                              r.b});
  }
  if (overwritten != nullptr) *overwritten = header.overwritten;
  return true;
}

}  // namespace timedc
