#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/assert.hpp"

namespace timedc {

Histogram::Histogram(std::vector<std::int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  TIMEDC_ASSERT(!bounds_.empty());
  // Strictly increasing bounds: sorted and free of duplicates.
  TIMEDC_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                    bounds_.end());
}

Histogram Histogram::time_us() {
  return Histogram({0,      1,      2,      5,       10,      20,     50,
                    100,    200,    500,    1000,    2000,    5000,   10000,
                    20000,  50000,  100000, 200000,  500000,  1000000,
                    2000000, 5000000, 10000000});
}

std::size_t Histogram::bucket_index(std::int64_t v) const {
  // First bound >= v: bucket i covers bounds[i-1] < v <= bounds[i].
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::record(std::int64_t v) {
  ++counts_[bucket_index(v)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  TIMEDC_ASSERT(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return *this;
}

std::string Histogram::to_json() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "{\"count\":%" PRIu64 ",\"sum\":%" PRId64 ",\"min\":%" PRId64
                ",\"max\":%" PRId64 ",\"buckets\":[",
                count_, sum_, min(), max());
  out += buf;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"le\":%" PRId64 ",\"count\":%" PRIu64 "}",
                  i == 0 ? "" : ",", bounds_[i], counts_[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, ",{\"le\":\"inf\",\"count\":%" PRIu64 "}]}",
                counts_.back());
  out += buf;
  return out;
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  for (auto& [n, v] : counters_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  counters_.emplace_back(std::string(name), value);
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  for (auto& [n, v] : counters_) {
    if (n == name) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  for (auto& [n, v] : gauges_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  gauges_.emplace_back(std::string(name), value);
}

void MetricsRegistry::add_histogram(std::string_view name,
                                    Histogram histogram) {
  for (auto& [n, h] : histograms_) {
    if (n == name) {
      h += histogram;
      return;
    }
  }
  histograms_.emplace_back(std::string(name), std::move(histogram));
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  for (const auto& [n, v] : counters_) {
    if (n == name) return v;
  }
  return 0;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms_) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string inner = indent > 0 ? pad + pad : "";
  std::string out = "{" + nl;
  char buf[64];

  out += pad + "\"counters\":{" + nl;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%" PRIu64, counters_[i].second);
    out += inner + "\"" + counters_[i].first + "\":" + buf;
    out += (i + 1 < counters_.size() ? "," : "") + nl;
  }
  out += pad + "}," + nl;

  out += pad + "\"gauges\":{" + nl;
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.6f", gauges_[i].second);
    out += inner + "\"" + gauges_[i].first + "\":" + buf;
    out += (i + 1 < gauges_.size() ? "," : "") + nl;
  }
  out += pad + "}," + nl;

  out += pad + "\"histograms\":{" + nl;
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    out += inner + "\"" + histograms_[i].first +
           "\":" + histograms_[i].second.to_json();
    out += (i + 1 < histograms_.size() ? "," : "") + nl;
  }
  out += pad + "}" + nl;
  out += "}";
  return out;
}

}  // namespace timedc
