#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace timedc {

Histogram::Histogram(std::vector<std::int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  TIMEDC_ASSERT(!bounds_.empty());
  // Strictly increasing bounds: sorted and free of duplicates.
  TIMEDC_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                    bounds_.end());
}

Histogram Histogram::time_us() {
  return Histogram({0,      1,      2,      5,       10,      20,     50,
                    100,    200,    500,    1000,    2000,    5000,   10000,
                    20000,  50000,  100000, 200000,  500000,  1000000,
                    2000000, 5000000, 10000000});
}

std::size_t Histogram::bucket_index(std::int64_t v) const {
  // First bound >= v: bucket i covers bounds[i-1] < v <= bounds[i].
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::record(std::int64_t v) {
  ++counts_[bucket_index(v)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-quantile sample, 1-based (q = 0 -> first sample).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t before = cum;
    cum += counts_[i];
    if (cum < rank) continue;
    // The sample sits in bucket i: (lo, hi]. The overflow bucket has no
    // upper bound; its samples are bounded by the exact max.
    const std::int64_t lo = i == 0 ? min_ : bounds_[i - 1];
    const std::int64_t hi = i < bounds_.size() ? bounds_[i] : max_;
    const double frac = static_cast<double>(rank - before) /
                        static_cast<double>(counts_[i]);
    const double v = static_cast<double>(lo) +
                     frac * static_cast<double>(hi - lo);
    return std::min(max_, std::max(min_, static_cast<std::int64_t>(v)));
  }
  return max_;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  TIMEDC_ASSERT(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return *this;
}

std::string Histogram::to_json() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "{\"count\":%" PRIu64 ",\"sum\":%" PRId64 ",\"min\":%" PRId64
                ",\"max\":%" PRId64 ",",
                count_, sum_, min(), max());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"p50\":%" PRId64 ",\"p95\":%" PRId64 ",\"p99\":%" PRId64
                ",\"buckets\":[",
                p50(), p95(), p99());
  out += buf;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"le\":%" PRId64 ",\"count\":%" PRIu64 "}",
                  i == 0 ? "" : ",", bounds_[i], counts_[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, ",{\"le\":\"inf\",\"count\":%" PRIu64 "}]}",
                counts_.back());
  out += buf;
  return out;
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  for (auto& [n, v] : counters_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  counters_.emplace_back(std::string(name), value);
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  for (auto& [n, v] : counters_) {
    if (n == name) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(name), delta);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  for (auto& [n, v] : gauges_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  gauges_.emplace_back(std::string(name), value);
}

void MetricsRegistry::add_histogram(std::string_view name,
                                    Histogram histogram) {
  for (auto& [n, h] : histograms_) {
    if (n == name) {
      h += histogram;
      return;
    }
  }
  histograms_.emplace_back(std::string(name), std::move(histogram));
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  for (const auto& [n, v] : counters_) {
    if (n == name) return v;
  }
  return 0;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms_) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string inner = indent > 0 ? pad + pad : "";
  std::string out = "{" + nl;
  char buf[64];

  out += pad + "\"counters\":{" + nl;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%" PRIu64, counters_[i].second);
    out += inner + "\"" + counters_[i].first + "\":" + buf;
    out += (i + 1 < counters_.size() ? "," : "") + nl;
  }
  out += pad + "}," + nl;

  out += pad + "\"gauges\":{" + nl;
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.6f", gauges_[i].second);
    out += inner + "\"" + gauges_[i].first + "\":" + buf;
    out += (i + 1 < gauges_.size() ? "," : "") + nl;
  }
  out += pad + "}," + nl;

  out += pad + "\"histograms\":{" + nl;
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    out += inner + "\"" + histograms_[i].first +
           "\":" + histograms_[i].second.to_json();
    out += (i + 1 < histograms_.size() ? "," : "") + nl;
  }
  out += pad + "}" + nl;
  out += "}";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] only; our dotted/dashed
// registry names map onto '_'.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::string out;
  char buf[96];
  for (const auto& [name, value] : counters_) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
    out += n + buf;
  }
  for (const auto& [name, value] : gauges_) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    std::snprintf(buf, sizeof buf, " %g\n", value);
    out += n + buf;
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cum += h.counts()[i];
      std::snprintf(buf, sizeof buf, "_bucket{le=\"%" PRId64 "\"} %" PRIu64
                    "\n", h.bounds()[i], cum);
      out += n + buf;
    }
    cum += h.counts().back();
    std::snprintf(buf, sizeof buf, "_bucket{le=\"+Inf\"} %" PRIu64 "\n", cum);
    out += n + buf;
    std::snprintf(buf, sizeof buf, "_sum %" PRId64 "\n", h.sum());
    out += n + buf;
    std::snprintf(buf, sizeof buf, "_count %" PRIu64 "\n", h.count());
    out += n + buf;
  }
  return out;
}

}  // namespace timedc
