#include "obs/stats_board.hpp"

#include <algorithm>

namespace timedc {
namespace {

// Indexed by StatKey; order must match the enum exactly.
constexpr const char* kStatKeyNames[kNumStatKeys] = {
    "ops_applied",
    "frames_in",
    "frames_out",
    "bytes_in",
    "bytes_out",
    "batch_flushes",
    "flush_syscalls",
    "connections",
    "steered_out",
    "steered_in",
    "decode_errors",
    "heartbeats_sent",
    "heartbeats_received",
    "ticks",
    "slow_ticks",
    "max_tick_us",
    "last_tick_end_us",
    "reads_served",
    "eps_us",
    "effective_delta_us",
    "flight_recorded",
    "flight_overwritten",
    "frames_dropped",
    "cluster.forwards_out",
    "cluster.forwards_in",
    "cluster.relayed",
    "cluster.hops_exceeded",
    "cluster.membership_sent",
    "cluster.membership_received",
    "cluster.members",
    "cluster.epoch",
    "cluster.pushes",
    "cluster.replica_hits",
    "cluster.ring_epoch",
    "cluster.rebalances",
    "cluster.stale_forwards",
    "cluster.slices_synced",
    "cluster.reads_shed",
    "cluster.writes_deferred",
    "cluster.overloaded_replies",
    "last_tick_age_us",
    "stage.decode.p50_us",
    "stage.decode.p95_us",
    "stage.decode.p99_us",
    "stage.decode.max_us",
    "stage.apply.p50_us",
    "stage.apply.p95_us",
    "stage.apply.p99_us",
    "stage.apply.max_us",
    "stage.enqueue.p50_us",
    "stage.enqueue.p95_us",
    "stage.enqueue.p99_us",
    "stage.enqueue.max_us",
    "stage.flush.p50_us",
    "stage.flush.p95_us",
    "stage.flush.p99_us",
    "stage.flush.max_us",
    "staleness.p50_us",
    "staleness.p95_us",
    "staleness.p99_us",
    "staleness.max_us",
};

}  // namespace

const char* to_cstring(StatKey key) {
  const auto i = static_cast<std::size_t>(key);
  return i < kNumStatKeys ? kStatKeyNames[i] : nullptr;
}

std::int64_t AtomicLogHistogram::percentile(double q) const {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return -1;
  q = std::min(1.0, std::max(0.0, q));
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const std::uint64_t before = cum;
    cum += c;
    if (cum < rank) continue;
    // Bucket i covers [2^(i-1), 2^i) with bucket 0 = {<= 0} ∪ {nothing}:
    // record() puts magnitude m in the first bucket whose 2^b exceeds it.
    const std::int64_t lo = i == 0 ? 0 : (1ll << (i - 1));
    const std::int64_t hi = (1ll << i) - 1;
    const double frac = static_cast<double>(rank - before) /
                        static_cast<double>(c);
    const auto v = static_cast<std::int64_t>(
        static_cast<double>(lo) + frac * static_cast<double>(hi - lo));
    return std::min(max(), std::max<std::int64_t>(0, v));
  }
  return max();
}

void StatsBoard::collect(std::int64_t now_us,
                         std::vector<StatsEntry>& out) const {
  for (std::size_t i = 0; i < kNumPlainStats; ++i) {
    out.push_back({static_cast<std::uint16_t>(i),
                   plain_[i].load(std::memory_order_relaxed)});
  }
  const std::int64_t last_tick = get(StatKey::kLastTickEndUs);
  out.push_back({static_cast<std::uint16_t>(StatKey::kLastTickAgeUs),
                 last_tick == 0 ? -1
                                : std::max<std::int64_t>(0,
                                                         now_us - last_tick)});
  auto push_summary = [&out](std::uint16_t first,
                             const AtomicLogHistogram& h) {
    out.push_back({first, h.percentile(0.50)});
    out.push_back({static_cast<std::uint16_t>(first + 1),
                   h.percentile(0.95)});
    out.push_back({static_cast<std::uint16_t>(first + 2),
                   h.percentile(0.99)});
    out.push_back({static_cast<std::uint16_t>(first + 3),
                   h.count() == 0 ? -1 : h.max()});
  };
  push_summary(static_cast<std::uint16_t>(StatKey::kStageDecodeP50Us),
               stages_[0]);
  push_summary(static_cast<std::uint16_t>(StatKey::kStageApplyP50Us),
               stages_[1]);
  push_summary(static_cast<std::uint16_t>(StatKey::kStageEnqueueP50Us),
               stages_[2]);
  push_summary(static_cast<std::uint16_t>(StatKey::kStageFlushP50Us),
               stages_[3]);
  push_summary(static_cast<std::uint16_t>(StatKey::kStalenessP50Us),
               staleness_);
}

bool StatsHub::add(StatsBoard* board) {
  const std::size_t i = count_.load(std::memory_order_relaxed);
  if (i >= kMaxBoards) return false;
  boards_[i].store(board, std::memory_order_relaxed);
  count_.store(i + 1, std::memory_order_release);
  return true;
}

StatsBoard* StatsHub::find(std::uint32_t site) const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    StatsBoard* b = board(i);
    if (b != nullptr && b->site() == site) return b;
  }
  return nullptr;
}

}  // namespace timedc
