// The object server: long-term storage for every object (Section 5.1's
// "server sites"), source of truth for versions and lifetimes.
//
// The server answers fetches with its current copy (omega/beta stamped with
// the server's own time — the latest instant the value is known valid),
// applies client writes in arrival order, answers validations, and — under
// the push policies — notifies caching clients of updates (Cao-Liu style
// invalidation or full update propagation, Section 5.2's optimizations).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/history.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "protocol/messages.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {

enum class TraceEventType : std::uint8_t;
class StatsBoard;
class FlightRecorder;

enum class PushPolicy {
  kNone,        // pure pull: clients validate/fetch on demand
  kInvalidate,  // server invalidates cached copies on write
  kUpdate,      // server pushes the new copy on write
};

/// Server-side knobs. Leases implement Section 5.2's "objects whose ending
/// times are well-known (e.g. ... leased objects)": a fetch/validation
/// grants validity until now + lease_duration (shipped as the copy's
/// omega), and a write arriving while another client's lease is live is
/// DEFERRED until every such lease expires (Gray-Cheriton). Readers then
/// hit locally for the whole lease with full timeliness; writers pay the
/// wait.
struct ServerConfig {
  SimTime lease_duration = SimTime::zero();  // 0 = leases disabled
  /// Cluster-mode server-side caching (Section 5.2 push propagation between
  /// servers): a non-owner that forwards a fetch also subscribes to the
  /// owner's pushes and keeps a local replica; later fetches for the same
  /// object are served from the replica while it is fresh — no hop, no
  /// re-fetch on Delta expiry. Off by default: single-group servers and the
  /// sim fixtures keep the pure forward-everything behavior.
  bool cluster_replicas = false;
  /// Push mode requested from owners: 0 = invalidate (mark-old, next fetch
  /// revalidates if-modified-since), 1 = update (owner pushes the new copy,
  /// replica self-refreshes).
  std::uint8_t cluster_push_mode = 1;
  /// Hard cap on replica age since install/refresh; zero = uncapped (serve
  /// while subscribed and not marked old).
  SimTime replica_ttl = SimTime::zero();
  /// Admission control on the serving hot path. Rate 0 disables the gate
  /// (one branch, the default). The bucket is integer micro-tokens: each
  /// admitted op costs 1e6, refill is admit_rate_per_s * 1e6 per second,
  /// capped at admit_burst * 1e6. Reads additionally need a quarter-burst
  /// reserve, so under pressure reads shed first (kOverloaded with a
  /// retry-after; the value they want is retryable by construction) while
  /// writes defer briefly and then apply — a write is never dropped by
  /// admission, only delayed.
  std::uint32_t admit_rate_per_s = 0;
  std::uint32_t admit_burst = 64;
  /// Bounded write deferrals under overload before applying anyway.
  std::uint32_t admit_max_write_deferrals = 2;
};

struct ServerStats {
  std::uint64_t fetches = 0;
  std::uint64_t writes_applied = 0;
  std::uint64_t validations = 0;
  std::uint64_t validations_ok = 0;
  std::uint64_t pushes = 0;
  std::uint64_t forwarded = 0;       // requests relayed to the owning server
  std::uint64_t server_pushes = 0;   // pushes to subscribed cacher servers
  std::uint64_t replica_hits = 0;    // fetches served from a local replica
  std::uint64_t replica_validations = 0;  // if-modified-since refreshes done
  std::uint64_t subscribes_sent = 0; // cacher subscriptions sent to owners
  std::uint64_t writes_deferred = 0; // writes that waited for a lease
  std::uint64_t duplicate_writes = 0; // retransmitted writes deduplicated
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t writes_restored = 0;  // WAL records replayed at startup
  std::uint64_t drains = 0;           // begin_drain() calls
  // Framed-transport requests carrying request_id == 0: "unsequenced" is a
  // raw in-process test convention, never a legal wire value (see
  // messages.hpp), so such requests are rejected, not served.
  std::uint64_t rejected_unsequenced = 0;
  // Self-healing (zero until a warm-up or overload happens):
  std::uint64_t slices_synced = 0;      // anti-entropy records installed
  std::uint64_t warm_forwards = 0;      // cold reads forwarded while warming
  std::uint64_t admission_reads_shed = 0;
  std::uint64_t admission_writes_deferred = 0;
  std::uint64_t overloaded_replies = 0;  // kOverloaded replies actually sent
};

class ObjectServer {
 public:
  /// `cluster` lists every server site of the deployment (must include
  /// `self`); each object is owned by exactly one of them (hash
  /// partitioning). Empty means this server owns everything. A request
  /// arriving at a non-owner is forwarded to the owner, which replies to
  /// the client directly (one extra hop, not two).
  ///
  /// The server runs over any Transport: the deterministic sim Network or
  /// a real TcpTransport (clock and timers come from the transport).
  ObjectServer(Transport& net, SiteId self, std::size_t num_sites,
               PushPolicy push, MessageSizes sizes,
               std::vector<SiteId> cluster = {}, ServerConfig config = {});

  /// Sim-era convenience: `sim` must be the simulator `net` runs on.
  ObjectServer(Simulator& sim, Network& net, SiteId self, std::size_t num_sites,
               PushPolicy push, MessageSizes sizes,
               std::vector<SiteId> cluster = {}, ServerConfig config = {});

  /// Install this server as the network handler for its site id.
  void attach();

  /// Crash: the server goes silent and loses its SOFT state — the cachers
  /// sets (push subscriptions), outstanding leases, and scheduled write
  /// deferrals. Durable state survives: object values, versions, start
  /// times, the applied-write history, and the write dedup log (the
  /// write-ahead log a real server would replay), so retried writes stay
  /// idempotent across the crash.
  void crash();

  /// Restart after a crash. If leases are enabled, writes are deferred for
  /// a grace window of one full lease_duration: the restarted server has
  /// forgotten who holds leases, but every lease it ever granted expires
  /// within that window, so no reader's promise is broken.
  void restart();

  /// Durable write-ahead logging across *process* restarts. The hook fires
  /// for every write decision just before its ack is sent — version is the
  /// version the write got, 0 when it lost the last-writer-wins race — and
  /// the owner must make the record durable before the ack can leave (the
  /// ack is the promise). A fresh process replays the records in log order
  /// through restore_write() before attach(): object values, versions,
  /// alphas, the merged logical clock and the write-dedup slots (with their
  /// stored acks, so in-doubt retransmissions re-ack instead of re-apply)
  /// are all reconstructed.
  using WriteLog =
      std::function<void(const WriteRequest&, std::uint64_t version)>;
  void set_write_log(WriteLog log) { write_log_ = std::move(log); }
  void restore_write(const WriteRequest& req, std::uint64_t version);

  /// Arm the post-restart lease grace window on a *freshly constructed*
  /// server that restored durable state (the process-restart analogue of
  /// restart()'s window): writes defer for one lease_duration because the
  /// previous incarnation's granted leases are unknown. No-op with leases
  /// disabled.
  void arm_restart_grace();

  /// Graceful drain (SIGTERM): stop granting leases and release every
  /// outstanding one, so deferred writes can apply and their acks flush
  /// before the process exits. The caller is responsible for giving the
  /// event loop a moment to flush those replies before closing sockets.
  void begin_drain();

  bool is_up() const { return up_; }

  SiteId site() const { return self_; }
  const ServerStats& stats() const { return stats_; }

  /// Emit lease/push/write/crash events to `tracer` (nullptr = off).
  void set_tracer(Tracer* tracer) { obs_ = tracer; }

  /// Live introspection: every served fetch records its Definition-1
  /// staleness (now - the copy's start time alpha) into the reactor's
  /// board, plus a kReadsServed counter; with a flight recorder attached,
  /// sampled reads (1-in-kStalenessSamplePeriod) also leave a
  /// kReadStaleness flight event. Loop-thread only, like all handlers.
  void set_stats_board(StatsBoard* board) { stats_board_ = board; }
  void set_flight_recorder(FlightRecorder* recorder) { flight_ = recorder; }
  static constexpr std::uint64_t kStalenessSamplePeriod = 64;

  /// The server owning `object` under this deployment's partitioning.
  SiteId primary_of(ObjectId object) const;

  /// Override the default modulo partitioning with an external ownership
  /// map (the cluster hash ring). The function must be deterministic and
  /// identical across every server of the deployment.
  void set_ownership(std::function<SiteId(ObjectId)> owner_fn) {
    owner_fn_ = std::move(owner_fn);
  }

  /// Register a peer *server* as a cacher of `object` (wire
  /// kCacherSubscribe, routed here by the transport). Unlike client cachers
  /// (soft state tied to PushPolicy), server cachers are pushed on every
  /// accepted write regardless of the client push policy: mode 0 sends
  /// Invalidate (mark-old), mode 1 sends PushUpdate (replica refresh).
  void register_server_cacher(ObjectId object, SiteId cacher,
                              std::uint8_t mode);

  /// How this server sends its own cacher subscriptions to owners (wired
  /// by timedc-server to TcpTransport::send_cacher_subscribe). Subscribes
  /// are re-sent whenever a fetch forwards with no fresh replica, so a
  /// subscription lost to an owner restart self-heals.
  using SubscribeSender =
      std::function<void(SiteId owner, ObjectId object, std::uint8_t mode)>;
  void set_subscribe_sender(SubscribeSender fn) {
    subscribe_sender_ = std::move(fn);
  }

  // --- self-healing: warm-up and admission --------------------------------

  /// WARMING <-> SERVING. A server enters WARMING when it acquires a slice
  /// it has no state for (fresh start after a crash, or a rebalance handed
  /// it objects a peer owned): writes apply locally at once (safe under
  /// last-writer-wins — their alpha decides), but a read of an object this
  /// server has never seen a value for would return the cold initial value,
  /// so such reads forward through to the previous owner (serve-here flag)
  /// until the anti-entropy sync finishes and finish_warming() flips the
  /// server to normal serving.
  bool warming() const { return warming_; }
  void begin_warming() { warming_ = true; }
  void finish_warming() { warming_ = false; }

  /// How a warming server forwards a cold read to its donor (wired by
  /// timedc-server to TcpTransport::forward_serve_here). Return false when
  /// the donor is unreachable — the server then answers from local (cold)
  /// state rather than stalling the client.
  using WarmMissForwarder = std::function<bool(ObjectId, const Message&)>;
  void set_warm_miss_forwarder(WarmMissForwarder fn) {
    warm_miss_forwarder_ = std::move(fn);
  }

  /// Donor side of anti-entropy warm-up: fill `out` with up to
  /// `max_records` slice records for objects that (a) this server holds a
  /// written value for, (b) the current ring assigns to `requester`, (c)
  /// have id >= cursor and (d) were written after `if_newer_than_us`.
  /// Records stream in ascending object-id order; `next_cursor` resumes the
  /// scan. Returns true when the slice is exhausted (kSliceDone).
  bool collect_slice(SiteId requester, std::uint32_t cursor,
                     std::uint32_t max_records, std::int64_t if_newer_than_us,
                     std::vector<wire::SliceRecord>& out,
                     std::uint32_t& next_cursor);

  /// Requester side: install one streamed record. The record wins when the
  /// object is locally unwritten or the record's write time is newer
  /// (last-writer-wins, same rule as apply_write). Either way the record's
  /// (writer, request_id) refreshes the write-dedup slot, so a client
  /// retransmission of a write the OLD owner applied re-acks here instead
  /// of re-applying — exactly-once survives the ownership move. Returns
  /// true when the value was installed.
  bool install_sync_record(const wire::SliceRecord& rec);

  /// How kOverloaded replies leave (wired by timedc-server to
  /// TcpTransport::send_overloaded). Unset = shed silently; the client's
  /// retry timer covers as if the reply were lost.
  using OverloadedSender =
      std::function<void(SiteId client, ObjectId object,
                         std::uint64_t request_id, std::int64_t retry_after_us)>;
  void set_overloaded_sender(OverloadedSender fn) {
    overloaded_sender_ = std::move(fn);
  }

  /// Oracle access for the experiment harness: every write arrival in
  /// server order (values are unique). `accepted` is false for writes that
  /// lost the last-writer-wins race on start time alpha and never became
  /// the object's value.
  struct AppliedWrite {
    Value value;
    SimTime applied_at;
    bool accepted = true;
  };
  const std::vector<AppliedWrite>& applied_writes(ObjectId object) const;

  /// Every object's write arrivals (oracle access, e.g. for the
  /// visibility-latency histogram).
  const std::unordered_map<ObjectId, std::vector<AppliedWrite>>&
  write_history() const {
    return history_;
  }

 private:
  struct Stored {
    Value value = kInitialValue;
    std::uint64_t version = 0;
    SimTime alpha = SimTime::zero();
    PlausibleTimestamp alpha_l;
    // Clients believed to cache this object (for push policies).
    std::unordered_set<std::uint32_t> cachers;
    // Outstanding read leases: client -> expiry (leases mode only).
    std::unordered_map<std::uint32_t, SimTime> leases;
    // A write is waiting for leases to expire: no new leases are granted
    // (otherwise renewing readers could starve the writer forever).
    bool write_pending = false;
    // Provenance of the current value (the accepted write's client and
    // request id), streamed in slice-sync records so write dedup transfers
    // across an ownership move.
    std::uint32_t last_writer = 0;
    std::uint64_t last_request_id = 0;
  };

  // Write dedup by (client, request_id): one slot per client suffices
  // because each client has at most one operation outstanding. Durable
  // across crash (WAL semantics).
  struct WriteDedup {
    std::uint64_t completed_id = 0;  // last applied request
    WriteAck ack;                    // its ack, for retransmission
    std::uint64_t deferred_id = 0;   // request currently lease-deferred
  };

  /// One peer-owned object replicated here (cluster_replicas mode). The
  /// copy is installed by PushUpdate / ValidateReply; `old` is the
  /// mark-old bit set by Invalidate (the copy is kept for the
  /// if-modified-since version check, but never served).
  struct Replica {
    ObjectCopy copy;
    SimTime installed_at = SimTime::zero();
    bool old = true;
    bool subscribed = false;
    bool validate_inflight = false;
  };

  void on_message(SiteId from, const Message& msg);
  /// Serve a fetch for a peer-owned object from the local replica iff it
  /// is installed, not marked old, and within replica_ttl.
  bool serve_from_replica(const FetchRequest& req);
  /// Forwarding a fetch with no fresh replica: (re)subscribe to the
  /// owner's pushes and issue one if-modified-since self-validation so the
  /// replica is fresh for the next fetch.
  void refresh_replica(ObjectId object);
  void handle_cluster_invalidate(const Invalidate& inv);
  void handle_cluster_push_update(const PushUpdate& push);
  void handle_cluster_validate_reply(const ValidateReply& rep);
  /// Push an accepted write to every subscribed cacher server.
  void push_server_cachers(const WriteRequest& req, const Stored& s);
  /// The request_id == 0 gate for framed transports. True when rejected.
  bool reject_unsequenced(std::uint64_t request_id);
  void handle_fetch(const FetchRequest& req);
  void handle_write(const WriteRequest& req);
  void handle_validate(const ValidateRequest& req);
  /// Admission gates. admit_op refills the bucket, then takes one op cost
  /// iff `reserve_micro` extra tokens would remain; admit_read sheds
  /// (kOverloaded) on failure, admit_or_defer_write delays then applies.
  bool admit_op(std::int64_t reserve_micro);
  bool admit_read(ObjectId object, SiteId client, std::uint64_t request_id);
  void admit_or_defer_write(const WriteRequest& req, std::uint32_t deferrals);
  /// True when a warming server forwarded this request for a locally cold
  /// object through to its donor.
  bool forward_warm_miss(ObjectId object, const Message& m);
  /// Lease gate: defers past live leases and the post-restart grace window.
  void defer_or_apply(const WriteRequest& req);
  void apply_write(const WriteRequest& req);
  /// Log the applied write in the dedup slot so retransmissions re-ack.
  void record_completed(const WriteRequest& req, const WriteAck& ack);
  /// Latest lease expiry held by any client other than `writer` (zero when
  /// none). Expired entries are pruned as a side effect.
  SimTime lease_horizon(Stored& s, ObjectId object, SiteId writer);
  /// Returns the granted lease duration (zero when leases are disabled or
  /// a write is pending on the object).
  SimTime grant_lease(Stored& s, ObjectId object, SiteId client);
  void trace(TraceEventType type, ObjectId object, std::uint64_t op = 0,
             std::int64_t a = 0, std::int64_t b = 0);
  /// True if the request was relayed to the owning server.
  bool forward_if_not_owner(ObjectId object, const Message& m);
  /// `lease_extension` stretches omega past "now" — only for replies to
  /// clients that were actually granted a lease (push copies get none).
  ObjectCopy copy_of(ObjectId object, SimTime lease_extension = SimTime::zero()) const;
  void send(SiteId to, Message m);
  Stored& stored(ObjectId object);

  Transport& net_;
  SiteId self_;
  std::size_t num_sites_;
  PushPolicy push_;
  MessageSizes sizes_;
  std::vector<SiteId> cluster_;
  ServerConfig config_;
  bool up_ = true;
  bool draining_ = false;  // begin_drain(): no new leases are granted
  // Bumped on crash so scheduled continuations (lease deferrals) from the
  // previous incarnation die instead of touching the restarted server.
  std::uint64_t epoch_ = 0;
  SimTime lease_grace_until_ = SimTime::zero();
  std::unordered_map<std::uint32_t, WriteDedup> write_dedup_;
  mutable std::unordered_map<ObjectId, Stored> objects_;
  // The server's merged logical knowledge: max over all write timestamps it
  // has applied. Shipped as omega_l so a fresh copy never looks causally
  // stale to a client whose context grew only through this server.
  PlausibleTimestamp logical_now_;
  std::unordered_map<ObjectId, std::vector<AppliedWrite>> history_;
  WriteLog write_log_;
  // Cluster seam: external ownership map, replicas of peer-owned objects,
  // peer servers subscribed to objects owned here (site -> push mode), and
  // the outbound subscription sender.
  std::function<SiteId(ObjectId)> owner_fn_;
  std::unordered_map<ObjectId, Replica> replicas_;
  std::unordered_map<ObjectId, std::unordered_map<std::uint32_t, std::uint8_t>>
      server_cachers_;
  SubscribeSender subscribe_sender_;
  std::uint64_t self_request_id_ = 0;  // ids for self-issued validations
  // Self-healing state:
  bool warming_ = false;
  WarmMissForwarder warm_miss_forwarder_;
  OverloadedSender overloaded_sender_;
  static constexpr std::int64_t kAdmitOpCostMicro = 1'000'000;
  std::int64_t admit_tokens_micro_ = 0;
  std::int64_t admit_last_refill_us_ = 0;
  std::vector<std::uint32_t> slice_ids_;  // collect_slice sort scratch
  Tracer* obs_ = nullptr;
  StatsBoard* stats_board_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  std::uint64_t reads_served_ = 0;
  ServerStats stats_;
};

}  // namespace timedc
