#include "protocol/experiment.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "obs/stats_bridge.hpp"
#include "protocol/timed_causal_cache.hpp"
#include "protocol/timed_serial_cache.hpp"

namespace timedc {
namespace {

/// Drives one client's planned operations sequentially: the next operation
/// issues at its planned time or just after the previous one completed,
/// whichever is later.
class ClientDriver {
 public:
  ClientDriver(Simulator& sim, CacheClient& client, HistoryBuilder& record,
               std::vector<SimTime>& read_staleness_sink)
      : sim_(sim),
        client_(client),
        record_(record),
        staleness_sink_(read_staleness_sink) {}

  void add_op(const WorkloadOp& op, Value write_value) {
    plan_.push_back(Planned{op.at, op.is_write, op.object, write_value});
  }

  void start() { issue_next(SimTime::zero()); }

  using StalenessOracle = std::function<SimTime(ObjectId, Value, SimTime)>;
  void set_oracle(StalenessOracle oracle) { oracle_ = std::move(oracle); }

  std::uint64_t completed() const { return completed_; }

 private:
  struct Planned {
    SimTime at;
    bool is_write;
    ObjectId object;
    Value value;
  };

  void issue_next(SimTime not_before) {
    if (plan_.empty()) return;
    const Planned next = plan_.front();
    const SimTime when = max(next.at, not_before);
    plan_.pop_front();
    sim_.schedule_at(when, [this, next] { execute(next); });
  }

  void execute(const Planned& op) {
    // Abandoned operations (retry budget exhausted under faults) complete
    // degraded: they are counted but kept out of the recorded history and
    // the staleness oracle — an abandoned read was never admitted under
    // the protocol's Delta rules, and an abandoned write may or may not
    // have reached the server (its ack was lost either way).
    if (op.is_write) {
      const SimTime issued = sim_.now();
      client_.write(op.object, op.value, [this, op, issued](SimTime completed) {
        if (!client_.last_op_abandoned()) {
          record_.write(client_.site(), op.object, op.value, issued);
        }
        ++completed_;
        issue_next(completed + SimTime::micros(1));
      });
    } else {
      client_.read(op.object, [this, op](Value v, SimTime completed) {
        if (!client_.last_op_abandoned()) {
          record_.read(client_.site(), op.object, v, completed);
          if (oracle_) {
            staleness_sink_.push_back(oracle_(op.object, v, completed));
          }
        }
        ++completed_;
        issue_next(completed + SimTime::micros(1));
      });
    }
  }

  Simulator& sim_;
  CacheClient& client_;
  HistoryBuilder& record_;
  std::vector<SimTime>& staleness_sink_;
  std::deque<Planned> plan_;
  StalenessOracle oracle_;
  std::uint64_t completed_ = 0;
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Simulator sim;
  Rng rng(config.seed);

  const std::size_t num_clients = config.workload.num_clients;
  const std::size_t num_servers = std::max<std::size_t>(1, config.num_servers);
  std::vector<SiteId> cluster;
  for (std::size_t k = 0; k < num_servers; ++k) {
    cluster.push_back(SiteId{static_cast<std::uint32_t>(num_clients + k)});
  }

  NetworkConfig net_config;
  net_config.drop_probability = config.drop_probability;
  Network net(sim, num_clients + num_servers,
              std::make_unique<UniformLatency>(config.min_latency,
                                               config.max_latency),
              net_config, rng.split());

  // One Tracer per run: run_experiment is a pure function of its config, so
  // the flushed trace is bit-identical however many runs execute in
  // parallel around it.
  std::optional<Tracer> tracer;
  if (config.trace.enabled) tracer.emplace(config.trace);
  Tracer* obs = tracer ? &*tracer : nullptr;
  net.set_tracer(obs);

  // The injector gets its own rng stream, derived from the seed but NOT
  // from the shared split sequence: adding faults must not perturb the
  // latency/workload streams of the fault-free baseline.
  std::optional<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(config.faults, Rng(config.seed ^ 0xFA017ull));
    net.set_fault_injector(&*injector);
    if (obs != nullptr) injector->emit_partition_markers(*obs);
  }

  std::vector<std::unique_ptr<ObjectServer>> servers;
  for (SiteId site : cluster) {
    servers.push_back(std::make_unique<ObjectServer>(
        sim, net, site, num_clients, config.push, config.sizes, cluster,
        ServerConfig{config.lease}));
    servers.back()->set_tracer(obs);
    servers.back()->attach();
    if (injector) {
      ObjectServer* srv = servers.back().get();
      injector->install(sim, site,
                        FaultInjector::NodeHooks{[srv] { srv->crash(); },
                                                 [srv] { srv->restart(); }});
    }
  }
  const auto owner_of = [&cluster](ObjectId object) {
    return cluster[object.value % cluster.size()];
  };

  // Clocks: perfect when eps == 0, eps-synchronized otherwise.
  std::vector<std::unique_ptr<PhysicalClockModel>> clocks;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    if (config.eps == SimTime::zero()) {
      clocks.push_back(std::make_unique<PerfectClock>());
    } else {
      clocks.push_back(std::make_unique<SyncedClock>(
          config.eps, SimTime::millis(50), config.drift_ppm,
          config.seed * 1315423911ULL + c));
    }
  }

  std::vector<std::unique_ptr<CacheClient>> clients;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    if (config.kind == ProtocolKind::kTimedSerial) {
      clients.push_back(std::make_unique<TimedSerialCache>(
          sim, net, SiteId{c}, cluster.front(), clocks[c].get(), config.delta,
          config.mark_old, config.sizes));
    } else {
      clients.push_back(std::make_unique<TimedCausalCache>(
          sim, net, SiteId{c}, cluster.front(), clocks[c].get(), config.delta,
          config.mark_old, config.sizes, num_clients, config.clock_entries,
          config.eviction));
    }
    RetryPolicy retry = config.retry;
    if (retry.max_attempts == 0) {
      // AUTO: reliability costs nothing to leave off when the network is
      // perfect, and is mandatory when it isn't.
      const bool faulty =
          config.drop_probability > 0.0 || !config.faults.empty();
      retry.max_attempts = faulty ? 8 : 1;
    }
    clients.back()->set_tracer(obs);
    clients.back()->configure_reliability(retry, cluster,
                                          config.seed * 2654435761ULL + c);
    if (config.routing == Routing::kDirect) {
      clients.back()->set_route(owner_of);
    } else {
      // Round-robin over the cluster: non-owners forward (Section 5.1's
      // "a server site which either has a copy or can obtain it").
      auto counter = std::make_shared<std::size_t>(c);
      clients.back()->set_route([&cluster, counter](ObjectId) {
        return cluster[(*counter)++ % cluster.size()];
      });
    }
    clients.back()->attach();
  }

  // Plan the workload; writes receive globally unique values.
  Rng wl_rng = rng.split();
  const auto ops = generate_workload(config.workload, wl_rng);
  HistoryBuilder record(num_clients);
  std::vector<SimTime> staleness;
  std::vector<std::unique_ptr<ClientDriver>> drivers;
  for (std::uint32_t c = 0; c < num_clients; ++c) {
    drivers.push_back(
        std::make_unique<ClientDriver>(sim, *clients[c], record, staleness));
  }
  std::int64_t next_value = 1;
  for (const WorkloadOp& op : ops) {
    drivers[op.client.value]->add_op(
        op, op.is_write ? Value{next_value++} : Value{0});
  }

  // Oracle: staleness of a returned value = completion time minus the
  // server-side apply time of the next write to the same object (0 when the
  // value was still current at completion).
  const auto oracle = [&servers, &owner_of, &cluster, num_clients](
                          ObjectId object, Value v,
                          SimTime completed) -> SimTime {
    (void)cluster;
    const ObjectServer& server =
        *servers[owner_of(object).value - num_clients];
    const auto& writes = server.applied_writes(object);
    // A value that lost the last-writer-wins race was stale the moment it
    // reached the server (only its own writer can still be serving it).
    for (const auto& w : writes) {
      if (w.value == v && !w.accepted) {
        return completed > w.applied_at ? completed - w.applied_at
                                        : SimTime::zero();
      }
    }
    // Otherwise: staleness counts from the next *accepted* write after v's
    // own apply time (for the initial value, from the first accepted write).
    SimTime own_apply = SimTime::micros(-1);
    for (const auto& w : writes) {
      if (w.value == v) {
        own_apply = w.applied_at;
        break;
      }
    }
    for (const auto& w : writes) {
      if (w.accepted && w.applied_at > own_apply && w.value != v) {
        if (w.applied_at >= completed) return SimTime::zero();
        return completed - w.applied_at;
      }
    }
    return SimTime::zero();
  };
  for (auto& d : drivers) {
    d->set_oracle(oracle);
    d->start();
  }

  sim.run_until();

  ExperimentResult result;
  for (const auto& c : clients) result.cache += c->stats();
  for (const auto& srv : servers) {
    const ServerStats& st = srv->stats();
    result.server.fetches += st.fetches;
    result.server.writes_applied += st.writes_applied;
    result.server.validations += st.validations;
    result.server.validations_ok += st.validations_ok;
    result.server.pushes += st.pushes;
    result.server.forwarded += st.forwarded;
    result.server.writes_deferred += st.writes_deferred;
    result.server.duplicate_writes += st.duplicate_writes;
    result.server.crashes += st.crashes;
    result.server.restarts += st.restarts;
  }
  result.network = net.stats();
  if (injector) result.faults = injector->stats();
  for (const auto& d : drivers) result.operations += d->completed();
  // Every operation completes or is explicitly abandoned — a hung client
  // would fail this (the liveness half of the robustness claim).
  TIMEDC_ASSERT(result.operations == ops.size());
  result.ops_abandoned = result.cache.ops_abandoned;
  if (result.operations > 0) {
    result.retries_per_op = static_cast<double>(result.cache.retries) /
                            static_cast<double>(result.operations);
  }
  if (!ops.empty()) {
    SimTime horizon = SimTime::zero();
    for (const WorkloadOp& op : ops) horizon = max(horizon, op.at);
    horizon = max(horizon, sim.now());
    const double total_client_us =
        static_cast<double>(num_clients) *
        static_cast<double>(horizon.as_micros());
    if (total_client_us > 0) {
      result.unavailable_fraction =
          static_cast<double>(result.cache.unavailable_us) / total_client_us;
    }
  }

  if (!staleness.empty()) {
    double sum = 0;
    std::uint64_t late = 0;
    for (SimTime s : staleness) {
      sum += static_cast<double>(s.as_micros());
      result.max_staleness = max(result.max_staleness, s);
      result.staleness_us.record(s.as_micros());
      if (!config.delta.is_infinite() && s > config.delta) ++late;
    }
    result.mean_staleness_us = sum / static_cast<double>(staleness.size());
    result.reads_late = late;
    result.late_fraction =
        static_cast<double>(late) / static_cast<double>(staleness.size());
  }
  if (result.operations > 0) {
    result.messages_per_op = static_cast<double>(result.network.messages_sent) /
                             static_cast<double>(result.operations);
    result.bytes_per_op = static_cast<double>(result.network.bytes_sent) /
                          static_cast<double>(result.operations);
  }
  result.messages_dropped = result.network.messages_dropped;
  result.messages_duplicated = result.network.messages_duplicated;
  result.history = record.build();

  // Visibility latency per accepted write: server apply time minus client
  // issue time. Written values are globally unique, so the recorded history
  // pairs each server-side arrival with its issuing operation.
  {
    std::unordered_map<std::int64_t, SimTime> issued_at;
    for (const Operation& op : result.history.operations()) {
      if (op.is_write()) issued_at.emplace(op.value.value, op.time);
    }
    for (const auto& srv : servers) {
      for (const auto& [object, writes] : srv->write_history()) {
        (void)object;
        for (const auto& w : writes) {
          if (!w.accepted) continue;
          const auto it = issued_at.find(w.value.value);
          if (it == issued_at.end()) continue;  // abandoned, not recorded
          result.visibility_us.record((w.applied_at - it->second).as_micros());
        }
      }
    }
  }

  if (tracer) result.trace = tracer->flush();
  return result;
}

MetricsRegistry experiment_metrics(const ExperimentConfig& config,
                                   const ExperimentResult& result) {
  MetricsRegistry reg;
  reg.set_gauge("delta_us", config.delta.is_infinite()
                                ? -1.0
                                : static_cast<double>(config.delta.as_micros()));
  reg.set_counter("operations", result.operations);
  reg.set_counter("ops_abandoned", result.ops_abandoned);
  reg.set_counter("reads_late", result.reads_late);
  reg.set_gauge("late_fraction", result.late_fraction);
  reg.set_gauge("mean_staleness_us", result.mean_staleness_us);
  reg.set_gauge("messages_per_op", result.messages_per_op);
  reg.set_gauge("bytes_per_op", result.bytes_per_op);
  reg.set_gauge("retries_per_op", result.retries_per_op);
  reg.set_gauge("unavailable_fraction", result.unavailable_fraction);
  publish_cache_stats(reg, "cache", result.cache);
  publish_server_stats(reg, "server", result.server);
  publish_network_stats(reg, "network", result.network);
  publish_fault_stats(reg, "faults", result.faults);
  reg.add_histogram("staleness_us", result.staleness_us);
  reg.add_histogram("visibility_latency_us", result.visibility_us);
  return reg;
}

std::vector<ExperimentResult> run_experiment_seeds(
    const ExperimentConfig& config, const std::vector<std::uint64_t>& seeds,
    std::size_t num_threads) {
  return parallel_map(
      seeds.size(),
      [&](std::size_t i) {
        ExperimentConfig c = config;
        c.seed = seeds[i];
        return run_experiment(c);
      },
      num_threads);
}

}  // namespace timedc
