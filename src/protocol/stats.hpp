// Counters shared by the protocol clients and the experiment harness.
#pragma once

#include <cstdint>

#include "common/sim_time.hpp"

namespace timedc {

struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cache_hits = 0;        // served locally, no round trip
  std::uint64_t cache_misses = 0;      // full fetch needed
  std::uint64_t validations = 0;       // if-modified-since round trips
  std::uint64_t validations_ok = 0;    // ... answered "still valid" (304)
  std::uint64_t invalidations = 0;     // entries dropped by protocol rules
  std::uint64_t marked_old = 0;        // entries demoted to old (validate later)
  std::uint64_t push_updates = 0;      // server-pushed copies installed
  std::uint64_t push_invalidations = 0;
  // Reliable-RPC layer (zero on a lossless network / without a RetryPolicy).
  std::uint64_t retries = 0;            // request retransmissions
  std::uint64_t failovers = 0;          // reroutes to another cluster server
  std::uint64_t ops_abandoned = 0;      // retry budget exhausted
  std::uint64_t duplicate_replies = 0;  // replies suppressed by request id
  std::uint64_t unavailable_us = 0;     // time spent inside abandoned ops
  // Adaptive Delta (zero without a DeltaProvider).
  std::uint64_t delta_adaptations = 0;  // effective-Delta moves >= 1ms

  double hit_ratio() const {
    return reads == 0 ? 0.0 : static_cast<double>(cache_hits) / reads;
  }

  CacheStats& operator+=(const CacheStats& o) {
    reads += o.reads;
    writes += o.writes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    validations += o.validations;
    validations_ok += o.validations_ok;
    invalidations += o.invalidations;
    marked_old += o.marked_old;
    push_updates += o.push_updates;
    push_invalidations += o.push_invalidations;
    retries += o.retries;
    failovers += o.failovers;
    ops_abandoned += o.ops_abandoned;
    duplicate_replies += o.duplicate_replies;
    unavailable_us += o.unavailable_us;
    delta_adaptations += o.delta_adaptations;
    return *this;
  }
};

}  // namespace timedc
