#include "protocol/timed_causal_cache.hpp"

#include "common/assert.hpp"

namespace timedc {

TimedCausalCache::TimedCausalCache(Transport& net, SiteId self, SiteId server,
                                   const PhysicalClockModel* clock,
                                   SimTime delta, bool mark_old,
                                   MessageSizes sizes, std::size_t num_clients,
                                   std::size_t clock_entries,
                                   CausalEvictionRule eviction)
    : CacheClient(net, self, server, clock, delta, mark_old, sizes),
      eviction_(eviction),
      clock_(clock_entries == 0 ? num_clients : clock_entries, self),
      context_l_(std::vector<std::uint64_t>(
                     clock_entries == 0 ? num_clients : clock_entries, 0),
                 self) {}

TimedCausalCache::TimedCausalCache(Simulator& sim, Network& net, SiteId self,
                                   SiteId server,
                                   const PhysicalClockModel* clock,
                                   SimTime delta, bool mark_old,
                                   MessageSizes sizes, std::size_t num_clients,
                                   std::size_t clock_entries,
                                   CausalEvictionRule eviction)
    : TimedCausalCache(static_cast<Transport&>(net), self, server, clock,
                       delta, mark_old, sizes, num_clients, clock_entries,
                       eviction) {
  (void)sim;
}

PlausibleTimestamp TimedCausalCache::normalize(
    const PlausibleTimestamp& ts) const {
  // Objects never written logically ship empty timestamps; treat as bottom.
  if (ts.num_entries() != 0) return ts;
  return PlausibleTimestamp(
      std::vector<std::uint64_t>(context_l_.num_entries(), 0), self_);
}

PlausibleTimestamp TimedCausalCache::ending_time(
    const PlausibleTimestamp& alpha_l,
    const PlausibleTimestamp& server_omega_l) const {
  // Either way the client's own context is merged in, so a fresh install can
  // never be demoted by the knowledge the client already had (without this,
  // partitioned servers would make every cross-server install self-stale).
  const PlausibleTimestamp base =
      eviction_ == CausalEvictionRule::kServerKnowledge
          ? PlausibleTimestamp::merge_max(alpha_l, normalize(server_omega_l))
          : alpha_l;
  return PlausibleTimestamp::merge_max(base, context_l_);
}

void TimedCausalCache::raise_context(const PlausibleTimestamp& ts) {
  const PlausibleTimestamp next = PlausibleTimestamp::merge_max(context_l_, ts);
  if (next.entries() == context_l_.entries()) return;
  context_l_ = next;
  causal_sweep();
}

void TimedCausalCache::demote(std::unordered_map<ObjectId, Entry>::iterator it,
                              bool& erased) {
  erased = false;
  if (mark_old_) {
    it->second.old = true;
    ++stats_.marked_old;
  } else {
    ++stats_.invalidations;
    cache_.erase(it);
    erased = true;
  }
}

void TimedCausalCache::beta_sweep() {
  const SimTime budget = effective_delta();
  if (budget.is_infinite()) return;  // plain CC
  const SimTime horizon = local_time() - budget;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!it->second.old && it->second.beta < horizon) {
      bool erased = false;
      demote(it++, erased);
      // demote() may have erased the element the (already advanced)
      // iterator no longer points to; nothing further to do either way.
      (void)erased;
    } else {
      ++it;
    }
  }
}

void TimedCausalCache::causal_sweep() {
  for (auto it = cache_.begin(); it != cache_.end();) {
    Entry& e = it->second;
    if (!e.old && e.omega_l.compare(context_l_) == Ordering::kBefore) {
      bool erased = false;
      demote(it++, erased);
      (void)erased;
    } else {
      ++it;
    }
  }
}

void TimedCausalCache::install(const ObjectCopy& copy) {
  const PlausibleTimestamp alpha_l = normalize(copy.alpha_l);
  // The logical ending time depends on the eviction rule; see
  // CausalEvictionRule for the soundness/efficiency discussion.
  const PlausibleTimestamp omega_l = ending_time(alpha_l, copy.omega_l);
  cache_[copy.object] = Entry{copy.value, alpha_l, omega_l,
                              copy.beta,  copy.version, false};
  // Reading a remote value makes this site causally after its write.
  clock_.receive(alpha_l);
  raise_context(alpha_l);  // logical rule 1
}

void TimedCausalCache::begin_read(ObjectId object) {
  beta_sweep();
  const auto it = cache_.find(object);
  if (it != cache_.end() && !it->second.old) {
    ++stats_.cache_hits;
    trace(TraceEventType::kCacheHit, object);
    finish_read(it->second.value);
    return;
  }
  pending_object_ = object;
  if (it != cache_.end()) {
    ++stats_.validations;
    trace(TraceEventType::kCacheValidate, object);
    send_to_server(Message{ValidateRequest{object, it->second.version, self_}},
                   object);
  } else {
    ++stats_.cache_misses;
    trace(TraceEventType::kCacheMiss, object);
    send_to_server(Message{FetchRequest{object, self_}}, object);
  }
}

Value TimedCausalCache::degraded_read_value(ObjectId object) const {
  const auto it = cache_.find(object);
  return it == cache_.end() ? CacheClient::degraded_read_value(object)
                            : it->second.value;
}

void TimedCausalCache::begin_write(ObjectId object, Value value) {
  beta_sweep();
  const SimTime t = local_time();
  const PlausibleTimestamp ts = clock_.tick();
  Entry e;
  e.value = value;
  e.alpha_l = ts;
  e.omega_l = ts;  // the freshest knowledge anywhere: ts dominates context
  e.beta = t;
  cache_[object] = std::move(e);
  raise_context(ts);  // logical rule 2
  send_to_server(Message{WriteRequest{object, value, t, ts, self_}}, object);
}

void TimedCausalCache::handle(const Message& message) {
  if (const auto* reply = std::get_if<FetchReply>(&message)) {
    install(reply->copy);
    if (read_pending() && reply->copy.object == pending_object_) {
      finish_read(reply->copy.value);
    }
    return;
  }
  if (const auto* reply = std::get_if<ValidateReply>(&message)) {
    if (reply->still_valid) {
      ++stats_.validations_ok;
      auto it = cache_.find(reply->object);
      if (it == cache_.end()) {
        ++stats_.cache_misses;
        send_to_server(Message{FetchRequest{reply->object, self_}},
                       reply->object);
        return;
      }
      it->second.beta = reply->copy.beta;
      // The server vouched the value is still current: its validity extends
      // to everything the client knows at this moment (and no further; see
      // install() for why omega_l must not exceed the local context).
      it->second.omega_l =
          ending_time(it->second.alpha_l, reply->copy.omega_l);
      it->second.old = false;
      if (read_pending() && reply->object == pending_object_) {
        finish_read(it->second.value);
      }
    } else {
      install(reply->copy);
      if (read_pending() && reply->object == pending_object_) {
        finish_read(reply->copy.value);
      }
    }
    return;
  }
  if (const auto* ack = std::get_if<WriteAck>(&message)) {
    auto it = cache_.find(ack->object);
    if (it != cache_.end() && it->second.version == 0) {
      it->second.version = ack->version;
    }
    finish_write();
    return;
  }
  if (const auto* inv = std::get_if<Invalidate>(&message)) {
    auto it = cache_.find(inv->object);
    if (it != cache_.end() && it->second.version < inv->version) {
      ++stats_.push_invalidations;
      cache_.erase(it);
    }
    return;
  }
  if (const auto* push = std::get_if<PushUpdate>(&message)) {
    ++stats_.push_updates;
    install(push->copy);
    return;
  }
  TIMEDC_ASSERT(false && "unexpected message at client");
}

}  // namespace timedc
