#include "protocol/server.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/stats_board.hpp"
#include "obs/trace.hpp"

namespace timedc {

void ObjectServer::trace(TraceEventType type, ObjectId object,
                         std::uint64_t op, std::int64_t a, std::int64_t b) {
  if (obs_ != nullptr) obs_->emit(type, net_.now(), self_, object, op, a, b);
}

ObjectServer::ObjectServer(Simulator& sim, Network& net, SiteId self,
                           std::size_t num_sites, PushPolicy push,
                           MessageSizes sizes, std::vector<SiteId> cluster,
                           ServerConfig config)
    : ObjectServer(static_cast<Transport&>(net), self, num_sites, push, sizes,
                   std::move(cluster), config) {
  (void)sim;  // the transport's clock IS this simulator's clock
}

ObjectServer::ObjectServer(Transport& net, SiteId self, std::size_t num_sites,
                           PushPolicy push, MessageSizes sizes,
                           std::vector<SiteId> cluster, ServerConfig config)
    : net_(net),
      self_(self),
      num_sites_(num_sites),
      push_(push),
      sizes_(sizes),
      cluster_(std::move(cluster)),
      config_(config) {
  if (!cluster_.empty()) {
    bool contains_self = false;
    for (SiteId s : cluster_) contains_self |= (s == self_);
    TIMEDC_ASSERT(contains_self && "cluster must include this server");
  }
}

SiteId ObjectServer::primary_of(ObjectId object) const {
  if (owner_fn_) return owner_fn_(object);
  if (cluster_.empty()) return self_;
  return cluster_[object.value % cluster_.size()];
}

bool ObjectServer::forward_if_not_owner(ObjectId object, const Message& m) {
  const SiteId owner = primary_of(object);
  if (owner == self_) return false;
  ++stats_.forwarded;
  trace(TraceEventType::kClusterForward, object, 0, owner.value, 0);
  if (flight_ != nullptr) {
    flight_->record(TraceEventType::kClusterForward, net_.now().as_micros(),
                    object, 0, owner.value, 0);
  }
  net_.send_message(self_, owner, m, sizes_.of(m));
  return true;
}

void ObjectServer::attach() {
  net_.register_site(self_, [this](SiteId from, const Message& m) {
    on_message(from, m);
  });
}

void ObjectServer::crash() {
  if (!up_) return;
  up_ = false;
  ++epoch_;
  ++stats_.crashes;
  trace(TraceEventType::kServerCrash, kNoObject);
  // Soft state dies with the process; durable object state and the write
  // dedup log survive (see the header).
  for (auto& [object, s] : objects_) {
    s.cachers.clear();
    s.leases.clear();
    s.write_pending = false;
  }
  // Requests deferred on leases were soft too: their scheduled
  // continuations check epoch_ and evaporate. The writer's retry layer
  // re-submits them.
  for (auto& [client, d] : write_dedup_) d.deferred_id = 0;
}

void ObjectServer::restart() {
  if (up_) return;
  up_ = true;
  ++stats_.restarts;
  if (config_.lease_duration > SimTime::zero()) {
    // Conservative lease recovery (Gray-Cheriton): every lease granted
    // before the crash expires by now + lease_duration, so deferring all
    // writes until then preserves the promise made to forgotten readers.
    lease_grace_until_ = net_.now() + config_.lease_duration;
  }
  trace(TraceEventType::kServerRestart, kNoObject, 0, 0,
        config_.lease_duration.as_micros());
}

void ObjectServer::restore_write(const WriteRequest& req,
                                 std::uint64_t version) {
  ++stats_.writes_restored;
  const bool accepted = version != 0;
  if (accepted) {
    Stored& s = stored(req.object);
    s.value = req.value;
    s.version = version;
    s.alpha = req.client_time;
    s.last_writer = req.reply_to.value;
    s.last_request_id = req.request_id;
    if (req.write_ts.num_entries() != 0) {
      s.alpha_l = req.write_ts;
      logical_now_ = logical_now_.num_entries() == 0
                         ? req.write_ts
                         : PlausibleTimestamp::merge_max(logical_now_,
                                                        req.write_ts);
    }
  }
  history_[req.object].push_back(AppliedWrite{req.value, net_.now(), accepted});
  // Rebuild the dedup slot with the recorded ack, so a client whose ack was
  // lost in the crash gets the same answer when it retransmits.
  if (req.request_id != 0) {
    WriteDedup& d = write_dedup_[req.reply_to.value];
    if (req.request_id >= d.completed_id) {
      d.completed_id = req.request_id;
      d.ack = WriteAck{req.object, version, req.request_id};
    }
  }
}

void ObjectServer::arm_restart_grace() {
  if (config_.lease_duration == SimTime::zero()) return;
  lease_grace_until_ = net_.now() + config_.lease_duration;
}

void ObjectServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  ++stats_.drains;
  lease_grace_until_ = SimTime::zero();
  for (auto& [object, s] : objects_) {
    for (const auto& [client, expiry] : s.leases) {
      trace(TraceEventType::kLeaseExpire, object, 0, client, 0);
    }
    s.leases.clear();
  }
}

ObjectServer::Stored& ObjectServer::stored(ObjectId object) {
  return objects_.try_emplace(object).first->second;
}

const std::vector<ObjectServer::AppliedWrite>& ObjectServer::applied_writes(
    ObjectId object) const {
  static const std::vector<AppliedWrite> kEmpty;
  const auto it = history_.find(object);
  return it == history_.end() ? kEmpty : it->second;
}

bool ObjectServer::reject_unsequenced(std::uint64_t request_id) {
  // Over a framed transport every legal request carries a client-stamped
  // id >= 1 (messages.hpp); id 0 is the raw in-process test convention and
  // must never be honored off the wire — the reliable-RPC dedup would have
  // no key for it.
  if (request_id != 0 || !net_.requires_sequenced_requests()) return false;
  ++stats_.rejected_unsequenced;
  return true;
}

void ObjectServer::on_message(SiteId from, const Message& msg) {
  (void)from;
  if (!up_) return;  // a crashed server is silent; clients retry elsewhere
  // A serve-here forward (a warming peer's forward-through) pins the
  // request to local state: re-checking ownership would bounce it straight
  // back and loop.
  const bool serve_local = net_.dispatch_serve_locally();
  if (const auto* fetch = std::get_if<FetchRequest>(&msg)) {
    if (reject_unsequenced(fetch->request_id)) return;
    if (!serve_local && primary_of(fetch->object) != self_) {
      // Peer-owned object: a fresh replica answers locally (no hop); a
      // miss forwards to the owner and primes the replica for next time.
      if (config_.cluster_replicas && serve_from_replica(*fetch)) return;
      forward_if_not_owner(fetch->object, msg);
      if (config_.cluster_replicas) refresh_replica(fetch->object);
      return;
    }
    if (!admit_read(fetch->object, fetch->reply_to, fetch->request_id)) return;
    if (warming_ && !serve_local && forward_warm_miss(fetch->object, msg)) {
      return;
    }
    handle_fetch(*fetch);
  } else if (const auto* write = std::get_if<WriteRequest>(&msg)) {
    if (reject_unsequenced(write->request_id)) return;
    if (!serve_local && forward_if_not_owner(write->object, msg)) return;
    handle_write(*write);
  } else if (const auto* validate = std::get_if<ValidateRequest>(&msg)) {
    if (reject_unsequenced(validate->request_id)) return;
    if (!serve_local && forward_if_not_owner(validate->object, msg)) return;
    if (!admit_read(validate->object, validate->reply_to,
                    validate->request_id)) {
      return;
    }
    if (warming_ && !serve_local &&
        forward_warm_miss(validate->object, msg)) {
      return;
    }
    handle_validate(*validate);
  } else if (const auto* inv = std::get_if<Invalidate>(&msg);
             inv != nullptr && config_.cluster_replicas) {
    handle_cluster_invalidate(*inv);
  } else if (const auto* push = std::get_if<PushUpdate>(&msg);
             push != nullptr && config_.cluster_replicas) {
    handle_cluster_push_update(*push);
  } else if (const auto* vrep = std::get_if<ValidateReply>(&msg);
             vrep != nullptr && config_.cluster_replicas) {
    handle_cluster_validate_reply(*vrep);
  } else {
    // A raw sim harness sending a reply-type message at a server is a test
    // bug; a framed peer doing so is just a misbehaving client.
    TIMEDC_ASSERT(net_.requires_sequenced_requests() &&
                  "unexpected message at server");
  }
}

bool ObjectServer::serve_from_replica(const FetchRequest& req) {
  const auto it = replicas_.find(req.object);
  if (it == replicas_.end()) return false;
  const Replica& r = it->second;
  if (r.old || r.copy.version == 0) return false;
  if (config_.replica_ttl > SimTime::zero() &&
      net_.now() > r.installed_at + config_.replica_ttl) {
    return false;
  }
  ++stats_.replica_hits;
  ObjectCopy copy = r.copy;
  // The subscription is the warrant: the owner pushes every accepted write
  // here (or marks the copy old), so an un-invalidated replica is the
  // owner's current value modulo one in-flight push — this server can
  // vouch for it "now" exactly as the owner would.
  copy.omega = net_.now();
  copy.beta = net_.now();
  if (stats_board_ != nullptr) {
    ++reads_served_;
    stats_board_->set(StatKey::kReadsServed,
                      static_cast<std::int64_t>(reads_served_));
    stats_board_->set(StatKey::kClusterReplicaHits,
                      static_cast<std::int64_t>(stats_.replica_hits));
    const std::int64_t staleness_us = (net_.now() - copy.alpha).as_micros();
    stats_board_->record_staleness(staleness_us);
  }
  send(req.reply_to, Message{FetchReply{copy, req.request_id}});
  return true;
}

void ObjectServer::refresh_replica(ObjectId object) {
  Replica& r = replicas_.try_emplace(object).first->second;
  const SiteId owner = primary_of(object);
  if (!r.subscribed && subscribe_sender_) {
    subscribe_sender_(owner, object, config_.cluster_push_mode);
    r.subscribed = true;
    ++stats_.subscribes_sent;
  }
  if (r.validate_inflight) return;
  r.validate_inflight = true;
  // If-modified-since: ask the owner whether our (possibly old) version is
  // still current; the reply installs or refreshes the replica either way.
  ++stats_.replica_validations;
  ValidateRequest v;
  v.object = object;
  v.version = r.copy.version;
  v.reply_to = self_;
  v.request_id = ++self_request_id_;
  net_.send_message(self_, owner, Message{v}, sizes_.of(Message{v}));
}

void ObjectServer::handle_cluster_invalidate(const Invalidate& inv) {
  Replica& r = replicas_.try_emplace(inv.object).first->second;
  // Mark-old, don't drop: the kept copy's version feeds the
  // if-modified-since validation the next fetch triggers.
  r.old = true;
}

void ObjectServer::handle_cluster_push_update(const PushUpdate& push) {
  Replica& r = replicas_.try_emplace(push.copy.object).first->second;
  r.copy = push.copy;
  r.old = false;
  r.installed_at = net_.now();
}

void ObjectServer::handle_cluster_validate_reply(const ValidateReply& rep) {
  Replica& r = replicas_.try_emplace(rep.object).first->second;
  r.validate_inflight = false;
  r.copy = rep.copy;
  r.old = false;
  r.installed_at = net_.now();
}

void ObjectServer::register_server_cacher(ObjectId object, SiteId cacher,
                                          std::uint8_t mode) {
  if (cacher == self_) return;
  server_cachers_[object][cacher.value] = mode;
}

void ObjectServer::push_server_cachers(const WriteRequest& req,
                                       const Stored& s) {
  const auto sc = server_cachers_.find(req.object);
  if (sc == server_cachers_.end()) return;
  for (const auto& [site, mode] : sc->second) {
    ++stats_.server_pushes;
    trace(TraceEventType::kClusterPush, req.object, req.request_id, site,
          mode);
    if (flight_ != nullptr) {
      flight_->record(TraceEventType::kClusterPush, net_.now().as_micros(),
                      req.object, req.request_id, site, mode);
    }
    if (mode == 0) {
      send(SiteId{site}, Message{Invalidate{req.object, s.version}});
    } else {
      send(SiteId{site}, Message{PushUpdate{copy_of(req.object)}});
    }
  }
  if (stats_board_ != nullptr) {
    stats_board_->set(StatKey::kClusterPushes,
                      static_cast<std::int64_t>(stats_.server_pushes));
  }
}

SimTime ObjectServer::lease_horizon(Stored& s, ObjectId object,
                                    SiteId writer) {
  SimTime horizon = SimTime::zero();
  for (auto it = s.leases.begin(); it != s.leases.end();) {
    if (it->second <= net_.now()) {
      trace(TraceEventType::kLeaseExpire, object, 0, it->first,
            (net_.now() - it->second).as_micros());
      it = s.leases.erase(it);
      continue;
    }
    if (it->first != writer.value) horizon = max(horizon, it->second);
    ++it;
  }
  return horizon;
}

SimTime ObjectServer::grant_lease(Stored& s, ObjectId object, SiteId client) {
  if (config_.lease_duration == SimTime::zero() || s.write_pending ||
      draining_) {
    // A draining server makes no promises it cannot keep past shutdown.
    return SimTime::zero();
  }
  s.leases[client.value] = net_.now() + config_.lease_duration;
  trace(TraceEventType::kLeaseGrant, object, 0, client.value,
        config_.lease_duration.as_micros());
  return config_.lease_duration;
}

ObjectCopy ObjectServer::copy_of(ObjectId object,
                                 SimTime lease_extension) const {
  const Stored& s = const_cast<ObjectServer*>(this)->stored(object);
  ObjectCopy copy;
  copy.object = object;
  copy.value = s.value;
  copy.version = s.version;
  copy.alpha = s.alpha;
  // The server's current value is valid right now — and, when the caller
  // holds a lease, until the lease expires (writes are deferred past it).
  // beta is the instant the server vouched.
  copy.omega = net_.now() + lease_extension;
  copy.beta = net_.now();
  copy.alpha_l = s.alpha_l;
  copy.omega_l = logical_now_;
  return copy;
}

void ObjectServer::handle_fetch(const FetchRequest& req) {
  ++stats_.fetches;
  Stored& s = stored(req.object);
  s.cachers.insert(req.reply_to.value);
  const SimTime granted = grant_lease(s, req.object, req.reply_to);
  if (stats_board_ != nullptr) {
    // Definition-1 staleness of the copy this read observes: how old its
    // start time alpha is at serving time. A never-written object (alpha 0)
    // would report wall-clock age, which is noise, so it is skipped.
    ++reads_served_;
    stats_board_->set(StatKey::kReadsServed,
                      static_cast<std::int64_t>(reads_served_));
    if (s.version > 0) {
      const std::int64_t staleness_us = (net_.now() - s.alpha).as_micros();
      stats_board_->record_staleness(staleness_us);
      if (flight_ != nullptr &&
          (reads_served_ % kStalenessSamplePeriod) == 0) {
        flight_->record(TraceEventType::kReadStaleness,
                        net_.now().as_micros(), req.object, req.request_id,
                        /*a=*/0, staleness_us);
      }
    }
  }
  send(req.reply_to,
       Message{FetchReply{copy_of(req.object, granted), req.request_id}});
}

void ObjectServer::handle_write(const WriteRequest& req) {
  if (req.request_id != 0) {
    WriteDedup& d = write_dedup_[req.reply_to.value];
    if (req.request_id == d.completed_id) {
      // Retransmission of an already-applied write: resend the stored ack
      // instead of applying twice (the original ack was lost or slow).
      ++stats_.duplicate_writes;
      send(req.reply_to, Message{d.ack});
      return;
    }
    if (req.request_id == d.deferred_id || req.request_id < d.completed_id) {
      // Already queued behind a lease (the deferral will ack when it
      // lands), or a stale retransmission of an op the client has since
      // abandoned and moved past: either way, don't apply again.
      ++stats_.duplicate_writes;
      return;
    }
    d.deferred_id = req.request_id;
  }
  admit_or_defer_write(req, /*deferrals=*/0);
}

bool ObjectServer::admit_op(std::int64_t reserve_micro) {
  const std::int64_t now_us = net_.now().as_micros();
  const std::int64_t cap =
      static_cast<std::int64_t>(config_.admit_burst) * kAdmitOpCostMicro;
  if (now_us > admit_last_refill_us_) {
    // Integer refill: elapsed microseconds times ops-per-second IS
    // micro-tokens per microsecond, no division. The first call sees a huge
    // elapsed span and simply starts the bucket full (the cap).
    admit_tokens_micro_ = std::min(
        cap, admit_tokens_micro_ +
                 (now_us - admit_last_refill_us_) *
                     static_cast<std::int64_t>(config_.admit_rate_per_s));
    admit_last_refill_us_ = now_us;
  }
  if (admit_tokens_micro_ < kAdmitOpCostMicro + reserve_micro) return false;
  admit_tokens_micro_ -= kAdmitOpCostMicro;
  return true;
}

bool ObjectServer::admit_read(ObjectId object, SiteId client,
                              std::uint64_t request_id) {
  if (config_.admit_rate_per_s == 0) return true;  // gate disabled
  // The reserve is what sheds reads first: a quarter of the burst stays
  // earmarked for writes, so reads start bouncing while writes still flow.
  const std::int64_t reserve =
      static_cast<std::int64_t>(config_.admit_burst) * kAdmitOpCostMicro / 4;
  if (admit_op(reserve)) return true;
  ++stats_.admission_reads_shed;
  const std::int64_t deficit =
      kAdmitOpCostMicro + reserve - admit_tokens_micro_;
  std::int64_t retry_us =
      deficit / static_cast<std::int64_t>(config_.admit_rate_per_s);
  retry_us = std::clamp<std::int64_t>(retry_us, 1'000, 50'000);
  if (overloaded_sender_) {
    overloaded_sender_(client, object, request_id, retry_us);
    ++stats_.overloaded_replies;
  }
  if (stats_board_ != nullptr) {
    stats_board_->set(StatKey::kClusterReadsShed,
                      static_cast<std::int64_t>(stats_.admission_reads_shed));
    stats_board_->set(StatKey::kClusterOverloadedReplies,
                      static_cast<std::int64_t>(stats_.overloaded_replies));
  }
  return false;
}

void ObjectServer::admit_or_defer_write(const WriteRequest& req,
                                        std::uint32_t deferrals) {
  if (config_.admit_rate_per_s != 0 && !admit_op(0) &&
      deferrals < config_.admit_max_write_deferrals) {
    // Out of tokens: delay the write until the bucket refills one op's
    // worth. The deferral budget is bounded — once exhausted the write
    // applies anyway, because admission must never drop a write (the
    // client's value would be lost while its retry re-sends the same
    // request_id, which dedup would then swallow).
    ++stats_.admission_writes_deferred;
    if (stats_board_ != nullptr) {
      stats_board_->set(
          StatKey::kClusterWritesDeferred,
          static_cast<std::int64_t>(stats_.admission_writes_deferred));
    }
    std::int64_t delay_us =
        (kAdmitOpCostMicro - admit_tokens_micro_) /
        static_cast<std::int64_t>(config_.admit_rate_per_s);
    delay_us = std::clamp<std::int64_t>(delay_us, 1'000, 50'000);
    const WriteRequest deferred = req;
    const std::uint64_t epoch = epoch_;
    net_.run_after(SimTime::micros(delay_us),
                   [this, deferred, epoch, deferrals] {
                     if (epoch != epoch_ || !up_) return;
                     admit_or_defer_write(deferred, deferrals + 1);
                   });
    return;
  }
  defer_or_apply(req);
}

bool ObjectServer::forward_warm_miss(ObjectId object, const Message& m) {
  if (!warm_miss_forwarder_) return false;
  const auto it = objects_.find(object);
  if (it != objects_.end() && it->second.version > 0) return false;
  // Cold: no write has ever landed here (neither live traffic nor sync nor
  // WAL replay). The previous owner may hold the value — let it answer.
  if (!warm_miss_forwarder_(object, m)) return false;
  ++stats_.warm_forwards;
  return true;
}

bool ObjectServer::collect_slice(SiteId requester, std::uint32_t cursor,
                                 std::uint32_t max_records,
                                 std::int64_t if_newer_than_us,
                                 std::vector<wire::SliceRecord>& out,
                                 std::uint32_t& next_cursor) {
  out.clear();
  slice_ids_.clear();
  for (const auto& [object, s] : objects_) {
    if (s.version == 0) continue;       // never written: nothing to stream
    if (object.value < cursor) continue;  // already streamed (resumable)
    if (s.alpha.as_micros() <= if_newer_than_us) continue;
    // The requester's slice under the donor's CURRENT ring — the donor
    // keeps everything else (its own slice, or a third server's).
    if (primary_of(object) != requester) continue;
    slice_ids_.push_back(object.value);
  }
  std::sort(slice_ids_.begin(), slice_ids_.end());
  const std::size_t n =
      std::min<std::size_t>(slice_ids_.size(), max_records);
  for (std::size_t i = 0; i < n; ++i) {
    const Stored& s = objects_.at(ObjectId{slice_ids_[i]});
    wire::SliceRecord rec;
    rec.object = slice_ids_[i];
    rec.value = s.value.value;
    rec.version = s.version;
    rec.alpha_us = s.alpha.as_micros();
    rec.writer = s.last_writer;
    rec.request_id = s.last_request_id;
    out.push_back(rec);
  }
  const bool done = n == slice_ids_.size();
  next_cursor = n == 0 ? cursor : slice_ids_[n - 1] + 1;
  return done;
}

bool ObjectServer::install_sync_record(const wire::SliceRecord& rec) {
  const ObjectId object{rec.object};
  Stored& s = stored(object);
  const SimTime alpha = SimTime::micros(rec.alpha_us);
  const bool install = s.version == 0 || alpha > s.alpha;
  if (install) {
    s.value = Value{rec.value};
    // Keep the local version counter monotone: a write that already landed
    // here during warming must not see the version go backwards.
    s.version = std::max<std::uint64_t>(rec.version, s.version + 1);
    s.alpha = alpha;
    s.last_writer = rec.writer;
    s.last_request_id = rec.request_id;
    history_[object].push_back(AppliedWrite{s.value, net_.now()});
    ++stats_.slices_synced;
    if (stats_board_ != nullptr) {
      stats_board_->set(StatKey::kClusterSlicesSynced,
                        static_cast<std::int64_t>(stats_.slices_synced));
    }
  }
  // Dedup transfers even when the local copy is newer: the record proves
  // the old owner applied (writer, request_id), so a client retransmission
  // must re-ack with the recorded version, never apply a second time.
  if (rec.request_id != 0) {
    WriteDedup& d = write_dedup_[rec.writer];
    if (rec.request_id >= d.completed_id) {
      d.completed_id = rec.request_id;
      d.ack = WriteAck{object, rec.version, rec.request_id};
    }
  }
  return install;
}

void ObjectServer::defer_or_apply(const WriteRequest& req) {
  Stored& s = stored(req.object);
  // Gray-Cheriton: while another client holds a live lease on this object,
  // the write waits — readers were promised the current value until their
  // lease expires. The writer's own lease never blocks it. After a restart
  // the grace window stands in for every forgotten lease.
  const SimTime horizon =
      max(lease_horizon(s, req.object, req.reply_to), lease_grace_until_);
  if (horizon > net_.now()) {
    ++stats_.writes_deferred;
    trace(TraceEventType::kWriteDefer, req.object, req.request_id,
          req.reply_to.value, (horizon - net_.now()).as_micros());
    s.write_pending = true;  // freeze lease grants until this write lands
    const WriteRequest deferred = req;
    const std::uint64_t epoch = epoch_;
    net_.run_after(horizon - net_.now(), [this, deferred, epoch] {
      // The deferral was soft state: a crash in the meantime voids it.
      if (epoch != epoch_ || !up_) return;
      defer_or_apply(deferred);
    });
    return;
  }
  s.write_pending = false;
  apply_write(req);
}

void ObjectServer::apply_write(const WriteRequest& req) {
  const SiteId from = req.reply_to;
  Stored& s = stored(req.object);
  // Last-writer-wins on the start time alpha: a racing write whose
  // effective time is older than the stored value's never becomes current
  // (otherwise the object's value history would contradict the lifetime
  // order and no Delta could make reads look on time). Arrival order breaks
  // exact ties.
  if (s.version > 0 && req.client_time < s.alpha) {
    history_[req.object].push_back(
        AppliedWrite{req.value, net_.now(), /*accepted=*/false});
    trace(TraceEventType::kWriteApply, req.object, req.request_id,
          req.value.value, 0);
    // Version 0 in the ack marks the write as superseded: the writer's
    // provisional cache entry keeps version 0 and will fail validation,
    // fetching the winning value instead.
    const WriteAck ack{req.object, 0, req.request_id};
    if (write_log_) write_log_(req, 0);  // durable before the ack leaves
    record_completed(req, ack);
    send(from, Message{ack});
    return;
  }
  ++stats_.writes_applied;
  s.value = req.value;
  s.version += 1;
  s.alpha = req.client_time;
  s.last_writer = req.reply_to.value;
  s.last_request_id = req.request_id;
  if (req.write_ts.num_entries() != 0) {
    s.alpha_l = req.write_ts;
    logical_now_ = logical_now_.num_entries() == 0
                       ? req.write_ts
                       : PlausibleTimestamp::merge_max(logical_now_, req.write_ts);
  }
  history_[req.object].push_back(AppliedWrite{req.value, net_.now()});
  trace(TraceEventType::kWriteApply, req.object, req.request_id,
        req.value.value, 1);
  const WriteAck ack{req.object, s.version, req.request_id};
  if (write_log_) write_log_(req, s.version);  // durable before the ack leaves
  record_completed(req, ack);
  send(from, Message{ack});

  // Peer-server cachers are pushed on every accepted write, independent of
  // the client push policy: the replica protocol is what lets them serve
  // fetches without a hop.
  push_server_cachers(req, s);
  if (push_ == PushPolicy::kNone) return;
  for (const std::uint32_t cacher : s.cachers) {
    if (cacher == from.value) continue;
    ++stats_.pushes;
    if (push_ == PushPolicy::kInvalidate) {
      trace(TraceEventType::kPushInvalidate, req.object, 0, cacher);
      send(SiteId{cacher}, Message{Invalidate{req.object, s.version}});
    } else {
      trace(TraceEventType::kPushUpdate, req.object, 0, cacher);
      send(SiteId{cacher}, Message{PushUpdate{copy_of(req.object)}});
    }
  }
}

void ObjectServer::record_completed(const WriteRequest& req,
                                    const WriteAck& ack) {
  if (req.request_id == 0) return;
  WriteDedup& d = write_dedup_[req.reply_to.value];
  if (req.request_id >= d.completed_id) {
    d.completed_id = req.request_id;
    d.ack = ack;
  }
  if (d.deferred_id == req.request_id) d.deferred_id = 0;
}

void ObjectServer::handle_validate(const ValidateRequest& req) {
  const SiteId from = req.reply_to;
  ++stats_.validations;
  Stored& s = stored(req.object);
  s.cachers.insert(from.value);
  const SimTime granted = grant_lease(s, req.object, from);
  ValidateReply reply;
  reply.object = req.object;
  reply.still_valid = (s.version == req.version);
  reply.copy = copy_of(req.object, granted);
  reply.request_id = req.request_id;
  if (reply.still_valid) ++stats_.validations_ok;
  send(from, Message{reply});
}

void ObjectServer::send(SiteId to, Message m) {
  const std::size_t bytes = sizes_.of(m);
  net_.send_message(self_, to, std::move(m), bytes);
}

}  // namespace timedc
