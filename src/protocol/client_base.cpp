#include "protocol/client_base.hpp"

#include "common/assert.hpp"

namespace timedc {

CacheClient::CacheClient(Simulator& sim, Network& net, SiteId self,
                         SiteId server, const PhysicalClockModel* clock,
                         SimTime delta, bool mark_old, MessageSizes sizes)
    : sim_(sim),
      net_(net),
      self_(self),
      server_(server),
      clock_(clock),
      delta_(delta),
      mark_old_(mark_old),
      sizes_(sizes) {
  TIMEDC_ASSERT(clock != nullptr);
}

void CacheClient::attach() {
  net_.set_handler(self_, [this](SiteId, const std::shared_ptr<void>& p) {
    handle(*std::static_pointer_cast<Message>(p));
  });
}

void CacheClient::read(ObjectId object, ReadCallback done) {
  TIMEDC_ASSERT(!pending_read_ && !pending_write_);
  ++stats_.reads;
  pending_read_ = std::move(done);
  begin_read(object);
}

void CacheClient::write(ObjectId object, Value value, WriteCallback done) {
  TIMEDC_ASSERT(!pending_read_ && !pending_write_);
  ++stats_.writes;
  pending_write_ = std::move(done);
  begin_write(object, value);
}

void CacheClient::send_to_server(Message m, ObjectId object) {
  const SiteId target = route_ ? route_(object) : server_;
  const std::size_t bytes = sizes_.of(m);
  net_.send(self_, target, std::make_shared<Message>(std::move(m)), bytes);
}

void CacheClient::finish_read(Value value) {
  TIMEDC_ASSERT(pending_read_);
  ReadCallback cb = std::move(pending_read_);
  pending_read_ = nullptr;
  cb(value, sim_.now());
}

void CacheClient::finish_write() {
  TIMEDC_ASSERT(pending_write_);
  WriteCallback cb = std::move(pending_write_);
  pending_write_ = nullptr;
  cb(sim_.now());
}

}  // namespace timedc
