#include "protocol/client_base.hpp"

#include "common/assert.hpp"
#include "core/history.hpp"

namespace timedc {
namespace {

/// The request id embedded in a request message (0 for non-requests).
void stamp_request_id(Message& m, std::uint64_t id) {
  if (auto* fetch = std::get_if<FetchRequest>(&m)) {
    fetch->request_id = id;
  } else if (auto* write = std::get_if<WriteRequest>(&m)) {
    write->request_id = id;
  } else if (auto* validate = std::get_if<ValidateRequest>(&m)) {
    validate->request_id = id;
  }
}

/// The echoed request id if `m` is a reply, nullopt otherwise (pushes and
/// invalidations are unsolicited).
std::optional<std::uint64_t> reply_request_id(const Message& m) {
  if (const auto* reply = std::get_if<FetchReply>(&m)) return reply->request_id;
  if (const auto* reply = std::get_if<ValidateReply>(&m)) {
    return reply->request_id;
  }
  if (const auto* ack = std::get_if<WriteAck>(&m)) return ack->request_id;
  return std::nullopt;
}

}  // namespace

CacheClient::CacheClient(Transport& net, SiteId self, SiteId server,
                         const PhysicalClockModel* clock, SimTime delta,
                         bool mark_old, MessageSizes sizes)
    : net_(net),
      self_(self),
      server_(server),
      clock_(clock),
      delta_(delta),
      mark_old_(mark_old),
      sizes_(sizes) {
  TIMEDC_ASSERT(clock != nullptr);
}

CacheClient::CacheClient(Simulator& sim, Network& net, SiteId self,
                         SiteId server, const PhysicalClockModel* clock,
                         SimTime delta, bool mark_old, MessageSizes sizes)
    : CacheClient(static_cast<Transport&>(net), self, server, clock, delta,
                  mark_old, sizes) {
  (void)sim;  // the transport's clock IS this simulator's clock
}

void CacheClient::configure_reliability(RetryPolicy policy,
                                        std::vector<SiteId> failover_servers,
                                        std::uint64_t rpc_seed) {
  retry_ = policy;
  failover_ = std::move(failover_servers);
  rpc_rng_ = Rng(rpc_seed);
}

SimTime CacheClient::effective_delta() {
  if (!delta_provider_) return delta_;
  SimTime effective = delta_provider_(delta_);
  // Tighten-only clamp: adaptation may shed over-waiting, never loosen the
  // configured bound, and the budget floors at zero (no negative waits even
  // when the measured epsilon exceeds Delta).
  if (effective < SimTime::zero()) effective = SimTime::zero();
  if (effective > delta_) effective = delta_;
  // The bound drifts every microsecond (epsilon grows between resyncs);
  // only decisions that moved at least 1ms are adaptation events.
  const SimTime moved = effective > last_effective_delta_
                            ? effective - last_effective_delta_
                            : last_effective_delta_ - effective;
  if (!effective_delta_seen_ || moved >= SimTime::millis(1)) {
    effective_delta_seen_ = true;
    last_effective_delta_ = effective;
    ++stats_.delta_adaptations;
    trace(TraceEventType::kDeltaAdapt, kNoObject, effective.as_micros(),
          (delta_ - effective).as_micros());
  }
  return effective;
}

void CacheClient::attach() {
  net_.register_site(self_, [this](SiteId, const Message& m) {
    on_network_message(m);
  });
}

void CacheClient::on_network_message(const Message& message) {
  const auto rid = reply_request_id(message);
  if (rid.has_value()) {
    // A reply matches the outstanding RPC or is a duplicate: a second copy
    // of an already-consumed reply (network duplication), a slow reply
    // overtaken by a retransmission's, or a reply to an abandoned request.
    if (!rpc_ || rpc_->id != *rid) {
      ++stats_.duplicate_replies;
      return;
    }
    rpc_.reset();
  }
  handle(message);
}

void CacheClient::read(ObjectId object, ReadCallback done) {
  TIMEDC_ASSERT(!pending_read_ && !pending_write_);
  ++stats_.reads;
  pending_read_ = std::move(done);
  pending_op_object_ = object;
  op_started_at_ = net_.now();
  op_abandoned_ = false;
  ++op_seq_;
  trace(TraceEventType::kOpIssue, object, 0);
  begin_read(object);
}

void CacheClient::write(ObjectId object, Value value, WriteCallback done) {
  TIMEDC_ASSERT(!pending_read_ && !pending_write_);
  ++stats_.writes;
  pending_write_ = std::move(done);
  pending_op_object_ = object;
  op_started_at_ = net_.now();
  op_abandoned_ = false;
  ++op_seq_;
  trace(TraceEventType::kOpIssue, object, 1);
  begin_write(object, value);
}

void CacheClient::send_to_server(Message m, ObjectId object) {
  const SiteId target = route_ ? route_(object) : server_;
  stamp_request_id(m, ++next_request_id_);
  rpc_ = InFlightRpc{next_request_id_, std::move(m), object, target};
  transmit();
}

void CacheClient::transmit() {
  // Transport-generic failover: when the transport has positive evidence
  // the target is unreachable (a supervised TCP peer gone DEAD), rotate to
  // a reachable replica *before* burning a timeout on it. The sim Network
  // always reports reachable, so sim behaviour is unchanged — there the
  // timeout path below does the rotating.
  if (retry_.enabled() && failover_.size() > 1 &&
      !net_.peer_reachable(rpc_->target)) {
    std::size_t at = 0;
    for (std::size_t i = 0; i < failover_.size(); ++i) {
      if (failover_[i] == rpc_->target) at = i;
    }
    for (std::size_t step = 1; step < failover_.size(); ++step) {
      const SiteId candidate = failover_[(at + step) % failover_.size()];
      if (net_.peer_reachable(candidate)) {
        rpc_->target = candidate;
        rpc_->timeouts_at_target = 0;
        ++stats_.failovers;
        break;
      }
    }
    // All replicas unreachable: keep the current target and let the
    // timeout/abandonment path decide.
  }
  net_.send_message(self_, rpc_->target, rpc_->request,
                    sizes_.of(rpc_->request));
  if (retry_.enabled()) arm_timeout();
}

SimTime CacheClient::timeout_for_attempt(int attempt) {
  SimTime base = retry_.base_timeout;
  if (base == SimTime::zero()) {
    const SimTime one_way = net_.latency_upper_bound();
    // Request hop + possible forward hop + reply hop, plus server-side
    // slack. An unbounded latency model cannot be budgeted; fall back to a
    // generous constant.
    base = one_way.is_infinite() ? SimTime::millis(10)
                                 : one_way * 3 + SimTime::millis(1);
  }
  double scale = 1.0;
  for (int k = 1; k < attempt; ++k) scale *= retry_.backoff;
  std::int64_t micros =
      static_cast<std::int64_t>(static_cast<double>(base.as_micros()) * scale);
  if (retry_.jitter > 0) {
    const std::int64_t span = static_cast<std::int64_t>(
        static_cast<double>(micros) * retry_.jitter);
    if (span > 0) micros += rpc_rng_.uniform_int(0, span);
  }
  return SimTime::micros(micros);
}

void CacheClient::arm_timeout() {
  const std::uint64_t id = rpc_->id;
  const int attempt = rpc_->attempt;
  net_.run_after(timeout_for_attempt(attempt), [this, id, attempt] {
    if (rpc_ && rpc_->id == id && rpc_->attempt == attempt) on_rpc_timeout();
  });
}

void CacheClient::on_rpc_timeout() {
  if (rpc_->attempt >= retry_.max_attempts) {
    abandon_op();
    return;
  }
  ++stats_.retries;
  ++rpc_->attempt;
  ++rpc_->timeouts_at_target;
  if (rpc_->timeouts_at_target >= retry_.failover_after &&
      failover_.size() > 1) {
    // Rotate to the next cluster server; a non-owner forwards to the owner,
    // so this helps when the *path* to the primary is the problem (and
    // keeps probing distinct servers under a partition).
    std::size_t at = 0;
    for (std::size_t i = 0; i < failover_.size(); ++i) {
      if (failover_[i] == rpc_->target) at = i;
    }
    rpc_->target = failover_[(at + 1) % failover_.size()];
    rpc_->timeouts_at_target = 0;
    ++stats_.failovers;
  }
  trace(TraceEventType::kOpRetry, rpc_->object, rpc_->attempt,
        rpc_->target.value);
  transmit();
}

void CacheClient::abandon_op() {
  ++stats_.ops_abandoned;
  stats_.unavailable_us +=
      static_cast<std::uint64_t>((net_.now() - op_started_at_).as_micros());
  op_abandoned_ = true;
  trace(TraceEventType::kOpAbandon, pending_op_object_, 0,
        (net_.now() - op_started_at_).as_micros());
  rpc_.reset();
  if (pending_read_) {
    finish_read(degraded_read_value(pending_op_object_));
  } else if (pending_write_) {
    finish_write();
  }
}

Value CacheClient::degraded_read_value(ObjectId) const { return kInitialValue; }

void CacheClient::finish_read(Value value) {
  TIMEDC_ASSERT(pending_read_);
  trace(TraceEventType::kOpReply, pending_op_object_, 0,
        (net_.now() - op_started_at_).as_micros());
  ReadCallback cb = std::move(pending_read_);
  pending_read_ = nullptr;
  cb(value, net_.now());
}

void CacheClient::finish_write() {
  TIMEDC_ASSERT(pending_write_);
  trace(TraceEventType::kOpReply, pending_op_object_, 1,
        (net_.now() - op_started_at_).as_micros());
  WriteCallback cb = std::move(pending_write_);
  pending_write_ = nullptr;
  cb(net_.now());
}

}  // namespace timedc
