// The TSC lifetime cache (Sections 5.1 and 5.2).
//
// Each cached copy X_i carries its lifetime [alpha, omega]. The local
// Context_i keeps the latest start time of any value that has been in the
// cache, maintained by the paper's three rules:
//   1. install copy:        Context_i := max(X_i.alpha, Context_i)
//   2. local write at t:    Context_i := X_i.alpha := t
//   3. timeliness (TSC):    Context_i := max(t_i - Delta, Context_i)
// Any cached Y with Y.omega < Context_i is invalidated — or, under the
// mark-old optimization, demoted to "old" and revalidated with an
// if-modified-since round trip on next access (Section 5.2).
//
// Delta = infinity disables rule 3 and yields the plain SC lifetime
// protocol of [39]; that degeneration is exercised in the tests.
#pragma once

#include <unordered_map>

#include "protocol/client_base.hpp"

namespace timedc {

class TimedSerialCache final : public CacheClient {
 public:
  using CacheClient::CacheClient;

  /// Number of entries currently cached (valid or old).
  std::size_t cached_entries() const { return cache_.size(); }
  SimTime context() const { return context_; }

 protected:
  void begin_read(ObjectId object) override;
  void begin_write(ObjectId object, Value value) override;
  void handle(const Message& message) override;
  Value degraded_read_value(ObjectId object) const override;

 private:
  struct Entry {
    Value value;
    SimTime alpha;
    SimTime omega;
    std::uint64_t version = 0;
    bool old = false;
  };

  /// Rule 3 + the invalidation sweep; called before serving any operation.
  void advance_context_for_timeliness();
  void raise_context(SimTime candidate);
  void sweep();
  void install(const ObjectCopy& copy);

  std::unordered_map<ObjectId, Entry> cache_;
  SimTime context_ = SimTime::zero();
  ObjectId pending_object_;  // object of the in-flight fetch/validate
};

}  // namespace timedc
