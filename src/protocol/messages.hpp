// Wire messages of the lifetime-based consistency protocols (Section 5).
//
// One variant covers both the physical-clock (TSC) and logical-clock (TCC)
// protocol families: object copies travel with their start time alpha
// (physical and/or vector), the ending time omega known by the server, the
// physical checking time beta (Section 5.3), and a server version number
// used by if-modified-since style validations (the paper's TTL analogy,
// Section 5.2).
#pragma once

#include <cstdint>
#include <variant>

#include "clocks/plausible_clock.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace timedc {

/// A full object copy as shipped by the server.
struct ObjectCopy {
  ObjectId object;
  Value value;
  std::uint64_t version = 0;  // server-side monotone version counter
  SimTime alpha;              // physical start time of this value
  SimTime omega;              // latest physical time value known valid
  SimTime beta;               // physical checking time (TCC, Section 5.3)
  // Logical timestamps (TCC, Section 5.3). PlausibleTimestamp subsumes
  // vector clocks: with one entry per site it IS a vector clock; with fewer
  // entries it is the constant-size REV plausible clock of [37].
  PlausibleTimestamp alpha_l;  // logical start time
  PlausibleTimestamp omega_l;  // logical ending time: the server's merged
                               // knowledge when it vouched for this value

  bool operator==(const ObjectCopy&) const = default;
};

// Every request carries a per-client monotone request_id; the reply echoes
// it. The reliable-RPC layer keys retransmissions, duplicate-reply
// suppression and server-side write dedup on (reply_to, request_id), so a
// retried request is idempotent end to end. 0 means "unsequenced" — a
// convention for raw protocol messages built by hand in tests, valid only
// inside the in-process sim. Servers REJECT id-0 requests arriving over a
// framed transport (Transport::requires_sequenced_requests), counting them
// in ServerStats::rejected_unsequenced; real clients always stamp ids >= 1.

struct FetchRequest {
  ObjectId object;
  /// The client the reply must go to. Set by the client; preserved when a
  /// non-primary server forwards the request to the object's primary, so
  /// the reply takes one hop back instead of retracing the forward path.
  SiteId reply_to;
  std::uint64_t request_id = 0;

  bool operator==(const FetchRequest&) const = default;
};

struct FetchReply {
  ObjectCopy copy;
  std::uint64_t request_id = 0;

  bool operator==(const FetchReply&) const = default;
};

struct WriteRequest {
  ObjectId object;
  Value value;
  SimTime client_time;      // effective time at the writing client
  PlausibleTimestamp write_ts;  // logical timestamp of the write (TCC)
  SiteId reply_to;
  std::uint64_t request_id = 0;

  bool operator==(const WriteRequest&) const = default;
};

struct WriteAck {
  ObjectId object;
  std::uint64_t version;
  std::uint64_t request_id = 0;

  bool operator==(const WriteAck&) const = default;
};

/// If-modified-since: "is version v of X still current?"
struct ValidateRequest {
  ObjectId object;
  std::uint64_t version;
  SiteId reply_to;
  std::uint64_t request_id = 0;

  bool operator==(const ValidateRequest&) const = default;
};

struct ValidateReply {
  ObjectId object;
  bool still_valid = false;
  /// When still_valid, the refreshed omega/beta for the client's copy;
  /// otherwise a full fresh copy (like an HTTP 200 after a failed 304).
  ObjectCopy copy;
  std::uint64_t request_id = 0;

  bool operator==(const ValidateReply&) const = default;
};

/// Server-initiated invalidation (Cao-Liu style strong consistency).
struct Invalidate {
  ObjectId object;
  std::uint64_t version;  // versions < this are dead

  bool operator==(const Invalidate&) const = default;
};

/// Server-initiated push of a fresh copy (update propagation, Section 5.2).
struct PushUpdate {
  ObjectCopy copy;

  bool operator==(const PushUpdate&) const = default;
};

using Message = std::variant<FetchRequest, FetchReply, WriteRequest, WriteAck,
                             ValidateRequest, ValidateReply, Invalidate,
                             PushUpdate>;

/// Accounted wire sizes: full copies cost a body, control messages do not.
struct MessageSizes {
  std::size_t object_bytes = 1024;
  std::size_t control_bytes = 64;

  std::size_t of(const Message& m) const {
    if (std::holds_alternative<FetchReply>(m) ||
        std::holds_alternative<PushUpdate>(m)) {
      return object_bytes + control_bytes;
    }
    if (const auto* vr = std::get_if<ValidateReply>(&m)) {
      return vr->still_valid ? control_bytes : object_bytes + control_bytes;
    }
    return control_bytes;
  }
};

}  // namespace timedc
