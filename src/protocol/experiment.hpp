// The experiment harness: wires a workload through a fleet of protocol
// clients and one object server on the simulated network, and measures
// exactly what the paper's conclusion asks for — the cost of timeliness as
// a function of Delta: message counts, bytes, hit ratios, invalidations,
// and oracle-measured read staleness.
//
// The harness also records the run as a History (writes stamped at issue
// time, reads at completion time), so small runs can be fed to the TSC/TCC
// checkers — the protocol-to-model integration tests do exactly that.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/history.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/server.hpp"
#include "protocol/timed_causal_cache.hpp"
#include "protocol/stats.hpp"
#include "sim/faults.hpp"
#include "sim/workload.hpp"

namespace timedc {

enum class ProtocolKind {
  kTimedSerial,  // physical clocks: SC when Delta = inf, TSC otherwise
  kTimedCausal,  // vector clocks + beta: CC when Delta = inf, TCC otherwise
};

inline const char* to_cstring(ProtocolKind k) {
  return k == ProtocolKind::kTimedSerial ? "timed-serial" : "timed-causal";
}

/// How clients pick the server to contact.
enum class Routing {
  kDirect,           // straight to the object's owning server
  kViaRandomServer,  // any server; non-owners forward to the owner
};

struct ExperimentConfig {
  ProtocolKind kind = ProtocolKind::kTimedSerial;
  SimTime delta = SimTime::infinity();
  WorkloadParams workload;
  /// Object storage is hash-partitioned over this many server sites.
  std::size_t num_servers = 1;
  Routing routing = Routing::kDirect;
  /// Logical clock width for the timed-causal protocol: 0 = one entry per
  /// client (exact vector clocks); smaller values use REV plausible clocks
  /// [37], which shrink timestamps but over-invalidate on fold collisions.
  std::size_t clock_entries = 0;
  /// Causal eviction precision (timed-causal protocol only).
  CausalEvictionRule eviction = CausalEvictionRule::kContextDominates;
  PushPolicy push = PushPolicy::kNone;
  /// Read leases (Section 5.2 "leased objects"); 0 disables.
  SimTime lease = SimTime::zero();
  bool mark_old = true;  // validate-old-entries optimization (Section 5.2)
  /// One-way network latency range (uniform).
  SimTime min_latency = SimTime::micros(200);
  SimTime max_latency = SimTime::micros(800);
  /// Client clock skew bound (0 = perfect clocks); drift used with eps > 0.
  SimTime eps = SimTime::zero();
  double drift_ppm = 20.0;
  MessageSizes sizes;
  std::uint64_t seed = 1;
  /// Background uniform message loss (every link, the whole run).
  double drop_probability = 0.0;
  /// Scripted faults: partitions, drop/duplication windows, latency
  /// spikes, server crash/restart. Same seed + same plan = same run.
  FaultPlan faults;
  /// Client reliability. max_attempts == 0 is AUTO: retries are enabled
  /// (8 attempts) iff the run injects faults or background drops, so
  /// lossless configs behave exactly as before.
  RetryPolicy retry;
  /// Structured tracing (off by default). When enabled, the run owns one
  /// Tracer wired through network/servers/clients/faults and the flushed
  /// canonical event stream lands in ExperimentResult::trace.
  TraceConfig trace;
};

struct ExperimentResult {
  CacheStats cache;       // summed over clients
  ServerStats server;     // summed over servers
  NetworkStats network;
  std::uint64_t operations = 0;
  /// Oracle staleness of reads: time between the returned value being
  /// overwritten at the server and the read completing (0 if current).
  double mean_staleness_us = 0;
  SimTime max_staleness = SimTime::zero();
  /// Fraction of reads whose staleness exceeded the configured Delta.
  double late_fraction = 0;
  /// Count behind late_fraction (reads with staleness > Delta).
  std::uint64_t reads_late = 0;
  double messages_per_op = 0;
  double bytes_per_op = 0;
  // Network fault-path counters, mirrored from `network` so bench tables
  // and metrics exports can report them without reaching into the struct.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  /// Distribution of oracle-measured read staleness (us), one sample per
  /// non-abandoned read — mean/max above are summaries of this.
  Histogram staleness_us = Histogram::time_us();
  /// Per accepted write: server apply time minus client issue time (us),
  /// the write's visibility latency.
  Histogram visibility_us = Histogram::time_us();
  // --- availability under faults -------------------------------------
  FaultStats faults;  // what the injector actually did
  /// Operations the retry layer gave up on (they completed degraded and
  /// are excluded from the recorded history and the staleness oracle).
  std::uint64_t ops_abandoned = 0;
  double retries_per_op = 0;
  /// Fraction of total client-time spent inside abandoned operations —
  /// the run's aggregate unavailability window.
  double unavailable_fraction = 0;
  History history;  // the recorded execution
  /// Canonical event stream (empty unless config.trace.enabled).
  std::vector<TraceEvent> trace;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// Multi-seed replication on the deterministic thread pool: runs `config`
/// once per entry of `seeds` (config.seed replaced), result i at slot i.
/// Each run is a pure function of its config, so the output is
/// bit-identical to the serial loop at any thread count (num_threads = 0
/// uses ThreadPool::default_threads(), 1 forces serial).
std::vector<ExperimentResult> run_experiment_seeds(
    const ExperimentConfig& config, const std::vector<std::uint64_t>& seeds,
    std::size_t num_threads = 0);

/// The run's metrics JSON block: every *Stats counter under a stable
/// prefixed name (cache.*, server.*, network.*, faults.*), the derived
/// per-op gauges, and the staleness / visibility-latency histograms.
MetricsRegistry experiment_metrics(const ExperimentConfig& config,
                                   const ExperimentResult& result);

}  // namespace timedc
