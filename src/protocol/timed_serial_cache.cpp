#include "protocol/timed_serial_cache.hpp"

#include "common/assert.hpp"

namespace timedc {

void TimedSerialCache::advance_context_for_timeliness() {
  const SimTime budget = effective_delta();
  if (budget.is_infinite()) return;  // plain SC: rule 3 disabled
  const SimTime t = local_time();
  raise_context(t - budget);
}

void TimedSerialCache::raise_context(SimTime candidate) {
  if (candidate > context_) {
    context_ = candidate;
    sweep();
  }
}

void TimedSerialCache::sweep() {
  for (auto it = cache_.begin(); it != cache_.end();) {
    Entry& e = it->second;
    if (!e.old && e.omega < context_) {
      if (mark_old_) {
        e.old = true;
        ++stats_.marked_old;
        ++it;
      } else {
        ++stats_.invalidations;
        it = cache_.erase(it);
      }
    } else {
      ++it;
    }
  }
}

void TimedSerialCache::install(const ObjectCopy& copy) {
  cache_[copy.object] =
      Entry{copy.value, copy.alpha, copy.omega, copy.version, false};
  raise_context(copy.alpha);  // rule 1
}

void TimedSerialCache::begin_read(ObjectId object) {
  advance_context_for_timeliness();
  const auto it = cache_.find(object);
  if (it != cache_.end() && !it->second.old) {
    ++stats_.cache_hits;
    trace(TraceEventType::kCacheHit, object);
    finish_read(it->second.value);
    return;
  }
  pending_object_ = object;
  if (it != cache_.end()) {
    ++stats_.validations;
    trace(TraceEventType::kCacheValidate, object);
    send_to_server(Message{ValidateRequest{object, it->second.version, self_}},
                   object);
  } else {
    ++stats_.cache_misses;
    trace(TraceEventType::kCacheMiss, object);
    send_to_server(Message{FetchRequest{object, self_}}, object);
  }
}

Value TimedSerialCache::degraded_read_value(ObjectId object) const {
  // No server reachable: serve the cached copy however stale (the caller
  // knows the op was abandoned), or the initial value cold.
  const auto it = cache_.find(object);
  return it == cache_.end() ? CacheClient::degraded_read_value(object)
                            : it->second.value;
}

void TimedSerialCache::begin_write(ObjectId object, Value value) {
  advance_context_for_timeliness();
  const SimTime t = local_time();
  // Rule 2: the local copy starts (and is so far only known valid) at t.
  cache_[object] = Entry{value, t, t, /*version=*/0, false};
  raise_context(t);
  send_to_server(Message{WriteRequest{object, value, t, PlausibleTimestamp{}, self_}},
                 object);
}

void TimedSerialCache::handle(const Message& message) {
  if (const auto* reply = std::get_if<FetchReply>(&message)) {
    install(reply->copy);
    if (read_pending() && reply->copy.object == pending_object_) {
      finish_read(reply->copy.value);
    }
    return;
  }
  if (const auto* reply = std::get_if<ValidateReply>(&message)) {
    if (reply->still_valid) {
      ++stats_.validations_ok;
      auto it = cache_.find(reply->object);
      if (it == cache_.end()) {
        // A push invalidation raced past the validation on a non-FIFO
        // network; fall back to a full fetch.
        ++stats_.cache_misses;
        send_to_server(Message{FetchRequest{reply->object, self_}},
                     reply->object);
        return;
      }
      // The server vouched for the value at reply->copy.omega: extend the
      // lifetime and rehabilitate the entry.
      it->second.omega = reply->copy.omega;
      it->second.old = false;
      // The extended ending time may still trail Context_i (e.g. the reply
      // took long); re-check before serving.
      if (it->second.omega < context_) {
        // Entry is uselessly stale: drop and refetch.
        cache_.erase(it);
        ++stats_.invalidations;
        ++stats_.cache_misses;
        send_to_server(Message{FetchRequest{reply->object, self_}},
                     reply->object);
        return;
      }
      if (read_pending() && reply->object == pending_object_) {
        finish_read(it->second.value);
      }
    } else {
      install(reply->copy);
      if (read_pending() && reply->object == pending_object_) {
        finish_read(reply->copy.value);
      }
    }
    return;
  }
  if (const auto* ack = std::get_if<WriteAck>(&message)) {
    auto it = cache_.find(ack->object);
    if (it != cache_.end() && it->second.version == 0) {
      it->second.version = ack->version;
    }
    finish_write();
    return;
  }
  if (const auto* inv = std::get_if<Invalidate>(&message)) {
    auto it = cache_.find(inv->object);
    if (it != cache_.end() && it->second.version < inv->version) {
      ++stats_.push_invalidations;
      cache_.erase(it);
    }
    return;
  }
  if (const auto* push = std::get_if<PushUpdate>(&message)) {
    ++stats_.push_updates;
    install(push->copy);
    return;
  }
  TIMEDC_ASSERT(false && "unexpected message at client");
}

}  // namespace timedc
