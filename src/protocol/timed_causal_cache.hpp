// The TCC lifetime cache (Section 5.3).
//
// All lifetime bookkeeping timestamps are vector clocks: each copy carries
// its logical start time alpha_l and logical ending time omega_l, and the
// cache keeps a logical Context_i (the merge of every start time it has
// seen). A copy is causally stale when omega_l happened-before Context_i —
// concurrent is fine, which is exactly what lets TCC invalidate less than
// the physical-clock TSC cache.
//
// TCC's real-time guarantee comes from the *checking time* beta: the latest
// physical instant the value was known valid. On every access, copies with
// beta < t_i - Delta are invalidated or marked old and revalidated. With
// Delta = infinity the beta rule disappears and the cache degenerates to
// the plain CC lifetime protocol of [39].
//
// Deviation from [39]: that paper exempts copies the site wrote itself from
// causal invalidation ("local ending times advance with the local clock").
// In this architecture the exemption is unsound: site i can write X, a peer
// can read X and overwrite it (causally after), and site i can then learn
// something causally after the overwrite while still serving its own stale
// copy — a causally hidden write. Local copies therefore take part in the
// causal sweep like any other; under mark-old they cost one cheap
// revalidation instead of a refetch, which preserves most of [39]'s saving.
//
// All logical timestamps are PlausibleTimestamps (Torres-Rojas & Ahamad
// [37]): constructed with num_entries == num_clients they behave exactly as
// vector clocks; with fewer entries they are the constant-size REV clock,
// which may order some concurrent timestamps and therefore over-invalidate
// — never under-invalidate — trading message size for cache churn. The
// sweep benches quantify that tradeoff.
#pragma once

#include <unordered_map>

#include "clocks/plausible_clock.hpp"
#include "protocol/client_base.hpp"

namespace timedc {

/// How aggressively the causal sweep treats a cached copy's logical ending
/// time. This is the central soundness/efficiency dial of the lifetime
/// approach (see the file comment):
///   kServerKnowledge — [39]-faithful: omega_l is the serving server's
///     merged knowledge (plus the client context at install). Efficient —
///     quiet objects are almost never demoted — but a copy can survive a
///     causally hidden overwrite when the server knew more than the reader
///     ever learns (measurably rare; quantified by sim_causal_soundness).
///   kContextDominates — provably sound: omega_l never exceeds the client's
///     own context, so the strictly-before test fires whenever the entry is
///     no longer provably safe. Conservative: any context growth demotes
///     older entries (recovered by one 304-style validation each).
enum class CausalEvictionRule { kServerKnowledge, kContextDominates };

class TimedCausalCache final : public CacheClient {
 public:
  /// `clock_entries` is the logical clock width R: pass num_clients for
  /// exact vector-clock TCC (the default when 0), or fewer for REV
  /// plausible clocks.
  TimedCausalCache(Transport& net, SiteId self, SiteId server,
                   const PhysicalClockModel* clock, SimTime delta,
                   bool mark_old, MessageSizes sizes, std::size_t num_clients,
                   std::size_t clock_entries = 0,
                   CausalEvictionRule eviction =
                       CausalEvictionRule::kContextDominates);

  /// Sim-era convenience: `sim` must be the simulator `net` runs on.
  TimedCausalCache(Simulator& sim, Network& net, SiteId self, SiteId server,
                   const PhysicalClockModel* clock, SimTime delta,
                   bool mark_old, MessageSizes sizes, std::size_t num_clients,
                   std::size_t clock_entries = 0,
                   CausalEvictionRule eviction =
                       CausalEvictionRule::kContextDominates);

  std::size_t cached_entries() const { return cache_.size(); }
  const PlausibleTimestamp& logical_context() const { return context_l_; }

 protected:
  void begin_read(ObjectId object) override;
  void begin_write(ObjectId object, Value value) override;
  void handle(const Message& message) override;
  Value degraded_read_value(ObjectId object) const override;

 private:
  struct Entry {
    Value value;
    PlausibleTimestamp alpha_l;
    PlausibleTimestamp omega_l;
    SimTime beta;
    std::uint64_t version = 0;
    bool old = false;
  };

  PlausibleTimestamp normalize(const PlausibleTimestamp& ts) const;
  PlausibleTimestamp ending_time(const PlausibleTimestamp& alpha_l,
                                 const PlausibleTimestamp& server_omega_l) const;
  void raise_context(const PlausibleTimestamp& ts);
  void beta_sweep();
  void causal_sweep();
  void demote(std::unordered_map<ObjectId, Entry>::iterator it, bool& erased);
  void install(const ObjectCopy& copy);

  std::unordered_map<ObjectId, Entry> cache_;
  CausalEvictionRule eviction_;
  PlausibleClock clock_;
  PlausibleTimestamp context_l_;
  ObjectId pending_object_;
};

}  // namespace timedc
