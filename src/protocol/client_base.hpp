// Shared plumbing for the protocol clients: one-outstanding-operation
// read/write API, server messaging, local clock access and statistics.
// The TSC (physical clock) and TCC (logical clock) caches derive from this
// and implement the lifetime rules.
#pragma once

#include <functional>
#include <memory>

#include "clocks/physical_clock.hpp"
#include "protocol/messages.hpp"
#include "protocol/stats.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {

class CacheClient {
 public:
  /// Called when a read completes, with the value and the completion time.
  using ReadCallback = std::function<void(Value, SimTime)>;
  /// Called when a write completes (server ack received).
  using WriteCallback = std::function<void(SimTime)>;

  CacheClient(Simulator& sim, Network& net, SiteId self, SiteId server,
              const PhysicalClockModel* clock, SimTime delta, bool mark_old,
              MessageSizes sizes);
  virtual ~CacheClient() = default;

  /// Override where requests for a given object are sent (default: the
  /// single server passed at construction). With a server cluster, route to
  /// the object's primary — or to any server, which forwards (Section 5.1:
  /// "a server site, which either has a copy ... or can obtain it").
  void set_route(std::function<SiteId(ObjectId)> route) {
    route_ = std::move(route);
  }

  CacheClient(const CacheClient&) = delete;
  CacheClient& operator=(const CacheClient&) = delete;

  /// Install this client as the network handler for its site id.
  void attach();

  /// Issue a read; at most one operation may be outstanding per client.
  void read(ObjectId object, ReadCallback done);

  /// Issue a write-through; completes when the server acks.
  void write(ObjectId object, Value value, WriteCallback done);

  SiteId site() const { return self_; }
  SimTime delta() const { return delta_; }
  const CacheStats& stats() const { return stats_; }

 protected:
  /// The client's local clock reading (site time t_i, possibly skewed).
  SimTime local_time() const { return clock_->read(sim_.now()); }

  void send_to_server(Message m, ObjectId object);
  void finish_read(Value value);
  void finish_write();
  bool read_pending() const { return static_cast<bool>(pending_read_); }

  // Protocol hooks.
  virtual void begin_read(ObjectId object) = 0;
  virtual void begin_write(ObjectId object, Value value) = 0;
  virtual void handle(const Message& message) = 0;

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  SiteId server_;
  const PhysicalClockModel* clock_;
  SimTime delta_;
  bool mark_old_;
  MessageSizes sizes_;
  CacheStats stats_;

 private:
  std::function<SiteId(ObjectId)> route_;
  ReadCallback pending_read_;
  WriteCallback pending_write_;
};

}  // namespace timedc
