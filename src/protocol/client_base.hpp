// Shared plumbing for the protocol clients: one-outstanding-operation
// read/write API, server messaging, local clock access and statistics.
// The TSC (physical clock) and TCC (logical clock) caches derive from this
// and implement the lifetime rules.
//
// The base also owns the reliable-RPC layer: every request carries a
// per-client monotone request id, and — when a RetryPolicy is configured —
// an unanswered request is retransmitted with exponential backoff and
// deterministic jitter, fails over to another cluster server after repeated
// timeouts, and is explicitly ABANDONED once the attempt budget is
// exhausted (the operation completes degraded instead of hanging forever).
// Duplicate replies (retransmission races, network duplication) are
// suppressed by request id. The timeout is budgeted against the network's
// LatencyModel::upper_bound(), the same bound Delta-timeliness budgeting
// uses.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "clocks/physical_clock.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "protocol/messages.hpp"
#include "protocol/stats.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {

/// Reliability knobs for the client RPC layer. max_attempts <= 1 disables
/// retries entirely (one send, wait forever — the seed behavior, correct on
/// a lossless network). In ExperimentConfig, max_attempts == 0 means
/// "auto": resolved to a retrying policy iff the run injects faults.
struct RetryPolicy {
  /// Total send attempts per RPC (first send included). <= 1: no retries.
  int max_attempts = 0;
  /// First-attempt timeout; zero derives one from the network latency
  /// upper bound (request hop + possible forward hop + reply hop + slack).
  SimTime base_timeout = SimTime::zero();
  /// Timeout multiplier per further attempt.
  double backoff = 2.0;
  /// Uniform random extra fraction of the timeout, so retry storms from
  /// many clients decorrelate (deterministically, from the client's rng).
  double jitter = 0.25;
  /// Consecutive timeouts on one server before rerouting to another
  /// cluster server (which forwards to the owner if it is not the owner).
  int failover_after = 2;

  bool enabled() const { return max_attempts > 1; }
};

class CacheClient {
 public:
  /// Called when a read completes, with the value and the completion time.
  using ReadCallback = std::function<void(Value, SimTime)>;
  /// Called when a write completes (server ack received).
  using WriteCallback = std::function<void(SimTime)>;

  /// The client runs over any Transport: the deterministic sim Network or
  /// a real TcpTransport (clock and timers come from the transport).
  CacheClient(Transport& net, SiteId self, SiteId server,
              const PhysicalClockModel* clock, SimTime delta, bool mark_old,
              MessageSizes sizes);

  /// Sim-era convenience: `sim` must be the simulator `net` runs on.
  CacheClient(Simulator& sim, Network& net, SiteId self, SiteId server,
              const PhysicalClockModel* clock, SimTime delta, bool mark_old,
              MessageSizes sizes);
  virtual ~CacheClient() = default;

  /// Override where requests for a given object are sent (default: the
  /// single server passed at construction). With a server cluster, route to
  /// the object's primary — or to any server, which forwards (Section 5.1:
  /// "a server site, which either has a copy ... or can obtain it").
  void set_route(std::function<SiteId(ObjectId)> route) {
    route_ = std::move(route);
  }

  /// Turn on the reliable-RPC layer. `failover_servers` lists the cluster
  /// servers tried in rotation when the current target keeps timing out
  /// (may be empty: retry the same server only). `rpc_seed` seeds the
  /// deterministic jitter stream.
  void configure_reliability(RetryPolicy policy,
                             std::vector<SiteId> failover_servers,
                             std::uint64_t rpc_seed);

  CacheClient(const CacheClient&) = delete;
  CacheClient& operator=(const CacheClient&) = delete;

  /// Install this client as the network handler for its site id.
  void attach();

  /// Issue a read; at most one operation may be outstanding per client.
  void read(ObjectId object, ReadCallback done);

  /// Issue a write-through; completes when the server acks.
  void write(ObjectId object, Value value, WriteCallback done);

  /// True when the most recently completed operation was abandoned by the
  /// retry layer (its result is a degraded local guess, not a server
  /// answer). The experiment driver excludes such operations from the
  /// recorded history and the staleness oracle.
  bool last_op_abandoned() const { return op_abandoned_; }

  SiteId site() const { return self_; }
  SimTime delta() const { return delta_; }
  const CacheStats& stats() const { return stats_; }

  /// Maxwait-style adaptive Delta: when set, the provider maps the
  /// configured Delta to the effective budget for the next operation. The
  /// contract is tighten-only — the cache clamps the returned value into
  /// [0, configured Delta], so adaptation can shed over-waiting but never
  /// loosen the user's bound (a larger Delta could admit staleness the
  /// configured spec forbids).
  using DeltaProvider = std::function<SimTime(SimTime configured)>;
  void set_delta_provider(DeltaProvider provider) {
    delta_provider_ = std::move(provider);
  }

  /// The Delta budget in force right now: the provider's clamped answer,
  /// or the configured Delta when no provider is set. Emits a delta.adapt
  /// trace event and bumps stats().delta_adaptations when the value moved
  /// by at least 1ms (or to/from a budget edge) since the last decision.
  SimTime effective_delta();

  /// Emit op/cache events to `tracer` (nullptr = off).
  void set_tracer(Tracer* tracer) { obs_ = tracer; }

 protected:
  /// The client's local clock reading (site time t_i, possibly skewed).
  SimTime local_time() const { return clock_->read(net_.now()); }

  void send_to_server(Message m, ObjectId object);
  void finish_read(Value value);
  void finish_write();
  bool read_pending() const { return static_cast<bool>(pending_read_); }

  /// Best-effort value for an abandoned read (no server reachable): the
  /// cached copy if any, however stale. Default: the initial value.
  virtual Value degraded_read_value(ObjectId object) const;

  /// One branch when tracing is off; op id = the client's op sequence.
  void trace(TraceEventType type, ObjectId object, std::int64_t a = 0,
             std::int64_t b = 0) {
    if (obs_ != nullptr) obs_->emit(type, net_.now(), self_, object, op_seq_, a, b);
  }

  // Protocol hooks.
  virtual void begin_read(ObjectId object) = 0;
  virtual void begin_write(ObjectId object, Value value) = 0;
  virtual void handle(const Message& message) = 0;

  Transport& net_;
  SiteId self_;
  SiteId server_;
  const PhysicalClockModel* clock_;
  SimTime delta_;
  bool mark_old_;
  MessageSizes sizes_;
  CacheStats stats_;
  Tracer* obs_ = nullptr;
  // Monotone per-client operation sequence, stamped on op.* trace events.
  std::uint64_t op_seq_ = 0;

 private:
  struct InFlightRpc {
    std::uint64_t id = 0;
    Message request;
    ObjectId object;
    SiteId target;
    int attempt = 1;
    int timeouts_at_target = 0;
  };

  void on_network_message(const Message& message);
  void transmit();
  void arm_timeout();
  void on_rpc_timeout();
  void abandon_op();
  SimTime timeout_for_attempt(int attempt);

  DeltaProvider delta_provider_;
  SimTime last_effective_delta_ = SimTime::infinity();  // last traced decision
  bool effective_delta_seen_ = false;

  std::function<SiteId(ObjectId)> route_;
  ReadCallback pending_read_;
  WriteCallback pending_write_;
  ObjectId pending_op_object_;

  RetryPolicy retry_;
  std::vector<SiteId> failover_;
  Rng rpc_rng_{0};
  std::optional<InFlightRpc> rpc_;
  std::uint64_t next_request_id_ = 0;
  SimTime op_started_at_ = SimTime::zero();
  bool op_abandoned_ = false;
};

}  // namespace timedc
