#include "cluster/membership.hpp"

#include <algorithm>

namespace timedc::cluster {

MembershipTable::MembershipTable(SiteId self, std::uint64_t self_incarnation)
    : self_(self), self_incarnation_(self_incarnation) {
  members_.push_back(Member{self.value, self_incarnation_, kAlive, 0});
}

std::size_t MembershipTable::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(members_.begin(), members_.end(),
                    [](const Member& m) { return m.status == kAlive; }));
}

void MembershipTable::add_configured(SiteId site) {
  if (find(site.value) == nullptr) {
    members_.push_back(Member{site.value, 0, kAlive, 0});
  }
}

Member* MembershipTable::find(std::uint32_t site) {
  for (Member& m : members_) {
    if (m.site == site) return &m;
  }
  return nullptr;
}

Member& MembershipTable::ensure(std::uint32_t site, std::int64_t now_us) {
  if (Member* m = find(site)) return *m;
  members_.push_back(Member{site, 0, kAlive, now_us});
  return members_.back();
}

bool MembershipTable::heard_from(std::uint32_t site, std::int64_t now_us) {
  Member& m = ensure(site, now_us);
  m.last_heard_us = now_us;
  if (m.status == kAlive) return false;
  // Direct contact beats gossip: the member is provably alive now, which
  // refutes suspicion at any incarnation we have recorded.
  m.status = kAlive;
  ++epoch_;
  return true;
}

bool MembershipTable::merge(std::uint64_t remote_epoch,
                            std::span<const wire::MemberEntry> remote,
                            std::int64_t now_us) {
  bool changed = false;
  for (const wire::MemberEntry& e : remote) {
    if (e.site == self_.value) {
      // SWIM refutation: someone thinks we are suspect/dead at an
      // incarnation that covers ours — outlive the rumor.
      if (e.status != kAlive && e.incarnation >= self_incarnation_) {
        self_incarnation_ = e.incarnation + 1;
        Member& me = ensure(self_.value, now_us);
        me.incarnation = self_incarnation_;
        me.status = kAlive;
        changed = true;
      }
      continue;
    }
    Member& m = ensure(e.site, now_us);
    const bool newer = e.incarnation > m.incarnation;
    const bool worse = e.incarnation == m.incarnation && e.status > m.status;
    if (!newer && !worse) continue;
    const bool was_alive = m.status == kAlive;
    const bool was_serving = m.status < kDead;
    m.incarnation = e.incarnation;
    m.status = e.status;
    if (e.status == kAlive) m.last_heard_us = now_us;
    // Both set boundaries version the epoch: alive-set changes (the
    // original gossip contract) and serving-set changes (suspect -> dead at
    // equal incarnation, which moves ownership and must rebuild the ring).
    if (was_alive != (m.status == kAlive)) changed = true;
    if (was_serving != (m.status < kDead)) changed = true;
  }
  if (remote_epoch > epoch_) {
    epoch_ = remote_epoch;
    // Fast-forward only; the +1 below still marks a genuine local change.
  }
  if (changed) ++epoch_;
  return changed;
}

bool MembershipTable::suspect_silent(std::int64_t now_us,
                                     std::int64_t timeout_us) {
  bool changed = false;
  for (Member& m : members_) {
    if (m.site == self_.value || m.status != kAlive) continue;
    if (m.last_heard_us != 0 && now_us - m.last_heard_us > timeout_us) {
      m.status = kSuspect;
      changed = true;
    }
  }
  if (changed) ++epoch_;
  return changed;
}

bool MembershipTable::kill_silent(std::int64_t now_us,
                                  std::int64_t suspect_timeout_us,
                                  std::int64_t dead_grace_us) {
  bool changed = false;
  for (Member& m : members_) {
    if (m.site == self_.value || m.status != kSuspect) continue;
    if (m.last_heard_us != 0 &&
        now_us - m.last_heard_us > suspect_timeout_us + dead_grace_us) {
      m.status = kDead;
      changed = true;
    }
  }
  if (changed) ++epoch_;
  return changed;
}

void MembershipTable::serving_members(std::vector<std::uint32_t>& out) const {
  out.clear();
  for (const Member& m : members_) {
    if (m.status < kDead) out.push_back(m.site);
  }
  std::sort(out.begin(), out.end());
}

void MembershipTable::fill_digest(std::vector<wire::MemberEntry>& out) const {
  out.clear();
  for (const Member& m : members_) {
    if (out.size() >= wire::kMaxMembers) break;
    wire::MemberEntry e;
    e.site = m.site;
    e.incarnation = m.site == self_.value ? self_incarnation_ : m.incarnation;
    e.status = m.status;
    out.push_back(e);
  }
}

}  // namespace timedc::cluster
