// Gossip-style cluster membership, piggybacked on supervision heartbeats.
//
// Every server keeps one MembershipTable. Its digest (epoch + one
// MemberEntry per known member) rides a kMembership frame next to each
// heartbeat the transport already sends; receivers merge with standard
// anti-entropy rules:
//
//   - a higher incarnation for a site always wins (a restarted process
//     announces a bigger incarnation, refuting any stale suspicion);
//   - at equal incarnation the worse status wins (dead > suspect > alive),
//     so suspicion spreads until the suspect refutes it;
//   - a node that hears itself reported suspect/dead bumps its own
//     incarnation (the SWIM refutation rule).
//
// The table's epoch is a version counter over the *alive set*: it advances
// whenever a merge or timeout changes which members count as alive, and
// merges also fast-forward it to the largest epoch seen, so epochs are
// monotone cluster-wide. The epoch versions the ownership table (see
// ring.hpp): two servers disagreeing on ownership are by construction at
// different epochs, and the kForward hop counter bounds the disagreement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/wire.hpp"

namespace timedc::cluster {

struct Member {
  std::uint32_t site = 0;
  std::uint64_t incarnation = 0;
  std::uint8_t status = 0;  // 0 alive, 1 suspect, 2 dead (wire encoding)
  std::int64_t last_heard_us = 0;
};

class MembershipTable {
 public:
  static constexpr std::uint8_t kAlive = 0;
  static constexpr std::uint8_t kSuspect = 1;
  static constexpr std::uint8_t kDead = 2;

  MembershipTable(SiteId self, std::uint64_t self_incarnation);

  SiteId self() const { return self_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t self_incarnation() const { return self_incarnation_; }
  const std::vector<Member>& members() const { return members_; }
  std::size_t alive_count() const;

  /// Seed the table with statically configured peers (status alive). Does
  /// not bump the epoch: this is the configured baseline, not a change.
  void add_configured(SiteId site);

  /// Direct evidence of life (a frame arrived from `site`). Clears any
  /// suspicion at the current incarnation. Returns true when the alive set
  /// changed (epoch bumped).
  bool heard_from(std::uint32_t site, std::int64_t now_us);

  /// Merge one received gossip digest. Returns true when the alive set
  /// changed (epoch bumped); the epoch also fast-forwards to at least
  /// `remote_epoch`.
  bool merge(std::uint64_t remote_epoch,
             std::span<const wire::MemberEntry> remote, std::int64_t now_us);

  /// Locally suspect members silent for longer than `timeout_us`. Returns
  /// true when the alive set changed (epoch bumped).
  bool suspect_silent(std::int64_t now_us, std::int64_t timeout_us);

  /// Promote suspects to dead once silent past `suspect_timeout_us +
  /// dead_grace_us`: suspicion alone never moves ownership (a paused or
  /// briefly partitioned member keeps its slice), only death past the grace
  /// does. Returns true when the serving set changed (epoch bumped).
  bool kill_silent(std::int64_t now_us, std::int64_t suspect_timeout_us,
                   std::int64_t dead_grace_us);

  /// Fill `out` (cleared, capacity reused) with the serving set — every
  /// member with status < kDead, self included — sorted by site id, so all
  /// servers that agree on the table build bit-identical rings from it.
  void serving_members(std::vector<std::uint32_t>& out) const;

  /// Fill `out` (cleared first, capacity reused) with this table's digest,
  /// capped at wire::kMaxMembers entries.
  void fill_digest(std::vector<wire::MemberEntry>& out) const;

 private:
  Member* find(std::uint32_t site);
  Member& ensure(std::uint32_t site, std::int64_t now_us);

  SiteId self_;
  std::uint64_t self_incarnation_;
  std::uint64_t epoch_ = 0;
  std::vector<Member> members_;
};

}  // namespace timedc::cluster
