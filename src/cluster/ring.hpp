// Consistent-hash ownership table for the partitioned object space
// (Section 5.1: "each object has a set of server sites ... a server which
// either has a copy or can obtain it").
//
// The ring maps every ObjectId to exactly one owning server site among the
// current members. Each member contributes kVnodes points so ownership
// spreads evenly and a membership change only remaps the slice of objects
// adjacent to the changed member's points, not the whole space. The table
// is versioned by an epoch that increments on every membership mutation;
// forwarding decisions made under a stale epoch are safe — the receiving
// server re-checks its own table and re-forwards, with the kForward hop
// counter bounding disagreement loops.
//
// Determinism matters more than hash quality here: timedc-load computes the
// same ring from the same member list to dispatch requests owner-aware, so
// owner_of must agree bit-for-bit across processes. splitmix64 is fixed and
// seedless for exactly that reason.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace timedc::cluster {

class HashRing {
 public:
  /// Virtual nodes per member. 64 keeps the worst member's share within a
  /// few percent of 1/N for the cluster sizes the wire caps (kMaxMembers).
  static constexpr std::size_t kVnodes = 64;

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return members_.size(); }
  std::uint64_t epoch() const { return epoch_; }
  std::span<const SiteId> members() const { return members_; }

  /// Replace the member set wholesale (initial configuration). Bumps the
  /// epoch even when the set is identical: the caller asserted a new view.
  void set_members(std::span<const SiteId> members);

  /// Returns true (and bumps the epoch) when the member was not present.
  bool add_member(SiteId site);

  /// Returns true (and bumps the epoch) when the member was present.
  bool remove_member(SiteId site);

  /// The owning site for `object`: the first ring point at or clockwise
  /// after hash(object). Ring must not be empty.
  SiteId owner_of(ObjectId object) const;

 private:
  struct Point {
    std::uint64_t hash = 0;
    SiteId site;
  };

  void rebuild();

  std::vector<SiteId> members_;
  std::vector<Point> points_;  // sorted by hash
  std::uint64_t epoch_ = 0;
};

/// The fixed object/vnode hash the ring (and owner-aware dispatchers) use.
std::uint64_t ring_hash(std::uint64_t x);

}  // namespace timedc::cluster
