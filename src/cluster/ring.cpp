#include "cluster/ring.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc::cluster {

std::uint64_t ring_hash(std::uint64_t x) {
  // splitmix64 finalizer: fixed, seedless, identical in every process.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void HashRing::set_members(std::span<const SiteId> members) {
  members_.assign(members.begin(), members.end());
  std::sort(members_.begin(), members_.end(),
            [](SiteId a, SiteId b) { return a.value < b.value; });
  members_.erase(std::unique(members_.begin(), members_.end(),
                             [](SiteId a, SiteId b) {
                               return a.value == b.value;
                             }),
                 members_.end());
  ++epoch_;
  rebuild();
}

bool HashRing::add_member(SiteId site) {
  for (SiteId m : members_) {
    if (m.value == site.value) return false;
  }
  members_.push_back(site);
  std::sort(members_.begin(), members_.end(),
            [](SiteId a, SiteId b) { return a.value < b.value; });
  ++epoch_;
  rebuild();
  return true;
}

bool HashRing::remove_member(SiteId site) {
  const auto it = std::find_if(
      members_.begin(), members_.end(),
      [site](SiteId m) { return m.value == site.value; });
  if (it == members_.end()) return false;
  members_.erase(it);
  ++epoch_;
  rebuild();
  return true;
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(members_.size() * kVnodes);
  for (SiteId m : members_) {
    for (std::size_t v = 0; v < kVnodes; ++v) {
      // Mix the vnode index into the high half so consecutive site ids do
      // not produce correlated point sequences.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(v) << 32) | m.value;
      points_.push_back({ring_hash(key), m});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.site.value < b.site.value;
            });
}

SiteId HashRing::owner_of(ObjectId object) const {
  TIMEDC_ASSERT(!points_.empty());
  const std::uint64_t h = ring_hash(object.value);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  return it == points_.end() ? points_.front().site : it->site;
}

}  // namespace timedc::cluster
