// A chunked scatter list for coalesced socket writes.
//
// Encoded frames are appended into fixed-size chunks arranged in a ring;
// flush gathers every chunk's unsent remainder into an iovec array and
// hands it to one writev() call. Drained chunks are recycled in place —
// their byte buffers keep capacity — so a connection in steady state
// appends and flushes without touching the allocator, however many frames
// a loop tick coalesces.
//
// Unlike a single contiguous write buffer, a partially sent queue never
// memmoves its remainder: consume() just advances the head chunk's sent
// cursor. The ring itself only reallocates when more chunks are
// simultaneously pending than ever before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

struct iovec;

namespace timedc::net {

class SendQueue {
 public:
  /// Chunk payload size. Matches the read-side chunking: one full chunk is
  /// one comfortable writev element, and small frames pack densely.
  static constexpr std::size_t kChunkBytes = 64 * 1024;
  /// Upper bound on iovecs per writev (IOV_MAX is 1024 everywhere we run;
  /// stay well below it).
  static constexpr std::size_t kMaxIov = 64;

  SendQueue();

  /// Append `n` bytes, splitting across chunks as needed.
  void append(const std::uint8_t* data, std::size_t n);

  bool empty() const { return pending_ == 0; }
  std::size_t pending_bytes() const { return pending_; }

  /// Fill `iov` (capacity kMaxIov) with the unsent remainders, front to
  /// back. Returns the number of entries filled; the bytes they cover may
  /// be less than pending_bytes() when more chunks are queued than fit.
  std::size_t gather(struct iovec* iov) const;

  /// Mark `n` bytes (<= pending_bytes()) as sent; fully drained chunks are
  /// recycled. A short writev return is the normal caller.
  void consume(std::size_t n);

  /// Drop everything unsent (connection teardown).
  void clear();

  std::size_t chunks_in_use() const { return count_; }

 private:
  struct Chunk {
    std::vector<std::uint8_t> data;
    std::size_t sent = 0;
  };

  Chunk& tail() { return ring_[(head_ + count_ - 1) & (ring_.size() - 1)]; }
  void push_chunk();

  /// Power-of-two ring of chunks; [head_, head_+count_) are live.
  std::vector<Chunk> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace timedc::net
