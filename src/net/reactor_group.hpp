// N single-threaded reactors sharing one listening port.
//
// Each reactor is an (EventLoop, TcpTransport) pair pinned to its own
// thread. All reactors listen on the same port with SO_REUSEPORT, so the
// kernel shards incoming accepts across them; object-hash connection
// steering (TcpTransport::set_steering) then moves each accepted
// connection to the reactor that owns its destination site, so after the
// first protocol frame every connection is wholly served by one thread and
// reactors share no protocol state — the Transport seam is unchanged and
// protocol code cannot tell one reactor from sixteen.
//
// Site ownership is a function the caller provides (site -> reactor
// index); the group wires it into every transport's steering hook. The
// caller registers its per-reactor protocol objects between construction
// and start() — transports are plain TcpTransports, reachable via
// transport(i).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/tcp_transport.hpp"

namespace timedc::net {

class ReactorGroup {
 public:
  /// Maps a destination site to the reactor index that owns it. Must be
  /// pure and thread-agnostic: it runs on whichever reactor accepted the
  /// connection. Sites that return an out-of-range index stay on the
  /// accepting reactor.
  using SiteOwnerFn = std::function<std::size_t(SiteId)>;

  /// `latency_bound` is forwarded to every TcpTransport.
  ReactorGroup(std::size_t reactors, SiteOwnerFn site_owner,
               SimTime latency_bound = SimTime::infinity());
  ~ReactorGroup();
  ReactorGroup(const ReactorGroup&) = delete;
  ReactorGroup& operator=(const ReactorGroup&) = delete;

  /// Bind every reactor to the same 127.0.0.1:`port` with SO_REUSEPORT
  /// (port 0: the first reactor picks an ephemeral port and the rest join
  /// it). Returns the shared port. Call before start().
  std::uint16_t listen_shared(std::uint16_t port);

  /// Launch one thread per reactor running its loop. `on_thread_start`, if
  /// set, runs first on each reactor thread (index argument) — benchmarks
  /// use it to tag reactor threads for allocation accounting.
  void start(std::function<void(std::size_t)> on_thread_start = nullptr);

  /// Drain and stop: each reactor closes its connections on its own loop,
  /// then the loops stop and the threads join. Idempotent.
  void stop();

  /// Attach live observability to every reactor: a per-reactor StatsBoard
  /// (site id = `site_base` + reactor index) and FlightRecorder, all
  /// registered in one StatsHub so any reactor answers wire kStatsRequest
  /// frames for the whole group. Call before start(); the group owns the
  /// boards/recorders (they outlive the transports).
  /// `flight_capacity` must be a power of two; 0 skips the recorders.
  void enable_observability(std::uint32_t site_base,
                            std::size_t flight_capacity = 1u << 14);

  /// Null until enable_observability(); readable from any thread.
  StatsBoard* stats_board(std::size_t i) {
    return reactors_[i]->board.get();
  }
  FlightRecorder* flight_recorder(std::size_t i) {
    return reactors_[i]->flight.get();
  }
  const StatsHub* stats_hub() const { return hub_.get(); }

  std::size_t size() const { return reactors_.size(); }
  EventLoop& loop(std::size_t i) { return *reactors_[i]->loop; }
  TcpTransport& transport(std::size_t i) { return *reactors_[i]->transport; }
  std::uint16_t shared_port() const { return shared_port_; }

 private:
  struct Reactor {
    std::unique_ptr<EventLoop> loop;
    std::unique_ptr<TcpTransport> transport;
    std::unique_ptr<StatsBoard> board;
    std::unique_ptr<FlightRecorder> flight;
    std::thread thread;
  };

  std::vector<std::unique_ptr<Reactor>> reactors_;
  SiteOwnerFn site_owner_;
  std::unique_ptr<StatsHub> hub_;
  std::uint16_t shared_port_ = 0;
  bool started_ = false;
};

}  // namespace timedc::net
