#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace timedc::net {
namespace {

int make_tcp_socket() {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  TIMEDC_ASSERT(fd >= 0);
  // The protocols are request/response with small frames: Nagle's algorithm
  // would serialize them behind delayed acks and destroy loopback RTT.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const int rc = inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  TIMEDC_ASSERT(rc == 1 && "host must be a dotted-quad IPv4 address");
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(EventLoop& loop, SimTime latency_bound)
    : loop_(loop), latency_bound_(latency_bound) {}

TcpTransport::~TcpTransport() {
  // Silent teardown: the Connection destructor deregisters and closes
  // without firing callbacks into this (dying) transport.
  conns_.clear();
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  TIMEDC_ASSERT(listen_fd_ < 0 && "listen() may be called once");
  listen_fd_ = make_tcp_socket();
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  int rc = ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  TIMEDC_ASSERT(rc == 0 && "bind failed");
  rc = ::listen(listen_fd_, 128);
  TIMEDC_ASSERT(rc == 0);
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { accept_ready(); });
  return listen_port_;
}

void TcpTransport::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (e.g. ECONNABORTED): keep listening
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++stats_.connections_accepted;
    adopt(std::make_shared<Connection>(loop_, fd, /*connecting=*/false));
  }
}

void TcpTransport::adopt(std::shared_ptr<Connection> conn) {
  Connection* raw = conn.get();
  conns_.emplace(raw, std::move(conn));
  raw->start(
      [this](Connection& c, wire::DecodedFrame& f) { on_frame(c, f); },
      [this](Connection& c, const char* reason) { on_close(c, reason); });
}

void TcpTransport::add_route(SiteId site, std::string host,
                             std::uint16_t port) {
  routes_[site.value] = Route{std::move(host), port};
}

void TcpTransport::register_site(SiteId self, MessageHandler handler) {
  handlers_[self.value] = std::move(handler);
}

Connection* TcpTransport::dial(const Route& route, SiteId site) {
  const int fd = make_tcp_socket();
  sockaddr_in addr = loopback_addr(route.host, route.port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  ++stats_.connections_dialed;
  auto conn = std::make_shared<Connection>(loop_, fd, /*connecting=*/rc != 0);
  Connection* raw = conn.get();
  adopt(std::move(conn));
  peer_conn_[site.value] = raw;
  return raw;
}

Connection* TcpTransport::connection_to(SiteId to) {
  const auto it = peer_conn_.find(to.value);
  if (it != peer_conn_.end() && !it->second->closed()) return it->second;
  const auto route = routes_.find(to.value);
  if (route == routes_.end()) return nullptr;
  return dial(route->second, to);
}

void TcpTransport::send_message(SiteId from, SiteId to, Message m,
                                std::size_t bytes) {
  (void)bytes;  // the sim cost model; real byte counts live in Connection
  const auto local = handlers_.find(to.value);
  if (local != handlers_.end()) {
    // Both endpoints live on this transport. Deliver through the loop so
    // the handler never runs inside send_message (Transport contract).
    ++stats_.local_deliveries;
    loop_.post([this, from, to, msg = std::move(m)]() {
      const auto h = handlers_.find(to.value);
      if (h != handlers_.end()) h->second(from, msg);
    });
    return;
  }
  Connection* conn = connection_to(to);
  if (conn == nullptr) {
    ++stats_.unroutable;
    return;
  }
  ++stats_.frames_sent;
  conn->send_frame(from, to, m);
}

void TcpTransport::on_frame(Connection& conn, wire::DecodedFrame& frame) {
  ++stats_.frames_received;
  // Learn the return path: replies to frame.from leave through this
  // connection (latest arrival wins, so a reconnecting peer takes over).
  peer_conn_[frame.from.value] = &conn;
  const auto h = handlers_.find(frame.to.value);
  if (h == handlers_.end()) {
    ++stats_.unroutable;
    return;
  }
  h->second(frame.from, frame.message);
}

void TcpTransport::on_close(Connection& conn, const char* reason) {
  (void)reason;
  ++stats_.connections_closed;
  if (conn.decode_failure() != wire::DecodeStatus::kOk) ++stats_.decode_errors;
  for (auto it = peer_conn_.begin(); it != peer_conn_.end();) {
    it = (it->second == &conn) ? peer_conn_.erase(it) : std::next(it);
  }
  const auto it = conns_.find(&conn);
  if (it != conns_.end()) {
    // We may be inside this connection's own event callback: defer the
    // actual destruction until the stack unwinds.
    std::shared_ptr<Connection> keep_alive = std::move(it->second);
    conns_.erase(it);
    loop_.post([keep_alive]() {});
  }
}

void TcpTransport::close_all() {
  // close() mutates conns_ through on_close; iterate over a snapshot.
  std::vector<Connection*> open;
  open.reserve(conns_.size());
  for (const auto& [raw, conn] : conns_) open.push_back(raw);
  for (Connection* c : open) c->close("shutdown");
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace timedc::net
