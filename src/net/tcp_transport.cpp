#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace timedc::net {
namespace {

int make_tcp_socket() {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  TIMEDC_ASSERT(fd >= 0);
  // The protocols are request/response with small frames: Nagle's algorithm
  // would serialize them behind delayed acks and destroy loopback RTT.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const int rc = inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  TIMEDC_ASSERT(rc == 1 && "host must be a dotted-quad IPv4 address");
  return addr;
}

/// The reply_to field of a client request, or null for replies/pushes. A
/// request whose reply_to differs from the sending site is being forwarded
/// on a client's behalf — the trigger for kForward wrapping.
const SiteId* request_reply_to(const Message& m) {
  if (const auto* f = std::get_if<FetchRequest>(&m)) return &f->reply_to;
  if (const auto* w = std::get_if<WriteRequest>(&m)) return &w->reply_to;
  if (const auto* v = std::get_if<ValidateRequest>(&m)) return &v->reply_to;
  return nullptr;
}

}  // namespace

const char* to_cstring(ConnectionState s) {
  switch (s) {
    case ConnectionState::kConnecting: return "connecting";
    case ConnectionState::kHealthy: return "healthy";
    case ConnectionState::kBackoff: return "backoff";
    case ConnectionState::kDead: return "dead";
  }
  return "unknown";
}

TcpTransport::TcpTransport(EventLoop& loop, SimTime latency_bound)
    : loop_(loop), latency_bound_(latency_bound) {}

TcpTransport::~TcpTransport() {
  // Silent teardown: the Connection destructor deregisters and closes
  // without firing callbacks into this (dying) transport.
  conns_.clear();
  if (tick_hook_registered_) loop_.remove_tick_end_hook(tick_hook_id_);
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

std::uint16_t TcpTransport::listen(std::uint16_t port, bool reuse_port) {
  TIMEDC_ASSERT(listen_fd_ < 0 && "listen() may be called once");
  listen_fd_ = make_tcp_socket();
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    // N reactors bind the same port; the kernel shards incoming accepts
    // across their listening sockets.
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  int rc = ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  TIMEDC_ASSERT(rc == 0 && "bind failed");
  rc = ::listen(listen_fd_, 128);
  TIMEDC_ASSERT(rc == 0);
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { accept_ready(); });
  return listen_port_;
}

void TcpTransport::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors (e.g. ECONNABORTED): keep listening
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ++stats_.connections_accepted;
    adopt(std::make_shared<Connection>(loop_, fd, /*connecting=*/false),
          /*steer_candidate=*/steering_ != nullptr);
  }
}

Connection* TcpTransport::adopt(std::shared_ptr<Connection> conn,
                                bool steer_candidate) {
  Connection* raw = conn.get();
  conns_.emplace(raw, std::move(conn));
  if (steer_candidate) steer_candidates_.insert(raw);
  raw->start(
      [this](Connection& c, const wire::FrameView& v) { on_frame(c, v); },
      [this](Connection& c, const char* reason) { on_close(c, reason); });
  // Every connection writes in batched mode: sends enqueue, the tick-end
  // hook gather-flushes each dirty connection once.
  raw->set_flush_scheduler([this](Connection& c) {
    ensure_tick_hook();
    dirty_conns_.push_back(&c);
  });
  return raw;
}

void TcpTransport::adopt_steered(int fd, std::vector<std::uint8_t> leftover) {
  ++stats_.connections_steered_in;
  // Never a steer candidate again: the connection already found its owner;
  // steering it back would ping-pong.
  Connection* raw =
      adopt(std::make_shared<Connection>(loop_, fd, /*connecting=*/false));
  raw->inject(std::move(leftover));
}

void TcpTransport::add_route(SiteId site, std::string host,
                             std::uint16_t port) {
  routes_[site.value] = Route{std::move(host), port};
}

void TcpTransport::set_supervision(SupervisionConfig config) {
  TIMEDC_ASSERT(config.backoff_jitter >= 0.0 && config.backoff_jitter < 1.0);
  TIMEDC_ASSERT(config.dead_after_failures >= 1);
  supervision_ = std::move(config);
  backoff_rng_ = Rng(supervision_.seed);
}

SimTime TcpTransport::liveness_timeout() const {
  if (supervision_.liveness_timeout > SimTime::zero()) {
    return supervision_.liveness_timeout;
  }
  // Two missed ping/pong round trips. An infinite (unpromised) latency
  // bound is clamped so the deadline stays finite.
  const SimTime lat = latency_bound_.is_infinite()
      ? SimTime::seconds(1)
      : std::min(latency_bound_, SimTime::seconds(1));
  return SimTime::micros(2 * supervision_.heartbeat_interval.as_micros() +
                         2 * lat.as_micros());
}

ConnectionState TcpTransport::connection_state(SiteId site) const {
  const auto it = peers_.find(site.value);
  if (it == peers_.end()) return ConnectionState::kHealthy;
  return it->second.state;
}

const TcpTransportStats& TcpTransport::stats() const {
  stats_.peers_by_state = {};
  for (const auto& [site, peer] : peers_) {
    ++stats_.peers_by_state[static_cast<std::size_t>(peer.state)];
  }
  stats_.flush_syscalls = closed_flush_syscalls_;
  for (const auto& [raw, conn] : conns_) {
    stats_.flush_syscalls += conn->stats().flush_syscalls;
  }
  return stats_;
}

void TcpTransport::register_site(SiteId self, MessageHandler handler) {
  handlers_[self.value] = std::move(handler);
}

void TcpTransport::enable_cluster(SiteId self) {
  cluster_enabled_ = true;
  cluster_self_ = self;
}

void TcpTransport::prime_supervised(SiteId site) {
  if (!supervision_.enabled || routes_.find(site.value) == routes_.end()) {
    return;
  }
  const auto [it, created] = peers_.try_emplace(site.value);
  (void)it;
  if (created) start_dial(site);
}

bool TcpTransport::send_cacher_subscribe(SiteId from, SiteId to,
                                         const wire::CacherSubscribe& cs) {
  const auto local = handlers_.find(to.value);
  if (local != handlers_.end()) {
    // Both sites live on this transport (single-process cluster): deliver
    // through the loop so the handler never runs inside its own send.
    loop_.post([this, to, cs]() {
      ++stats_.subscribes_received;
      if (on_cacher_subscribe_) on_cacher_subscribe_(to, cs);
    });
    ++stats_.subscribes_sent;
    return true;
  }
  Connection* conn = nullptr;
  if (supervision_.enabled && routes_.find(to.value) != routes_.end()) {
    const auto it = peers_.find(to.value);
    if (it == peers_.end()) {
      peers_.try_emplace(to.value);
      start_dial(to);
      return false;  // caller re-subscribes on the next miss (idempotent)
    }
    if (it->second.state != ConnectionState::kHealthy) return false;
    conn = it->second.conn;
  } else {
    conn = connection_to(to);
  }
  if (conn == nullptr || conn->closed()) return false;
  conn->send_cacher_subscribe(from, to, cs);
  ++stats_.subscribes_sent;
  return true;
}

Connection* TcpTransport::dial(const Route& route, SiteId site) {
  const int fd = make_tcp_socket();
  sockaddr_in addr = loopback_addr(route.host, route.port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  ++stats_.connections_dialed;
  auto conn = std::make_shared<Connection>(loop_, fd, /*connecting=*/rc != 0);
  Connection* raw = conn.get();
  adopt(std::move(conn));
  peer_conn_[site.value] = raw;
  return raw;
}

Connection* TcpTransport::connection_to(SiteId to) {
  const auto it = peer_conn_.find(to.value);
  if (it != peer_conn_.end() && !it->second->closed()) return it->second;
  const auto route = routes_.find(to.value);
  if (route == routes_.end()) return nullptr;
  return dial(route->second, to);
}

void TcpTransport::send_message(SiteId from, SiteId to, Message m,
                                std::size_t bytes) {
  (void)bytes;  // the sim cost model; real byte counts live in Connection
  const auto local = handlers_.find(to.value);
  if (local != handlers_.end()) {
    // Both endpoints live on this transport. Queue for the tick-end batch
    // apply, so the handler never runs inside send_message (Transport
    // contract) and a tick's worth of local messages is applied in one
    // drain instead of one posted std::function allocation each.
    ++stats_.local_deliveries;
    ensure_tick_hook();
    pending_local_.push_back(LocalDelivery{from, to, std::move(m)});
    return;
  }
  if (supervision_.enabled && routes_.find(to.value) != routes_.end()) {
    supervised_send(from, to, std::move(m));
    return;
  }
  Connection* conn = connection_to(to);
  if (conn == nullptr) {
    ++stats_.unroutable;
    return;
  }
  ++stats_.frames_sent;
  const bool sampled = stats_board_ != nullptr &&
                       (++stage_samples_tx_ % kStageSamplePeriod) == 0;
  if (sampled) {
    const std::int64_t t0 = EventLoop::steady_time_us();
    emit_or_wrap(conn, from, to, m);
    const std::int64_t us = EventLoop::steady_time_us() - t0;
    stats_board_->record_stage(Stage::kEnqueue, us);
    if (flight_ != nullptr) {
      flight_->record(TraceEventType::kReactorStage, loop_.now().as_micros(),
                      kNoObject, 0,
                      static_cast<std::int64_t>(Stage::kEnqueue), us);
    }
  } else {
    emit_or_wrap(conn, from, to, m);
  }
}

void TcpTransport::emit_or_wrap(Connection* conn, SiteId from, SiteId to,
                                const Message& m) {
  if (cluster_enabled_) {
    const SiteId* rt = request_reply_to(m);
    if (rt != nullptr && rt->value != from.value) {
      // A local server ruled itself non-owner and is forwarding a client's
      // request to a peer server. Wrap it in kForward with the *client* as
      // the inner sender: the owner's WAL dedup keys on (client, request_id)
      // exactly as for a direct request, and its reply to the client routes
      // back through this connection (the owner learns the path on unwrap).
      if (dispatch_hops_ < kMaxForwardHops) {
        conn->send_forward(cluster_self_, to, dispatch_hops_ + 1,
                           /*serve_here=*/false, ring_epoch_, *rt, to, m);
        ++stats_.forwards_out;
        // The client picked the wrong server for this object: once the ring
        // has moved off the configured baseline, hint it with the current
        // serving ring so it re-learns instead of paying a hop per request.
        maybe_hint_ring(*rt);
        return;
      }
      ++stats_.forward_hops_exceeded;  // send unwrapped: better late than lost
    }
  }
  conn->send_frame(from, to, m);
}

void TcpTransport::set_stats_board(StatsBoard* board) {
  stats_board_ = board;
  // The tick hook doubles as the board's publish cadence, so it must run
  // even before traffic registers it.
  if (board != nullptr) ensure_tick_hook();
}

void TcpTransport::set_flight_recorder(FlightRecorder* recorder) {
  flight_ = recorder;
  if (recorder != nullptr) ensure_tick_hook();
}

bool TcpTransport::send_stats_request(SiteId from, SiteId to,
                                      const wire::StatsRequest& rq) {
  const auto local = handlers_.find(to.value);
  if (local != handlers_.end()) {
    // The polled process is this one: answer through the loop, like local
    // time-sync, so the reply handler never runs inside its own send.
    loop_.post([this, to, rq]() {
      std::vector<StatsEntry> entries;
      std::vector<wire::StatsRow> rows;
      const std::int64_t now_us = loop_.now().as_micros();
      auto append = [&](const StatsBoard& b) {
        entries.clear();
        b.collect(now_us, entries);
        for (const StatsEntry& e : entries) {
          rows.push_back({b.site(), e.key, e.value});
        }
      };
      if (stats_hub_ != nullptr) {
        const std::size_t n = stats_hub_->size();
        for (std::size_t i = 0; i < n; ++i) {
          const StatsBoard* b = stats_hub_->board(i);
          if (b != nullptr && (rq.target_site == wire::kAllSites ||
                               b->site() == rq.target_site)) {
            append(*b);
          }
        }
      } else if (stats_board_ != nullptr &&
                 (rq.target_site == wire::kAllSites ||
                  stats_board_->site() == rq.target_site)) {
        append(*stats_board_);
      }
      ++stats_.stats_requests_served;
      ++stats_.stats_replies_received;
      if (on_stats_reply_) on_stats_reply_(to, rq.seq, rows);
    });
    return true;
  }
  Connection* conn = nullptr;
  if (supervision_.enabled && routes_.find(to.value) != routes_.end()) {
    const auto it = peers_.find(to.value);
    if (it == peers_.end()) {
      peers_.try_emplace(to.value);
      start_dial(to);
      return false;
    }
    if (it->second.state != ConnectionState::kHealthy) return false;
    conn = it->second.conn;
  } else {
    conn = connection_to(to);
  }
  if (conn == nullptr || conn->closed()) return false;
  conn->send_stats_request(from, to, rq);
  return true;
}

bool TcpTransport::send_time_sync(SiteId from, SiteId to,
                                  const wire::TimeSync& ts) {
  const auto local = handlers_.find(to.value);
  if (local != handlers_.end() && !ts.reply) {
    // The time server lives on this transport: answer through the loop so
    // the sync client's handler never runs inside its own send.
    loop_.post([this, from, to, ts]() {
      wire::TimeSync reply = ts;
      reply.reply = true;
      reply.server_time_us = (loop_.now() + time_source_offset_).as_micros();
      ++stats_.time_requests_served;
      ++stats_.time_replies_received;
      if (on_time_sync_) on_time_sync_(to, reply);
    });
    ++stats_.time_requests_sent;
    return true;
  }
  Connection* conn = nullptr;
  if (supervision_.enabled && routes_.find(to.value) != routes_.end()) {
    const auto it = peers_.find(to.value);
    if (it == peers_.end()) {
      // No traffic has touched this route yet; start it like a send would.
      peers_.try_emplace(to.value);
      start_dial(to);
      return false;
    }
    if (it->second.state != ConnectionState::kHealthy) return false;
    conn = it->second.conn;
  } else {
    conn = connection_to(to);
  }
  if (conn == nullptr || conn->closed()) return false;
  if (!ts.reply) ++stats_.time_requests_sent;
  conn->send_time_sync(from, to, ts);
  return true;
}

// --- supervision ------------------------------------------------------------

void TcpTransport::transition(SiteId site, Peer& peer, ConnectionState next) {
  if (peer.state == next) return;
  const ConnectionState prev = peer.state;
  peer.state = next;
  if (next == ConnectionState::kDead) ++stats_.peers_marked_dead;
  if (on_peer_state_) on_peer_state_(site, prev, next);
}

void TcpTransport::supervised_send(SiteId from, SiteId to, Message m) {
  auto [it, created] = peers_.try_emplace(to.value);
  Peer& peer = it->second;
  if (created) {
    start_dial(to);
  }
  switch (peer.state) {
    case ConnectionState::kHealthy:
      ++stats_.frames_sent;
      emit_or_wrap(peer.conn, from, to, m);
      return;
    case ConnectionState::kConnecting:
    case ConnectionState::kBackoff:
      enqueue_frame(peer, from, to, std::move(m));
      return;
    case ConnectionState::kDead:
      // The caller was told via peer_reachable(); anything still sent here
      // is dropped so a dead replica cannot absorb the retry budget.
      ++stats_.frames_dropped_peer_dead;
      return;
  }
}

void TcpTransport::enqueue_frame(Peer& peer, SiteId from, SiteId to,
                                 Message m) {
  if (peer.queue.size() >= supervision_.max_queued_frames) {
    // Drop the oldest: its RPC timeout has the best chance of already
    // having fired, and the retry layer re-issues it if not.
    peer.queue.pop_front();
    ++stats_.frames_dropped_queue_full;
  }
  peer.queue.push_back(QueuedFrame{from, to, std::move(m)});
  ++stats_.frames_queued;
}

void TcpTransport::start_dial(SiteId site) {
  Peer& peer = peers_.at(site.value);
  const auto route_it = routes_.find(site.value);
  TIMEDC_ASSERT(route_it != routes_.end());
  transition(site, peer, ConnectionState::kConnecting);
  const std::uint64_t generation = ++peer.generation;
  if (peer.failures > 0) ++stats_.reconnect_attempts;

  const int fd = make_tcp_socket();
  sockaddr_in addr = loopback_addr(route_it->second.host, route_it->second.port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    ++peer.failures;
    schedule_backoff(site);
    return;
  }
  ++stats_.connections_dialed;
  const bool connecting = rc != 0;
  auto conn = std::make_shared<Connection>(loop_, fd, connecting);
  Connection* raw = conn.get();
  adopt(std::move(conn));
  conn_site_[raw] = site.value;
  peer.conn = raw;
  if (!connecting) {
    on_supervised_connected(site);
    return;
  }
  raw->set_connected_handler(
      [this, site](Connection&) { on_supervised_connected(site); });
  loop_.run_after(supervision_.dial_timeout, [this, site, generation]() {
    const auto it = peers_.find(site.value);
    if (it == peers_.end()) return;
    Peer& p = it->second;
    if (p.generation != generation ||
        p.state != ConnectionState::kConnecting || p.conn == nullptr ||
        !p.conn->connecting()) {
      return;
    }
    ++stats_.dial_timeouts;
    p.conn->close("dial timeout");  // failure path continues in on_close
  });
}

void TcpTransport::on_supervised_connected(SiteId site) {
  Peer& peer = peers_.at(site.value);
  if (peer.failures > 0) ++stats_.reconnects;
  transition(site, peer, ConnectionState::kHealthy);
  // Fresh liveness epoch: the deadline measures silence on *this*
  // connection, not the outage that preceded it.
  peer.last_rx_us = loop_.now().as_micros();
  while (!peer.queue.empty() && peer.conn != nullptr &&
         !peer.conn->closed()) {
    QueuedFrame f = std::move(peer.queue.front());
    peer.queue.pop_front();
    ++stats_.frames_sent;
    ++stats_.frames_requeued;
    emit_or_wrap(peer.conn, f.from, f.to, f.message);
  }
  schedule_heartbeat(site, peer.generation);
}

void TcpTransport::schedule_heartbeat(SiteId site, std::uint64_t generation) {
  // ±10% jitter per tick: N members that booted together (or all watched
  // the same peer die) would otherwise fire their heartbeats — and the
  // membership digests riding them — in the same instant forever.
  std::int64_t delay_us = supervision_.heartbeat_interval.as_micros();
  delay_us += static_cast<std::int64_t>(
      0.1 * static_cast<double>(delay_us) *
      (2.0 * backoff_rng_.uniform01() - 1.0));
  loop_.run_after(SimTime::micros(delay_us), [this, site, generation]() {
    const auto it = peers_.find(site.value);
    if (it == peers_.end()) return;
    Peer& peer = it->second;
    if (peer.generation != generation ||
        peer.state != ConnectionState::kHealthy || peer.conn == nullptr ||
        peer.conn->closed()) {
      return;  // superseded: a newer connection runs its own ticker
    }
    const std::int64_t now_us = loop_.now().as_micros();
    if (now_us - peer.last_rx_us > liveness_timeout().as_micros()) {
      ++stats_.liveness_expiries;
      peer.conn->close("liveness expired");  // failure path in on_close
      return;
    }
    wire::Heartbeat hb;
    hb.seq = peer.next_hb_seq++;
    hb.send_time_us = now_us;
    hb.reply = false;
    peer.conn->send_heartbeat(SiteId{0}, site, hb);
    ++stats_.heartbeats_sent;
    if (cluster_enabled_ && membership_provider_) {
      // Gossip rides the supervision ticker: one membership digest per
      // heartbeat, to the same peer, on the same coalesced flush.
      std::uint64_t epoch = 0;
      membership_provider_(epoch, membership_scratch_);
      peer.conn->send_membership(cluster_self_, site, epoch, ring_epoch_,
                                 membership_scratch_);
      ++stats_.membership_sent;
    }
    schedule_heartbeat(site, generation);
  });
}

void TcpTransport::schedule_backoff(SiteId site) {
  Peer& peer = peers_.at(site.value);
  peer.conn = nullptr;
  if (shutting_down_) return;
  const std::uint64_t generation = ++peer.generation;
  if (peer.failures >= supervision_.dead_after_failures) {
    transition(site, peer, ConnectionState::kDead);
    stats_.frames_dropped_peer_dead += peer.queue.size();
    peer.queue.clear();
    // A dead peer is still probed, at the backoff cap's cadence, so a
    // healed partition or restarted server is eventually rediscovered.
    loop_.run_after(supervision_.backoff_cap, [this, site, generation]() {
      const auto it = peers_.find(site.value);
      if (it == peers_.end()) return;
      Peer& p = it->second;
      if (p.generation != generation || p.state != ConnectionState::kDead) {
        return;
      }
      start_dial(site);
    });
    return;
  }
  transition(site, peer, ConnectionState::kBackoff);
  const int exponent = std::min(std::max(0, peer.failures - 1), 20);
  std::int64_t delay_us = supervision_.backoff_base.as_micros() << exponent;
  delay_us = std::min(delay_us, supervision_.backoff_cap.as_micros());
  if (supervision_.backoff_jitter > 0 && delay_us > 0) {
    const double f = 1.0 + supervision_.backoff_jitter *
                               (2.0 * backoff_rng_.uniform01() - 1.0);
    delay_us = static_cast<std::int64_t>(static_cast<double>(delay_us) * f);
  }
  loop_.run_after(SimTime::micros(delay_us), [this, site, generation]() {
    const auto it = peers_.find(site.value);
    if (it == peers_.end()) return;
    Peer& p = it->second;
    if (p.generation != generation || p.state != ConnectionState::kBackoff) {
      return;
    }
    start_dial(site);
  });
}

void TcpTransport::on_supervised_close(SiteId site, Connection& conn) {
  Peer& peer = peers_.at(site.value);
  if (peer.conn != &conn) return;  // an older connection's close, already
                                   // superseded by a newer dial
  ++peer.failures;
  schedule_backoff(site);
}

void TcpTransport::on_frame(Connection& conn, const wire::FrameView& view) {
  // Any received frame is proof of liveness for the supervised peer this
  // connection belongs to — and the only thing that resets its
  // consecutive-failure count (a bare connect success is not proof: a
  // black-holing peer accepts and then says nothing).
  const auto sup = conn_site_.find(&conn);
  if (sup != conn_site_.end()) {
    const auto peer_it = peers_.find(sup->second);
    if (peer_it != peers_.end()) {
      peer_it->second.last_rx_us = loop_.now().as_micros();
      peer_it->second.failures = 0;
    }
  }
  // Connection steering decides on the header alone, before the body is
  // decoded: the first protocol frame names the destination site, whose
  // owning reactor takes the fd. Transport-internal frames (heartbeat,
  // time-sync) are answered by whichever reactor accepted and keep the
  // connection eligible.
  if (!steer_candidates_.empty() && view.is_protocol()) {
    const auto cand = steer_candidates_.find(&conn);
    if (cand != steer_candidates_.end()) {
      steer_candidates_.erase(cand);
      TcpTransport* owner = steering_ ? steering_(view.to) : nullptr;
      if (owner != nullptr && owner != this) {
        steer(conn, *owner);
        return;
      }
    }
  }
  if (view.type == wire::MsgType::kForward) {
    // A peer server ruled itself non-owner and wrapped the client's frame
    // verbatim. Validate and unwrap at the view level — the inner frame
    // aliases this connection's read buffer, no copy, no allocation.
    const wire::FrameView inner = wire::peek_forward_inner(view);
    if (!inner.ok()) {
      conn.fail_decode(inner.status);
      return;
    }
    ++stats_.forwards_in;
    const wire::ForwardPrefix fp = wire::peek_forward_prefix(view);
    if (ring_epoch_ > 0 && fp.ring_epoch < ring_epoch_ && !fp.serve_here) {
      // The forwarder's ring is behind ours (it missed a rebalance): still
      // process the inner frame — our own routing re-forwards if we are not
      // the owner either — but bounce the current serving ring back so the
      // stale sender stops forwarding into the past.
      ++stats_.stale_forwards;
      conn.send_ring_update(cluster_self_, view.from, ring_epoch_,
                            ring_members_);
      ++stats_.ring_updates_sent;
    }
    // Learn the original client's return path *through the forwarder*: the
    // reply addressed to inner.from leaves on this inter-server connection,
    // and the forwarder relays it to the client it still holds.
    peer_conn_[inner.from.value] = &conn;
    // A serve-here forward (a WARMING owner's forward-through) pins the
    // dispatch to local state: dispatch_serve_locally() reads this flag for
    // exactly the duration of the inner dispatch.
    dispatch_serve_here_ = fp.serve_here;
    dispatch_protocol(conn, inner, fp.hops);
    dispatch_serve_here_ = false;
    return;
  }
  if (view.is_protocol()) {
    dispatch_protocol(conn, view, /*hops=*/0);
    return;
  }
  if (cluster_enabled_ &&
      (view.type == wire::MsgType::kOverloaded ||
       view.type == wire::MsgType::kRingUpdate) &&
      handlers_.find(view.to.value) == handlers_.end()) {
    // An admission-shed reply or ring hint travelling back to a client whose
    // connection this process holds (the request arrived here and was
    // forwarded out): relay verbatim, exactly like protocol replies.
    const auto learned = peer_conn_.find(view.to.value);
    if (learned != peer_conn_.end() && !learned->second->closed() &&
        learned->second != &conn) {
      learned->second->send_raw_frame(wire::frame_bytes(view));
      ++stats_.relayed;
      return;
    }
  }
  // Transport-internal frame (heartbeat, time-sync, stats, membership,
  // cacher-subscribe): decode into the reused scratch frame and answer or
  // deliver here, without handler dispatch or return-path learning.
  if (wire::decode_frame_view(view, scratch_frame_) !=
      wire::DecodeStatus::kOk) {
    conn.fail_decode(scratch_frame_.status);
    return;
  }
  wire::DecodedFrame& frame = scratch_frame_;
  if (frame.is_heartbeat) {
    ++stats_.heartbeats_received;
    if (!frame.heartbeat.reply) {
      wire::Heartbeat pong = frame.heartbeat;
      pong.reply = true;
      conn.send_heartbeat(frame.to, frame.from, pong);
    }
    // Transport-internal: no return-path learning, no handler dispatch.
    return;
  }
  if (frame.is_time_sync) {
    // Transport-internal, like heartbeats: requests are answered with this
    // process's reference clock, replies go to the registered sync client.
    if (!frame.time_sync.reply) {
      wire::TimeSync reply = frame.time_sync;
      reply.reply = true;
      reply.server_time_us = (loop_.now() + time_source_offset_).as_micros();
      conn.send_time_sync(frame.to, frame.from, reply);
      ++stats_.time_requests_served;
    } else {
      ++stats_.time_replies_received;
      if (on_time_sync_) on_time_sync_(frame.from, frame.time_sync);
    }
    return;
  }
  if (frame.is_stats_request) {
    // Transport-internal, like heartbeats: any reactor answers, for every
    // board the process hub knows (including stalled reactors' boards).
    answer_stats(conn, frame.from, frame.to, frame.stats_request);
    return;
  }
  if (frame.is_stats_reply) {
    ++stats_.stats_replies_received;
    if (on_stats_reply_) {
      on_stats_reply_(frame.from, frame.stats_seq, frame.stats_rows);
    }
    return;
  }
  if (frame.is_membership) {
    ++stats_.membership_received;
    if (on_membership_) {
      on_membership_(frame.from, frame.membership_epoch,
                     frame.membership_ring_epoch, frame.members);
    }
    return;
  }
  if (frame.is_cacher_subscribe) {
    ++stats_.subscribes_received;
    if (on_cacher_subscribe_) {
      on_cacher_subscribe_(frame.to, frame.cacher_subscribe);
    }
    return;
  }
  if (frame.is_slice_sync) {
    // Anti-entropy donor path: the warming requester asks for its slice of
    // our store. Answer on the arriving connection — the requester's warm
    // driver owns retries, so an unconfigured donor still replies (not
    // ready) rather than black-holing the warm-up.
    ++stats_.slice_sync_served;
    std::uint8_t status = wire::kSliceNotReady;
    std::uint32_t next_cursor = frame.slice_sync.cursor;
    slice_scratch_.clear();
    if (slice_sync_server_) {
      status = slice_sync_server_(frame.from, frame.slice_sync,
                                  slice_scratch_, next_cursor);
    }
    conn.send_slice_sync_reply(frame.to, frame.from, frame.slice_sync.seq,
                               ring_epoch_, status, next_cursor,
                               slice_scratch_);
    return;
  }
  if (frame.is_slice_sync_reply) {
    ++stats_.slice_sync_replies;
    if (on_slice_sync_reply_) {
      on_slice_sync_reply_(frame.from, frame.slice_seq, frame.slice_ring_epoch,
                           frame.slice_status, frame.slice_next_cursor,
                           frame.slice_records);
    }
    return;
  }
  if (frame.is_ring_update) {
    ++stats_.ring_updates_received;
    if (on_ring_update_) {
      on_ring_update_(frame.from, frame.ring_update_epoch, frame.ring_members);
    }
    return;
  }
  if (frame.is_overloaded) {
    ++stats_.overloaded_received;
    if (on_overloaded_) on_overloaded_(frame.to, frame.overloaded);
    return;
  }
}

void TcpTransport::dispatch_protocol(Connection& conn,
                                     const wire::FrameView& view,
                                     std::uint8_t hops) {
  // A frame for a site not hosted here is relayed or forwarded from the
  // header alone, before any body decode: relayed replies and re-forwarded
  // requests copy raw bytes straight from the read buffer.
  if (cluster_enabled_ && handlers_.find(view.to.value) == handlers_.end()) {
    if (relay_or_forward(conn, view, hops)) return;
  }
  // Decode the body into the per-transport scratch frame (reused storage:
  // no allocation for empty-timestamp messages, i.e. all TSC traffic).
  // 1-in-kStageSamplePeriod frames pay two extra clock reads per stage to
  // feed the stats board's hot-path latency histograms.
  const bool sampled = stats_board_ != nullptr &&
                       (++stage_samples_rx_ % kStageSamplePeriod) == 0;
  const std::int64_t decode_t0 = sampled ? EventLoop::steady_time_us() : 0;
  if (wire::decode_frame_view(view, scratch_frame_) !=
      wire::DecodeStatus::kOk) {
    conn.fail_decode(scratch_frame_.status);
    return;
  }
  if (sampled) {
    const std::int64_t us = EventLoop::steady_time_us() - decode_t0;
    stats_board_->record_stage(Stage::kDecode, us);
    if (flight_ != nullptr) {
      flight_->record(TraceEventType::kReactorStage, loop_.now().as_micros(),
                      kNoObject, 0,
                      static_cast<std::int64_t>(Stage::kDecode), us);
    }
  }
  wire::DecodedFrame& frame = scratch_frame_;
  ++stats_.frames_received;
  // Learn the return path: replies to frame.from leave through this
  // connection (latest arrival wins, so a reconnecting peer takes over).
  peer_conn_[frame.from.value] = &conn;
  const auto h = handlers_.find(frame.to.value);
  if (h == handlers_.end()) {
    ++stats_.unroutable;
    return;
  }
  // The handler may itself forward (ObjectServer is not the owner): expose
  // the hop count so re-forwards deepen it instead of resetting to zero.
  dispatch_hops_ = hops;
  if (sampled) {
    const std::int64_t apply_t0 = EventLoop::steady_time_us();
    h->second(frame.from, frame.message);
    const std::int64_t us = EventLoop::steady_time_us() - apply_t0;
    stats_board_->record_stage(Stage::kApply, us);
    if (flight_ != nullptr) {
      flight_->record(TraceEventType::kReactorStage, loop_.now().as_micros(),
                      kNoObject, 0,
                      static_cast<std::int64_t>(Stage::kApply), us);
    }
  } else {
    h->second(frame.from, frame.message);
  }
  dispatch_hops_ = 0;
}

bool TcpTransport::relay_or_forward(Connection& conn,
                                    const wire::FrameView& view,
                                    std::uint8_t hops) {
  // Relay first: a reply travelling back to a client whose connection this
  // process holds (learned when the client's request was forwarded out, or
  // when a forwarded frame was unwrapped here). Raw byte copy, original
  // header intact — the client cannot tell the reply took a hop.
  const auto learned = peer_conn_.find(view.to.value);
  if (learned != peer_conn_.end() && !learned->second->closed() &&
      learned->second != &conn) {
    learned->second->send_raw_frame(wire::frame_bytes(view));
    ++stats_.relayed;
    return true;
  }
  if (hops >= kMaxForwardHops) {
    // Ring disagreement during an epoch change could otherwise bounce a
    // frame between servers forever; drop it and let the client retry
    // against a settled ring.
    ++stats_.forward_hops_exceeded;
    return false;
  }
  // Forward: wrap the frame verbatim toward the supervised peer hosting
  // view.to (a misrouted client picked the wrong server for this object).
  const auto peer_it = peers_.find(view.to.value);
  if (peer_it != peers_.end() &&
      peer_it->second.state == ConnectionState::kHealthy &&
      peer_it->second.conn != nullptr && !peer_it->second.conn->closed()) {
    peer_it->second.conn->send_forward_raw(cluster_self_, view.to,
                                           static_cast<std::uint8_t>(hops + 1),
                                           /*serve_here=*/false, ring_epoch_,
                                           wire::frame_bytes(view));
    ++stats_.forwards_out;
    maybe_hint_ring(view.from);
    return true;
  }
  if (supervision_.enabled && peer_it == peers_.end() &&
      routes_.find(view.to.value) != routes_.end()) {
    // First traffic toward this peer: start the dial, drop the frame (the
    // client's retry layer re-issues; queuing raw bytes would allocate).
    peers_.try_emplace(view.to.value);
    start_dial(SiteId{view.to.value});
  }
  return false;
}

// --- self-healing (wire v6) -------------------------------------------------

void TcpTransport::set_ring(std::uint64_t epoch,
                            std::span<const std::uint32_t> members) {
  ring_epoch_ = epoch;
  ring_members_.assign(members.begin(), members.end());
}

void TcpTransport::maybe_hint_ring(SiteId client) {
  if (ring_epoch_ == 0) return;  // baseline ring: nothing to re-learn
  std::uint64_t& hinted = ring_hinted_[client.value];
  if (hinted >= ring_epoch_) return;  // already told this client this epoch
  const auto it = peer_conn_.find(client.value);
  if (it == peer_conn_.end() || it->second->closed()) return;
  hinted = ring_epoch_;
  it->second->send_ring_update(cluster_self_, client, ring_epoch_,
                               ring_members_);
  ++stats_.ring_updates_sent;
}

void TcpTransport::purge_member(SiteId site) {
  ++stats_.members_purged;
  // The learned return path: a reply routed at this peer would sit in a
  // kernel buffer (or a half-dead socket) until supervision noticed.
  peer_conn_.erase(site.value);
  // The pending-forward queue: frames buffered while the route was
  // reconnecting. Gossip just proved the peer dead cluster-wide, which is
  // strictly stronger evidence than local supervision failures — the retry
  // layer re-issues against the rebalanced ring instead.
  const auto it = peers_.find(site.value);
  if (it != peers_.end() && !it->second.queue.empty()) {
    stats_.frames_dropped_peer_dead += it->second.queue.size();
    it->second.queue.clear();
  }
  ring_hinted_.erase(site.value);
}

bool TcpTransport::send_slice_sync(SiteId from, SiteId to,
                                   const wire::SliceSyncRequest& rq) {
  Connection* conn = nullptr;
  if (supervision_.enabled && routes_.find(to.value) != routes_.end()) {
    const auto it = peers_.find(to.value);
    if (it == peers_.end()) {
      peers_.try_emplace(to.value);
      start_dial(to);
      return false;  // the warm driver retries on its own cadence
    }
    if (it->second.state != ConnectionState::kHealthy) return false;
    conn = it->second.conn;
  } else {
    conn = connection_to(to);
  }
  if (conn == nullptr || conn->closed()) return false;
  conn->send_slice_sync(from, to, rq);
  ++stats_.slice_sync_sent;
  return true;
}

bool TcpTransport::send_overloaded(SiteId from, SiteId to,
                                   const wire::Overloaded& ov) {
  const auto learned = peer_conn_.find(to.value);
  Connection* conn = (learned != peer_conn_.end() && !learned->second->closed())
                         ? learned->second
                         : connection_to(to);
  if (conn == nullptr || conn->closed()) return false;
  conn->send_overloaded(from, to, ov);
  ++stats_.overloaded_sent;
  return true;
}

bool TcpTransport::forward_serve_here(SiteId inner_from, SiteId donor,
                                      const Message& m) {
  Connection* conn = nullptr;
  if (supervision_.enabled && routes_.find(donor.value) != routes_.end()) {
    const auto it = peers_.find(donor.value);
    if (it == peers_.end()) {
      peers_.try_emplace(donor.value);
      start_dial(donor);
      return false;  // caller falls back to serving its (cold) local state
    }
    if (it->second.state != ConnectionState::kHealthy) return false;
    conn = it->second.conn;
  } else {
    conn = connection_to(donor);
  }
  if (conn == nullptr || conn->closed()) return false;
  conn->send_forward(cluster_self_, donor, /*hops=*/1, /*serve_here=*/true,
                     ring_epoch_, inner_from, donor, m);
  ++stats_.forwards_out;
  return true;
}

void TcpTransport::answer_stats(Connection& conn, SiteId requester,
                                SiteId self, const wire::StatsRequest& rq) {
  stats_scratch_.clear();
  stats_spans_.clear();
  struct Range {
    std::uint32_t site;
    std::size_t begin;
    std::size_t count;
  };
  Range ranges[wire::kMaxStatsBoards];
  std::size_t n_ranges = 0;
  const std::int64_t now_us = loop_.now().as_micros();
  auto append = [&](const StatsBoard& b) {
    if (n_ranges >= wire::kMaxStatsBoards) return;
    const std::size_t begin = stats_scratch_.size();
    b.collect(now_us, stats_scratch_);
    ranges[n_ranges++] = {b.site(), begin, stats_scratch_.size() - begin};
  };
  if (stats_hub_ != nullptr) {
    const std::size_t n = stats_hub_->size();
    for (std::size_t i = 0; i < n; ++i) {
      const StatsBoard* b = stats_hub_->board(i);
      if (b != nullptr && (rq.target_site == wire::kAllSites ||
                           b->site() == rq.target_site)) {
        append(*b);
      }
    }
  } else if (stats_board_ != nullptr &&
             (rq.target_site == wire::kAllSites ||
              stats_board_->site() == rq.target_site)) {
    append(*stats_board_);
  }
  // Spans are built after collection: stats_scratch_ no longer reallocates.
  for (std::size_t i = 0; i < n_ranges; ++i) {
    stats_spans_.push_back(
        {ranges[i].site,
         std::span<const StatsEntry>(stats_scratch_.data() + ranges[i].begin,
                                     ranges[i].count)});
  }
  ++stats_.stats_requests_served;
  // An empty reply (no boards) still goes out so pollers never hang.
  conn.send_stats_reply(self, requester, rq.seq, stats_spans_);
  if (flight_ != nullptr) {
    const std::int64_t reply_bytes = static_cast<std::int64_t>(
        wire::kHeaderBytes + 12 + n_ranges * 8 + stats_scratch_.size() * 10);
    flight_->record(TraceEventType::kStatsScrape, now_us, kNoObject, rq.seq,
                    static_cast<std::int64_t>(requester.value), reply_bytes);
  }
}

void TcpTransport::steer(Connection& conn, TcpTransport& owner) {
  // Best-effort flush of anything already queued (e.g. a heartbeat pong
  // from this same tick): release() drops unsent output.
  conn.flush_batched();
  if (conn.closed()) return;  // flush hit a write error; nothing to steer
  std::vector<std::uint8_t> leftover;
  const int fd = conn.release(leftover);
  ++stats_.connections_steered_out;
  forget_pending(&conn);
  // The connection carried no learned return paths yet (steering happens
  // on the first protocol frame), but purge defensively.
  for (auto it = peer_conn_.begin(); it != peer_conn_.end();) {
    it = (it->second == &conn) ? peer_conn_.erase(it) : std::next(it);
  }
  TcpTransport* target = &owner;
  target->loop().post(
      [target, fd, lo = std::move(leftover)]() mutable {
        target->adopt_steered(fd, std::move(lo));
      });
  release_conn(conn);
}

void TcpTransport::on_close(Connection& conn, const char* reason) {
  (void)reason;
  ++stats_.connections_closed;
  if (conn.decode_failure() != wire::DecodeStatus::kOk) {
    ++stats_.decode_errors;
    ++stats_.decode_errors_by_status[static_cast<std::size_t>(
        conn.decode_failure())];
  }
  steer_candidates_.erase(&conn);
  forget_pending(&conn);
  // Purge every learned return path through this connection: a send to one
  // of these sites must re-dial or re-learn, never touch a dead pointer.
  for (auto it = peer_conn_.begin(); it != peer_conn_.end();) {
    it = (it->second == &conn) ? peer_conn_.erase(it) : std::next(it);
  }
  const auto sup = conn_site_.find(&conn);
  if (sup != conn_site_.end()) {
    const SiteId site{sup->second};
    conn_site_.erase(sup);
    if (peers_.find(site.value) != peers_.end()) {
      on_supervised_close(site, conn);
    }
  }
  release_conn(conn);
}

void TcpTransport::release_conn(Connection& conn) {
  closed_flush_syscalls_ += conn.stats().flush_syscalls;
  const auto it = conns_.find(&conn);
  if (it != conns_.end()) {
    // We may be inside this connection's own event callback: defer the
    // actual destruction until the stack unwinds.
    std::shared_ptr<Connection> keep_alive = std::move(it->second);
    conns_.erase(it);
    loop_.post([keep_alive]() {});
  }
}

void TcpTransport::forget_pending(Connection* conn) {
  // Deferred destruction runs in drain_posted, which precedes the tick-end
  // hook in the same iteration — so every pending reference must go now,
  // from both the fill list and (when closing from inside the hook's own
  // flush) the list currently being walked. The walk skips nulls rather
  // than erasing, so indices stay stable.
  std::erase(dirty_conns_, conn);
  for (auto& c : flushing_) {
    if (c == conn) c = nullptr;
  }
}

void TcpTransport::ensure_tick_hook() {
  if (tick_hook_registered_) return;
  tick_hook_registered_ = true;
  tick_hook_id_ = loop_.add_tick_end_hook([this]() { on_tick_end(); });
}

void TcpTransport::on_tick_end() {
  if (!pending_local_.empty() || !dirty_conns_.empty()) {
    ++stats_.batch_flushes;
    // Batch-apply local deliveries; applying one may enqueue more (request →
    // reply → ...), so drain until a pass produces nothing new.
    while (!pending_local_.empty()) {
      local_batch_.clear();
      local_batch_.swap(pending_local_);
      for (LocalDelivery& d : local_batch_) {
        const auto h = handlers_.find(d.to.value);
        if (h != handlers_.end()) h->second(d.from, d.message);
      }
    }
    // One gather write per connection that queued output this tick. Acks a
    // shard produced while applying the batch above land in these queues, so
    // the whole tick's replies leave in (at most) one syscall per peer.
    const bool time_flush =
        stats_board_ != nullptr && !dirty_conns_.empty();
    const std::int64_t flush_t0 =
        time_flush ? EventLoop::steady_time_us() : 0;
    while (!dirty_conns_.empty()) {
      flushing_.clear();
      flushing_.swap(dirty_conns_);
      for (Connection* c : flushing_) {
        if (c != nullptr && !c->closed() && !c->released()) c->flush_batched();
      }
    }
    flushing_.clear();
    if (time_flush) {
      const std::int64_t us = EventLoop::steady_time_us() - flush_t0;
      stats_board_->record_stage(Stage::kFlush, us);
      if (flight_ != nullptr) {
        flight_->record(TraceEventType::kReactorStage, loop_.now().as_micros(),
                        kNoObject, 0,
                        static_cast<std::int64_t>(Stage::kFlush), us);
      }
    }
  }
  if (stats_board_ != nullptr || flight_ != nullptr) observe_tick();
}

void TcpTransport::observe_tick() {
  const std::int64_t dur =
      EventLoop::steady_time_us() - loop_.tick_start_steady_us();
  ++ticks_;
  if (dur > max_tick_us_) max_tick_us_ = dur;
  if (dur >= slow_tick_threshold_us_) {
    ++slow_ticks_;
    if (flight_ != nullptr) {
      flight_->record(TraceEventType::kReactorSlowTick, loop_.now().as_micros(),
                      kNoObject, 0, dur, slow_tick_threshold_us_);
    }
  }
  if (stats_board_ == nullptr) return;
  StatsBoard& b = *stats_board_;
  // Cheap counters every tick; the scalar stores are relaxed atomics, so
  // this is a handful of uncontended cache-line writes.
  b.set(StatKey::kTicks, static_cast<std::int64_t>(ticks_));
  b.set(StatKey::kSlowTicks, static_cast<std::int64_t>(slow_ticks_));
  b.set(StatKey::kMaxTickUs, max_tick_us_);
  b.set(StatKey::kLastTickEndUs, loop_.now().as_micros());
  b.set(StatKey::kFramesIn, static_cast<std::int64_t>(stats_.frames_received));
  b.set(StatKey::kFramesOut, static_cast<std::int64_t>(stats_.frames_sent));
  b.set(StatKey::kOpsApplied, static_cast<std::int64_t>(
                                  stats_.frames_received +
                                  stats_.local_deliveries));
  b.set(StatKey::kBatchFlushes,
        static_cast<std::int64_t>(stats_.batch_flushes));
  b.set(StatKey::kSteeredOut,
        static_cast<std::int64_t>(stats_.connections_steered_out));
  b.set(StatKey::kSteeredIn,
        static_cast<std::int64_t>(stats_.connections_steered_in));
  b.set(StatKey::kDecodeErrors,
        static_cast<std::int64_t>(stats_.decode_errors));
  b.set(StatKey::kHeartbeatsSent,
        static_cast<std::int64_t>(stats_.heartbeats_sent));
  b.set(StatKey::kHeartbeatsReceived,
        static_cast<std::int64_t>(stats_.heartbeats_received));
  b.set(StatKey::kConnections, static_cast<std::int64_t>(conns_.size()));
  b.set(StatKey::kFramesDropped,
        static_cast<std::int64_t>(stats_.frames_dropped_queue_full +
                                  stats_.frames_dropped_peer_dead));
  if (cluster_enabled_) {
    b.set(StatKey::kClusterForwardsOut,
          static_cast<std::int64_t>(stats_.forwards_out));
    b.set(StatKey::kClusterForwardsIn,
          static_cast<std::int64_t>(stats_.forwards_in));
    b.set(StatKey::kClusterRelayed,
          static_cast<std::int64_t>(stats_.relayed));
    b.set(StatKey::kClusterHopsExceeded,
          static_cast<std::int64_t>(stats_.forward_hops_exceeded));
    b.set(StatKey::kClusterMembershipSent,
          static_cast<std::int64_t>(stats_.membership_sent));
    b.set(StatKey::kClusterMembershipReceived,
          static_cast<std::int64_t>(stats_.membership_received));
    b.set(StatKey::kClusterStaleForwards,
          static_cast<std::int64_t>(stats_.stale_forwards));
  }
  if (flight_ != nullptr) {
    b.set(StatKey::kFlightRecorded,
          static_cast<std::int64_t>(flight_->recorded()));
    b.set(StatKey::kFlightOverwritten,
          static_cast<std::int64_t>(flight_->overwritten()));
  }
  // O(conns) aggregates are amortised: every 32 ticks ((ticks_ & 31) == 1
  // also covers the very first tick, so boards never report zero forever).
  if ((ticks_ & 31) == 1) {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t flush_syscalls = closed_flush_syscalls_;
    for (const auto& [raw, conn] : conns_) {
      const ConnectionStats& cs = raw->stats();
      bytes_in += cs.bytes_read;
      bytes_out += cs.bytes_written;
      flush_syscalls += cs.flush_syscalls;
    }
    b.set(StatKey::kBytesIn, static_cast<std::int64_t>(bytes_in));
    b.set(StatKey::kBytesOut, static_cast<std::int64_t>(bytes_out));
    b.set(StatKey::kFlushSyscalls,
          static_cast<std::int64_t>(flush_syscalls));
  }
}

void TcpTransport::stop_listening() {
  if (listen_fd_ < 0) return;
  loop_.remove_fd(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TcpTransport::close_all() {
  shutting_down_ = true;  // supervised closes must not schedule re-dials
  // close() mutates conns_ through on_close; iterate over a snapshot.
  std::vector<Connection*> open;
  open.reserve(conns_.size());
  for (const auto& [raw, conn] : conns_) open.push_back(raw);
  for (Connection* c : open) {
    // Graceful: push out whatever the last tick queued before closing.
    if (!c->closed()) c->flush_batched();
    if (!c->closed()) c->close("shutdown");
  }
  stop_listening();
}

}  // namespace timedc::net
