#include "net/wire.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace timedc::wire {
namespace {

// --- encoding ---------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void time(SimTime t) { i64(t.as_micros()); }
  void timestamp(const PlausibleTimestamp& ts) {
    TIMEDC_ASSERT(ts.num_entries() <= kMaxClockEntries);
    u32(ts.origin().value);
    u32(static_cast<std::uint32_t>(ts.num_entries()));
    for (std::uint64_t e : ts.entries()) u64(e);
  }
  void copy(const ObjectCopy& c) {
    u32(c.object.value);
    i64(c.value.value);
    u64(c.version);
    time(c.alpha);
    time(c.omega);
    time(c.beta);
    timestamp(c.alpha_l);
    timestamp(c.omega_l);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

std::size_t timestamp_size(const PlausibleTimestamp& ts) {
  return 8 + 8 * ts.num_entries();
}

std::size_t copy_size(const ObjectCopy& c) {
  return 4 + 8 + 8 + 3 * 8 + timestamp_size(c.alpha_l) + timestamp_size(c.omega_l);
}

struct TypeAndSize {
  MsgType type;
  std::size_t body;
};

TypeAndSize type_and_size(const Message& m) {
  struct Visitor {
    TypeAndSize operator()(const FetchRequest&) const {
      return {MsgType::kFetchRequest, 4 + 4 + 8};
    }
    TypeAndSize operator()(const FetchReply& r) const {
      return {MsgType::kFetchReply, copy_size(r.copy) + 8};
    }
    TypeAndSize operator()(const WriteRequest& r) const {
      return {MsgType::kWriteRequest, 4 + 8 + 8 + timestamp_size(r.write_ts) + 4 + 8};
    }
    TypeAndSize operator()(const WriteAck&) const {
      return {MsgType::kWriteAck, 4 + 8 + 8};
    }
    TypeAndSize operator()(const ValidateRequest&) const {
      return {MsgType::kValidateRequest, 4 + 8 + 4 + 8};
    }
    TypeAndSize operator()(const ValidateReply& r) const {
      return {MsgType::kValidateReply, 4 + 1 + copy_size(r.copy) + 8};
    }
    TypeAndSize operator()(const Invalidate&) const {
      return {MsgType::kInvalidate, 4 + 8};
    }
    TypeAndSize operator()(const PushUpdate& p) const {
      return {MsgType::kPushUpdate, copy_size(p.copy)};
    }
  };
  return std::visit(Visitor{}, m);
}

void encode_body(Writer& w, const Message& m) {
  struct Visitor {
    Writer& w;
    void operator()(const FetchRequest& r) const {
      w.u32(r.object.value);
      w.u32(r.reply_to.value);
      w.u64(r.request_id);
    }
    void operator()(const FetchReply& r) const {
      w.copy(r.copy);
      w.u64(r.request_id);
    }
    void operator()(const WriteRequest& r) const {
      w.u32(r.object.value);
      w.i64(r.value.value);
      w.time(r.client_time);
      w.timestamp(r.write_ts);
      w.u32(r.reply_to.value);
      w.u64(r.request_id);
    }
    void operator()(const WriteAck& a) const {
      w.u32(a.object.value);
      w.u64(a.version);
      w.u64(a.request_id);
    }
    void operator()(const ValidateRequest& r) const {
      w.u32(r.object.value);
      w.u64(r.version);
      w.u32(r.reply_to.value);
      w.u64(r.request_id);
    }
    void operator()(const ValidateReply& r) const {
      w.u32(r.object.value);
      w.u8(r.still_valid ? 1 : 0);
      w.copy(r.copy);
      w.u64(r.request_id);
    }
    void operator()(const Invalidate& i) const {
      w.u32(i.object.value);
      w.u64(i.version);
    }
    void operator()(const PushUpdate& p) const { w.copy(p.copy); }
  };
  std::visit(Visitor{w}, m);
}

// --- decoding ---------------------------------------------------------------

/// Cursor over the frame body only; every read is bounds-checked and a
/// failed read poisons the reader (subsequent reads return zeros), so one
/// status check at the end of the body suffices.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> body) : body_(body) {}

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return body_[at_++];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(body_[at_]) |
                      static_cast<std::uint16_t>(body_[at_ + 1]) << 8;
    at_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(body_[at_ + i]) << (8 * i);
    at_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(body_[at_ + i]) << (8 * i);
    at_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  SimTime time() { return SimTime::micros(i64()); }

  PlausibleTimestamp timestamp() {
    const SiteId origin{u32()};
    const std::uint32_t n = u32();
    if (n > kMaxClockEntries) {
      fail(DecodeStatus::kOversizedClock);
      return {};
    }
    // The entry bytes must already be present before anything is allocated
    // (take() only checks bounds; the u64() loop below does the advancing).
    if (!take(std::size_t{8} * n)) return {};
    std::vector<std::uint64_t> entries(n);
    for (std::uint32_t i = 0; i < n; ++i) entries[i] = u64();
    return PlausibleTimestamp(std::move(entries), origin);
  }

  ObjectCopy copy() {
    ObjectCopy c;
    c.object = ObjectId{u32()};
    c.value = Value{i64()};
    c.version = u64();
    c.alpha = time();
    c.omega = time();
    c.beta = time();
    c.alpha_l = timestamp();
    c.omega_l = timestamp();
    return c;
  }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) {
      fail(DecodeStatus::kBadField);
      return false;
    }
    return v == 1;
  }

  void fail(DecodeStatus why) {
    if (status_ == DecodeStatus::kOk) status_ = why;
  }
  DecodeStatus status() const { return status_; }
  bool exhausted() const { return at_ == body_.size(); }

 private:
  bool take(std::size_t n) {
    if (status_ != DecodeStatus::kOk || body_.size() - at_ < n) {
      fail(DecodeStatus::kShortBody);
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> body_;
  std::size_t at_ = 0;
  DecodeStatus status_ = DecodeStatus::kOk;
};

Message decode_body(MsgType type, Reader& r) {
  switch (type) {
    case MsgType::kFetchRequest: {
      FetchRequest m;
      m.object = ObjectId{r.u32()};
      m.reply_to = SiteId{r.u32()};
      m.request_id = r.u64();
      return m;
    }
    case MsgType::kFetchReply: {
      FetchReply m;
      m.copy = r.copy();
      m.request_id = r.u64();
      return m;
    }
    case MsgType::kWriteRequest: {
      WriteRequest m;
      m.object = ObjectId{r.u32()};
      m.value = Value{r.i64()};
      m.client_time = r.time();
      m.write_ts = r.timestamp();
      m.reply_to = SiteId{r.u32()};
      m.request_id = r.u64();
      return m;
    }
    case MsgType::kWriteAck: {
      WriteAck m;
      m.object = ObjectId{r.u32()};
      m.version = r.u64();
      m.request_id = r.u64();
      return m;
    }
    case MsgType::kValidateRequest: {
      ValidateRequest m;
      m.object = ObjectId{r.u32()};
      m.version = r.u64();
      m.reply_to = SiteId{r.u32()};
      m.request_id = r.u64();
      return m;
    }
    case MsgType::kValidateReply: {
      ValidateReply m;
      m.object = ObjectId{r.u32()};
      m.still_valid = r.boolean();
      m.copy = r.copy();
      m.request_id = r.u64();
      return m;
    }
    case MsgType::kInvalidate: {
      Invalidate m;
      m.object = ObjectId{r.u32()};
      m.version = r.u64();
      return m;
    }
    case MsgType::kPushUpdate: {
      PushUpdate m;
      m.copy = r.copy();
      return m;
    }
    case MsgType::kHeartbeat:
    case MsgType::kTimeRequest:
    case MsgType::kTimeReply:
    case MsgType::kStatsRequest:
    case MsgType::kStatsReply:
    case MsgType::kMembership:
    case MsgType::kForward:
    case MsgType::kCacherSubscribe:
    case MsgType::kSliceSync:
    case MsgType::kSliceSyncReply:
    case MsgType::kOverloaded:
    case MsgType::kRingUpdate:
      break;  // handled in decode_frame, never reaches decode_body
  }
  TIMEDC_ASSERT(false && "unreachable: type validated before decode_body");
  return FetchRequest{};
}

std::uint32_t read_u32_at(std::span<const std::uint8_t> buf, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[at + i]) << (8 * i);
  return v;
}

// reserve() to an exact size reallocates every time the buffer is already
// full, turning appends to a backlogged write buffer into O(n^2) copying.
// Grow geometrically instead, like push_back would.
void grow_for_append(std::vector<std::uint8_t>& out, std::size_t extra) {
  const std::size_t need = out.size() + extra;
  if (need > out.capacity()) out.reserve(std::max(need, out.capacity() * 2));
}

// v6 kForward body prefix: [flags+hops u8][ring_epoch u64]. Bit 7 of the
// first byte is serve-here, the low 4 bits are the hop count, the bits in
// between must be zero. A v5 body carries the bare hop byte only.
inline constexpr std::uint8_t kForwardServeHereBit = 0x80;
inline constexpr std::uint8_t kForwardHopsMask = 0x0f;
inline constexpr std::size_t kForwardPrefixV6 = 1 + 8;

}  // namespace

std::size_t encoded_frame_size(const Message& m) {
  return kHeaderBytes + type_and_size(m).body;
}

void encode_heartbeat_frame(SiteId from, SiteId to, const Heartbeat& hb,
                            std::vector<std::uint8_t>& out) {
  constexpr std::size_t kBody = 8 + 8 + 1;
  grow_for_append(out, kHeaderBytes + kBody);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(kBody);
  w.u64(hb.seq);
  w.i64(hb.send_time_us);
  w.u8(hb.reply ? 1 : 0);
}

void encode_time_sync_frame(SiteId from, SiteId to, const TimeSync& ts,
                            std::vector<std::uint8_t>& out) {
  constexpr std::size_t kBody = 8 + 8 + 8;
  grow_for_append(out, kHeaderBytes + kBody);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(ts.reply ? MsgType::kTimeReply
                                          : MsgType::kTimeRequest));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(kBody);
  w.u64(ts.seq);
  w.i64(ts.client_send_us);
  w.i64(ts.server_time_us);
}

void encode_stats_request_frame(SiteId from, SiteId to,
                                const StatsRequest& rq,
                                std::vector<std::uint8_t>& out) {
  constexpr std::size_t kBody = 8 + 4;
  grow_for_append(out, kHeaderBytes + kBody);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsRequest));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(kBody);
  w.u64(rq.seq);
  w.u32(rq.target_site);
}

void encode_stats_reply_frame(SiteId from, SiteId to, std::uint64_t seq,
                              std::span<const StatsBoardSpan> boards,
                              std::vector<std::uint8_t>& out) {
  TIMEDC_ASSERT(boards.size() <= kMaxStatsBoards);
  std::size_t body = 8 + 4;
  for (const StatsBoardSpan& b : boards) {
    TIMEDC_ASSERT(b.entries.size() <= kMaxStatsEntries);
    body += 4 + 4 + b.entries.size() * (2 + 8);
  }
  TIMEDC_ASSERT(body <= kMaxBodyBytes);
  grow_for_append(out, kHeaderBytes + body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kStatsReply));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(body));
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(boards.size()));
  for (const StatsBoardSpan& b : boards) {
    w.u32(b.site);
    w.u32(static_cast<std::uint32_t>(b.entries.size()));
    for (const StatsEntry& e : b.entries) {
      w.u16(e.key);
      w.i64(e.value);
    }
  }
}

void encode_membership_frame(SiteId from, SiteId to, std::uint64_t epoch,
                             std::uint64_t ring_epoch,
                             std::span<const MemberEntry> members,
                             std::vector<std::uint8_t>& out) {
  TIMEDC_ASSERT(members.size() <= kMaxMembers);
  const std::size_t body = 8 + 8 + 4 + members.size() * (4 + 8 + 1);
  grow_for_append(out, kHeaderBytes + body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kMembership));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(body));
  w.u64(epoch);
  w.u64(ring_epoch);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const MemberEntry& m : members) {
    w.u32(m.site);
    w.u64(m.incarnation);
    w.u8(m.status);
  }
}

void encode_forward_frame_raw(SiteId from, SiteId to, std::uint8_t hops,
                              bool serve_here, std::uint64_t ring_epoch,
                              std::span<const std::uint8_t> inner_frame,
                              std::vector<std::uint8_t>& out) {
  TIMEDC_ASSERT(hops <= kForwardHopsMask);
  const std::size_t body = kForwardPrefixV6 + inner_frame.size();
  TIMEDC_ASSERT(body <= kMaxBodyBytes);
  grow_for_append(out, kHeaderBytes + body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kForward));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(body));
  w.u8(static_cast<std::uint8_t>((serve_here ? kForwardServeHereBit : 0) |
                                 hops));
  w.u64(ring_epoch);
  out.insert(out.end(), inner_frame.begin(), inner_frame.end());
}

void encode_forward_frame(SiteId from, SiteId to, std::uint8_t hops,
                          bool serve_here, std::uint64_t ring_epoch,
                          SiteId inner_from, SiteId inner_to,
                          const Message& inner,
                          std::vector<std::uint8_t>& out) {
  TIMEDC_ASSERT(hops <= kForwardHopsMask);
  const std::size_t inner_size = encoded_frame_size(inner);
  const std::size_t body = kForwardPrefixV6 + inner_size;
  TIMEDC_ASSERT(body <= kMaxBodyBytes);
  grow_for_append(out, kHeaderBytes + body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kForward));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(body));
  w.u8(static_cast<std::uint8_t>((serve_here ? kForwardServeHereBit : 0) |
                                 hops));
  w.u64(ring_epoch);
  encode_frame(inner_from, inner_to, inner, out);
}

void encode_slice_sync_frame(SiteId from, SiteId to,
                             const SliceSyncRequest& rq,
                             std::vector<std::uint8_t>& out) {
  constexpr std::size_t kBody = 8 + 8 + 4 + 4 + 8;
  grow_for_append(out, kHeaderBytes + kBody);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kSliceSync));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(kBody);
  w.u64(rq.seq);
  w.u64(rq.ring_epoch);
  w.u32(rq.cursor);
  w.u32(rq.max_records);
  w.i64(rq.if_newer_than_us);
}

void encode_slice_sync_reply_frame(SiteId from, SiteId to, std::uint64_t seq,
                                   std::uint64_t ring_epoch,
                                   std::uint8_t status,
                                   std::uint32_t next_cursor,
                                   std::span<const SliceRecord> records,
                                   std::vector<std::uint8_t>& out) {
  TIMEDC_ASSERT(records.size() <= kMaxSliceRecords);
  TIMEDC_ASSERT(status <= kSliceNotReady);
  const std::size_t body =
      8 + 8 + 1 + 4 + 4 + records.size() * (4 + 8 + 8 + 8 + 4 + 8);
  grow_for_append(out, kHeaderBytes + body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kSliceSyncReply));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(body));
  w.u64(seq);
  w.u64(ring_epoch);
  w.u8(status);
  w.u32(next_cursor);
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const SliceRecord& rec : records) {
    w.u32(rec.object);
    w.i64(rec.value);
    w.u64(rec.version);
    w.i64(rec.alpha_us);
    w.u32(rec.writer);
    w.u64(rec.request_id);
  }
}

void encode_ring_update_frame(SiteId from, SiteId to, std::uint64_t ring_epoch,
                              std::span<const std::uint32_t> members,
                              std::vector<std::uint8_t>& out) {
  TIMEDC_ASSERT(members.size() <= kMaxMembers);
  const std::size_t body = 8 + 4 + members.size() * 4;
  grow_for_append(out, kHeaderBytes + body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kRingUpdate));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(body));
  w.u64(ring_epoch);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (std::uint32_t site : members) w.u32(site);
}

void encode_overloaded_frame(SiteId from, SiteId to, const Overloaded& ov,
                             std::vector<std::uint8_t>& out) {
  constexpr std::size_t kBody = 4 + 8 + 8;
  grow_for_append(out, kHeaderBytes + kBody);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kOverloaded));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(kBody);
  w.u32(ov.object);
  w.u64(ov.request_id);
  w.i64(ov.retry_after_us);
}

void encode_cacher_subscribe_frame(SiteId from, SiteId to,
                                   const CacherSubscribe& cs,
                                   std::vector<std::uint8_t>& out) {
  constexpr std::size_t kBody = 4 + 4 + 1;
  grow_for_append(out, kHeaderBytes + kBody);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kCacherSubscribe));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(kBody);
  w.u32(cs.object.value);
  w.u32(cs.cacher.value);
  w.u8(cs.mode);
}

void encode_frame(SiteId from, SiteId to, const Message& m,
                  std::vector<std::uint8_t>& out) {
  const TypeAndSize ts = type_and_size(m);
  TIMEDC_ASSERT(ts.body <= kMaxBodyBytes);
  grow_for_append(out, kHeaderBytes + ts.body);
  Writer w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(ts.type));
  w.u32(from.value);
  w.u32(to.value);
  w.u32(static_cast<std::uint32_t>(ts.body));
  const std::size_t body_start = out.size();
  encode_body(w, m);
  TIMEDC_ASSERT(out.size() - body_start == ts.body);
}

FrameView peek_frame(std::span<const std::uint8_t> buf) {
  FrameView view;
  // Fail fast on a corrupt stream: magic/version/type are validated as soon
  // as their bytes are present, without waiting for a full header.
  if (buf.size() < 2) return view;  // kNeedMore
  const std::uint16_t magic = static_cast<std::uint16_t>(buf[0]) |
                              static_cast<std::uint16_t>(buf[1]) << 8;
  if (magic != kMagic) {
    view.status = DecodeStatus::kBadMagic;
    return view;
  }
  if (buf.size() < 3) return view;
  const std::uint8_t version = buf[2];
  if (version < kMinVersion || version > kVersion) {
    view.status = DecodeStatus::kBadVersion;
    return view;
  }
  if (buf.size() < 4) return view;
  const std::uint8_t raw_type = buf[3];
  // Each transport-level type only exists from the codec version that
  // introduced it on (kHeartbeat: 2, kTimeRequest/kTimeReply: 3); an older
  // frame declaring a newer type is malformed, not merely new.
  const std::uint8_t max_type =
      version >= 6   ? static_cast<std::uint8_t>(MsgType::kRingUpdate)
      : version == 5 ? static_cast<std::uint8_t>(MsgType::kCacherSubscribe)
      : version == 4 ? static_cast<std::uint8_t>(MsgType::kStatsReply)
      : version == 3 ? static_cast<std::uint8_t>(MsgType::kTimeReply)
      : version == 2 ? static_cast<std::uint8_t>(MsgType::kHeartbeat)
                     : static_cast<std::uint8_t>(MsgType::kPushUpdate);
  if (raw_type < static_cast<std::uint8_t>(MsgType::kFetchRequest) ||
      raw_type > max_type) {
    view.status = DecodeStatus::kBadType;
    return view;
  }
  if (buf.size() < kHeaderBytes) return view;
  view.from = SiteId{read_u32_at(buf, 4)};
  view.to = SiteId{read_u32_at(buf, 8)};
  const std::uint32_t body_len = read_u32_at(buf, 12);
  if (body_len > kMaxBodyBytes) {
    view.status = DecodeStatus::kOversizedBody;
    return view;
  }
  if (buf.size() < kHeaderBytes + body_len) return view;
  view.status = DecodeStatus::kOk;
  view.consumed = kHeaderBytes + body_len;
  view.type = static_cast<MsgType>(raw_type);
  view.version = version;
  view.body = buf.subspan(kHeaderBytes, body_len);
  return view;
}

FrameView peek_forward_inner(const FrameView& outer) {
  FrameView inner;
  inner.status = DecodeStatus::kBadField;
  // The prefix before the wrapped frame is version-gated: v6 added the
  // ring epoch after the flags byte.
  const std::size_t prefix = outer.version >= 6 ? kForwardPrefixV6 : 1;
  if (!outer.ok() || outer.type != MsgType::kForward ||
      outer.body.size() < prefix) {
    return inner;
  }
  const std::span<const std::uint8_t> wrapped = outer.body.subspan(prefix);
  FrameView peeked = peek_frame(wrapped);
  // A forged inner length can only land here as kNeedMore (the wrapped
  // bytes end before the declared body does) — still kBadField for the
  // outer frame: the stream itself is complete, the frame is malformed.
  if (!peeked.ok() || peeked.consumed != wrapped.size() ||
      !peeked.is_protocol()) {
    if (peeked.status == DecodeStatus::kOversizedBody) {
      inner.status = DecodeStatus::kOversizedBody;
    }
    return inner;
  }
  return peeked;
}

ForwardPrefix peek_forward_prefix(const FrameView& outer) {
  ForwardPrefix prefix;
  if (outer.type != MsgType::kForward || outer.body.empty()) return prefix;
  const std::uint8_t first = outer.body[0];
  if (outer.version >= 6) {
    if (outer.body.size() < kForwardPrefixV6) return prefix;
    prefix.hops = first & kForwardHopsMask;
    prefix.serve_here = (first & kForwardServeHereBit) != 0;
    std::uint64_t epoch = 0;
    for (int i = 0; i < 8; ++i) {
      epoch |= static_cast<std::uint64_t>(outer.body[1 + i]) << (8 * i);
    }
    prefix.ring_epoch = epoch;
  } else {
    prefix.hops = first;
  }
  return prefix;
}

DecodeStatus decode_frame_view(const FrameView& view, DecodedFrame& out) {
  out.status = view.status;
  out.consumed = 0;
  out.from = view.from;
  out.to = view.to;
  out.is_heartbeat = false;
  out.is_time_sync = false;
  out.is_stats_request = false;
  out.is_stats_reply = false;
  out.is_membership = false;
  out.is_forward = false;
  out.is_cacher_subscribe = false;
  out.is_slice_sync = false;
  out.is_slice_sync_reply = false;
  out.is_ring_update = false;
  out.is_overloaded = false;
  if (!view.ok()) return out.status;

  Reader r(view.body);
  if (view.type == MsgType::kHeartbeat) {
    Heartbeat hb;
    hb.seq = r.u64();
    hb.send_time_us = r.i64();
    hb.reply = r.boolean();
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_heartbeat = true;
    out.heartbeat = hb;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kTimeRequest || view.type == MsgType::kTimeReply) {
    TimeSync ts;
    ts.seq = r.u64();
    ts.client_send_us = r.i64();
    ts.server_time_us = r.i64();
    ts.reply = view.type == MsgType::kTimeReply;
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_time_sync = true;
    out.time_sync = ts;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kStatsRequest) {
    StatsRequest rq;
    rq.seq = r.u64();
    rq.target_site = r.u32();
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_stats_request = true;
    out.stats_request = rq;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kStatsReply) {
    out.stats_rows.clear();
    const std::uint64_t seq = r.u64();
    const std::uint32_t n_boards = r.u32();
    if (n_boards > kMaxStatsBoards) {
      return out.status = DecodeStatus::kBadField;
    }
    for (std::uint32_t b = 0; b < n_boards; ++b) {
      const std::uint32_t site = r.u32();
      const std::uint32_t n = r.u32();
      if (n > kMaxStatsEntries) return out.status = DecodeStatus::kBadField;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint16_t key = r.u16();
        const std::int64_t value = r.i64();
        if (r.status() != DecodeStatus::kOk) break;
        out.stats_rows.push_back({site, key, value});
      }
      if (r.status() != DecodeStatus::kOk) break;
    }
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_stats_reply = true;
    out.stats_seq = seq;
    out.stats_boards = n_boards;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kMembership) {
    out.members.clear();
    const std::uint64_t epoch = r.u64();
    const std::uint64_t ring_epoch = view.version >= 6 ? r.u64() : 0;
    const std::uint32_t n = r.u32();
    if (n > kMaxMembers) return out.status = DecodeStatus::kBadField;
    for (std::uint32_t i = 0; i < n; ++i) {
      MemberEntry e;
      e.site = r.u32();
      e.incarnation = r.u64();
      e.status = r.u8();
      if (e.status > 2) return out.status = DecodeStatus::kBadField;
      if (r.status() != DecodeStatus::kOk) break;
      out.members.push_back(e);
    }
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_membership = true;
    out.membership_epoch = epoch;
    out.membership_ring_epoch = ring_epoch;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kForward) {
    const FrameView inner = peek_forward_inner(view);
    if (!inner.ok()) return out.status = inner.status;
    const ForwardPrefix prefix = peek_forward_prefix(view);
    if (view.version >= 6 &&
        (view.body[0] & ~(kForwardServeHereBit | kForwardHopsMask)) != 0) {
      return out.status = DecodeStatus::kBadField;
    }
    const std::size_t skip = view.version >= 6 ? kForwardPrefixV6 : 1;
    out.forward_inner.assign(view.body.begin() + skip, view.body.end());
    out.consumed = view.consumed;
    out.is_forward = true;
    out.forward_hops = prefix.hops;
    out.forward_serve_here = prefix.serve_here;
    out.forward_ring_epoch = prefix.ring_epoch;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kSliceSync) {
    SliceSyncRequest rq;
    rq.seq = r.u64();
    rq.ring_epoch = r.u64();
    rq.cursor = r.u32();
    rq.max_records = r.u32();
    rq.if_newer_than_us = r.i64();
    if (rq.max_records == 0 || rq.max_records > kMaxSliceRecords) {
      r.fail(DecodeStatus::kBadField);
    }
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_slice_sync = true;
    out.slice_sync = rq;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kSliceSyncReply) {
    out.slice_records.clear();
    const std::uint64_t seq = r.u64();
    const std::uint64_t ring_epoch = r.u64();
    const std::uint8_t status = r.u8();
    const std::uint32_t next_cursor = r.u32();
    const std::uint32_t n = r.u32();
    if (status > kSliceNotReady) return out.status = DecodeStatus::kBadField;
    if (n > kMaxSliceRecords) return out.status = DecodeStatus::kBadField;
    for (std::uint32_t i = 0; i < n; ++i) {
      SliceRecord rec;
      rec.object = r.u32();
      rec.value = r.i64();
      rec.version = r.u64();
      rec.alpha_us = r.i64();
      rec.writer = r.u32();
      rec.request_id = r.u64();
      if (r.status() != DecodeStatus::kOk) break;
      out.slice_records.push_back(rec);
    }
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_slice_sync_reply = true;
    out.slice_seq = seq;
    out.slice_ring_epoch = ring_epoch;
    out.slice_status = status;
    out.slice_next_cursor = next_cursor;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kRingUpdate) {
    out.ring_members.clear();
    const std::uint64_t ring_epoch = r.u64();
    const std::uint32_t n = r.u32();
    if (n > kMaxMembers) return out.status = DecodeStatus::kBadField;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t site = r.u32();
      if (r.status() != DecodeStatus::kOk) break;
      out.ring_members.push_back(site);
    }
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_ring_update = true;
    out.ring_update_epoch = ring_epoch;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kOverloaded) {
    Overloaded ov;
    ov.object = r.u32();
    ov.request_id = r.u64();
    ov.retry_after_us = r.i64();
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_overloaded = true;
    out.overloaded = ov;
    return out.status = DecodeStatus::kOk;
  }
  if (view.type == MsgType::kCacherSubscribe) {
    CacherSubscribe cs;
    cs.object = ObjectId{r.u32()};
    cs.cacher = SiteId{r.u32()};
    cs.mode = r.u8();
    if (cs.mode > 1) return out.status = DecodeStatus::kBadField;
    if (r.status() != DecodeStatus::kOk) return out.status = r.status();
    if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
    out.consumed = view.consumed;
    out.is_cacher_subscribe = true;
    out.cacher_subscribe = cs;
    return out.status = DecodeStatus::kOk;
  }
  Message m = decode_body(view.type, r);
  if (r.status() != DecodeStatus::kOk) return out.status = r.status();
  if (!r.exhausted()) return out.status = DecodeStatus::kTrailingBytes;
  out.consumed = view.consumed;
  out.message = std::move(m);
  return out.status = DecodeStatus::kOk;
}

DecodedFrame decode_frame(std::span<const std::uint8_t> buf) {
  DecodedFrame frame;
  decode_frame_view(peek_frame(buf), frame);
  return frame;
}

}  // namespace timedc::wire
