#include "net/reactor_group.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace timedc::net {

ReactorGroup::ReactorGroup(std::size_t reactors, SiteOwnerFn site_owner,
                           SimTime latency_bound)
    : site_owner_(std::move(site_owner)) {
  TIMEDC_ASSERT(reactors >= 1);
  TIMEDC_ASSERT(site_owner_ != nullptr);
  reactors_.reserve(reactors);
  for (std::size_t i = 0; i < reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->loop = std::make_unique<EventLoop>();
    r->transport = std::make_unique<TcpTransport>(*r->loop, latency_bound);
    reactors_.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < reactors; ++i) {
    reactors_[i]->transport->set_steering([this](SiteId to) -> TcpTransport* {
      const std::size_t owner = site_owner_(to);
      if (owner >= reactors_.size()) return nullptr;
      return reactors_[owner]->transport.get();
    });
  }
}

ReactorGroup::~ReactorGroup() {
  stop();
  // The fatal-dump registry must not outlive the recorders it points at.
  for (auto& r : reactors_) {
    if (r->flight != nullptr) unregister_flight_recorder(r->flight.get());
  }
}

void ReactorGroup::enable_observability(std::uint32_t site_base,
                                        std::size_t flight_capacity) {
  TIMEDC_ASSERT(!started_);
  if (hub_ == nullptr) hub_ = std::make_unique<StatsHub>();
  for (std::size_t i = 0; i < reactors_.size(); ++i) {
    Reactor& r = *reactors_[i];
    if (r.board == nullptr) {
      r.board = std::make_unique<StatsBoard>(
          site_base + static_cast<std::uint32_t>(i));
      hub_->add(r.board.get());
    }
    r.transport->set_stats_board(r.board.get());
    r.transport->set_stats_hub(hub_.get());
    if (flight_capacity > 0 && r.flight == nullptr) {
      r.flight = std::make_unique<FlightRecorder>(
          site_base + static_cast<std::uint32_t>(i), flight_capacity);
      register_flight_recorder(r.flight.get());
      r.transport->set_flight_recorder(r.flight.get());
    }
  }
}

std::uint16_t ReactorGroup::listen_shared(std::uint16_t port) {
  TIMEDC_ASSERT(!started_);
  shared_port_ = reactors_[0]->transport->listen(port, /*reuse_port=*/true);
  for (std::size_t i = 1; i < reactors_.size(); ++i) {
    const std::uint16_t p =
        reactors_[i]->transport->listen(shared_port_, /*reuse_port=*/true);
    TIMEDC_ASSERT(p == shared_port_);
  }
  return shared_port_;
}

void ReactorGroup::start(std::function<void(std::size_t)> on_thread_start) {
  TIMEDC_ASSERT(!started_);
  started_ = true;
  for (std::size_t i = 0; i < reactors_.size(); ++i) {
    Reactor* r = reactors_[i].get();
    r->thread = std::thread([r, i, on_thread_start]() {
      if (on_thread_start) on_thread_start(i);
      r->loop->run();
    });
  }
}

void ReactorGroup::stop() {
  if (!started_) return;
  started_ = false;
  // Connections must close on their own loop thread; wait for each close
  // to finish before stopping that loop.
  for (auto& r : reactors_) {
    std::atomic<bool> done{false};
    TcpTransport* t = r->transport.get();
    r->loop->post([t, &done]() {
      t->close_all();
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  for (auto& r : reactors_) r->loop->stop();
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
}

}  // namespace timedc::net
