// The real-socket Transport: wire-codec frames over non-blocking TCP,
// driven by one EventLoop.
//
// Hot path. Frames arrive as non-owning wire::FrameViews and decode into a
// per-transport scratch DecodedFrame; outgoing frames coalesce in per-
// connection send queues and flush once per loop tick with a single gather
// write (a tick-end hook); local deliveries batch the same way. In steady
// state — empty-timestamp TSC traffic — a request/reply round touches the
// allocator zero times. Multi-reactor servers run one TcpTransport per
// EventLoop on a shared SO_REUSEPORT port with object-hash connection
// steering (set_steering); each connection ends up wholly owned by the
// reactor that owns its sites, so reactors share no protocol state.
//
// Routing model. Every frame carries (from, to) site ids, so one TCP
// connection can multiplex any number of sites — the load generator runs
// hundreds of client sites over a handful of connections. Outgoing routes
// are configured with add_route(site -> host:port) and dialed lazily; for
// everything else the transport *learns* return paths: when a frame from
// site S arrives on connection C, replies addressed to S leave through C.
// A server therefore needs no client addresses at all, exactly like the
// sim Network needs none.
//
// Threading: all Transport methods are loop-thread only (the contract in
// net/transport.hpp); drive cross-thread work through EventLoop::post.
// Construction and destruction happen while the loop is not running.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/transport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/stats_board.hpp"

namespace timedc::net {

/// Where a supervised route currently stands. The state machine:
///
///   kConnecting --connect ok--> kHealthy --close/liveness--> kBackoff
///   kConnecting --timeout/refused--> kBackoff --delay--> kConnecting
///   kBackoff/kConnecting --dead_after_failures consecutive--> kDead
///   kDead --probe every backoff_cap--> kConnecting
///
/// The consecutive-failure counter resets only on the first frame *received*
/// from the peer (proof of liveness), never on a bare connect success — a
/// black-holing peer that accepts and then says nothing must still go kDead.
enum class ConnectionState : std::uint8_t {
  kConnecting = 0,
  kHealthy = 1,
  kBackoff = 2,
  kDead = 3,
};

const char* to_cstring(ConnectionState s);

/// Reconnect/heartbeat policy for routed peers. Off by default: with
/// enabled=false the transport behaves exactly like the pre-supervision
/// lazy-dial code path.
struct SupervisionConfig {
  bool enabled = false;
  /// A non-blocking connect() still pending after this long is failed.
  SimTime dial_timeout = SimTime::millis(500);
  /// Reconnect backoff: base * 2^(failures-1), capped, then jittered by a
  /// uniform factor in [1-jitter, 1+jitter].
  SimTime backoff_base = SimTime::millis(50);
  SimTime backoff_cap = SimTime::seconds(2);
  double backoff_jitter = 0.25;
  /// Consecutive failures (without one received frame) before kDead.
  int dead_after_failures = 6;
  /// Ping cadence on healthy connections; also the liveness-check cadence.
  SimTime heartbeat_interval = SimTime::millis(200);
  /// No frame received for this long closes the connection as dead. Zero
  /// derives it from the transport's latency_upper_bound():
  ///   2 * heartbeat_interval + 2 * min(latency_bound, 1s)
  /// i.e. two missed ping/pong round trips — a known slice of the Delta
  /// budget rather than an unbounded TCP stall.
  SimTime liveness_timeout = SimTime::zero();
  /// Frames buffered per peer while not kHealthy; beyond it the oldest
  /// queued frame is dropped (the RPC retry layer re-issues it anyway).
  std::size_t max_queued_frames = 1024;
  /// Seed for backoff jitter.
  std::uint64_t seed = 0x7443;
};

struct TcpTransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t local_deliveries = 0;  // both endpoints on this transport
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dialed = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t decode_errors = 0;  // connections torn down by bad frames
  std::uint64_t unroutable = 0;     // frames dropped: no route to site
  /// Accepted connections handed to another reactor's transport because
  /// their first protocol frame addressed a site that reactor owns.
  std::uint64_t connections_steered_out = 0;
  /// Connections adopted from another reactor's accept.
  std::uint64_t connections_steered_in = 0;
  /// Batched local deliveries and tick-end gather flushes (coalescing:
  /// compare frames_sent with flush_syscalls).
  std::uint64_t batch_flushes = 0;
  /// Sum of every connection's sendmsg() calls, live and closed — with
  /// batching, frames_sent / flush_syscalls is the coalescing factor.
  /// Refreshed by TcpTransport::stats().
  std::uint64_t flush_syscalls = 0;
  /// decode_errors split by wire::DecodeStatus (index = status value); the
  /// stats bridge publishes these as net.decode_error.<status>.
  std::array<std::uint64_t, wire::kDecodeStatusCount> decode_errors_by_status{};
  // Supervision (all zero while SupervisionConfig.enabled is false):
  std::uint64_t reconnect_attempts = 0;  // re-dials after at least 1 failure
  std::uint64_t reconnects = 0;          // re-dials that reached kHealthy
  std::uint64_t dial_timeouts = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  // Clock synchronization (transport-level, like heartbeats):
  std::uint64_t time_requests_sent = 0;
  std::uint64_t time_requests_served = 0;
  std::uint64_t time_replies_received = 0;
  // Live introspection (transport-level, like heartbeats):
  std::uint64_t stats_requests_served = 0;
  std::uint64_t stats_replies_received = 0;
  // Cluster (all zero until enable_cluster()):
  std::uint64_t forwards_out = 0;   // requests wrapped in kForward and sent
  std::uint64_t forwards_in = 0;    // kForward frames unwrapped here
  std::uint64_t relayed = 0;        // frames relayed verbatim on a learned path
  std::uint64_t forward_hops_exceeded = 0;
  std::uint64_t membership_sent = 0;
  std::uint64_t membership_received = 0;
  std::uint64_t subscribes_sent = 0;
  std::uint64_t subscribes_received = 0;
  std::uint64_t liveness_expiries = 0;   // connections closed as silent
  std::uint64_t peers_marked_dead = 0;
  std::uint64_t frames_queued = 0;       // buffered while not kHealthy
  std::uint64_t frames_requeued = 0;     // flushed after a reconnect
  std::uint64_t frames_dropped_queue_full = 0;
  std::uint64_t frames_dropped_peer_dead = 0;
  // Self-healing (wire v6; all zero until the rebalance path is exercised):
  std::uint64_t stale_forwards = 0;      // kForward arrivals with an older ring epoch
  std::uint64_t ring_updates_sent = 0;   // kRingUpdate hints emitted
  std::uint64_t ring_updates_received = 0;
  std::uint64_t slice_sync_sent = 0;     // anti-entropy requests sent
  std::uint64_t slice_sync_served = 0;   // requests answered as donor
  std::uint64_t slice_sync_replies = 0;  // reply batches received
  std::uint64_t overloaded_sent = 0;     // admission-shed replies emitted
  std::uint64_t overloaded_received = 0;
  std::uint64_t members_purged = 0;      // gossip-dead purges (paths + queues)
  /// Current number of supervised peers in each ConnectionState
  /// (index = state value); refreshed by TcpTransport::stats().
  std::array<std::uint64_t, 4> peers_by_state{};
};

class TcpTransport final : public Transport {
 public:
  /// `latency_bound` is what latency_upper_bound() reports: the RPC layer
  /// budgets retry timeouts against it (default: no promise).
  explicit TcpTransport(EventLoop& loop,
                        SimTime latency_bound = SimTime::infinity());
  ~TcpTransport() override;

  /// Bind + listen on 127.0.0.1:`port` (0 picks an ephemeral port).
  /// Returns the bound port. With `reuse_port`, the socket is bound with
  /// SO_REUSEPORT so N reactors can share one port and the kernel shards
  /// accepts across them (the ReactorGroup's accept model).
  std::uint16_t listen(std::uint16_t port, bool reuse_port = false);

  /// Object-hash connection steering. When set, the first *protocol* frame
  /// on an accepted connection resolves the transport that owns the frame's
  /// destination site; if that is another reactor's transport, the fd and
  /// every buffered byte (current frame included) move there and all
  /// subsequent traffic is handled by the owner — one reactor per
  /// connection, no cross-thread state. Transport-internal frames
  /// (heartbeat, time-sync) are answered by whichever reactor accepted and
  /// never steer. Returning nullptr or `this` keeps the connection here.
  using SteeringFn = std::function<TcpTransport*(SiteId)>;
  void set_steering(SteeringFn fn) { steering_ = std::move(fn); }

  /// Adopt a steered-away connection (runs on this transport's loop via
  /// post from the steering reactor). `leftover` is every byte the
  /// releasing side had buffered, replayed as if freshly read.
  void adopt_steered(int fd, std::vector<std::uint8_t> leftover);

  /// Frames addressed to `site` go over a (lazily dialed) connection to
  /// host:port. Replaces any previous route for `site`.
  void add_route(SiteId site, std::string host, std::uint16_t port);

  /// Enable connection supervision (reconnect, heartbeats, liveness) for
  /// every routed site. Call before traffic flows; loop-thread only.
  void set_supervision(SupervisionConfig config);
  const SupervisionConfig& supervision() const { return supervision_; }

  /// The supervised state of the route to `site`. Unsupervised or unknown
  /// sites report kHealthy (optimistic, matching peer_reachable()).
  ConnectionState connection_state(SiteId site) const;

  /// Observe supervised state transitions: (site, old, new). For tests and
  /// tools; fired on the loop thread.
  using PeerStateHandler =
      std::function<void(SiteId, ConnectionState, ConnectionState)>;
  void set_peer_state_handler(PeerStateHandler h) {
    on_peer_state_ = std::move(h);
  }

  /// Observe kTimeReply frames addressed to this transport's sites. The
  /// first argument is the replying peer (the time server's site). One
  /// handler per transport: clock sync is per-process, not per-site.
  using TimeSyncHandler = std::function<void(SiteId, const wire::TimeSync&)>;
  void set_time_sync_handler(TimeSyncHandler h) {
    on_time_sync_ = std::move(h);
  }

  /// Send one clock-sync frame (ts.reply selects request vs reply). Returns
  /// false when no route/connection exists — the caller's round times out
  /// and its epsilon keeps widening, which is the intended degradation.
  /// Unlike send_message, nothing is queued: a delayed sync request would
  /// only yield a stale, wide-RTT sample.
  bool send_time_sync(SiteId from, SiteId to, const wire::TimeSync& ts);

  /// Shift the reference clock this transport serves to kTimeRequest
  /// frames: answers carry loop.now() + offset. Tests and experiments use
  /// it to emulate a skewed or authoritative time server.
  void set_time_source_offset(SimTime offset) { time_source_offset_ = offset; }
  SimTime time_source_offset() const { return time_source_offset_; }

  /// Attach this reactor's live stats board. The transport publishes its
  /// hot-path counters into the board at tick cadence and samples stage
  /// latencies 1-in-kStageSamplePeriod into its histograms. Set before the
  /// loop runs (or from the loop thread); the board must outlive the
  /// transport.
  void set_stats_board(StatsBoard* board);
  StatsBoard* stats_board() const { return stats_board_; }

  /// Attach the process-wide hub consulted when answering kStatsRequest
  /// frames, so one connection to any reactor can scrape every reactor —
  /// including a stalled one, whose board stays readable cross-thread.
  /// Without a hub, only the local board (if any) is reported.
  void set_stats_hub(const StatsHub* hub) { stats_hub_ = hub; }

  /// Attach this reactor's flight recorder: slow ticks, sampled stage
  /// latencies and stats scrapes are recorded behind its one-branch guard.
  void set_flight_recorder(FlightRecorder* recorder);
  FlightRecorder* flight_recorder() const { return flight_; }

  /// A loop iteration whose callbacks run longer than this counts as a
  /// slow tick (watchdog counter + flight-recorder event).
  void set_slow_tick_threshold(SimTime t) {
    slow_tick_threshold_us_ = t.as_micros();
  }

  /// Send one introspection poll. Same delivery contract as
  /// send_time_sync: nothing is queued, false when no usable connection.
  bool send_stats_request(SiteId from, SiteId to, const wire::StatsRequest& rq);

  /// Observe kStatsReply frames: (replying peer, seq, flattened rows).
  /// The rows alias decode scratch and die when the handler returns.
  using StatsReplyHandler = std::function<void(
      SiteId, std::uint64_t, std::span<const wire::StatsRow>)>;
  void set_stats_reply_handler(StatsReplyHandler h) {
    on_stats_reply_ = std::move(h);
  }

  /// Every kStageSamplePeriod-th frame pays two clock reads per stage to
  /// feed the board's stage histograms; the rest pay one counter bump.
  static constexpr std::uint64_t kStageSamplePeriod = 64;

  // --- cluster (wire v5) ---------------------------------------------------
  // A cluster-enabled transport turns N server processes into one object
  // space at the frame level, without the protocol layer noticing:
  //
  //   forward  A protocol request addressed to a site this process does not
  //            host, arriving over TCP or sent by a local ObjectServer that
  //            ruled itself non-owner, is wrapped verbatim in a kForward
  //            frame and sent over the supervised route to the owner. The
  //            inner frame keeps the original (client, request_id) header,
  //            so WAL dedup and reply routing work unchanged across hops.
  //   unwrap   On kForward receipt the inner frame dispatches as if it had
  //            arrived directly, and the transport learns inner-from ->
  //            this connection, so the reply to the client leaves through
  //            the forwarding server.
  //   relay    A frame addressed to a site with no local handler but a
  //            learned return path is copied verbatim onto that path (the
  //            reply's trip back through the forwarder).
  //
  // All three ride the regular FrameView/SendQueue batched path: wrapping
  // and relaying copy bytes into the per-connection send queue and add no
  // per-op allocation.

  /// A kForward whose hop counter reaches this is never re-wrapped: the
  /// frame falls through to the legacy send path (and a counter bumps), so
  /// transient ownership disagreement cannot loop frames forever.
  static constexpr std::uint8_t kMaxForwardHops = 3;

  /// Turn on forward wrapping, unwrapping and relaying. `self` names this
  /// process in outer cluster frame headers (gossip and forwards).
  void enable_cluster(SiteId self);
  bool cluster_enabled() const { return cluster_enabled_; }

  /// Eagerly start the supervised connection to `site` (no-op when already
  /// started, unsupervised, or unrouted). Cluster members call this at
  /// startup so heartbeats — and the membership gossip riding them — flow
  /// before any request traffic. Loop-thread only.
  void prime_supervised(SiteId site);

  /// Gossip digest source, polled at heartbeat cadence: fills epoch and
  /// entries (the vector is scratch, reused per call).
  using MembershipProvider =
      std::function<void(std::uint64_t&, std::vector<wire::MemberEntry>&)>;
  void set_membership_provider(MembershipProvider p) {
    membership_provider_ = std::move(p);
  }

  /// Observe received kMembership digests: (gossiping peer, epoch, sender's
  /// ring epoch, entries). Entries alias decode scratch and die when the
  /// handler returns. The ring epoch is 0 from a v5 peer.
  using MembershipHandler = std::function<void(
      SiteId, std::uint64_t, std::uint64_t, std::span<const wire::MemberEntry>)>;
  void set_membership_handler(MembershipHandler h) {
    on_membership_ = std::move(h);
  }

  // --- self-healing (wire v6) ----------------------------------------------

  /// Install the serving ring this transport stamps on outgoing kForward /
  /// kMembership frames and advertises in kRingUpdate hints. `epoch` is the
  /// cross-node ring epoch (the membership epoch captured at the last
  /// serving-set change; 0 = the configured baseline ring, for which no
  /// hints are ever sent) and `members` the serving member list the
  /// deterministic ring is rebuilt from. Loop-thread only.
  void set_ring(std::uint64_t epoch, std::span<const std::uint32_t> members);
  std::uint64_t ring_epoch() const { return ring_epoch_; }

  /// Satellite of the rebalance path: the moment gossip marks `site` DEAD,
  /// drop its learned return path and every pending-forward queue entry —
  /// today only connection death purges, so a gossip-confirmed-dead peer
  /// could keep accumulating queued forwards until the local supervision
  /// timer fired. Counted in frames_dropped_peer_dead + members_purged.
  void purge_member(SiteId site);

  /// Observe kRingUpdate hints: (sender, ring epoch, serving member list).
  /// The list aliases decode scratch and dies when the handler returns.
  using RingUpdateHandler =
      std::function<void(SiteId, std::uint64_t, std::span<const std::uint32_t>)>;
  void set_ring_update_handler(RingUpdateHandler h) {
    on_ring_update_ = std::move(h);
  }

  /// Serve a kSliceSync request as donor: fill `records`/`next_cursor` for
  /// (requester, request) and return the reply status byte (kSliceMore /
  /// kSliceDone / kSliceNotReady). The vector is scratch, reused per call.
  using SliceSyncServer = std::function<std::uint8_t(
      SiteId, const wire::SliceSyncRequest&, std::vector<wire::SliceRecord>&,
      std::uint32_t&)>;
  void set_slice_sync_server(SliceSyncServer fn) {
    slice_sync_server_ = std::move(fn);
  }

  /// Observe kSliceSyncReply batches: (donor, seq, donor ring epoch,
  /// status, next cursor, records). Records alias decode scratch.
  using SliceSyncReplyHandler = std::function<void(
      SiteId, std::uint64_t, std::uint64_t, std::uint8_t, std::uint32_t,
      std::span<const wire::SliceRecord>)>;
  void set_slice_sync_reply_handler(SliceSyncReplyHandler h) {
    on_slice_sync_reply_ = std::move(h);
  }

  /// Send one anti-entropy slice-sync request to the donor site. Same
  /// delivery contract as send_time_sync: nothing is queued, false when no
  /// usable connection — the warm-up driver retries on its own cadence.
  bool send_slice_sync(SiteId from, SiteId to, const wire::SliceSyncRequest& rq);

  /// Observe kOverloaded admission-shed replies addressed to local sites.
  using OverloadedHandler = std::function<void(SiteId, const wire::Overloaded&)>;
  void set_overloaded_handler(OverloadedHandler h) {
    on_overloaded_ = std::move(h);
  }

  /// Send one admission-shed reply toward `to` (a client site), over its
  /// learned return path or any open route. False when no path exists; the
  /// client's retry timer then covers exactly as if the reply were lost.
  bool send_overloaded(SiteId from, SiteId to, const wire::Overloaded& ov);

  /// Forward `m` to `donor` flagged serve-here: the donor must answer from
  /// local state even if its ring disagrees (the WARMING owner's
  /// forward-through; the flag is the loop breaker). `inner_from` is the
  /// original client, so the donor's reply relays back through here.
  bool forward_serve_here(SiteId inner_from, SiteId donor, const Message& m);

  // Transport:
  bool dispatch_serve_locally() const override { return dispatch_serve_here_; }

  /// Observe kCacherSubscribe frames: (frame destination site, request).
  /// The destination names the local shard owning the object.
  using CacherSubscribeHandler =
      std::function<void(SiteId, const wire::CacherSubscribe&)>;
  void set_cacher_subscribe_handler(CacherSubscribeHandler h) {
    on_cacher_subscribe_ = std::move(h);
  }

  /// Send one cacher registration to the owner site. Same delivery
  /// contract as send_time_sync: nothing is queued, false when no usable
  /// connection — subscriptions are re-sent on later forwards, so a drop
  /// only delays push propagation.
  bool send_cacher_subscribe(SiteId from, SiteId to,
                             const wire::CacherSubscribe& cs);

  /// Stop accepting new connections (existing ones keep running). Part of
  /// graceful drain; loop-thread only.
  void stop_listening();

  /// Close every connection and the listener. Loop-thread only; used for
  /// orderly shutdown before the loop stops. Disables reconnection.
  void close_all();

  // Transport:
  void register_site(SiteId self, MessageHandler handler) override;
  void send_message(SiteId from, SiteId to, Message m,
                    std::size_t bytes) override;
  SimTime now() const override { return loop_.now(); }
  void run_after(SimTime delay, std::function<void()> fn) override {
    loop_.run_after(delay, std::move(fn));
  }
  SimTime latency_upper_bound() const override { return latency_bound_; }
  bool requires_sequenced_requests() const override { return true; }
  bool peer_reachable(SiteId to) const override {
    return connection_state(to) != ConnectionState::kDead;
  }

  EventLoop& loop() { return loop_; }
  /// Refreshes the peers_by_state gauges, then returns the counters.
  const TcpTransportStats& stats() const;
  std::uint16_t listen_port() const { return listen_port_; }

 private:
  struct Route {
    std::string host;
    std::uint16_t port = 0;
  };

  struct QueuedFrame {
    SiteId from;
    SiteId to;
    Message message;
  };

  /// One supervised routed peer (exists only while supervision is enabled
  /// and traffic has touched the route).
  struct Peer {
    ConnectionState state = ConnectionState::kConnecting;
    Connection* conn = nullptr;
    /// Consecutive connection failures with no frame received in between.
    int failures = 0;
    /// Bumped on every dial/backoff so stale timers recognise themselves.
    std::uint64_t generation = 0;
    std::uint64_t next_hb_seq = 1;
    std::int64_t last_rx_us = 0;  // loop_.now() at the last received frame
    std::deque<QueuedFrame> queue;
  };

  void accept_ready();
  Connection* adopt(std::shared_ptr<Connection> conn,
                    bool steer_candidate = false);
  void on_frame(Connection& conn, const wire::FrameView& view);
  /// Dispatch one kOk protocol view to its handler, or — cluster mode —
  /// relay/forward it. `hops` is the wrapping depth the frame arrived with
  /// (0 for direct arrivals); it propagates into re-forwards.
  void dispatch_protocol(Connection& conn, const wire::FrameView& view,
                         std::uint8_t hops);
  /// Cluster fallback for a protocol view with no local handler: relay on a
  /// learned path, or wrap in kForward toward the supervised peer hosting
  /// view.to. Returns false when neither applies (caller counts
  /// unroutable).
  bool relay_or_forward(Connection& conn, const wire::FrameView& view,
                        std::uint8_t hops);
  /// Send `m` on `conn` — wrapped in kForward when cluster mode is on and
  /// the message is a request being sent on another site's behalf
  /// (reply_to != from), i.e. a local server forwarding a client request.
  void emit_or_wrap(Connection* conn, SiteId from, SiteId to,
                    const Message& m);
  void steer(Connection& conn, TcpTransport& owner);
  void on_close(Connection& conn, const char* reason);
  /// Drop a connection's pending deferred work (dirty-flush entries): its
  /// deferred destruction runs in drain_posted, *before* the tick-end hook,
  /// so a stale pointer there would dangle.
  void forget_pending(Connection* conn);
  void release_conn(Connection& conn);  // deferred-destruction handoff
  /// Lazily register the tick-end hook (loop-thread only).
  void ensure_tick_hook();
  /// The batching point: apply queued local deliveries (draining anything
  /// they enqueue in turn), then gather-flush every dirty connection once.
  void on_tick_end();
  /// Build and send a kStatsReply for `rq` on `conn` (from the hub when
  /// set, else the local board; zero boards when neither).
  void answer_stats(Connection& conn, SiteId from, SiteId to,
                    const wire::StatsRequest& rq);
  /// Tick-cadence bookkeeping: watchdog accounting plus publishing the
  /// transport counters into the stats board.
  void observe_tick();
  /// The connection frames to `to` should use: learned peer, open route
  /// connection, or a fresh dial. Null when unroutable.
  Connection* connection_to(SiteId to);
  /// Send `client` a kRingUpdate over its learned path, once per serving
  /// ring epoch (no-op on the baseline ring or when already hinted).
  void maybe_hint_ring(SiteId client);
  Connection* dial(const Route& route, SiteId site);

  // Supervision internals (loop-thread only):
  void supervised_send(SiteId from, SiteId to, Message m);
  void enqueue_frame(Peer& peer, SiteId from, SiteId to, Message m);
  void start_dial(SiteId site);
  void on_supervised_connected(SiteId site);
  void on_supervised_close(SiteId site, Connection& conn);
  void schedule_backoff(SiteId site);
  void schedule_heartbeat(SiteId site, std::uint64_t generation);
  void transition(SiteId site, Peer& peer, ConnectionState next);
  SimTime liveness_timeout() const;

  EventLoop& loop_;
  SimTime latency_bound_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::unordered_map<std::uint32_t, MessageHandler> handlers_;
  std::unordered_map<std::uint32_t, Route> routes_;
  // Where frames addressed to a site currently leave (dialed or learned).
  std::unordered_map<std::uint32_t, Connection*> peer_conn_;
  std::unordered_map<Connection*, std::shared_ptr<Connection>> conns_;

  SupervisionConfig supervision_;
  std::unordered_map<std::uint32_t, Peer> peers_;
  // Reverse map: which supervised site a dialed connection belongs to.
  std::unordered_map<const Connection*, std::uint32_t> conn_site_;
  PeerStateHandler on_peer_state_;
  TimeSyncHandler on_time_sync_;

  // Cluster state (loop-thread only):
  bool cluster_enabled_ = false;
  SiteId cluster_self_{0};
  MembershipProvider membership_provider_;
  MembershipHandler on_membership_;
  CacherSubscribeHandler on_cacher_subscribe_;
  /// Hop depth of the kForward currently being dispatched (0 outside a
  /// dispatch): a handler that re-sends the request mid-dispatch inherits
  /// it, so re-forwards count against kMaxForwardHops.
  std::uint8_t dispatch_hops_ = 0;
  /// Gossip digest scratch, refilled per heartbeat (no steady-state
  /// allocation once capacity settles).
  std::vector<wire::MemberEntry> membership_scratch_;

  // Self-healing state (loop-thread only):
  std::uint64_t ring_epoch_ = 0;
  /// Serving member list behind ring_epoch_, advertised in kRingUpdate.
  std::vector<std::uint32_t> ring_members_;
  /// True only while dispatching a serve-here kForward's inner frame.
  bool dispatch_serve_here_ = false;
  RingUpdateHandler on_ring_update_;
  SliceSyncServer slice_sync_server_;
  SliceSyncReplyHandler on_slice_sync_reply_;
  OverloadedHandler on_overloaded_;
  /// Slice-record scratch for serving sync requests (reused per request).
  std::vector<wire::SliceRecord> slice_scratch_;
  /// Ring epoch last hinted per client site: one kRingUpdate per client per
  /// epoch, not one per misrouted request.
  std::unordered_map<std::uint32_t, std::uint64_t> ring_hinted_;
  SimTime time_source_offset_ = SimTime::zero();
  Rng backoff_rng_;
  bool shutting_down_ = false;

  // Batching state (loop-thread only):
  struct LocalDelivery {
    SiteId from;
    SiteId to;
    Message message;
  };
  std::vector<LocalDelivery> pending_local_;
  std::vector<LocalDelivery> local_batch_;  // reused swap target
  /// Connections with queued output awaiting the tick-end gather flush.
  std::vector<Connection*> dirty_conns_;
  std::vector<Connection*> flushing_;  // reused swap target
  EventLoop::HookId tick_hook_id_ = 0;
  bool tick_hook_registered_ = false;

  // Steering state (loop-thread only):
  SteeringFn steering_;
  /// Accepted connections whose first protocol frame has not arrived yet —
  /// the only ones eligible to steer (a steered-in connection never
  /// re-steers).
  std::unordered_set<const Connection*> steer_candidates_;

  /// Per-transport decode scratch: frame bodies decode into this reused
  /// DecodedFrame, so steady-state receive dispatch never allocates.
  wire::DecodedFrame scratch_frame_;

  mutable TcpTransportStats stats_;
  /// flush_syscalls of connections already released (stats() adds the live
  /// ones on top).
  std::uint64_t closed_flush_syscalls_ = 0;

  // Observability wiring (loop-thread writers; boards readable anywhere):
  StatsBoard* stats_board_ = nullptr;
  const StatsHub* stats_hub_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  StatsReplyHandler on_stats_reply_;
  std::int64_t slow_tick_threshold_us_ = 20000;
  std::uint64_t ticks_ = 0;
  std::uint64_t slow_ticks_ = 0;
  std::int64_t max_tick_us_ = 0;
  std::uint64_t stage_samples_rx_ = 0;  // frames seen, for 1-in-N sampling
  std::uint64_t stage_samples_tx_ = 0;
  /// Stats-reply build scratch (reused: scrapes do not allocate in steady
  /// state once capacities settle).
  std::vector<StatsEntry> stats_scratch_;
  std::vector<wire::StatsBoardSpan> stats_spans_;
};

}  // namespace timedc::net
