// The real-socket Transport: wire-codec frames over non-blocking TCP,
// driven by one EventLoop.
//
// Routing model. Every frame carries (from, to) site ids, so one TCP
// connection can multiplex any number of sites — the load generator runs
// hundreds of client sites over a handful of connections. Outgoing routes
// are configured with add_route(site -> host:port) and dialed lazily; for
// everything else the transport *learns* return paths: when a frame from
// site S arrives on connection C, replies addressed to S leave through C.
// A server therefore needs no client addresses at all, exactly like the
// sim Network needs none.
//
// Threading: all Transport methods are loop-thread only (the contract in
// net/transport.hpp); drive cross-thread work through EventLoop::post.
// Construction and destruction happen while the loop is not running.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/transport.hpp"

namespace timedc::net {

struct TcpTransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t local_deliveries = 0;  // both endpoints on this transport
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dialed = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t decode_errors = 0;  // connections torn down by bad frames
  std::uint64_t unroutable = 0;     // frames dropped: no route to site
};

class TcpTransport final : public Transport {
 public:
  /// `latency_bound` is what latency_upper_bound() reports: the RPC layer
  /// budgets retry timeouts against it (default: no promise).
  explicit TcpTransport(EventLoop& loop,
                        SimTime latency_bound = SimTime::infinity());
  ~TcpTransport() override;

  /// Bind + listen on 127.0.0.1:`port` (0 picks an ephemeral port).
  /// Returns the bound port.
  std::uint16_t listen(std::uint16_t port);

  /// Frames addressed to `site` go over a (lazily dialed) connection to
  /// host:port. Replaces any previous route for `site`.
  void add_route(SiteId site, std::string host, std::uint16_t port);

  /// Close every connection and the listener. Loop-thread only; used for
  /// orderly shutdown before the loop stops.
  void close_all();

  // Transport:
  void register_site(SiteId self, MessageHandler handler) override;
  void send_message(SiteId from, SiteId to, Message m,
                    std::size_t bytes) override;
  SimTime now() const override { return loop_.now(); }
  void run_after(SimTime delay, std::function<void()> fn) override {
    loop_.run_after(delay, std::move(fn));
  }
  SimTime latency_upper_bound() const override { return latency_bound_; }
  bool requires_sequenced_requests() const override { return true; }

  EventLoop& loop() { return loop_; }
  const TcpTransportStats& stats() const { return stats_; }
  std::uint16_t listen_port() const { return listen_port_; }

 private:
  struct Route {
    std::string host;
    std::uint16_t port = 0;
  };

  void accept_ready();
  void adopt(std::shared_ptr<Connection> conn);
  void on_frame(Connection& conn, wire::DecodedFrame& frame);
  void on_close(Connection& conn, const char* reason);
  /// The connection frames to `to` should use: learned peer, open route
  /// connection, or a fresh dial. Null when unroutable.
  Connection* connection_to(SiteId to);
  Connection* dial(const Route& route, SiteId site);

  EventLoop& loop_;
  SimTime latency_bound_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  std::unordered_map<std::uint32_t, MessageHandler> handlers_;
  std::unordered_map<std::uint32_t, Route> routes_;
  // Where frames addressed to a site currently leave (dialed or learned).
  std::unordered_map<std::uint32_t, Connection*> peer_conn_;
  std::unordered_map<Connection*, std::shared_ptr<Connection>> conns_;
  TcpTransportStats stats_;
};

}  // namespace timedc::net
