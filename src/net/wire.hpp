// The binary wire codec: length-prefixed, versioned framing for every
// protocol message in src/protocol/messages.hpp.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x5443 ("TC")
//   2       1     codec version (kVersion)
//   3       1     message type (MsgType)
//   4       4     from site id
//   8       4     to site id
//   12      4     body length in bytes (<= kMaxBodyBytes)
//   16      n     body (per-type field layout, see wire.cpp)
//
// The (from, to) routing header is what lets one TCP connection multiplex
// many client sites (the load generator) and lets a server reply over
// whichever connection the request arrived on.
//
// Decoding is strict and bounds-checked: a decoder never reads past the
// supplied buffer, never allocates more than the buffer could justify, and
// classifies every malformed input as a typed DecodeStatus instead of
// crashing — the property test in tests/wire_test.cpp sweeps truncations,
// corrupted length fields and random byte flips over every message type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "protocol/messages.hpp"

namespace timedc::wire {

inline constexpr std::uint16_t kMagic = 0x5443;  // "TC"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
/// Upper bound on a frame body. Generous: the largest legitimate message is
/// an ObjectCopy with two kMaxClockEntries-wide timestamps (~64 KiB).
inline constexpr std::uint32_t kMaxBodyBytes = 1u << 20;
/// Upper bound on PlausibleTimestamp width accepted off the wire; a forged
/// count can then never force a large allocation or a long copy loop.
inline constexpr std::uint32_t kMaxClockEntries = 4096;

enum class MsgType : std::uint8_t {
  kFetchRequest = 1,
  kFetchReply = 2,
  kWriteRequest = 3,
  kWriteAck = 4,
  kValidateRequest = 5,
  kValidateReply = 6,
  kInvalidate = 7,
  kPushUpdate = 8,
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,        // buffer holds a valid prefix; wait for more bytes
  kBadMagic,        // not a frame boundary — the stream is corrupt
  kBadVersion,      // peer speaks a different codec version
  kBadType,         // unknown MsgType
  kOversizedBody,   // declared body length exceeds kMaxBodyBytes
  kOversizedClock,  // timestamp entry count exceeds kMaxClockEntries
  kShortBody,       // body ended before the message's fields did
  kTrailingBytes,   // body longer than the message's fields
  kBadField,        // a field holds an illegal value (e.g. bool not 0/1)
};

const char* to_cstring(DecodeStatus s);

/// Append one encoded frame carrying `m` routed from -> to onto `out`.
void encode_frame(SiteId from, SiteId to, const Message& m,
                  std::vector<std::uint8_t>& out);

/// The exact number of bytes encode_frame appends for `m`.
std::size_t encoded_frame_size(const Message& m);

struct DecodedFrame {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // frame bytes to drop from the buffer when kOk
  SiteId from;
  SiteId to;
  Message message;

  bool ok() const { return status == DecodeStatus::kOk; }
};

/// Try to decode one frame from the front of `buf`. kNeedMore means the
/// buffer is a valid proper prefix (read more and retry); every other
/// non-kOk status is a permanent protocol error for this stream.
DecodedFrame decode_frame(std::span<const std::uint8_t> buf);

}  // namespace timedc::wire
