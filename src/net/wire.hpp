// The binary wire codec: length-prefixed, versioned framing for every
// protocol message in src/protocol/messages.hpp.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x5443 ("TC")
//   2       1     codec version (kVersion)
//   3       1     message type (MsgType)
//   4       4     from site id
//   8       4     to site id
//   12      4     body length in bytes (<= kMaxBodyBytes)
//   16      n     body (per-type field layout, see wire.cpp)
//
// The (from, to) routing header is what lets one TCP connection multiplex
// many client sites (the load generator) and lets a server reply over
// whichever connection the request arrived on.
//
// Decoding is strict and bounds-checked: a decoder never reads past the
// supplied buffer, never allocates more than the buffer could justify, and
// classifies every malformed input as a typed DecodeStatus instead of
// crashing — the property test in tests/wire_test.cpp sweeps truncations,
// corrupted length fields and random byte flips over every message type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "obs/stats_board.hpp"
#include "protocol/messages.hpp"

namespace timedc::wire {

inline constexpr std::uint16_t kMagic = 0x5443;  // "TC"
/// Current codec version. Version 2 added the transport-level Heartbeat
/// frame; version 3 added the TimeRequest/TimeReply clock-synchronization
/// frames; version 4 added the StatsRequest/StatsReply introspection
/// frames; version 5 added the cluster frames (Membership gossip, Forward
/// wrapping, CacherSubscribe). Every older frame is still accepted
/// unchanged (the version byte gates which MsgTypes are legal, not the
/// field layouts, which are identical across all versions).
inline constexpr std::uint8_t kVersion = 5;
/// Oldest codec version this decoder still accepts.
inline constexpr std::uint8_t kMinVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
/// Upper bound on a frame body. Generous: the largest legitimate message is
/// an ObjectCopy with two kMaxClockEntries-wide timestamps (~64 KiB).
inline constexpr std::uint32_t kMaxBodyBytes = 1u << 20;
/// Upper bound on PlausibleTimestamp width accepted off the wire; a forged
/// count can then never force a large allocation or a long copy loop.
inline constexpr std::uint32_t kMaxClockEntries = 4096;

enum class MsgType : std::uint8_t {
  kFetchRequest = 1,
  kFetchReply = 2,
  kWriteRequest = 3,
  kWriteAck = 4,
  kValidateRequest = 5,
  kValidateReply = 6,
  kInvalidate = 7,
  kPushUpdate = 8,
  /// Transport-level liveness probe (codec version >= 2). Never surfaced to
  /// the protocol layer: TcpTransport answers pings and consumes pongs
  /// itself, so `Message` stays exactly the eight protocol types.
  kHeartbeat = 9,
  /// Transport-level Cristian clock-sync exchange (codec version >= 3).
  /// Like heartbeats, these never reach the protocol layer: TcpTransport
  /// answers requests with its reference time and hands replies to the
  /// registered TimeSyncClient.
  kTimeRequest = 10,
  kTimeReply = 11,
  /// Transport-level live introspection (codec version >= 4). A request
  /// names one reactor site (or kAllSites); the answering transport replies
  /// from its lock-free StatsBoard/StatsHub snapshot without involving the
  /// protocol layer — like heartbeats, these frames never reach handlers.
  kStatsRequest = 12,
  kStatsReply = 13,
  /// Cluster frames (codec version >= 5). kMembership carries one node's
  /// gossip digest (epoch + member incarnations), piggybacked on the
  /// supervision heartbeat cadence. kForward wraps one complete protocol
  /// frame — header and body verbatim — plus a hop counter, so a server
  /// can hand a request for a non-owned object to the owner while
  /// preserving the original (client, request_id) routing header the
  /// owner's WAL dedup and reply path need. kCacherSubscribe registers the
  /// sending server as a cacher of one object at its owner (Section 5.2
  /// push propagation). All three are transport-level: they never surface
  /// as a protocol Message.
  kMembership = 14,
  kForward = 15,
  kCacherSubscribe = 16,
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,        // buffer holds a valid prefix; wait for more bytes
  kBadMagic,        // not a frame boundary — the stream is corrupt
  kBadVersion,      // peer speaks a different codec version
  kBadType,         // unknown MsgType
  kOversizedBody,   // declared body length exceeds kMaxBodyBytes
  kOversizedClock,  // timestamp entry count exceeds kMaxClockEntries
  kShortBody,       // body ended before the message's fields did
  kTrailingBytes,   // body longer than the message's fields
  kBadField,        // a field holds an illegal value (e.g. bool not 0/1)
};

/// Number of DecodeStatus values, for per-status counter arrays.
inline constexpr std::size_t kDecodeStatusCount =
    static_cast<std::size_t>(DecodeStatus::kBadField) + 1;

/// Inline so header-only consumers (the stats bridge names its
/// net.decode_error.<status> counters with this) need not link timedc_net.
inline const char* to_cstring(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kOversizedBody: return "oversized-body";
    case DecodeStatus::kOversizedClock: return "oversized-clock";
    case DecodeStatus::kShortBody: return "short-body";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
    case DecodeStatus::kBadField: return "bad-field";
  }
  return "unknown";
}

/// Transport-level liveness probe carried in a kHeartbeat frame. `reply`
/// distinguishes ping (false) from pong (true); a pong echoes the ping's
/// seq and send_time_us so the sender can match it and measure RTT.
struct Heartbeat {
  std::uint64_t seq = 0;
  std::int64_t send_time_us = 0;
  bool reply = false;
};

/// One leg of a Cristian clock-sync exchange, carried in a kTimeRequest or
/// kTimeReply frame (`reply` selects the MsgType). The client stamps
/// client_send_us from its own hardware clock; the server echoes seq and
/// client_send_us and fills server_time_us with its reference clock, so the
/// client can pair the reply and compute RTT without per-request state.
struct TimeSync {
  std::uint64_t seq = 0;
  std::int64_t client_send_us = 0;
  std::int64_t server_time_us = 0;  // meaningful in replies only
  bool reply = false;
};

/// `target_site` sentinel in a StatsRequest: report every board the
/// answering process registered in its StatsHub.
inline constexpr std::uint32_t kAllSites = 0xffffffffu;
/// Forged-count ceilings for StatsReply decoding: a hostile header can
/// never force a large allocation.
inline constexpr std::uint32_t kMaxStatsBoards = 64;    // = StatsHub capacity
inline constexpr std::uint32_t kMaxStatsEntries = 512;  // >= kNumStatKeys

/// Introspection poll carried in a kStatsRequest frame. The server echoes
/// seq in its reply so a poller can match request/response without state.
struct StatsRequest {
  std::uint64_t seq = 0;
  std::uint32_t target_site = kAllSites;
};

/// Forged-count ceiling for kMembership decoding; matches the cluster
/// size bound a single gossip digest may describe.
inline constexpr std::uint32_t kMaxMembers = 64;

/// One member row of a kMembership gossip digest. `incarnation` is the
/// member's monotonically increasing liveness counter (a restarted process
/// announces a higher incarnation, which dominates any stale suspicion);
/// `status` is 0 = alive, 1 = suspect, 2 = dead.
struct MemberEntry {
  std::uint32_t site = 0;
  std::uint64_t incarnation = 0;
  std::uint8_t status = 0;

  friend bool operator==(const MemberEntry&, const MemberEntry&) = default;
};

/// Cacher registration carried in a kCacherSubscribe frame: the sending
/// server asks the owner of `object` to push writes to `cacher` from now
/// on. `mode` is 0 = invalidate (mark-old; the cacher revalidates with an
/// if-modified-since ValidateRequest) or 1 = update (ship the new copy).
struct CacherSubscribe {
  ObjectId object;
  SiteId cacher;
  std::uint8_t mode = 0;

  friend bool operator==(const CacherSubscribe&,
                         const CacherSubscribe&) = default;
};

/// One decoded row of a kStatsReply body: board site, StatKey, value. The
/// body groups rows per board on the wire; decoding flattens them (site
/// repeats) into a scratch-reused vector.
struct StatsRow {
  std::uint32_t site = 0;
  std::uint16_t key = 0;
  std::int64_t value = 0;

  friend bool operator==(const StatsRow&, const StatsRow&) = default;
};

/// One board's entries for encode_stats_reply_frame.
struct StatsBoardSpan {
  std::uint32_t site = 0;
  std::span<const StatsEntry> entries;
};

/// Append one encoded frame carrying `m` routed from -> to onto `out`.
void encode_frame(SiteId from, SiteId to, const Message& m,
                  std::vector<std::uint8_t>& out);

/// Append one encoded kHeartbeat frame onto `out`.
void encode_heartbeat_frame(SiteId from, SiteId to, const Heartbeat& hb,
                            std::vector<std::uint8_t>& out);

/// Append one encoded kTimeRequest/kTimeReply frame (per ts.reply) onto
/// `out`.
void encode_time_sync_frame(SiteId from, SiteId to, const TimeSync& ts,
                            std::vector<std::uint8_t>& out);

/// Append one encoded kStatsRequest frame onto `out`.
void encode_stats_request_frame(SiteId from, SiteId to,
                                const StatsRequest& rq,
                                std::vector<std::uint8_t>& out);

/// Append one encoded kStatsReply frame carrying `boards` onto `out`.
/// Board and entry counts must respect kMaxStatsBoards/kMaxStatsEntries.
void encode_stats_reply_frame(SiteId from, SiteId to, std::uint64_t seq,
                              std::span<const StatsBoardSpan> boards,
                              std::vector<std::uint8_t>& out);

/// Append one encoded kMembership frame onto `out`. Member count must
/// respect kMaxMembers.
void encode_membership_frame(SiteId from, SiteId to, std::uint64_t epoch,
                             std::span<const MemberEntry> members,
                             std::vector<std::uint8_t>& out);

/// Append one encoded kForward frame wrapping `inner` (re-encoded with the
/// given inner routing header) onto `out`. The inner from-site should be
/// the original client so the owner's transport learns the return path.
void encode_forward_frame(SiteId from, SiteId to, std::uint8_t hops,
                          SiteId inner_from, SiteId inner_to,
                          const Message& inner,
                          std::vector<std::uint8_t>& out);

/// Append one encoded kForward frame wrapping `inner_frame` — one already
/// encoded, complete protocol frame, copied verbatim — onto `out`. This is
/// the zero-decode path: a transport that holds a FrameView of a misrouted
/// request wraps its bytes without materializing the message.
void encode_forward_frame_raw(SiteId from, SiteId to, std::uint8_t hops,
                              std::span<const std::uint8_t> inner_frame,
                              std::vector<std::uint8_t>& out);

/// Append one encoded kCacherSubscribe frame onto `out`.
void encode_cacher_subscribe_frame(SiteId from, SiteId to,
                                   const CacherSubscribe& cs,
                                   std::vector<std::uint8_t>& out);

/// The exact number of bytes encode_frame appends for `m`.
std::size_t encoded_frame_size(const Message& m);

struct DecodedFrame {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // frame bytes to drop from the buffer when kOk
  SiteId from;
  SiteId to;
  Message message;
  /// Set for kHeartbeat frames; `message` is then a default FetchRequest
  /// and must not be interpreted.
  bool is_heartbeat = false;
  Heartbeat heartbeat;
  /// Set for kTimeRequest/kTimeReply frames; `message` is likewise inert.
  bool is_time_sync = false;
  TimeSync time_sync;
  /// Set for kStatsRequest frames.
  bool is_stats_request = false;
  StatsRequest stats_request;
  /// Set for kStatsReply frames; rows are flattened per board into the
  /// scratch-reused stats_rows (site repeats across a board's rows).
  bool is_stats_reply = false;
  std::uint64_t stats_seq = 0;
  std::uint32_t stats_boards = 0;
  std::vector<StatsRow> stats_rows;
  /// Set for kMembership frames; members reuses its storage across decodes.
  bool is_membership = false;
  std::uint64_t membership_epoch = 0;
  std::vector<MemberEntry> members;
  /// Set for kForward frames: forward_inner holds the wrapped frame's bytes
  /// (header + body, themselves a valid protocol frame), scratch-reused.
  /// The hot path never takes this copy — it peeks the inner frame straight
  /// out of the view body — but owning decodes (tests, offline tools) do.
  bool is_forward = false;
  std::uint8_t forward_hops = 0;
  std::vector<std::uint8_t> forward_inner;
  /// Set for kCacherSubscribe frames.
  bool is_cacher_subscribe = false;
  CacherSubscribe cacher_subscribe;

  bool ok() const { return status == DecodeStatus::kOk; }
};

/// Try to decode one frame from the front of `buf`. kNeedMore means the
/// buffer is a valid proper prefix (read more and retry); every other
/// non-kOk status is a permanent protocol error for this stream.
DecodedFrame decode_frame(std::span<const std::uint8_t> buf);

/// A non-owning view of one wire frame sitting in a receive buffer. Only
/// the 16-byte header has been validated; `body` aliases the buffer the
/// view was peeked from and is valid exactly as long as those bytes stay
/// put — the hot path hands views to handlers and recycles the buffer when
/// the handler returns (DESIGN.md section 11 states the lifetime rule).
///
/// peek_frame() costs a header validation and no allocation, so transport-
/// level routing (dispatch, connection steering) can act on (from, to,
/// type) without materializing the message; decode_frame_view() then does
/// the typed body decode on demand, into a caller-reused DecodedFrame.
struct FrameView {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // header + body bytes when kOk
  SiteId from;
  SiteId to;
  MsgType type = MsgType::kFetchRequest;  // meaningful when kOk
  std::span<const std::uint8_t> body;

  bool ok() const { return status == DecodeStatus::kOk; }
  /// True for the eight protocol message types (the ones surfaced to
  /// Transport handlers); false for transport-internal frames.
  bool is_protocol() const {
    return type >= MsgType::kFetchRequest && type <= MsgType::kPushUpdate;
  }
};

/// Validate the header of the frame at the front of `buf` without decoding
/// its body. Status semantics match decode_frame for every header-stage
/// outcome (kNeedMore/kBadMagic/kBadVersion/kBadType/kOversizedBody);
/// body-stage errors are only found by decode_frame_view.
FrameView peek_frame(std::span<const std::uint8_t> buf);

/// The complete on-wire bytes (header + body) of a kOk view. Valid exactly
/// as long as the buffer the view was peeked from stays put: the body span
/// aliases that buffer and the header is the kHeaderBytes preceding it.
inline std::span<const std::uint8_t> frame_bytes(const FrameView& view) {
  return {view.body.data() - kHeaderBytes, view.consumed};
}

/// Peek the protocol frame wrapped inside a kOk kForward view, straight out
/// of the outer body (no copy). Returns a kBadField view when the outer
/// body is empty, the inner bytes are not one complete frame filling the
/// remainder, or the inner type is not a protocol message (forwarding never
/// nests and never wraps transport frames).
FrameView peek_forward_inner(const FrameView& outer);

/// Decode the typed body of a kOk view into `out`, reusing out's storage
/// (a per-connection scratch DecodedFrame keeps the hot path free of
/// per-message allocation: every protocol message whose timestamps are
/// empty — all TSC traffic — decodes without touching the heap). Returns
/// out.status. The composition decode_frame_view(peek_frame(buf)) yields
/// exactly decode_frame(buf)'s status, fields and consumed count; the
/// property test in tests/wire_test.cpp holds the two paths equal.
DecodeStatus decode_frame_view(const FrameView& view, DecodedFrame& out);

}  // namespace timedc::wire
