// The binary wire codec: length-prefixed, versioned framing for every
// protocol message in src/protocol/messages.hpp.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x5443 ("TC")
//   2       1     codec version (kVersion)
//   3       1     message type (MsgType)
//   4       4     from site id
//   8       4     to site id
//   12      4     body length in bytes (<= kMaxBodyBytes)
//   16      n     body (per-type field layout, see wire.cpp)
//
// The (from, to) routing header is what lets one TCP connection multiplex
// many client sites (the load generator) and lets a server reply over
// whichever connection the request arrived on.
//
// Decoding is strict and bounds-checked: a decoder never reads past the
// supplied buffer, never allocates more than the buffer could justify, and
// classifies every malformed input as a typed DecodeStatus instead of
// crashing — the property test in tests/wire_test.cpp sweeps truncations,
// corrupted length fields and random byte flips over every message type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "obs/stats_board.hpp"
#include "protocol/messages.hpp"

namespace timedc::wire {

inline constexpr std::uint16_t kMagic = 0x5443;  // "TC"
/// Current codec version. Version 2 added the transport-level Heartbeat
/// frame; version 3 added the TimeRequest/TimeReply clock-synchronization
/// frames; version 4 added the StatsRequest/StatsReply introspection
/// frames; version 5 added the cluster frames (Membership gossip, Forward
/// wrapping, CacherSubscribe); version 6 added the self-healing frames
/// (SliceSync/SliceSyncReply anti-entropy, RingUpdate ownership hints,
/// Overloaded admission replies) and EXTENDED two v5 body layouts — a v6
/// kForward carries [flags+hops u8][ring_epoch u64] before the inner frame
/// and a v6 kMembership carries the sender's ring epoch after the gossip
/// epoch. Layout extensions are gated on the header version byte, so every
/// older frame is still accepted with its original layout.
inline constexpr std::uint8_t kVersion = 6;
/// Oldest codec version this decoder still accepts.
inline constexpr std::uint8_t kMinVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
/// Upper bound on a frame body. Generous: the largest legitimate message is
/// an ObjectCopy with two kMaxClockEntries-wide timestamps (~64 KiB).
inline constexpr std::uint32_t kMaxBodyBytes = 1u << 20;
/// Upper bound on PlausibleTimestamp width accepted off the wire; a forged
/// count can then never force a large allocation or a long copy loop.
inline constexpr std::uint32_t kMaxClockEntries = 4096;

enum class MsgType : std::uint8_t {
  kFetchRequest = 1,
  kFetchReply = 2,
  kWriteRequest = 3,
  kWriteAck = 4,
  kValidateRequest = 5,
  kValidateReply = 6,
  kInvalidate = 7,
  kPushUpdate = 8,
  /// Transport-level liveness probe (codec version >= 2). Never surfaced to
  /// the protocol layer: TcpTransport answers pings and consumes pongs
  /// itself, so `Message` stays exactly the eight protocol types.
  kHeartbeat = 9,
  /// Transport-level Cristian clock-sync exchange (codec version >= 3).
  /// Like heartbeats, these never reach the protocol layer: TcpTransport
  /// answers requests with its reference time and hands replies to the
  /// registered TimeSyncClient.
  kTimeRequest = 10,
  kTimeReply = 11,
  /// Transport-level live introspection (codec version >= 4). A request
  /// names one reactor site (or kAllSites); the answering transport replies
  /// from its lock-free StatsBoard/StatsHub snapshot without involving the
  /// protocol layer — like heartbeats, these frames never reach handlers.
  kStatsRequest = 12,
  kStatsReply = 13,
  /// Cluster frames (codec version >= 5). kMembership carries one node's
  /// gossip digest (epoch + member incarnations), piggybacked on the
  /// supervision heartbeat cadence. kForward wraps one complete protocol
  /// frame — header and body verbatim — plus a hop counter, so a server
  /// can hand a request for a non-owned object to the owner while
  /// preserving the original (client, request_id) routing header the
  /// owner's WAL dedup and reply path need. kCacherSubscribe registers the
  /// sending server as a cacher of one object at its owner (Section 5.2
  /// push propagation). All three are transport-level: they never surface
  /// as a protocol Message.
  kMembership = 14,
  kForward = 15,
  kCacherSubscribe = 16,
  /// Self-healing frames (codec version >= 6), all transport-level.
  /// kSliceSync asks a donor to stream the requester's hash-ring slice
  /// (bounded, cursor-resumable, if-modified-since batched); the donor
  /// answers with kSliceSyncReply records a warming owner installs before
  /// flipping WARMING -> SERVING. kRingUpdate carries (ring_epoch, serving
  /// member list) so a peer or owner-aware client that forwarded under a
  /// stale ring can rebuild the deterministic ring locally. kOverloaded is
  /// the admission gate's explicit shed reply: the named request was not
  /// served; retry after the carried hint.
  kSliceSync = 17,
  kSliceSyncReply = 18,
  kOverloaded = 19,
  kRingUpdate = 20,
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,        // buffer holds a valid prefix; wait for more bytes
  kBadMagic,        // not a frame boundary — the stream is corrupt
  kBadVersion,      // peer speaks a different codec version
  kBadType,         // unknown MsgType
  kOversizedBody,   // declared body length exceeds kMaxBodyBytes
  kOversizedClock,  // timestamp entry count exceeds kMaxClockEntries
  kShortBody,       // body ended before the message's fields did
  kTrailingBytes,   // body longer than the message's fields
  kBadField,        // a field holds an illegal value (e.g. bool not 0/1)
};

/// Number of DecodeStatus values, for per-status counter arrays.
inline constexpr std::size_t kDecodeStatusCount =
    static_cast<std::size_t>(DecodeStatus::kBadField) + 1;

/// Inline so header-only consumers (the stats bridge names its
/// net.decode_error.<status> counters with this) need not link timedc_net.
inline const char* to_cstring(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kOversizedBody: return "oversized-body";
    case DecodeStatus::kOversizedClock: return "oversized-clock";
    case DecodeStatus::kShortBody: return "short-body";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
    case DecodeStatus::kBadField: return "bad-field";
  }
  return "unknown";
}

/// Transport-level liveness probe carried in a kHeartbeat frame. `reply`
/// distinguishes ping (false) from pong (true); a pong echoes the ping's
/// seq and send_time_us so the sender can match it and measure RTT.
struct Heartbeat {
  std::uint64_t seq = 0;
  std::int64_t send_time_us = 0;
  bool reply = false;
};

/// One leg of a Cristian clock-sync exchange, carried in a kTimeRequest or
/// kTimeReply frame (`reply` selects the MsgType). The client stamps
/// client_send_us from its own hardware clock; the server echoes seq and
/// client_send_us and fills server_time_us with its reference clock, so the
/// client can pair the reply and compute RTT without per-request state.
struct TimeSync {
  std::uint64_t seq = 0;
  std::int64_t client_send_us = 0;
  std::int64_t server_time_us = 0;  // meaningful in replies only
  bool reply = false;
};

/// `target_site` sentinel in a StatsRequest: report every board the
/// answering process registered in its StatsHub.
inline constexpr std::uint32_t kAllSites = 0xffffffffu;
/// Forged-count ceilings for StatsReply decoding: a hostile header can
/// never force a large allocation.
inline constexpr std::uint32_t kMaxStatsBoards = 64;    // = StatsHub capacity
inline constexpr std::uint32_t kMaxStatsEntries = 512;  // >= kNumStatKeys

/// Introspection poll carried in a kStatsRequest frame. The server echoes
/// seq in its reply so a poller can match request/response without state.
struct StatsRequest {
  std::uint64_t seq = 0;
  std::uint32_t target_site = kAllSites;
};

/// Forged-count ceiling for kMembership decoding; matches the cluster
/// size bound a single gossip digest may describe.
inline constexpr std::uint32_t kMaxMembers = 64;

/// One member row of a kMembership gossip digest. `incarnation` is the
/// member's monotonically increasing liveness counter (a restarted process
/// announces a higher incarnation, which dominates any stale suspicion);
/// `status` is 0 = alive, 1 = suspect, 2 = dead.
struct MemberEntry {
  std::uint32_t site = 0;
  std::uint64_t incarnation = 0;
  std::uint8_t status = 0;

  friend bool operator==(const MemberEntry&, const MemberEntry&) = default;
};

/// Cacher registration carried in a kCacherSubscribe frame: the sending
/// server asks the owner of `object` to push writes to `cacher` from now
/// on. `mode` is 0 = invalidate (mark-old; the cacher revalidates with an
/// if-modified-since ValidateRequest) or 1 = update (ship the new copy).
struct CacherSubscribe {
  ObjectId object;
  SiteId cacher;
  std::uint8_t mode = 0;

  friend bool operator==(const CacherSubscribe&,
                         const CacherSubscribe&) = default;
};

/// Forged-count ceiling for kSliceSyncReply decoding: one reply batch can
/// never force a large allocation; donors paginate with next_cursor.
inline constexpr std::uint32_t kMaxSliceRecords = 256;

/// Anti-entropy pull carried in a kSliceSync frame (codec version >= 6).
/// The requester (frame `from`) asks the donor (frame `to`) for the
/// objects the DONOR's current ring assigns to the requester. `cursor` is
/// the resume point (0 = start; otherwise the last object id already
/// received, exclusive), `if_newer_than_us` skips records whose write time
/// is not strictly newer (0 = everything), and `ring_epoch` is the
/// requester's ring epoch so a donor that has not yet converged on the
/// requester owning anything can answer not-ready instead of an empty
/// (and wrong) done.
struct SliceSyncRequest {
  std::uint64_t seq = 0;
  std::uint64_t ring_epoch = 0;
  std::uint32_t cursor = 0;
  std::uint32_t max_records = kMaxSliceRecords;
  std::int64_t if_newer_than_us = 0;

  friend bool operator==(const SliceSyncRequest&,
                         const SliceSyncRequest&) = default;
};

/// One (object, value, version, write-time, writer identity) record of a
/// kSliceSyncReply. Carrying the ORIGINAL (writer, request_id) lets the
/// requester rebuild its write-dedup slot, so exactly-once survives an
/// ownership move exactly as it survives a WAL replay.
struct SliceRecord {
  std::uint32_t object = 0;
  std::int64_t value = 0;
  std::uint64_t version = 0;
  std::int64_t alpha_us = 0;      // the accepted write's client time (LWW key)
  std::uint32_t writer = 0;       // original client site of the last write
  std::uint64_t request_id = 0;   // that client's request id

  friend bool operator==(const SliceRecord&, const SliceRecord&) = default;
};

/// kSliceSyncReply status byte.
inline constexpr std::uint8_t kSliceMore = 0;      // batch full; resume at next_cursor
inline constexpr std::uint8_t kSliceDone = 1;      // slice exhausted
inline constexpr std::uint8_t kSliceNotReady = 2;  // donor ring older than requester's

/// Admission-shed reply carried in a kOverloaded frame (codec version >= 6):
/// the request identified by (frame `to`, request_id) was not served; the
/// client should retry no sooner than retry_after_us from receipt.
struct Overloaded {
  std::uint32_t object = 0;
  std::uint64_t request_id = 0;
  std::int64_t retry_after_us = 0;

  friend bool operator==(const Overloaded&, const Overloaded&) = default;
};

/// One decoded row of a kStatsReply body: board site, StatKey, value. The
/// body groups rows per board on the wire; decoding flattens them (site
/// repeats) into a scratch-reused vector.
struct StatsRow {
  std::uint32_t site = 0;
  std::uint16_t key = 0;
  std::int64_t value = 0;

  friend bool operator==(const StatsRow&, const StatsRow&) = default;
};

/// One board's entries for encode_stats_reply_frame.
struct StatsBoardSpan {
  std::uint32_t site = 0;
  std::span<const StatsEntry> entries;
};

/// Append one encoded frame carrying `m` routed from -> to onto `out`.
void encode_frame(SiteId from, SiteId to, const Message& m,
                  std::vector<std::uint8_t>& out);

/// Append one encoded kHeartbeat frame onto `out`.
void encode_heartbeat_frame(SiteId from, SiteId to, const Heartbeat& hb,
                            std::vector<std::uint8_t>& out);

/// Append one encoded kTimeRequest/kTimeReply frame (per ts.reply) onto
/// `out`.
void encode_time_sync_frame(SiteId from, SiteId to, const TimeSync& ts,
                            std::vector<std::uint8_t>& out);

/// Append one encoded kStatsRequest frame onto `out`.
void encode_stats_request_frame(SiteId from, SiteId to,
                                const StatsRequest& rq,
                                std::vector<std::uint8_t>& out);

/// Append one encoded kStatsReply frame carrying `boards` onto `out`.
/// Board and entry counts must respect kMaxStatsBoards/kMaxStatsEntries.
void encode_stats_reply_frame(SiteId from, SiteId to, std::uint64_t seq,
                              std::span<const StatsBoardSpan> boards,
                              std::vector<std::uint8_t>& out);

/// Append one encoded kMembership frame onto `out`. Member count must
/// respect kMaxMembers. `ring_epoch` is the sender's current ring epoch
/// (v6 layout extension; a v5 receiver-side decode reports it as 0).
void encode_membership_frame(SiteId from, SiteId to, std::uint64_t epoch,
                             std::uint64_t ring_epoch,
                             std::span<const MemberEntry> members,
                             std::vector<std::uint8_t>& out);

/// Append one encoded kForward frame wrapping `inner` (re-encoded with the
/// given inner routing header) onto `out`. The inner from-site should be
/// the original client so the owner's transport learns the return path.
/// `serve_here` forces the receiver to serve the inner request locally
/// even if its ring says otherwise (a WARMING owner's forward-through to
/// the previous owner — the flag is what prevents a forwarding loop);
/// `ring_epoch` stamps the sender's ring epoch so a stale forward can be
/// bounced with a kRingUpdate hint.
void encode_forward_frame(SiteId from, SiteId to, std::uint8_t hops,
                          bool serve_here, std::uint64_t ring_epoch,
                          SiteId inner_from, SiteId inner_to,
                          const Message& inner,
                          std::vector<std::uint8_t>& out);

/// Append one encoded kForward frame wrapping `inner_frame` — one already
/// encoded, complete protocol frame, copied verbatim — onto `out`. This is
/// the zero-decode path: a transport that holds a FrameView of a misrouted
/// request wraps its bytes without materializing the message.
void encode_forward_frame_raw(SiteId from, SiteId to, std::uint8_t hops,
                              bool serve_here, std::uint64_t ring_epoch,
                              std::span<const std::uint8_t> inner_frame,
                              std::vector<std::uint8_t>& out);

/// Append one encoded kSliceSync frame onto `out`.
void encode_slice_sync_frame(SiteId from, SiteId to,
                             const SliceSyncRequest& rq,
                             std::vector<std::uint8_t>& out);

/// Append one encoded kSliceSyncReply frame onto `out`. Record count must
/// respect kMaxSliceRecords; `status` is kSliceMore/kSliceDone/
/// kSliceNotReady and `ring_epoch` is the donor's ring epoch.
void encode_slice_sync_reply_frame(SiteId from, SiteId to, std::uint64_t seq,
                                   std::uint64_t ring_epoch,
                                   std::uint8_t status,
                                   std::uint32_t next_cursor,
                                   std::span<const SliceRecord> records,
                                   std::vector<std::uint8_t>& out);

/// Append one encoded kRingUpdate frame onto `out`: the sender's ring
/// epoch plus the serving member list the deterministic ring is built
/// from. Member count must respect kMaxMembers.
void encode_ring_update_frame(SiteId from, SiteId to, std::uint64_t ring_epoch,
                              std::span<const std::uint32_t> members,
                              std::vector<std::uint8_t>& out);

/// Append one encoded kOverloaded frame onto `out`.
void encode_overloaded_frame(SiteId from, SiteId to, const Overloaded& ov,
                             std::vector<std::uint8_t>& out);

/// Append one encoded kCacherSubscribe frame onto `out`.
void encode_cacher_subscribe_frame(SiteId from, SiteId to,
                                   const CacherSubscribe& cs,
                                   std::vector<std::uint8_t>& out);

/// The exact number of bytes encode_frame appends for `m`.
std::size_t encoded_frame_size(const Message& m);

struct DecodedFrame {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // frame bytes to drop from the buffer when kOk
  SiteId from;
  SiteId to;
  Message message;
  /// Set for kHeartbeat frames; `message` is then a default FetchRequest
  /// and must not be interpreted.
  bool is_heartbeat = false;
  Heartbeat heartbeat;
  /// Set for kTimeRequest/kTimeReply frames; `message` is likewise inert.
  bool is_time_sync = false;
  TimeSync time_sync;
  /// Set for kStatsRequest frames.
  bool is_stats_request = false;
  StatsRequest stats_request;
  /// Set for kStatsReply frames; rows are flattened per board into the
  /// scratch-reused stats_rows (site repeats across a board's rows).
  bool is_stats_reply = false;
  std::uint64_t stats_seq = 0;
  std::uint32_t stats_boards = 0;
  std::vector<StatsRow> stats_rows;
  /// Set for kMembership frames; members reuses its storage across decodes.
  /// membership_ring_epoch is 0 when the frame used the v5 layout.
  bool is_membership = false;
  std::uint64_t membership_epoch = 0;
  std::uint64_t membership_ring_epoch = 0;
  std::vector<MemberEntry> members;
  /// Set for kForward frames: forward_inner holds the wrapped frame's bytes
  /// (header + body, themselves a valid protocol frame), scratch-reused.
  /// The hot path never takes this copy — it peeks the inner frame straight
  /// out of the view body — but owning decodes (tests, offline tools) do.
  /// forward_serve_here / forward_ring_epoch are false/0 for v5 layouts.
  bool is_forward = false;
  std::uint8_t forward_hops = 0;
  bool forward_serve_here = false;
  std::uint64_t forward_ring_epoch = 0;
  std::vector<std::uint8_t> forward_inner;
  /// Set for kCacherSubscribe frames.
  bool is_cacher_subscribe = false;
  CacherSubscribe cacher_subscribe;
  /// Set for kSliceSync frames.
  bool is_slice_sync = false;
  SliceSyncRequest slice_sync;
  /// Set for kSliceSyncReply frames; slice_records reuses its storage.
  bool is_slice_sync_reply = false;
  std::uint64_t slice_seq = 0;
  std::uint64_t slice_ring_epoch = 0;
  std::uint8_t slice_status = 0;
  std::uint32_t slice_next_cursor = 0;
  std::vector<SliceRecord> slice_records;
  /// Set for kRingUpdate frames; ring_members reuses its storage.
  bool is_ring_update = false;
  std::uint64_t ring_update_epoch = 0;
  std::vector<std::uint32_t> ring_members;
  /// Set for kOverloaded frames.
  bool is_overloaded = false;
  Overloaded overloaded;

  bool ok() const { return status == DecodeStatus::kOk; }
};

/// Try to decode one frame from the front of `buf`. kNeedMore means the
/// buffer is a valid proper prefix (read more and retry); every other
/// non-kOk status is a permanent protocol error for this stream.
DecodedFrame decode_frame(std::span<const std::uint8_t> buf);

/// A non-owning view of one wire frame sitting in a receive buffer. Only
/// the 16-byte header has been validated; `body` aliases the buffer the
/// view was peeked from and is valid exactly as long as those bytes stay
/// put — the hot path hands views to handlers and recycles the buffer when
/// the handler returns (DESIGN.md section 11 states the lifetime rule).
///
/// peek_frame() costs a header validation and no allocation, so transport-
/// level routing (dispatch, connection steering) can act on (from, to,
/// type) without materializing the message; decode_frame_view() then does
/// the typed body decode on demand, into a caller-reused DecodedFrame.
struct FrameView {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::size_t consumed = 0;  // header + body bytes when kOk
  SiteId from;
  SiteId to;
  MsgType type = MsgType::kFetchRequest;  // meaningful when kOk
  /// The frame's header version byte: v6 extended the kForward/kMembership
  /// body layouts, so their decode is gated on the version the peer wrote.
  std::uint8_t version = 0;
  std::span<const std::uint8_t> body;

  bool ok() const { return status == DecodeStatus::kOk; }
  /// True for the eight protocol message types (the ones surfaced to
  /// Transport handlers); false for transport-internal frames.
  bool is_protocol() const {
    return type >= MsgType::kFetchRequest && type <= MsgType::kPushUpdate;
  }
};

/// Validate the header of the frame at the front of `buf` without decoding
/// its body. Status semantics match decode_frame for every header-stage
/// outcome (kNeedMore/kBadMagic/kBadVersion/kBadType/kOversizedBody);
/// body-stage errors are only found by decode_frame_view.
FrameView peek_frame(std::span<const std::uint8_t> buf);

/// The complete on-wire bytes (header + body) of a kOk view. Valid exactly
/// as long as the buffer the view was peeked from stays put: the body span
/// aliases that buffer and the header is the kHeaderBytes preceding it.
inline std::span<const std::uint8_t> frame_bytes(const FrameView& view) {
  return {view.body.data() - kHeaderBytes, view.consumed};
}

/// Peek the protocol frame wrapped inside a kOk kForward view, straight out
/// of the outer body (no copy). Returns a kBadField view when the outer
/// body is empty, the inner bytes are not one complete frame filling the
/// remainder, or the inner type is not a protocol message (forwarding never
/// nests and never wraps transport frames).
FrameView peek_forward_inner(const FrameView& outer);

/// The routing metadata in front of a kForward view's wrapped frame,
/// decoded per the view's version (a v5 frame reports serve_here = false
/// and ring_epoch = 0). Call only on a view peek_forward_inner accepted;
/// a too-short body yields all zeros.
struct ForwardPrefix {
  std::uint8_t hops = 0;
  bool serve_here = false;
  std::uint64_t ring_epoch = 0;
};
ForwardPrefix peek_forward_prefix(const FrameView& outer);

/// Decode the typed body of a kOk view into `out`, reusing out's storage
/// (a per-connection scratch DecodedFrame keeps the hot path free of
/// per-message allocation: every protocol message whose timestamps are
/// empty — all TSC traffic — decodes without touching the heap). Returns
/// out.status. The composition decode_frame_view(peek_frame(buf)) yields
/// exactly decode_frame(buf)'s status, fields and consumed count; the
/// property test in tests/wire_test.cpp holds the two paths equal.
DecodeStatus decode_frame_view(const FrameView& view, DecodedFrame& out);

}  // namespace timedc::wire
