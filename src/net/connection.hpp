// One non-blocking TCP connection carrying wire-codec frames.
//
// The connection owns its fd and two byte buffers. Reads are drained into
// the input buffer and decoded frame-by-frame; writes append to the output
// buffer and flush opportunistically, falling back to EPOLLOUT when the
// socket would block. Backpressure is per connection: when the unsent
// output exceeds the high watermark the connection stops reading (no new
// requests are accepted from a peer we cannot answer) until the buffer
// drains below the low watermark.
//
// All methods are loop-thread only. A Connection never deletes itself; the
// owner (TcpTransport) decides its lifetime from the close callback.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/event_loop.hpp"
#include "net/wire.hpp"

namespace timedc::net {

struct ConnectionStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_sent = 0;
};

class Connection {
 public:
  /// Frames are handed to the owner as decoded (kOk) frames only.
  using FrameHandler = std::function<void(Connection&, wire::DecodedFrame&)>;
  /// Fired exactly once, on EOF, socket error, decode error or close().
  using CloseHandler = std::function<void(Connection&, const char* reason)>;
  /// Fired once when an in-progress non-blocking connect() completes
  /// successfully (never for already-connected fds; see set_connected_handler).
  using ConnectedHandler = std::function<void(Connection&)>;

  static constexpr std::size_t kHighWatermark = 4u << 20;
  static constexpr std::size_t kLowWatermark = 512u << 10;

  /// Takes ownership of `fd` (already non-blocking). `connecting` marks an
  /// in-progress non-blocking connect(): writes buffer until it completes.
  Connection(EventLoop& loop, int fd, bool connecting);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Register with the loop and start delivering frames.
  void start(FrameHandler on_frame, CloseHandler on_close);

  /// Observe successful completion of a non-blocking connect(). Only
  /// meaningful on connections constructed with connecting=true; must be
  /// set before the connect can complete (i.e. right after start()).
  void set_connected_handler(ConnectedHandler on_connected) {
    on_connected_ = std::move(on_connected);
  }

  /// Queue one frame; flushes as far as the socket allows.
  void send_frame(SiteId from, SiteId to, const Message& m);

  /// Queue one transport-level heartbeat frame.
  void send_heartbeat(SiteId from, SiteId to, const wire::Heartbeat& hb);

  /// Queue one transport-level clock-sync frame.
  void send_time_sync(SiteId from, SiteId to, const wire::TimeSync& ts);

  /// Deregister and close the fd; fires the close handler (once).
  void close(const char* reason);

  bool closed() const { return fd_ < 0; }
  bool connecting() const { return connecting_; }
  bool reading_paused() const { return reading_paused_; }
  std::size_t pending_write_bytes() const { return wbuf_.size() - wsent_; }
  const ConnectionStats& stats() const { return stats_; }
  int fd() const { return fd_; }

  /// Non-kOk iff the connection was torn down by a codec error (the typed
  /// DecodeStatus the close reason string names).
  wire::DecodeStatus decode_failure() const { return decode_failure_; }

 private:
  void handle_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void decode_buffered();
  void log_decode_failure(wire::DecodeStatus status,
                          std::span<const std::uint8_t> bad) const;
  void flush();
  void update_interest();
  void append_and_flush();

  EventLoop& loop_;
  int fd_;
  bool connecting_;
  bool reading_paused_ = false;
  std::uint32_t interest_ = 0;

  std::vector<std::uint8_t> rbuf_;
  std::size_t rconsumed_ = 0;  // decoded prefix of rbuf_, compacted lazily
  std::vector<std::uint8_t> wbuf_;
  std::size_t wsent_ = 0;  // flushed prefix of wbuf_, compacted lazily

  FrameHandler on_frame_;
  CloseHandler on_close_;
  ConnectedHandler on_connected_;
  ConnectionStats stats_;
  wire::DecodeStatus decode_failure_ = wire::DecodeStatus::kOk;
};

}  // namespace timedc::net
