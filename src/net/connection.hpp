// One non-blocking TCP connection carrying wire-codec frames.
//
// The connection owns its fd, a read buffer and a chunked send queue.
// Reads are drained into the read buffer and handed to the owner as
// non-owning wire::FrameViews — zero copies, no per-message allocation;
// the view aliases the read buffer and is valid only until the handler
// returns (the buffer is compacted and reused afterwards). Writes append
// encoded frames to the send queue; by default every send flushes
// immediately, but an owner that installs a flush scheduler coalesces all
// frames queued during one loop tick into a single writev() (see
// TcpTransport's tick-end hook). Backpressure is per connection: when the
// unsent output exceeds the high watermark the connection stops reading
// (no new requests are accepted from a peer we cannot answer) until the
// queue drains below the low watermark.
//
// All methods are loop-thread only. A Connection never deletes itself; the
// owner (TcpTransport) decides its lifetime from the close callback.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/event_loop.hpp"
#include "net/send_queue.hpp"
#include "net/wire.hpp"

namespace timedc::net {

struct ConnectionStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t frames_sent = 0;
  /// writev()/send() calls that moved at least one byte: frames_sent /
  /// flush_syscalls is the coalescing factor the batching layer achieves.
  std::uint64_t flush_syscalls = 0;
};

class Connection {
 public:
  /// Frames are handed to the owner as validated (kOk) header views; the
  /// owner decodes the body on demand (wire::decode_frame_view). The view
  /// aliases the connection's read buffer and dies when the handler
  /// returns.
  using FrameHandler = std::function<void(Connection&, const wire::FrameView&)>;
  /// Fired exactly once, on EOF, socket error, decode error or close().
  using CloseHandler = std::function<void(Connection&, const char* reason)>;
  /// Fired once when an in-progress non-blocking connect() completes
  /// successfully (never for already-connected fds; see set_connected_handler).
  using ConnectedHandler = std::function<void(Connection&)>;
  /// Installed by an owner that batch-flushes: called (once per quiet
  /// period) when this connection has queued bytes and wants a flush at
  /// the end of the current loop tick.
  using FlushScheduler = std::function<void(Connection&)>;

  static constexpr std::size_t kHighWatermark = 4u << 20;
  static constexpr std::size_t kLowWatermark = 512u << 10;
  /// In batched mode, a tick that queues this much output flushes
  /// immediately anyway: overlapping the kernel send with the rest of the
  /// tick beats strict once-per-tick coalescing for bulk responses.
  static constexpr std::size_t kFlushBypassBytes = 256u << 10;

  /// Takes ownership of `fd` (already non-blocking). `connecting` marks an
  /// in-progress non-blocking connect(): writes buffer until it completes.
  Connection(EventLoop& loop, int fd, bool connecting);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Register with the loop and start delivering frames.
  void start(FrameHandler on_frame, CloseHandler on_close);

  /// Observe successful completion of a non-blocking connect(). Only
  /// meaningful on connections constructed with connecting=true; must be
  /// set before the connect can complete (i.e. right after start()).
  void set_connected_handler(ConnectedHandler on_connected) {
    on_connected_ = std::move(on_connected);
  }

  /// Switch to batched writes: sends enqueue only, and `scheduler` is
  /// invoked (at most once until the next flush) so the owner can flush
  /// this connection at the end of the loop tick via flush_batched().
  void set_flush_scheduler(FlushScheduler scheduler) {
    flush_scheduler_ = std::move(scheduler);
  }

  /// Flush everything queued (the owner's tick-end path). Re-arms the
  /// scheduler for the next tick.
  void flush_batched();

  /// Queue one frame; flushes as far as the socket allows (immediately, or
  /// at tick end in batched mode).
  void send_frame(SiteId from, SiteId to, const Message& m);

  /// Queue one transport-level heartbeat frame.
  void send_heartbeat(SiteId from, SiteId to, const wire::Heartbeat& hb);

  /// Queue one transport-level clock-sync frame.
  void send_time_sync(SiteId from, SiteId to, const wire::TimeSync& ts);

  /// Queue one transport-level stats-introspection request frame.
  void send_stats_request(SiteId from, SiteId to,
                          const wire::StatsRequest& rq);

  /// Queue one transport-level stats-introspection reply frame.
  void send_stats_reply(SiteId from, SiteId to, std::uint64_t seq,
                        std::span<const wire::StatsBoardSpan> boards);

  /// Queue one cluster membership gossip frame stamped with the sender's
  /// ring epoch.
  void send_membership(SiteId from, SiteId to, std::uint64_t epoch,
                       std::uint64_t ring_epoch,
                       std::span<const wire::MemberEntry> members);

  /// Queue one kForward frame re-encoding `m` as the inner frame (the
  /// decoded-message forward path: a local ObjectServer ruled itself
  /// non-owner). `serve_here` marks a warm-up forward-through that the
  /// receiver must serve locally; `ring_epoch` stamps the sender's ring.
  void send_forward(SiteId from, SiteId to, std::uint8_t hops,
                    bool serve_here, std::uint64_t ring_epoch,
                    SiteId inner_from, SiteId inner_to, const Message& m);

  /// Queue one kForward frame wrapping an already-encoded protocol frame
  /// verbatim (the zero-decode forward path for misrouted arrivals).
  void send_forward_raw(SiteId from, SiteId to, std::uint8_t hops,
                        bool serve_here, std::uint64_t ring_epoch,
                        std::span<const std::uint8_t> inner_frame);

  /// Queue one cluster cacher-registration frame.
  void send_cacher_subscribe(SiteId from, SiteId to,
                             const wire::CacherSubscribe& cs);

  /// Queue one anti-entropy slice-sync request frame.
  void send_slice_sync(SiteId from, SiteId to,
                       const wire::SliceSyncRequest& rq);

  /// Queue one anti-entropy slice-sync reply batch.
  void send_slice_sync_reply(SiteId from, SiteId to, std::uint64_t seq,
                             std::uint64_t ring_epoch, std::uint8_t status,
                             std::uint32_t next_cursor,
                             std::span<const wire::SliceRecord> records);

  /// Queue one ring-update hint frame (ring epoch + serving member list).
  void send_ring_update(SiteId from, SiteId to, std::uint64_t ring_epoch,
                        std::span<const std::uint32_t> members);

  /// Queue one admission-shed kOverloaded reply frame.
  void send_overloaded(SiteId from, SiteId to, const wire::Overloaded& ov);

  /// Queue a complete, already-encoded frame verbatim (the relay path:
  /// these bytes were peeked off another connection and keep their original
  /// header).
  void send_raw_frame(std::span<const std::uint8_t> frame);

  /// Deregister and close the fd; fires the close handler (once).
  void close(const char* reason);

  /// Owner-reported body-decode failure. Connection only validates frame
  /// headers (peek_frame); when the owner's decode_frame_view hits a
  /// body-stage error it reports it here, which records the status, logs
  /// the offending bytes and closes — exactly as header-stage errors do.
  void fail_decode(wire::DecodeStatus status);

  /// Detach for steering: deregister from the loop WITHOUT closing the fd
  /// or firing the close handler, move every unprocessed read byte
  /// (starting at the frame currently being dispatched) into `leftover`,
  /// and return the fd. The caller re-homes both on another reactor's
  /// transport (TcpTransport::adopt_steered). Only legal from inside the
  /// frame handler; the connection is dead afterwards.
  int release(std::vector<std::uint8_t>& leftover);

  /// Seed the read buffer with bytes that arrived before adoption (the
  /// steered connection's leftover) and decode them as if just read.
  /// Call after start().
  void inject(std::vector<std::uint8_t> data);

  bool closed() const { return fd_ < 0; }
  bool released() const { return released_; }
  bool connecting() const { return connecting_; }
  bool reading_paused() const { return reading_paused_; }
  std::size_t pending_write_bytes() const { return out_.pending_bytes(); }
  const ConnectionStats& stats() const { return stats_; }
  int fd() const { return fd_; }

  /// Non-kOk iff the connection was torn down by a codec error (the typed
  /// DecodeStatus the close reason string names).
  wire::DecodeStatus decode_failure() const { return decode_failure_; }

 private:
  void handle_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void decode_buffered();
  void log_decode_failure(wire::DecodeStatus status,
                          std::span<const std::uint8_t> bad) const;
  void flush();
  void update_interest();
  void after_enqueue();

  EventLoop& loop_;
  int fd_;
  bool connecting_;
  bool released_ = false;
  bool reading_paused_ = false;
  bool flush_armed_ = false;  // scheduler notified, flush_batched() pending
  std::uint32_t interest_ = 0;

  std::vector<std::uint8_t> rbuf_;
  std::size_t rconsumed_ = 0;  // decoded prefix of rbuf_, compacted lazily
  SendQueue out_;
  /// Per-send encode scratch; cleared (capacity kept) around every encode,
  /// so steady-state sends never allocate.
  std::vector<std::uint8_t> scratch_;

  FrameHandler on_frame_;
  CloseHandler on_close_;
  ConnectedHandler on_connected_;
  FlushScheduler flush_scheduler_;
  ConnectionStats stats_;
  wire::DecodeStatus decode_failure_ = wire::DecodeStatus::kOk;
};

}  // namespace timedc::net
