// A single-threaded, non-blocking epoll event loop.
//
// One EventLoop drives every socket of a TcpTransport plus its timers and
// cross-thread posted tasks. It is the real-world stand-in for the
// discrete-event Simulator: protocol code written against Transport sees
// "now" and "run this later" here exactly as it does there, except that
// time is CLOCK_REALTIME and callbacks race with the outside world.
//
// Threading: run() executes on exactly one thread (the loop thread); every
// fd callback, timer and posted task fires there. post(), run_after() and
// stop() are safe from any thread; add_fd/modify_fd/remove_fd are loop-
// thread only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"

namespace timedc::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watch `fd` for the EPOLL* events in `events`. The callback may close
  /// other fds, add new ones, or remove itself.
  void add_fd(int fd, std::uint32_t events, FdCallback cb);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  /// Run `fn` on the loop thread as soon as possible. Thread-safe; wakes a
  /// blocked epoll_wait.
  void post(std::function<void()> fn);

  /// Identifies one pending run_after timer. Never reused.
  using TimerId = std::uint64_t;

  /// Run `fn` once, `delay` from now, on the loop thread. Thread-safe.
  /// Deadlines are tracked on CLOCK_MONOTONIC so wall-clock jumps cannot
  /// fire timers early or stall them. The returned id cancels the timer via
  /// cancel_timer(); it stays valid (as a no-op) after the timer fires.
  TimerId run_after(SimTime delay, std::function<void()> fn);

  /// Prevent a pending timer from firing. Returns true if the timer was
  /// still pending (it will now never run), false if it already fired or
  /// was already cancelled. Thread-safe, and safe from inside the timer's
  /// own callback (a timer cancelling itself mid-fire returns false — it is
  /// no longer pending by then). Cancellation is lazy: the heap entry stays
  /// until its deadline, where it pops as a no-op.
  bool cancel_timer(TimerId id);

  /// Wall-clock time (CLOCK_REALTIME) in microseconds. Real deployments of
  /// the timed protocols compare timestamps across processes, so the time
  /// source must be one every process shares.
  SimTime now() const;

  /// Process events until stop(). Must be called from exactly one thread.
  void run();

  /// Ask run() to return after the current iteration. Thread-safe.
  void stop();

  /// Identifies one registered tick-end hook.
  using HookId = std::uint64_t;

  /// Register `fn` to run at the end of every loop iteration — after the
  /// fd callbacks, due timers and posted tasks of that iteration. This is
  /// the batching point: everything a tick queued (acks to coalesce, local
  /// deliveries to apply) is drained in one place, once, before the loop
  /// blocks again. Loop-thread only. Hooks run in registration order.
  HookId add_tick_end_hook(std::function<void()> fn);

  /// Unregister a tick-end hook. Loop-thread only while the loop runs
  /// (safe from inside the hook itself — removal takes effect next
  /// iteration); also safe after the loop has stopped and joined.
  void remove_tick_end_hook(HookId id);

  bool running_in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  /// CLOCK_MONOTONIC stamp taken when the current iteration's epoll_wait
  /// returned. Tick-end hooks subtract it from steady time to measure how
  /// long the iteration's callbacks ran (the reactor stall watchdog);
  /// excludes the blocking wait itself. Loop-thread only.
  std::int64_t tick_start_steady_us() const { return tick_start_steady_us_; }
  /// Current CLOCK_MONOTONIC microseconds (duration measurements only —
  /// not comparable across processes, unlike now()).
  static std::int64_t steady_time_us() { return steady_now_us(); }

 private:
  struct Timer {
    std::int64_t deadline_steady_us;
    std::uint64_t seq;  // insertion order breaks deadline ties
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.deadline_steady_us != b.deadline_steady_us) {
        return a.deadline_steady_us > b.deadline_steady_us;
      }
      return a.seq > b.seq;
    }
  };

  static std::int64_t steady_now_us();
  void wake();
  void drain_posted();
  void fire_due_timers();
  void run_tick_end_hooks();
  /// epoll_wait timeout until the nearest timer (ms, rounded up), or -1.
  int wait_timeout_ms();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd written by post()/stop()
  std::atomic<bool> stop_{false};
  std::thread::id loop_thread_;

  std::unordered_map<int, FdCallback> fds_;

  /// Tick-end hooks, loop-thread only (no lock). Stable ids; removal marks
  /// the slot and the vector is compacted outside hook iteration.
  struct TickEndHook {
    HookId id;
    std::function<void()> fn;
  };
  std::vector<TickEndHook> tick_end_hooks_;
  HookId next_hook_id_ = 0;
  bool hooks_dirty_ = false;
  std::int64_t tick_start_steady_us_ = 0;

  std::mutex mutex_;  // guards posted_, timers_ and live_timers_
  std::vector<std::function<void()>> posted_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  /// Seqs of timers that are pending and not cancelled; a popped entry
  /// absent from this set was cancelled and is skipped.
  std::unordered_set<std::uint64_t> live_timers_;
  std::uint64_t next_timer_seq_ = 0;
};

}  // namespace timedc::net
