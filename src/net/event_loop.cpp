#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

#include "common/assert.hpp"

namespace timedc::net {
namespace {

std::int64_t clock_us(clockid_t clock) {
  timespec ts;
  clock_gettime(clock, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  TIMEDC_ASSERT(epoll_fd_ >= 0);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  TIMEDC_ASSERT(wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  const int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  TIMEDC_ASSERT(rc == 0);
  loop_thread_ = std::this_thread::get_id();
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

std::int64_t EventLoop::steady_now_us() { return clock_us(CLOCK_MONOTONIC); }

SimTime EventLoop::now() const { return SimTime::micros(clock_us(CLOCK_REALTIME)); }

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  TIMEDC_ASSERT(fds_.find(fd) == fds_.end());
  fds_[fd] = std::move(cb);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  const int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  TIMEDC_ASSERT(rc == 0);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  TIMEDC_ASSERT(fds_.find(fd) != fds_.end());
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  const int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  TIMEDC_ASSERT(rc == 0);
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

EventLoop::TimerId EventLoop::run_after(SimTime delay, std::function<void()> fn) {
  TIMEDC_ASSERT(!delay.is_infinite());
  const std::int64_t deadline = steady_now_us() + std::max<std::int64_t>(0, delay.as_micros());
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_timer_seq_++;
    timers_.push(Timer{deadline, id, std::move(fn)});
    live_timers_.insert(id);
  }
  wake();
  return id;
}

bool EventLoop::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_timers_.erase(id) != 0;
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

EventLoop::HookId EventLoop::add_tick_end_hook(std::function<void()> fn) {
  TIMEDC_ASSERT(running_in_loop_thread());
  const HookId id = next_hook_id_++;
  tick_end_hooks_.push_back(TickEndHook{id, std::move(fn)});
  return id;
}

void EventLoop::remove_tick_end_hook(HookId id) {
  // No thread assert: owners unregister from their destructors, which run
  // after the loop thread has stopped and joined.
  for (auto& hook : tick_end_hooks_) {
    if (hook.id == id) {
      hook.fn = nullptr;  // compacted after the current iteration
      hooks_dirty_ = true;
      return;
    }
  }
}

void EventLoop::run_tick_end_hooks() {
  // Index loop: a hook may register another hook (it runs this same tick,
  // at the end) but removal only nulls the slot, so iteration stays valid.
  for (std::size_t i = 0; i < tick_end_hooks_.size(); ++i) {
    if (tick_end_hooks_[i].fn) tick_end_hooks_[i].fn();
  }
  if (hooks_dirty_) {
    std::erase_if(tick_end_hooks_,
                  [](const TickEndHook& h) { return !h.fn; });
    hooks_dirty_ = false;
  }
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks.swap(posted_);
  }
  for (auto& t : tasks) t();
}

void EventLoop::fire_due_timers() {
  const std::int64_t now = steady_now_us();
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (timers_.empty() || timers_.top().deadline_steady_us > now) return;
      const std::uint64_t seq = timers_.top().seq;
      // A seq no longer in live_timers_ was cancelled; drop it unfired. The
      // timer is marked fired (erased) before its callback runs, so a timer
      // cancelling itself from inside its own callback is a clean no-op.
      if (live_timers_.erase(seq) != 0) {
        fn = std::move(const_cast<Timer&>(timers_.top()).fn);
      }
      timers_.pop();
    }
    if (fn) fn();
  }
}

int EventLoop::wait_timeout_ms() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!timers_.empty()) {
    const std::int64_t us = timers_.top().deadline_steady_us - steady_now_us();
    if (us <= 0) return 0;
    return static_cast<int>((us + 999) / 1000);
  }
  return -1;
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, 64, wait_timeout_ms());
    if (n < 0) {
      TIMEDC_ASSERT(errno == EINTR);
      continue;
    }
    tick_start_steady_us_ = steady_now_us();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Look up at dispatch time (an earlier callback this round may have
      // removed this fd) and invoke a copy, so a callback that removes its
      // own registration does not destroy the function mid-call.
      const auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      FdCallback cb = it->second;
      cb(events[i].events);
    }
    fire_due_timers();
    drain_posted();
    run_tick_end_hooks();
  }
}

}  // namespace timedc::net
