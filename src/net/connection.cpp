#include "net/connection.hpp"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/assert.hpp"

namespace timedc::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

Connection::Connection(EventLoop& loop, int fd, bool connecting)
    : loop_(loop), fd_(fd), connecting_(connecting) {
  TIMEDC_ASSERT(fd_ >= 0);
}

Connection::~Connection() {
  if (fd_ >= 0) {
    // Destroyed without close(): silent teardown (owner is shutting down),
    // no callback.
    loop_.remove_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  interest_ = connecting_ ? EPOLLOUT : EPOLLIN;
  loop_.add_fd(fd_, interest_, [this](std::uint32_t ev) { handle_events(ev); });
}

void Connection::update_interest() {
  if (closed()) return;
  std::uint32_t want = 0;
  if (!connecting_ && !reading_paused_) want |= EPOLLIN;
  if (connecting_ || pending_write_bytes() > 0) want |= EPOLLOUT;
  if (want != interest_) {
    interest_ = want;
    loop_.modify_fd(fd_, want);
  }
}

void Connection::close(const char* reason) {
  if (closed()) return;
  loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // Move the handler out: it may destroy captured state including this
    // function object.
    CloseHandler h = std::move(on_close_);
    on_close_ = nullptr;
    h(*this, reason);
  }
}

int Connection::release(std::vector<std::uint8_t>& leftover) {
  TIMEDC_ASSERT(!closed());
  leftover.assign(rbuf_.begin() + static_cast<std::ptrdiff_t>(rconsumed_),
                  rbuf_.end());
  loop_.remove_fd(fd_);
  const int fd = fd_;
  fd_ = -1;
  released_ = true;
  // Neither handler may ever fire again: the fd lives on under a new owner.
  on_close_ = nullptr;
  on_frame_ = nullptr;
  on_connected_ = nullptr;
  flush_scheduler_ = nullptr;
  rbuf_.clear();
  rconsumed_ = 0;
  out_.clear();
  return fd;
}

void Connection::inject(std::vector<std::uint8_t> data) {
  if (closed() || data.empty()) return;
  // These bytes were already counted by the releasing connection's
  // bytes_read; only the decode is replayed here.
  if (rbuf_.empty()) {
    rbuf_ = std::move(data);
  } else {
    rbuf_.insert(rbuf_.end(), data.begin(), data.end());
  }
  decode_buffered();
}

void Connection::handle_events(std::uint32_t events) {
  if (closed()) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    // Flush any readable remainder first so a peer that wrote-then-closed
    // still gets its last frames processed.
    if (events & EPOLLIN) handle_readable();
    if (!closed() && !released_) close("socket error/hangup");
    return;
  }
  if (events & EPOLLOUT) handle_writable();
  if (closed()) return;
  if (events & EPOLLIN) handle_readable();
  if (closed() || released_) return;
  update_interest();
}

void Connection::handle_writable() {
  if (connecting_) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close("connect failed");
      return;
    }
    connecting_ = false;
    if (on_connected_) {
      ConnectedHandler h = std::move(on_connected_);
      on_connected_ = nullptr;
      h(*this);
      if (closed()) return;
    }
  }
  flush();
}

void Connection::flush() {
  if (closed() || connecting_) return;
  while (!out_.empty()) {
    struct iovec iov[SendQueue::kMaxIov];
    const std::size_t iovcnt = out_.gather(iov);
    struct msghdr mh {};
    mh.msg_iov = iov;
    mh.msg_iovlen = iovcnt;
    // Gather write: one syscall moves every queued frame (sendmsg is
    // writev plus MSG_NOSIGNAL). Up to kMaxIov chunks per call; the loop
    // continues while more is queued.
    const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      // A short count is normal (socket buffer filled mid-gather): consume
      // the sent prefix — the queue advances its cursor, nothing is
      // copied — and retry; if the buffer is truly full the next call says
      // EAGAIN.
      out_.consume(static_cast<std::size_t>(n));
      stats_.bytes_written += static_cast<std::uint64_t>(n);
      ++stats_.flush_syscalls;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close("write error");
    return;
  }
  if (reading_paused_ && pending_write_bytes() < kLowWatermark) {
    reading_paused_ = false;
  }
  update_interest();
}

void Connection::flush_batched() {
  flush_armed_ = false;
  flush();
}

void Connection::send_frame(SiteId from, SiteId to, const Message& m) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_frame(from, to, m, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_heartbeat(SiteId from, SiteId to,
                                const wire::Heartbeat& hb) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_heartbeat_frame(from, to, hb, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_time_sync(SiteId from, SiteId to,
                                const wire::TimeSync& ts) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_time_sync_frame(from, to, ts, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_stats_request(SiteId from, SiteId to,
                                    const wire::StatsRequest& rq) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_stats_request_frame(from, to, rq, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_stats_reply(SiteId from, SiteId to, std::uint64_t seq,
                                  std::span<const wire::StatsBoardSpan> boards) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_stats_reply_frame(from, to, seq, boards, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_membership(SiteId from, SiteId to, std::uint64_t epoch,
                                 std::uint64_t ring_epoch,
                                 std::span<const wire::MemberEntry> members) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_membership_frame(from, to, epoch, ring_epoch, members,
                                scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_forward(SiteId from, SiteId to, std::uint8_t hops,
                              bool serve_here, std::uint64_t ring_epoch,
                              SiteId inner_from, SiteId inner_to,
                              const Message& m) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_forward_frame(from, to, hops, serve_here, ring_epoch,
                             inner_from, inner_to, m, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_forward_raw(SiteId from, SiteId to, std::uint8_t hops,
                                  bool serve_here, std::uint64_t ring_epoch,
                                  std::span<const std::uint8_t> inner_frame) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_forward_frame_raw(from, to, hops, serve_here, ring_epoch,
                                 inner_frame, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_cacher_subscribe(SiteId from, SiteId to,
                                       const wire::CacherSubscribe& cs) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_cacher_subscribe_frame(from, to, cs, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_slice_sync(SiteId from, SiteId to,
                                 const wire::SliceSyncRequest& rq) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_slice_sync_frame(from, to, rq, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_slice_sync_reply(
    SiteId from, SiteId to, std::uint64_t seq, std::uint64_t ring_epoch,
    std::uint8_t status, std::uint32_t next_cursor,
    std::span<const wire::SliceRecord> records) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_slice_sync_reply_frame(from, to, seq, ring_epoch, status,
                                      next_cursor, records, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_ring_update(SiteId from, SiteId to,
                                  std::uint64_t ring_epoch,
                                  std::span<const std::uint32_t> members) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_ring_update_frame(from, to, ring_epoch, members, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_overloaded(SiteId from, SiteId to,
                                 const wire::Overloaded& ov) {
  if (closed()) return;
  scratch_.clear();
  wire::encode_overloaded_frame(from, to, ov, scratch_);
  out_.append(scratch_.data(), scratch_.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::send_raw_frame(std::span<const std::uint8_t> frame) {
  if (closed()) return;
  out_.append(frame.data(), frame.size());
  ++stats_.frames_sent;
  after_enqueue();
}

void Connection::after_enqueue() {
  if (flush_scheduler_ && !connecting_) {
    if (pending_write_bytes() >= kFlushBypassBytes) {
      // Enough queued that overlapping the kernel send with the rest of
      // the tick beats waiting for the tick-end flush.
      flush();
    } else if (!flush_armed_) {
      flush_armed_ = true;
      flush_scheduler_(*this);
    }
  } else {
    flush();
  }
  if (pending_write_bytes() > kHighWatermark && !reading_paused_) {
    // Backpressure: stop accepting input from a peer we cannot answer.
    reading_paused_ = true;
    update_interest();
  }
}

void Connection::handle_readable() {
  for (;;) {
    const std::size_t old_size = rbuf_.size();
    rbuf_.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(fd_, rbuf_.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      rbuf_.resize(old_size + static_cast<std::size_t>(n));
      stats_.bytes_read += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    rbuf_.resize(old_size);
    if (n == 0) {
      decode_buffered();
      if (!closed() && !released_) close("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close("read error");
    return;
  }
  decode_buffered();
}

void Connection::decode_buffered() {
  while (!closed() && rconsumed_ < rbuf_.size()) {
    const std::span<const std::uint8_t> pending(rbuf_.data() + rconsumed_,
                                                rbuf_.size() - rconsumed_);
    const wire::FrameView view = wire::peek_frame(pending);
    if (view.status == wire::DecodeStatus::kNeedMore) break;
    if (!view.ok()) {
      fail_decode(view.status);
      return;
    }
    ++stats_.frames_decoded;
    if (on_frame_) on_frame_(*this, view);
    // The handler may have closed us (body-decode failure, protocol
    // decision) or released the fd for steering; either way the buffer —
    // current frame included — is no longer ours to advance.
    if (closed() || released_) return;
    rconsumed_ += view.consumed;
  }
  if (closed() || released_) return;
  if (rconsumed_ == rbuf_.size()) {
    rbuf_.clear();
    rconsumed_ = 0;
  } else if (rconsumed_ > kReadChunk) {
    rbuf_.erase(rbuf_.begin(),
                rbuf_.begin() + static_cast<std::ptrdiff_t>(rconsumed_));
    rconsumed_ = 0;
  }
}

void Connection::fail_decode(wire::DecodeStatus status) {
  if (closed()) return;
  decode_failure_ = status;
  log_decode_failure(
      status, {rbuf_.data() + rconsumed_, rbuf_.size() - rconsumed_});
  close(wire::to_cstring(status));
}

void Connection::log_decode_failure(wire::DecodeStatus status,
                                    std::span<const std::uint8_t> bad) const {
  // Best-effort header fields from whatever bytes are present; a decode
  // failure closes the connection, so this fires at most once per
  // connection. The values are read defensively — they may be garbage,
  // that is the point of printing them.
  auto u16_at = [&](std::size_t at) -> unsigned {
    return bad.size() >= at + 2
        ? static_cast<unsigned>(bad[at]) | static_cast<unsigned>(bad[at + 1]) << 8
        : 0u;
  };
  auto u32_at = [&](std::size_t at) -> unsigned long {
    if (bad.size() < at + 4) return 0;
    unsigned long v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<unsigned long>(bad[at + i]) << (8 * i);
    return v;
  };
  std::fprintf(stderr,
               "timedc-net: fd %d decode error %s "
               "(magic=0x%04x version=%u type=%u from=%lu to=%lu body_len=%lu "
               "buffered=%zu)\n",
               fd_, wire::to_cstring(status), u16_at(0),
               bad.size() >= 3 ? static_cast<unsigned>(bad[2]) : 0u,
               bad.size() >= 4 ? static_cast<unsigned>(bad[3]) : 0u,
               u32_at(4), u32_at(8), u32_at(12), bad.size());
}

}  // namespace timedc::net
