#include "net/connection.hpp"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "common/assert.hpp"

namespace timedc::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

Connection::Connection(EventLoop& loop, int fd, bool connecting)
    : loop_(loop), fd_(fd), connecting_(connecting) {
  TIMEDC_ASSERT(fd_ >= 0);
}

Connection::~Connection() {
  if (fd_ >= 0) {
    // Destroyed without close(): silent teardown (owner is shutting down),
    // no callback.
    loop_.remove_fd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  interest_ = connecting_ ? EPOLLOUT : EPOLLIN;
  loop_.add_fd(fd_, interest_, [this](std::uint32_t ev) { handle_events(ev); });
}

void Connection::update_interest() {
  if (closed()) return;
  std::uint32_t want = 0;
  if (!connecting_ && !reading_paused_) want |= EPOLLIN;
  if (connecting_ || pending_write_bytes() > 0) want |= EPOLLOUT;
  if (want != interest_) {
    interest_ = want;
    loop_.modify_fd(fd_, want);
  }
}

void Connection::close(const char* reason) {
  if (closed()) return;
  loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // Move the handler out: it may destroy captured state including this
    // function object.
    CloseHandler h = std::move(on_close_);
    on_close_ = nullptr;
    h(*this, reason);
  }
}

void Connection::handle_events(std::uint32_t events) {
  if (closed()) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    // Flush any readable remainder first so a peer that wrote-then-closed
    // still gets its last frames processed.
    if (events & EPOLLIN) handle_readable();
    if (!closed()) close("socket error/hangup");
    return;
  }
  if (events & EPOLLOUT) handle_writable();
  if (closed()) return;
  if (events & EPOLLIN) handle_readable();
  if (closed()) return;
  update_interest();
}

void Connection::handle_writable() {
  if (connecting_) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close("connect failed");
      return;
    }
    connecting_ = false;
    if (on_connected_) {
      ConnectedHandler h = std::move(on_connected_);
      on_connected_ = nullptr;
      h(*this);
      if (closed()) return;
    }
  }
  flush();
}

void Connection::flush() {
  if (closed() || connecting_) return;
  while (wsent_ < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + wsent_, wbuf_.size() - wsent_, MSG_NOSIGNAL);
    if (n > 0) {
      wsent_ += static_cast<std::size_t>(n);
      stats_.bytes_written += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close("write error");
    return;
  }
  if (wsent_ == wbuf_.size()) {
    wbuf_.clear();
    wsent_ = 0;
  } else if (wsent_ > kHighWatermark) {
    wbuf_.erase(wbuf_.begin(), wbuf_.begin() + static_cast<std::ptrdiff_t>(wsent_));
    wsent_ = 0;
  }
  if (reading_paused_ && pending_write_bytes() < kLowWatermark) {
    reading_paused_ = false;
  }
  update_interest();
}

void Connection::send_frame(SiteId from, SiteId to, const Message& m) {
  if (closed()) return;
  wire::encode_frame(from, to, m, wbuf_);
  ++stats_.frames_sent;
  append_and_flush();
}

void Connection::send_heartbeat(SiteId from, SiteId to,
                                const wire::Heartbeat& hb) {
  if (closed()) return;
  wire::encode_heartbeat_frame(from, to, hb, wbuf_);
  ++stats_.frames_sent;
  append_and_flush();
}

void Connection::send_time_sync(SiteId from, SiteId to,
                                const wire::TimeSync& ts) {
  if (closed()) return;
  wire::encode_time_sync_frame(from, to, ts, wbuf_);
  ++stats_.frames_sent;
  append_and_flush();
}

void Connection::append_and_flush() {
  flush();
  if (pending_write_bytes() > kHighWatermark && !reading_paused_) {
    // Backpressure: stop accepting input from a peer we cannot answer.
    reading_paused_ = true;
    update_interest();
  }
}

void Connection::handle_readable() {
  for (;;) {
    const std::size_t old_size = rbuf_.size();
    rbuf_.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(fd_, rbuf_.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      rbuf_.resize(old_size + static_cast<std::size_t>(n));
      stats_.bytes_read += static_cast<std::uint64_t>(n);
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    rbuf_.resize(old_size);
    if (n == 0) {
      decode_buffered();
      if (!closed()) close("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close("read error");
    return;
  }
  decode_buffered();
}

void Connection::decode_buffered() {
  while (!closed() && rconsumed_ < rbuf_.size()) {
    const std::span<const std::uint8_t> pending(rbuf_.data() + rconsumed_,
                                                rbuf_.size() - rconsumed_);
    wire::DecodedFrame frame = wire::decode_frame(pending);
    if (frame.status == wire::DecodeStatus::kNeedMore) break;
    if (!frame.ok()) {
      decode_failure_ = frame.status;
      log_decode_failure(frame.status, pending);
      close(wire::to_cstring(frame.status));
      return;
    }
    rconsumed_ += frame.consumed;
    ++stats_.frames_decoded;
    if (on_frame_) on_frame_(*this, frame);
  }
  if (closed()) return;
  if (rconsumed_ == rbuf_.size()) {
    rbuf_.clear();
    rconsumed_ = 0;
  } else if (rconsumed_ > kReadChunk) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<std::ptrdiff_t>(rconsumed_));
    rconsumed_ = 0;
  }
}

void Connection::log_decode_failure(wire::DecodeStatus status,
                                    std::span<const std::uint8_t> bad) const {
  // Best-effort header fields from whatever bytes are present; a decode
  // failure closes the connection, so this fires at most once per
  // connection. The values are read defensively — they may be garbage,
  // that is the point of printing them.
  auto u16_at = [&](std::size_t at) -> unsigned {
    return bad.size() >= at + 2
        ? static_cast<unsigned>(bad[at]) | static_cast<unsigned>(bad[at + 1]) << 8
        : 0u;
  };
  auto u32_at = [&](std::size_t at) -> unsigned long {
    if (bad.size() < at + 4) return 0;
    unsigned long v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<unsigned long>(bad[at + i]) << (8 * i);
    return v;
  };
  std::fprintf(stderr,
               "timedc-net: fd %d decode error %s "
               "(magic=0x%04x version=%u type=%u from=%lu to=%lu body_len=%lu "
               "buffered=%zu)\n",
               fd_, wire::to_cstring(status), u16_at(0),
               bad.size() >= 3 ? static_cast<unsigned>(bad[2]) : 0u,
               bad.size() >= 4 ? static_cast<unsigned>(bad[3]) : 0u,
               u32_at(4), u32_at(8), u32_at(12), bad.size());
}

}  // namespace timedc::net
