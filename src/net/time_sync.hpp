// Cristian-style clock synchronization over the real TCP transport
// (Section 3.2, S12; the real-network counterpart of sim/clock_sync.hpp).
//
// A TimeSyncClient owns one site's synchronization against a time server
// reachable through a TcpTransport route. Every `period` it sends a
// kTimeRequest stamped with its hardware clock, pairs the kTimeReply by
// sequence number, and feeds the exchange into the shared SyncEstimator
// (clocks/sync_estimator.hpp) — the same offset/epsilon math the simulator
// substrate uses, so the two cannot diverge. Rounds whose RTT exceeds a
// percentile of recent accepted rounds are rejected as outliers (a latency
// spike yields a weak midpoint estimate), and rounds with no reply within
// `timeout` are abandoned.
//
// The epsilon contract: epsilon() is this clock's *measured* one-sided
// error bound right now — RTT/2 of the last accepted round plus drift-rate
// growth since it. When the time server becomes unreachable no estimate is
// ever reused silently: epsilon simply keeps widening at the assumed drift
// rate, which is exactly the graceful degradation Definition 2's skew bound
// needs. The pairwise bound between two synced sites is the sum of their
// epsilons.
//
// AdaptiveDelta turns the measured bounds into a Maxwait-style effective
// Delta budget: the configured Delta is an upper bound the adaptation can
// only tighten (shed over-waiting), never exceed — correctness is preserved
// by construction, and the budget floors at zero when epsilon alone
// swallows it.
#pragma once

#include <cstdint>
#include <functional>

#include "clocks/physical_clock.hpp"
#include "clocks/sync_estimator.hpp"
#include "net/tcp_transport.hpp"
#include "obs/trace.hpp"

namespace timedc::net {

struct TimeSyncConfig {
  /// Resync cadence; the first request fires immediately on start().
  SimTime period = SimTime::millis(250);
  /// A round with no reply within this window is abandoned. Zero derives
  /// min(period, 2 * transport latency bound, 1s).
  SimTime timeout = SimTime::zero();
  /// Offset/epsilon estimation. The net default enables outlier rejection
  /// at the 90th percentile (unlike the sim substrate, real RTTs spike).
  SyncEstimatorConfig estimator{.outlier_percentile = 0.9};
};

struct TimeSyncStats {
  std::uint64_t rounds_sent = 0;
  std::uint64_t rounds_accepted = 0;
  std::uint64_t rounds_rejected = 0;   // RTT outliers
  std::uint64_t rounds_timed_out = 0;  // no reply within the timeout
  std::uint64_t send_failures = 0;     // transport had no usable connection
  std::int64_t last_rtt_us = 0;
  std::int64_t offset_us = 0;   // current correction (signed)
  std::int64_t eps_us = -1;     // one-sided bound now; -1 = unsynchronized
};

class TimeSyncClient {
 public:
  /// Syncs `self`'s clock against the transport-level time service of the
  /// process hosting `server` (any TcpTransport answers kTimeRequest).
  /// `hardware` is the local free-running oscillator; pass a PerfectClock
  /// to sync a well-behaved host, a DriftingClock to emulate skew. All
  /// methods are loop-thread only.
  TimeSyncClient(TcpTransport& transport, SiteId self, SiteId server,
                 const PhysicalClockModel* hardware, TimeSyncConfig config = {},
                 Tracer* tracer = nullptr);

  /// Register the transport handler and begin periodic rounds.
  void start();
  /// Stop issuing rounds (in-flight replies are ignored).
  void stop();

  /// Corrected clock reading: hardware + estimated offset.
  SimTime now() const { return estimator_.now(hardware_now()); }
  /// Current correction (what now() adds to the hardware reading).
  SimTime offset() const { return estimator_.correction(); }
  /// One-sided measured error bound right now; infinity until the first
  /// accepted round, widening at the drift rate while the server is away.
  SimTime epsilon() const { return estimator_.error_bound(hardware_now()); }
  bool synced() const { return estimator_.synced(); }

  const SyncEstimator& estimator() const { return estimator_; }
  /// Counters plus eps/offset gauges sampled at call time.
  TimeSyncStats stats() const;

 private:
  SimTime hardware_now() const { return hardware_->read(transport_.now()); }
  SimTime timeout() const;
  void send_round();
  void on_reply(const wire::TimeSync& ts);

  TcpTransport& transport_;
  SiteId self_;
  SiteId server_;
  const PhysicalClockModel* hardware_;
  TimeSyncConfig config_;
  Tracer* tracer_;
  SyncEstimator estimator_;
  TimeSyncStats stats_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t outstanding_seq_ = 0;  // 0 = none
  SimTime request_sent_hw_ = SimTime::zero();
  /// Bumped by start()/stop() so stale timers recognise themselves.
  std::uint64_t generation_ = 0;
  bool running_ = false;
};

/// A PhysicalClockModel view over a TimeSyncClient: read(t) is the hardware
/// reading at t corrected by the current estimate, so protocol code that
/// takes a clock model (CacheClient) transparently follows the sync.
class CorrectedClock final : public PhysicalClockModel {
 public:
  CorrectedClock(const PhysicalClockModel* hardware,
                 const TimeSyncClient* sync)
      : hardware_(hardware), sync_(sync) {}

  SimTime read(SimTime true_time) const override {
    return hardware_->read(true_time) + sync_->offset();
  }
  /// The honest bound is the live measured epsilon, not a static constant.
  SimTime max_offset() const override { return sync_->epsilon(); }

 private:
  const PhysicalClockModel* hardware_;
  const TimeSyncClient* sync_;
};

/// Maxwait-style adaptive Delta policy: how much of the configured budget
/// to shed against measured conditions.
struct AdaptiveDeltaConfig {
  /// Fraction of the last measured sync RTT additionally shed, as margin
  /// for in-flight staleness.
  double rtt_margin_factor = 0.5;
  /// Only adaptations that move the effective Delta by at least this much
  /// emit a delta.adapt trace event (the bound drifts every microsecond).
  SimTime trace_quantum = SimTime::millis(1);
};

/// Computes the effective Delta budget for a cache client:
///
///   effective = clamp(configured - epsilon - rtt_margin, 0, configured)
///
/// Tightening is always safe: a smaller Delta only makes rule 3 advance
/// the cache context further, shedding staleness the measured clock error
/// could otherwise hide. The budget never exceeds the configured Delta and
/// floors at zero when epsilon alone exceeds it (the cache then behaves
/// like Delta = 0 and always revalidates). Unsynchronized (epsilon
/// infinite) likewise yields zero: an unknown skew gets no staleness
/// budget.
class AdaptiveDelta {
 public:
  AdaptiveDelta(const TimeSyncClient* sync, AdaptiveDeltaConfig config = {})
      : sync_(sync), config_(config) {}

  SimTime effective(SimTime configured) const;

  const AdaptiveDeltaConfig& config() const { return config_; }

 private:
  const TimeSyncClient* sync_;
  AdaptiveDeltaConfig config_;
};

}  // namespace timedc::net
