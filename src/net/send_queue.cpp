#include "net/send_queue.hpp"

#include <sys/uio.h>

#include <cstring>

#include "common/assert.hpp"

namespace timedc::net {

SendQueue::SendQueue() : ring_(2) {}

void SendQueue::push_chunk() {
  if (count_ == ring_.size()) {
    // Grow the ring to the next power of two, re-packing live chunks to the
    // front so the index mask stays valid.
    std::vector<Chunk> bigger(ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }
  Chunk& c = ring_[(head_ + count_) & (ring_.size() - 1)];
  c.data.clear();  // keeps capacity: recycled chunks never reallocate
  c.sent = 0;
  ++count_;
}

void SendQueue::append(const std::uint8_t* data, std::size_t n) {
  pending_ += n;
  while (n > 0) {
    if (count_ == 0 || tail().data.size() == kChunkBytes) push_chunk();
    Chunk& c = tail();
    const std::size_t room = kChunkBytes - c.data.size();
    const std::size_t take = n < room ? n : room;
    c.data.insert(c.data.end(), data, data + take);
    data += take;
    n -= take;
  }
}

std::size_t SendQueue::gather(struct iovec* iov) const {
  std::size_t filled = 0;
  for (std::size_t i = 0; i < count_ && filled < kMaxIov; ++i) {
    const Chunk& c = ring_[(head_ + i) & (ring_.size() - 1)];
    const std::size_t unsent = c.data.size() - c.sent;
    if (unsent == 0) continue;  // only possible for the head chunk
    iov[filled].iov_base =
        const_cast<std::uint8_t*>(c.data.data()) + c.sent;
    iov[filled].iov_len = unsent;
    ++filled;
  }
  return filled;
}

void SendQueue::consume(std::size_t n) {
  TIMEDC_ASSERT(n <= pending_);
  pending_ -= n;
  while (n > 0) {
    Chunk& c = ring_[head_ & (ring_.size() - 1)];
    const std::size_t unsent = c.data.size() - c.sent;
    if (n < unsent) {
      c.sent += n;
      return;
    }
    n -= unsent;
    c.sent = c.data.size();
    // Recycle: the chunk stays in the ring with its capacity; the next
    // push_chunk() reuses it.
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
  }
}

void SendQueue::clear() {
  while (count_ > 0) {
    ring_[head_ & (ring_.size() - 1)].sent = 0;
    ring_[head_ & (ring_.size() - 1)].data.clear();
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
  }
  pending_ = 0;
}

}  // namespace timedc::net
