#include "net/time_sync.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc::net {

TimeSyncClient::TimeSyncClient(TcpTransport& transport, SiteId self,
                               SiteId server,
                               const PhysicalClockModel* hardware,
                               TimeSyncConfig config, Tracer* tracer)
    : transport_(transport),
      self_(self),
      server_(server),
      hardware_(hardware),
      config_(config),
      tracer_(tracer),
      estimator_(config.estimator) {
  TIMEDC_ASSERT(hardware != nullptr);
  TIMEDC_ASSERT(config.period > SimTime::zero());
}

SimTime TimeSyncClient::timeout() const {
  if (config_.timeout > SimTime::zero()) return config_.timeout;
  const SimTime lat = transport_.latency_upper_bound().is_infinite()
                          ? SimTime::seconds(1)
                          : transport_.latency_upper_bound();
  return min(config_.period, min(lat * 2, SimTime::seconds(1)));
}

void TimeSyncClient::start() {
  TIMEDC_ASSERT(!running_);
  running_ = true;
  ++generation_;
  transport_.set_time_sync_handler(
      [this](SiteId, const wire::TimeSync& ts) { on_reply(ts); });
  send_round();
}

void TimeSyncClient::stop() {
  running_ = false;
  ++generation_;
  outstanding_seq_ = 0;
}

void TimeSyncClient::send_round() {
  if (!running_) return;
  const std::uint64_t generation = generation_;
  transport_.run_after(config_.period, [this, generation]() {
    if (generation == generation_) send_round();
  });

  wire::TimeSync request;
  request.seq = next_seq_++;
  request.client_send_us = hardware_now().as_micros();
  request_sent_hw_ = SimTime::micros(request.client_send_us);
  outstanding_seq_ = request.seq;
  if (!transport_.send_time_sync(self_, server_, request)) {
    ++stats_.send_failures;
    outstanding_seq_ = 0;
    return;  // epsilon keeps widening; the next period retries
  }
  ++stats_.rounds_sent;

  const std::uint64_t seq = request.seq;
  transport_.run_after(timeout(), [this, generation, seq]() {
    if (generation != generation_ || outstanding_seq_ != seq) return;
    outstanding_seq_ = 0;
    ++stats_.rounds_timed_out;
    if (tracer_) {
      tracer_->emit(TraceEventType::kClockReject, transport_.now(), self_,
                    kNoObject, seq, /*a=*/1, /*b=*/0);
    }
  });
}

void TimeSyncClient::on_reply(const wire::TimeSync& ts) {
  // Only the newest outstanding round is usable: request_sent_hw_ belongs
  // to it, so an older (slower) reply would compute a bogus RTT.
  if (!running_ || ts.seq != outstanding_seq_) return;
  outstanding_seq_ = 0;
  const SimTime receive_hw = hardware_now();
  const bool accepted = estimator_.on_reply(
      {request_sent_hw_, SimTime::micros(ts.server_time_us), receive_hw});
  if (accepted) {
    ++stats_.rounds_accepted;
  } else {
    ++stats_.rounds_rejected;
  }
  if (tracer_) {
    const SimTime at = transport_.now();
    if (accepted) {
      tracer_->emit(TraceEventType::kClockSync, at, self_, kNoObject, ts.seq,
                    estimator_.correction().as_micros(),
                    estimator_.last_rtt().as_micros());
    } else {
      tracer_->emit(TraceEventType::kClockReject, at, self_, kNoObject, ts.seq,
                    /*a=*/0, estimator_.last_rtt().as_micros());
    }
    const SimTime eps = epsilon();
    tracer_->emit(TraceEventType::kClockEps, at, self_, kNoObject, ts.seq, 0,
                  eps.is_infinite() ? -1 : eps.as_micros());
  }
}

TimeSyncStats TimeSyncClient::stats() const {
  TimeSyncStats s = stats_;
  s.last_rtt_us = estimator_.last_rtt().as_micros();
  s.offset_us = estimator_.correction().as_micros();
  const SimTime eps = epsilon();
  s.eps_us = eps.is_infinite() ? -1 : eps.as_micros();
  return s;
}

SimTime AdaptiveDelta::effective(SimTime configured) const {
  if (configured.is_infinite()) return configured;  // plain SC: no budget
  const SimTime eps = sync_->epsilon();
  if (eps.is_infinite()) return SimTime::zero();  // unknown skew: no budget
  const double margin_us = config_.rtt_margin_factor *
                           static_cast<double>(sync_->estimator().last_rtt().as_micros());
  const SimTime shed = eps + SimTime::micros(static_cast<std::int64_t>(margin_us));
  const SimTime effective = configured - shed;
  return std::clamp(effective, SimTime::zero(), configured);
}

}  // namespace timedc::net
