// The message transport abstraction: how protocol messages move between
// sites, and where "now" and timers come from.
//
// Two implementations exist:
//   * the deterministic in-process sim Network (src/sim/network.hpp), whose
//     clock and timers are the discrete-event Simulator — every experiment
//     stays bit-for-bit reproducible;
//   * the real TcpTransport (src/net/tcp_transport.hpp), which frames
//     messages with the wire codec over non-blocking sockets driven by an
//     epoll EventLoop, with CLOCK_REALTIME as the time source.
// ObjectServer and both CacheClient families are written against this
// interface only, so the Section 5 protocols run unchanged over either.
//
// Threading contract: every method is called from the transport's dispatch
// context (the simulator run loop, or the owning EventLoop's thread).
// Handlers are invoked from that same context.
#pragma once

#include <cstddef>
#include <functional>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "protocol/messages.hpp"

namespace timedc {

class Transport {
 public:
  /// Invoked for each delivered message as (sender site, message).
  using MessageHandler = std::function<void(SiteId from, const Message&)>;

  virtual ~Transport() = default;

  /// Install `handler` as the protocol endpoint for local site `self`.
  virtual void register_site(SiteId self, MessageHandler handler) = 0;

  /// Send `m` from -> to. `bytes` is the accounted message size (the sim
  /// cost model); real transports also track actual encoded bytes.
  /// Delivery is asynchronous: the handler never runs inside this call.
  virtual void send_message(SiteId from, SiteId to, Message m,
                            std::size_t bytes) = 0;

  /// The transport's time source: simulated time on the sim network, real
  /// (CLOCK_REALTIME) microseconds on TCP. All protocol timestamps
  /// (lifetimes, leases, Delta budgets) are read through this.
  virtual SimTime now() const = 0;

  /// Run `fn` once, `delay` from now, in the dispatch context.
  virtual void run_after(SimTime delay, std::function<void()> fn) = 0;

  /// An upper bound on one-way delivery latency, used to budget RPC
  /// timeouts (infinite when the transport cannot promise one).
  virtual SimTime latency_upper_bound() const = 0;

  /// True when requests reach servers through the wire codec, in which case
  /// the server rejects requests with request_id == 0 ("unsequenced" is a
  /// raw in-process test convention, never a legal wire value).
  virtual bool requires_sequenced_requests() const { return false; }

  /// False when the transport has positive evidence that `to` is currently
  /// unreachable (e.g. a supervised TCP peer whose connection is DEAD).
  /// Advisory only — true means "no evidence against", never a delivery
  /// guarantee. The sim Network keeps the default: its fault model decides
  /// delivery per message, and the RPC layer's timeouts see the effects.
  virtual bool peer_reachable(SiteId /*to*/) const { return true; }

  /// True while the message currently being dispatched arrived in a
  /// kForward frame with the serve-here flag: a WARMING owner forwarded it
  /// through to this site (its previous owner), which must answer from
  /// local state even if its own ring disagrees — re-forwarding would
  /// loop. Only TcpTransport ever returns true, and only for the duration
  /// of that dispatch.
  virtual bool dispatch_serve_locally() const { return false; }
};

}  // namespace timedc
