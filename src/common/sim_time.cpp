#include "common/sim_time.hpp"

// SimTime is header-only today; this translation unit anchors the library
// and keeps a home for future out-of-line helpers.
namespace timedc {}
