// Deterministic random number generation.
//
// Every experiment in the bench suite must be reproducible bit-for-bit, so
// the library carries its own small PRNG (xoshiro256**) instead of relying
// on implementation-defined std::default_random_engine behaviour, plus the
// distributions the workload generators need (uniform, exponential, Zipf).
#pragma once

#include <cstdint>
#include <vector>

namespace timedc {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Split off an independent stream; deterministic given the parent state.
  Rng split();

  /// An independent stream for task `index` of a run seeded with `seed`:
  /// a pure function of (seed, index), so parallel_map tasks that seed
  /// themselves this way produce bit-identical results at any thread
  /// count — the per-index RNG split of the parallel experiment engine.
  static Rng stream(std::uint64_t seed, std::uint64_t index);

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n). Uses the classic inverse-CDF table,
/// which is exact and fast for the object-population sizes the workload
/// generators use (up to a few hundred thousand objects).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace timedc
