// Deterministic parallel experiment engine.
//
// The bench suite's hot loops are embarrassingly parallel: thousands of
// independent (seed, history) tasks whose results are reduced at the end.
// ThreadPool + parallel_map fan those tasks over a fixed set of worker
// threads while keeping the contract every experiment here depends on:
// results are **bit-identical to the serial loop at any thread count**,
// because each task's output is a pure function of its index (tasks derive
// their randomness from Rng::stream(seed, index), never from a shared
// stream) and parallel_map stores result i at slot i regardless of which
// worker computed it.
//
// Scheduling is dynamic (workers claim the next unclaimed index), so
// uneven task costs — e.g. the NP-complete SC checks — balance without
// affecting determinism. Claims are handed out under a mutex: tasks here
// are coarse (whole histories, whole simulated runs), so claim overhead is
// noise, and the pool stays trivially race-free under ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace timedc {

class ThreadPool {
 public:
  /// 0 = default_threads(). A pool of size <= 1 runs tasks inline on the
  /// calling thread (no workers are spawned).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads executing tasks (>= 1; 1 means inline/serial).
  std::size_t num_threads() const { return workers_.empty() ? 1 : workers_.size(); }

  /// Runs fn(0) ... fn(n-1), each exactly once, and returns when all are
  /// done. Not reentrant: do not call from inside a task of the same pool.
  /// If a task throws, the first exception is rethrown here after the
  /// batch drains.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Worker count used by pools constructed with 0: the TIMEDC_THREADS
  /// environment variable if set (clamped to >= 1), otherwise
  /// std::thread::hardware_concurrency().
  static std::size_t default_threads();

 private:
  void worker();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current batch, all guarded by mu_.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t batch_n_ = 0;
  std::size_t next_index_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

/// parallel_map over [0, n): returns {fn(0), ..., fn(n-1)} with result i at
/// index i. The result type must be default-constructible and movable.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using R = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<R> out(n);
  pool.for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Convenience overload with a transient pool. num_threads = 0 uses
/// ThreadPool::default_threads(); 1 is the serial loop.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t num_threads = 0)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  ThreadPool pool(num_threads);
  return parallel_map(pool, n, std::forward<Fn>(fn));
}

}  // namespace timedc
