// Lightweight always-on assertion used across the library.
//
// The consistency checkers and protocol state machines rely on invariants
// that must hold regardless of build type, so these are not compiled out in
// release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace timedc {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "timedc assertion failed: %s (%s:%d)\n", expr, file, line);
  std::abort();
}

}  // namespace timedc

#define TIMEDC_ASSERT(expr) \
  ((expr) ? (void)0 : ::timedc::assert_fail(#expr, __FILE__, __LINE__))
