// Simulated real time.
//
// All "physical" timestamps in the library (effective times T(a), the
// timeliness threshold Delta, the clock-skew bound epsilon, network
// latencies) are SimTime values: signed 64-bit microsecond counts with a
// distinguished +infinity so that Delta = infinity degenerates timed
// consistency into plain SC/CC exactly as Figure 4.b of the paper shows.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "common/assert.hpp"

namespace timedc {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime infinity() { return SimTime(kInfinity); }
  static constexpr SimTime micros(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime millis(std::int64_t n) { return SimTime(n * 1000); }
  static constexpr SimTime seconds(std::int64_t n) { return SimTime(n * 1000000); }

  constexpr std::int64_t as_micros() const { return micros_; }
  constexpr double as_seconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr bool is_infinite() const { return micros_ == kInfinity; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime other) const {
    if (is_infinite() || other.is_infinite()) return infinity();
    return SimTime(micros_ + other.micros_);
  }
  constexpr SimTime operator-(SimTime other) const {
    // infinity - finite stays infinite; finite - infinity saturates to the
    // most negative value (used as "no lower bound" by the timed checks).
    if (is_infinite()) return infinity();
    if (other.is_infinite()) return SimTime(std::numeric_limits<std::int64_t>::min());
    return SimTime(micros_ - other.micros_);
  }
  constexpr SimTime& operator+=(SimTime other) { return *this = *this + other; }

  constexpr SimTime operator*(std::int64_t k) const {
    if (is_infinite()) return infinity();
    return SimTime(micros_ * k);
  }
  constexpr SimTime operator/(std::int64_t k) const {
    TIMEDC_ASSERT(k != 0);
    if (is_infinite()) return infinity();
    return SimTime(micros_ / k);
  }

  std::string to_string() const {
    if (is_infinite()) return "inf";
    return std::to_string(micros_) + "us";
  }

 private:
  static constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max();
  std::int64_t micros_ = 0;
};

constexpr SimTime min(SimTime a, SimTime b) { return a < b ? a : b; }
constexpr SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }

}  // namespace timedc
