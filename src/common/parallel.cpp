#include "common/parallel.hpp"

#include <cstdlib>

namespace timedc {

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("TIMEDC_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_threads();
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  job_ = &fn;
  batch_n_ = n;
  next_index_ = 0;
  remaining_ = n;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lk, [this] { return remaining_ == 0; });
  job_ = nullptr;
  batch_n_ = 0;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lk, [&] {
      return stop_ || (generation_ != seen_generation && next_index_ < batch_n_);
    });
    if (stop_) return;
    seen_generation = generation_;
    while (next_index_ < batch_n_) {
      const std::size_t i = next_index_++;
      const auto* job = job_;
      lk.unlock();
      try {
        (*job)(i);
      } catch (...) {
        lk.lock();
        if (!error_) error_ = std::current_exception();
        lk.unlock();
      }
      lk.lock();
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace timedc
