// Strong identifier types shared by every module.
//
// Sites, objects and operations are identified by small integers throughout
// the library; wrapping them in distinct types prevents the classic bug of
// passing a site id where an object id is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace timedc {

/// Identifies one site (process/node) of the distributed system.
struct SiteId {
  std::uint32_t value = 0;
  friend auto operator<=>(const SiteId&, const SiteId&) = default;
};

/// Identifies one shared object (the paper's X, A, B, C...).
struct ObjectId {
  std::uint32_t value = 0;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

/// A value written to / read from a shared object. The paper assumes every
/// written value is unique, which the history builders enforce.
struct Value {
  std::int64_t value = 0;
  friend auto operator<=>(const Value&, const Value&) = default;
};

/// Dense per-history operation index (position in the global history H).
struct OpIndex {
  std::uint32_t value = 0;
  friend auto operator<=>(const OpIndex&, const OpIndex&) = default;
};

inline std::string to_string(SiteId s) { return "site" + std::to_string(s.value); }
inline std::string to_string(ObjectId o) {
  // Small object ids print as the paper's letters A, B, C... for readability.
  if (o.value < 26) return std::string(1, static_cast<char>('A' + o.value));
  return "obj" + std::to_string(o.value);
}

}  // namespace timedc

template <>
struct std::hash<timedc::SiteId> {
  size_t operator()(timedc::SiteId s) const noexcept { return std::hash<std::uint32_t>{}(s.value); }
};
template <>
struct std::hash<timedc::ObjectId> {
  size_t operator()(timedc::ObjectId o) const noexcept { return std::hash<std::uint32_t>{}(o.value); }
};
template <>
struct std::hash<timedc::Value> {
  size_t operator()(timedc::Value v) const noexcept { return std::hash<std::int64_t>{}(v.value); }
};
