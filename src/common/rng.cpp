#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace timedc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TIMEDC_ASSERT(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  TIMEDC_ASSERT(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

Rng Rng::split() {
  return Rng(next_u64());
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t index) {
  // Finalize the index through the SplitMix64 mixer before combining, so
  // consecutive indices land in well-separated seed states.
  std::uint64_t z = index + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return Rng(seed ^ z);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  TIMEDC_ASSERT(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace timedc
