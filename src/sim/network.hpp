// Simulated message-passing network.
//
// Delivers opaque payloads between numbered nodes with a pluggable latency
// model, optional message loss, and optional per-link FIFO ordering. The
// protocol layers define their own message types and register a handler per
// node; the network only owns timing.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace timedc {

/// Samples a one-way latency for a (from, to) pair.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime sample(SiteId from, SiteId to, Rng& rng) = 0;
  /// An upper bound on sampled latencies, if one exists (infinity otherwise);
  /// protocols that promise Delta-timeliness need it to budget validations.
  virtual SimTime upper_bound() const = 0;
};

class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime latency) : latency_(latency) {}
  SimTime sample(SiteId, SiteId, Rng&) override { return latency_; }
  SimTime upper_bound() const override { return latency_; }

 private:
  SimTime latency_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
    TIMEDC_ASSERT(lo <= hi);
  }
  SimTime sample(SiteId, SiteId, Rng& rng) override {
    return SimTime::micros(rng.uniform_int(lo_.as_micros(), hi_.as_micros()));
  }
  SimTime upper_bound() const override { return hi_; }

 private:
  SimTime lo_, hi_;
};

/// Exponential latency shifted by a propagation floor and truncated at a
/// cap (heavy-ish tail, but still bounded so timed protocols can budget).
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(SimTime floor, SimTime mean_extra, SimTime cap)
      : floor_(floor), mean_extra_(mean_extra), cap_(cap) {
    TIMEDC_ASSERT(floor <= cap);
  }
  SimTime sample(SiteId, SiteId, Rng& rng) override {
    const double extra =
        rng.exponential(static_cast<double>(mean_extra_.as_micros()));
    SimTime t = floor_ + SimTime::micros(static_cast<std::int64_t>(extra));
    return min(t, cap_);
  }
  SimTime upper_bound() const override { return cap_; }

 private:
  SimTime floor_, mean_extra_, cap_;
};

struct NetworkConfig {
  double drop_probability = 0.0;
  bool fifo_links = true;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  // delivered counts arrivals, so with duplication it can exceed sent.
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;  // extra copies injected by faults
  std::uint64_t bytes_sent = 0;
};

class FaultInjector;
class Tracer;

/// Type-erased network: payloads are delivered to a per-node handler as
/// (from, payload). Payload ownership transfers via shared_ptr<void>; the
/// protocol layers wrap/unwrap their concrete message structs.
///
/// Network is also the deterministic Transport implementation: the typed
/// register_site/send_message entry points wrap the raw shared_ptr<void>
/// paths one-to-one (same allocations, same scheduling), so protocol code
/// moved onto Transport produces bit-identical simulations.
class Network final : public Transport {
 public:
  using Handler =
      std::function<void(SiteId from, const std::shared_ptr<void>& payload)>;

  Network(Simulator& sim, std::size_t num_nodes,
          std::unique_ptr<LatencyModel> latency, NetworkConfig config,
          Rng rng);

  void set_handler(SiteId node, Handler handler);

  /// Send `payload` of accounted size `bytes` from -> to. Self-sends are
  /// delivered after the sampled latency too (loopback is not free).
  void send(SiteId from, SiteId to, std::shared_ptr<void> payload,
            std::size_t bytes);

  // Transport: typed wrappers over the raw paths above, plus the sim's
  // clock and timer wheel as the protocol time source.
  void register_site(SiteId self, MessageHandler handler) override;
  void send_message(SiteId from, SiteId to, Message m,
                    std::size_t bytes) override {
    send(from, to, std::make_shared<Message>(std::move(m)), bytes);
  }
  SimTime now() const override { return sim_.now(); }
  void run_after(SimTime delay, std::function<void()> fn) override {
    sim_.schedule_after(delay, std::move(fn));
  }
  SimTime latency_upper_bound() const override {
    return latency_->upper_bound();
  }

  /// Route every send through `injector` (drops, partitions, duplication,
  /// latency spikes, crashed destinations). Pass nullptr to detach. The
  /// injector must outlive the network while attached.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Emit net.send/drop/dup/deliver events to `tracer` (nullptr = off).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  const NetworkStats& stats() const { return stats_; }
  LatencyModel& latency() { return *latency_; }
  std::size_t num_nodes() const { return handlers_.size(); }

 private:
  void schedule_delivery(SiteId from, SiteId to, SimTime deliver_at,
                         const std::shared_ptr<void>& payload);
  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  NetworkConfig config_;
  FaultInjector* injector_ = nullptr;
  Tracer* tracer_ = nullptr;
  Rng rng_;
  std::vector<Handler> handlers_;
  // Last scheduled delivery time per (from, to), for FIFO links.
  std::vector<std::vector<SimTime>> last_delivery_;
  NetworkStats stats_;
};

}  // namespace timedc
