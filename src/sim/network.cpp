#include "sim/network.hpp"

namespace timedc {

Network::Network(Simulator& sim, std::size_t num_nodes,
                 std::unique_ptr<LatencyModel> latency, NetworkConfig config,
                 Rng rng)
    : sim_(sim),
      latency_(std::move(latency)),
      config_(config),
      rng_(rng),
      handlers_(num_nodes),
      last_delivery_(num_nodes, std::vector<SimTime>(num_nodes, SimTime::zero())) {
  TIMEDC_ASSERT(latency_ != nullptr);
}

void Network::set_handler(SiteId node, Handler handler) {
  TIMEDC_ASSERT(node.value < handlers_.size());
  handlers_[node.value] = std::move(handler);
}

void Network::send(SiteId from, SiteId to, std::shared_ptr<void> payload,
                   std::size_t bytes) {
  TIMEDC_ASSERT(from.value < handlers_.size());
  TIMEDC_ASSERT(to.value < handlers_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  if (config_.drop_probability > 0 && rng_.bernoulli(config_.drop_probability)) {
    ++stats_.messages_dropped;
    return;
  }
  SimTime deliver_at = sim_.now() + latency_->sample(from, to, rng_);
  if (config_.fifo_links) {
    SimTime& last = last_delivery_[from.value][to.value];
    deliver_at = max(deliver_at, last);
    last = deliver_at;
  }
  sim_.schedule_at(deliver_at, [this, from, to, payload = std::move(payload)]() {
    ++stats_.messages_delivered;
    TIMEDC_ASSERT(handlers_[to.value] != nullptr);
    handlers_[to.value](from, payload);
  });
}

}  // namespace timedc
