#include "sim/network.hpp"

#include "obs/trace.hpp"
#include "sim/faults.hpp"

namespace timedc {

Network::Network(Simulator& sim, std::size_t num_nodes,
                 std::unique_ptr<LatencyModel> latency, NetworkConfig config,
                 Rng rng)
    : sim_(sim),
      latency_(std::move(latency)),
      config_(config),
      rng_(rng),
      handlers_(num_nodes),
      last_delivery_(num_nodes, std::vector<SimTime>(num_nodes, SimTime::zero())) {
  TIMEDC_ASSERT(latency_ != nullptr);
}

void Network::set_handler(SiteId node, Handler handler) {
  TIMEDC_ASSERT(node.value < handlers_.size());
  handlers_[node.value] = std::move(handler);
}

void Network::register_site(SiteId self, MessageHandler handler) {
  set_handler(self, [handler = std::move(handler)](
                        SiteId from, const std::shared_ptr<void>& payload) {
    handler(from, *std::static_pointer_cast<Message>(payload));
  });
}

void Network::send(SiteId from, SiteId to, std::shared_ptr<void> payload,
                   std::size_t bytes) {
  TIMEDC_ASSERT(from.value < handlers_.size());
  TIMEDC_ASSERT(to.value < handlers_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  if (tracer_ != nullptr) {
    tracer_->emit(TraceEventType::kNetSend, sim_.now(), from, kNoObject, 0,
                  to.value, static_cast<std::int64_t>(bytes));
  }
  FaultInjector::Decision fault;
  if (injector_ != nullptr) fault = injector_->on_send(from, to, sim_.now());
  if (fault.drop) {
    ++stats_.messages_dropped;
    if (tracer_ != nullptr) {
      tracer_->emit(TraceEventType::kNetDrop, sim_.now(), from, kNoObject, 0,
                    to.value, 0);
    }
    return;
  }
  if (config_.drop_probability > 0 && rng_.bernoulli(config_.drop_probability)) {
    ++stats_.messages_dropped;
    if (tracer_ != nullptr) {
      tracer_->emit(TraceEventType::kNetDrop, sim_.now(), from, kNoObject, 0,
                    to.value, 0);
    }
    return;
  }
  SimTime deliver_at =
      sim_.now() + latency_->sample(from, to, rng_) + fault.extra_latency;
  if (config_.fifo_links) {
    SimTime& last = last_delivery_[from.value][to.value];
    deliver_at = max(deliver_at, last);
    last = deliver_at;
  }
  schedule_delivery(from, to, deliver_at, payload);
  if (fault.duplicate) {
    ++stats_.messages_duplicated;
    if (tracer_ != nullptr) {
      tracer_->emit(TraceEventType::kNetDuplicate, sim_.now(), from, kNoObject,
                    0, to.value, 0);
    }
    SimTime dup_at =
        sim_.now() + latency_->sample(from, to, rng_) + fault.extra_latency;
    if (config_.fifo_links) {
      SimTime& last = last_delivery_[from.value][to.value];
      dup_at = max(dup_at, last);
      last = dup_at;
    }
    schedule_delivery(from, to, dup_at, payload);
  }
}

void Network::schedule_delivery(SiteId from, SiteId to, SimTime deliver_at,
                                const std::shared_ptr<void>& payload) {
  sim_.schedule_at(deliver_at, [this, from, to, payload]() {
    // A destination that crashed while the message was in flight loses it:
    // crash wipes any state the delivery would have touched anyway.
    if (injector_ != nullptr && injector_->node_down(to, sim_.now())) {
      ++stats_.messages_dropped;
      injector_->note_dropped_at_delivery();
      if (tracer_ != nullptr) {
        tracer_->emit(TraceEventType::kNetDrop, sim_.now(), to, kNoObject, 0,
                      to.value, 1);
      }
      return;
    }
    ++stats_.messages_delivered;
    if (tracer_ != nullptr) {
      tracer_->emit(TraceEventType::kNetDeliver, sim_.now(), to, kNoObject, 0,
                    from.value, 0);
    }
    TIMEDC_ASSERT(handlers_[to.value] != nullptr);
    handlers_[to.value](from, payload);
  });
}

}  // namespace timedc
