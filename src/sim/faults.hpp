// Scriptable fault injection for the simulated network.
//
// A FaultPlan describes, on the simulator's virtual timeline, the ways a
// deployment's network and servers misbehave: timed partitions that cut a
// set of links and later heal, per-link windows of message loss /
// duplication / latency inflation, and server crash/restart events. A
// FaultInjector executes the plan deterministically — the Network consults
// it on every send, and the experiment harness registers crash/restart
// hooks per server — so every protocol sees the *same* fault sequence under
// one seed and faulty runs stay bit-reproducible.
//
// This is the testbed for the paper's central robustness claim: lifetimes
// enforce timed consistency *locally* (a cached copy expires no matter
// what), so message loss degrades only cost and liveness, never the
// t + Delta visibility promise — unlike Delta-broadcast, where a lost
// message is simply never delivered (Section 4, [7, 8]).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace timedc {

class Tracer;

/// Wildcard for DropWindow/DuplicateWindow/LatencySpike endpoints.
inline constexpr std::uint32_t kAnySite = 0xffffffffu;

/// Messages from `from` to `to` are dropped with `probability` while
/// start <= now < end. kAnySite matches every site.
struct DropWindow {
  SimTime start;
  SimTime end;
  double probability = 1.0;
  std::uint32_t from = kAnySite;
  std::uint32_t to = kAnySite;
};

/// Messages are delivered twice with `probability` during the window (the
/// duplicate takes an independently sampled latency).
struct DuplicateWindow {
  SimTime start;
  SimTime end;
  double probability = 1.0;
  std::uint32_t from = kAnySite;
  std::uint32_t to = kAnySite;
};

/// Every matching message sent during the window takes `extra` additional
/// latency (congestion / routing flap).
struct LatencySpike {
  SimTime start;
  SimTime end;
  SimTime extra;
  std::uint32_t from = kAnySite;
  std::uint32_t to = kAnySite;
};

/// All links between side_a and side_b are cut (both directions) while
/// start <= now < heal. Links within one side stay up.
struct Partition {
  SimTime start;
  SimTime heal;
  std::vector<SiteId> side_a;
  std::vector<SiteId> side_b;
};

/// `node` crashes at `at` and restarts at `restart_at` (infinity = never).
/// While down it neither receives nor sends; in-flight messages addressed
/// to it are lost. What crash/restart means for the node's *state* is the
/// node's business (ObjectServer keeps durable object state, loses soft
/// state — cachers and leases).
struct ServerCrash {
  SiteId node;
  SimTime at;
  SimTime restart_at = SimTime::infinity();
};

struct FaultPlan {
  std::vector<DropWindow> drops;
  std::vector<DuplicateWindow> duplications;
  std::vector<LatencySpike> latency_spikes;
  std::vector<Partition> partitions;
  std::vector<ServerCrash> crashes;

  bool empty() const {
    return drops.empty() && duplications.empty() && latency_spikes.empty() &&
           partitions.empty() && crashes.empty();
  }
};

struct FaultStats {
  std::uint64_t dropped_by_window = 0;
  std::uint64_t dropped_by_partition = 0;
  std::uint64_t dropped_node_down = 0;  // sender or receiver crashed
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;  // messages that took a latency spike
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

class FaultInjector {
 public:
  /// The rng drives only the probabilistic windows (drop / duplicate);
  /// partitions, spikes and crashes are purely time-driven.
  FaultInjector(FaultPlan plan, Rng rng);

  /// What happens to a message sent from -> to right now. Consumes
  /// randomness only when a probabilistic window matches, so the decision
  /// stream is deterministic for a fixed plan + seed + send sequence.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    SimTime extra_latency = SimTime::zero();
  };
  Decision on_send(SiteId from, SiteId to, SimTime now);

  /// True while `node` is inside one of its scripted crash intervals.
  bool node_down(SiteId node, SimTime now) const;

  /// True while a partition separates the two sites.
  bool link_cut(SiteId from, SiteId to, SimTime now) const;

  /// Called by the network when an in-flight message reaches a crashed
  /// destination (counted, message discarded).
  void note_dropped_at_delivery() { ++stats_.dropped_node_down; }

  /// Schedule `node`'s scripted crash/restart events on the simulator,
  /// invoking the hooks at the right virtual times. The experiment harness
  /// wires these to ObjectServer::crash()/restart().
  struct NodeHooks {
    std::function<void()> on_crash;
    std::function<void()> on_restart;
  };
  void install(Simulator& sim, SiteId node, NodeHooks hooks);

  /// Emit partition.open/heal markers for every scripted partition. The
  /// timestamps are the scripted times, which may lie in the tracer's
  /// future — flush() sorts by time, so markers land where they belong.
  void emit_partition_markers(Tracer& tracer) const;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace timedc
