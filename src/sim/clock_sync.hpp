// Clock synchronization over the simulated network (Section 3.2 substrate,
// after Cristian [12] and NTP [28, 29]).
//
// The paper's Definition 2 assumes approximately-synchronized clocks with a
// skew bound eps maintained by "periodic resynchronizations". This module
// provides that maintenance as an actual protocol rather than an assumed
// bound: each site owns free-running *hardware* (a DriftingClock) and runs
// Cristian's algorithm against a time server — send a request, receive the
// server's time s, estimate "server now" as s + RTT/2, and correct the
// local clock by the difference. The classic accuracy bound follows:
//
//   |error after sync| <= RTT/2  (plus drift accumulated until next sync)
//
// so the system-wide pairwise bound is eps = 2 * (RTT_max/2 + drift_budget),
// which the tests verify and the sim_clock_sync bench sweeps.
#pragma once

#include <functional>
#include <memory>
#include <variant>

#include "clocks/physical_clock.hpp"
#include "clocks/sync_estimator.hpp"
#include "common/sim_time.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {

struct TimeRequest {
  std::uint64_t seq = 0;  // echoed in the reply to pair request/response
};
struct TimeReply {
  std::uint64_t seq = 0;
  SimTime server_time;
};
using ClockSyncMessage = std::variant<TimeRequest, TimeReply>;

/// The reference clock: answers time requests with its own reading. The
/// server's clock may itself be imperfect (pass a model); the paper's time
/// server is the definition of "real time", so PerfectClock is the default.
class TimeServer {
 public:
  TimeServer(Simulator& sim, Network& net, SiteId self,
             const PhysicalClockModel* clock);

  void attach();
  std::uint64_t requests_served() const { return served_; }

 private:
  Simulator& sim_;
  Network& net_;
  SiteId self_;
  const PhysicalClockModel* clock_;
  std::uint64_t served_ = 0;
};

struct ClockSyncStats {
  std::uint64_t syncs = 0;
  SimTime last_rtt = SimTime::zero();
  SimTime max_rtt = SimTime::zero();
  SimTime last_correction = SimTime::zero();  // absolute value
};

/// One site's synchronized clock: free-running hardware plus a correction
/// maintained by periodic Cristian exchanges. The offset/epsilon math lives
/// in the shared SyncEstimator (clocks/sync_estimator.hpp) so the simulated
/// and TCP substrates produce identical estimates from identical samples.
class SyncedSiteClock {
 public:
  /// `hardware` is the site's uncorrected oscillator (typically a
  /// DriftingClock). The clock starts unsynchronized (correction 0).
  /// The default estimator config accepts every reply (no outlier
  /// rejection), matching the deterministic simulator's expectations.
  SyncedSiteClock(Simulator& sim, Network& net, SiteId self, SiteId server,
                  const PhysicalClockModel* hardware,
                  const SyncEstimatorConfig& estimator_config = {});

  void attach();

  /// Begin periodic synchronization (first exchange fires immediately).
  void start(SimTime period);

  /// The site's current (corrected) clock reading.
  SimTime now() const;

  /// Signed difference between this clock and true simulated time.
  SimTime error() const { return now() - sim_.now(); }

  const ClockSyncStats& stats() const { return stats_; }

  /// The underlying estimator, exposed for epsilon accounting and the
  /// sim/net parity tests.
  const SyncEstimator& estimator() const { return estimator_; }

  /// This clock's one-sided measured error bound right now (rtt/2 of the
  /// last accepted round plus drift since); infinity before the first sync.
  SimTime error_bound() const {
    return estimator_.error_bound(hardware_->read(sim_.now()));
  }

 private:
  void send_request();
  void on_message(const std::shared_ptr<void>& payload);

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  SiteId server_;
  const PhysicalClockModel* hardware_;
  SimTime period_ = SimTime::zero();
  SimTime request_sent_hw_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t outstanding_seq_ = 0;
  bool request_outstanding_ = false;
  SyncEstimator estimator_;
  ClockSyncStats stats_;
};

}  // namespace timedc
