// Deterministic discrete-event simulator.
//
// This is the testbed substrate for the paper's "detailed simulations"
// (Section 6): protocols run as callbacks scheduled on a single virtual
// timeline, so every experiment is reproducible bit-for-bit regardless of
// host scheduling. Events at equal times fire in scheduling order (a
// monotone sequence number breaks ties), which the tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/sim_time.hpp"

namespace timedc {

class Simulator {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `at` (>= now).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` from now.
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run events until the queue drains or the given horizon is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime horizon = SimTime::infinity());

  /// Execute exactly one event if available; returns false on empty queue.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace timedc
