#include "sim/faults.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace timedc {
namespace {

bool matches(std::uint32_t filter, SiteId site) {
  return filter == kAnySite || filter == site.value;
}

bool in_window(SimTime start, SimTime end, SimTime now) {
  return start <= now && now < end;
}

bool contains(const std::vector<SiteId>& side, SiteId site) {
  return std::find(side.begin(), side.end(), site) != side.end();
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, Rng rng)
    : plan_(std::move(plan)), rng_(rng) {
  for (const auto& w : plan_.drops) TIMEDC_ASSERT(w.start <= w.end);
  for (const auto& w : plan_.duplications) TIMEDC_ASSERT(w.start <= w.end);
  for (const auto& s : plan_.latency_spikes) TIMEDC_ASSERT(s.start <= s.end);
  for (const auto& p : plan_.partitions) TIMEDC_ASSERT(p.start <= p.heal);
  for (const auto& c : plan_.crashes) TIMEDC_ASSERT(c.at <= c.restart_at);
}

bool FaultInjector::node_down(SiteId node, SimTime now) const {
  for (const auto& c : plan_.crashes) {
    if (c.node == node && in_window(c.at, c.restart_at, now)) return true;
  }
  return false;
}

bool FaultInjector::link_cut(SiteId from, SiteId to, SimTime now) const {
  for (const auto& p : plan_.partitions) {
    if (!in_window(p.start, p.heal, now)) continue;
    const bool cut = (contains(p.side_a, from) && contains(p.side_b, to)) ||
                     (contains(p.side_b, from) && contains(p.side_a, to));
    if (cut) return true;
  }
  return false;
}

FaultInjector::Decision FaultInjector::on_send(SiteId from, SiteId to,
                                               SimTime now) {
  Decision d;
  if (node_down(from, now) || node_down(to, now)) {
    ++stats_.dropped_node_down;
    d.drop = true;
    return d;
  }
  if (link_cut(from, to, now)) {
    ++stats_.dropped_by_partition;
    d.drop = true;
    return d;
  }
  for (const auto& w : plan_.drops) {
    if (in_window(w.start, w.end, now) && matches(w.from, from) &&
        matches(w.to, to) && rng_.bernoulli(w.probability)) {
      ++stats_.dropped_by_window;
      d.drop = true;
      return d;
    }
  }
  for (const auto& w : plan_.duplications) {
    if (in_window(w.start, w.end, now) && matches(w.from, from) &&
        matches(w.to, to) && rng_.bernoulli(w.probability)) {
      ++stats_.duplicated;
      d.duplicate = true;
      break;
    }
  }
  for (const auto& s : plan_.latency_spikes) {
    if (in_window(s.start, s.end, now) && matches(s.from, from) &&
        matches(s.to, to)) {
      d.extra_latency += s.extra;
    }
  }
  if (d.extra_latency > SimTime::zero()) ++stats_.delayed;
  return d;
}

void FaultInjector::install(Simulator& sim, SiteId node, NodeHooks hooks) {
  for (const auto& c : plan_.crashes) {
    if (c.node != node) continue;
    if (hooks.on_crash) {
      sim.schedule_at(c.at, [this, fn = hooks.on_crash] {
        ++stats_.crashes;
        fn();
      });
    }
    if (hooks.on_restart && !c.restart_at.is_infinite()) {
      sim.schedule_at(c.restart_at, [this, fn = hooks.on_restart] {
        ++stats_.restarts;
        fn();
      });
    }
  }
}

void FaultInjector::emit_partition_markers(Tracer& tracer) const {
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const Partition& p = plan_.partitions[i];
    const std::int64_t sides =
        static_cast<std::int64_t>(p.side_a.size()) * 1000 +
        static_cast<std::int64_t>(p.side_b.size());
    tracer.emit(TraceEventType::kPartitionOpen, p.start, SiteId{0}, kNoObject,
                0, static_cast<std::int64_t>(i), sides);
    if (!p.heal.is_infinite()) {
      tracer.emit(TraceEventType::kPartitionHeal, p.heal, SiteId{0}, kNoObject,
                  0, static_cast<std::int64_t>(i), 0);
    }
  }
}

}  // namespace timedc
