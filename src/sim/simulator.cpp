#include "sim/simulator.hpp"

namespace timedc {

void Simulator::schedule_at(SimTime at, Action action) {
  TIMEDC_ASSERT(at >= now_);
  TIMEDC_ASSERT(!at.is_infinite());
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast on the action only.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  event.action();
  return true;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= horizon) {
    step();
    ++executed;
  }
  if (now_ < horizon && !horizon.is_infinite()) now_ = horizon;
  return executed;
}

}  // namespace timedc
