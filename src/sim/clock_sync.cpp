#include "sim/clock_sync.hpp"

#include "common/assert.hpp"

namespace timedc {

TimeServer::TimeServer(Simulator& sim, Network& net, SiteId self,
                       const PhysicalClockModel* clock)
    : sim_(sim), net_(net), self_(self), clock_(clock) {
  TIMEDC_ASSERT(clock != nullptr);
}

void TimeServer::attach() {
  net_.set_handler(self_, [this](SiteId from, const std::shared_ptr<void>& p) {
    const auto msg = std::static_pointer_cast<ClockSyncMessage>(p);
    const auto* request = std::get_if<TimeRequest>(msg.get());
    TIMEDC_ASSERT(request != nullptr);
    ++served_;
    net_.send(self_, from,
              std::make_shared<ClockSyncMessage>(
                  TimeReply{request->seq, clock_->read(sim_.now())}),
              /*bytes=*/48);
  });
}

SyncedSiteClock::SyncedSiteClock(Simulator& sim, Network& net, SiteId self,
                                 SiteId server,
                                 const PhysicalClockModel* hardware)
    : sim_(sim), net_(net), self_(self), server_(server), hardware_(hardware) {
  TIMEDC_ASSERT(hardware != nullptr);
}

void SyncedSiteClock::attach() {
  net_.set_handler(self_, [this](SiteId, const std::shared_ptr<void>& p) {
    on_message(p);
  });
}

void SyncedSiteClock::start(SimTime period) {
  TIMEDC_ASSERT(period > SimTime::zero());
  period_ = period;
  send_request();
}

SimTime SyncedSiteClock::now() const {
  return hardware_->read(sim_.now()) + correction_;
}

void SyncedSiteClock::send_request() {
  request_sent_hw_ = hardware_->read(sim_.now());
  outstanding_seq_ = next_seq_++;
  request_outstanding_ = true;
  net_.send(self_, server_,
            std::make_shared<ClockSyncMessage>(TimeRequest{outstanding_seq_}),
            /*bytes=*/48);
  sim_.schedule_after(period_, [this] { send_request(); });
}

void SyncedSiteClock::on_message(const std::shared_ptr<void>& payload) {
  const auto msg = std::static_pointer_cast<ClockSyncMessage>(payload);
  const auto* reply = std::get_if<TimeReply>(msg.get());
  TIMEDC_ASSERT(reply != nullptr);
  // Only the reply matching the newest request is usable: request_sent_hw_
  // belongs to it, so an older (slower) reply would compute a bogus RTT.
  if (!request_outstanding_ || reply->seq != outstanding_seq_) return;
  request_outstanding_ = false;

  // Cristian's estimate: the server stamped its time somewhere within the
  // round trip; assume the midpoint. The RTT is measured on the local
  // hardware clock (drift over one RTT is negligible at ppm rates).
  const SimTime receive_hw = hardware_->read(sim_.now());
  const SimTime rtt = receive_hw - request_sent_hw_;
  const SimTime estimated_server_now = reply->server_time + rtt / 2;
  const SimTime new_correction =
      estimated_server_now - receive_hw;

  ++stats_.syncs;
  stats_.last_rtt = rtt;
  stats_.max_rtt = max(stats_.max_rtt, rtt);
  const SimTime shift = new_correction - correction_;
  stats_.last_correction =
      shift < SimTime::zero() ? SimTime::zero() - shift : shift;
  correction_ = new_correction;
}

}  // namespace timedc
