#include "sim/clock_sync.hpp"

#include "common/assert.hpp"

namespace timedc {

TimeServer::TimeServer(Simulator& sim, Network& net, SiteId self,
                       const PhysicalClockModel* clock)
    : sim_(sim), net_(net), self_(self), clock_(clock) {
  TIMEDC_ASSERT(clock != nullptr);
}

void TimeServer::attach() {
  net_.set_handler(self_, [this](SiteId from, const std::shared_ptr<void>& p) {
    const auto msg = std::static_pointer_cast<ClockSyncMessage>(p);
    const auto* request = std::get_if<TimeRequest>(msg.get());
    TIMEDC_ASSERT(request != nullptr);
    ++served_;
    net_.send(self_, from,
              std::make_shared<ClockSyncMessage>(
                  TimeReply{request->seq, clock_->read(sim_.now())}),
              /*bytes=*/48);
  });
}

SyncedSiteClock::SyncedSiteClock(Simulator& sim, Network& net, SiteId self,
                                 SiteId server,
                                 const PhysicalClockModel* hardware,
                                 const SyncEstimatorConfig& estimator_config)
    : sim_(sim),
      net_(net),
      self_(self),
      server_(server),
      hardware_(hardware),
      estimator_(estimator_config) {
  TIMEDC_ASSERT(hardware != nullptr);
}

void SyncedSiteClock::attach() {
  net_.set_handler(self_, [this](SiteId, const std::shared_ptr<void>& p) {
    on_message(p);
  });
}

void SyncedSiteClock::start(SimTime period) {
  TIMEDC_ASSERT(period > SimTime::zero());
  period_ = period;
  send_request();
}

SimTime SyncedSiteClock::now() const {
  return estimator_.now(hardware_->read(sim_.now()));
}

void SyncedSiteClock::send_request() {
  request_sent_hw_ = hardware_->read(sim_.now());
  outstanding_seq_ = next_seq_++;
  request_outstanding_ = true;
  net_.send(self_, server_,
            std::make_shared<ClockSyncMessage>(TimeRequest{outstanding_seq_}),
            /*bytes=*/48);
  sim_.schedule_after(period_, [this] { send_request(); });
}

void SyncedSiteClock::on_message(const std::shared_ptr<void>& payload) {
  const auto msg = std::static_pointer_cast<ClockSyncMessage>(payload);
  const auto* reply = std::get_if<TimeReply>(msg.get());
  TIMEDC_ASSERT(reply != nullptr);
  // Only the reply matching the newest request is usable: request_sent_hw_
  // belongs to it, so an older (slower) reply would compute a bogus RTT.
  if (!request_outstanding_ || reply->seq != outstanding_seq_) return;
  request_outstanding_ = false;

  const SimTime receive_hw = hardware_->read(sim_.now());
  if (!estimator_.on_reply(
          {request_sent_hw_, reply->server_time, receive_hw})) {
    return;  // rejected as an RTT outlier; stats count accepted rounds only
  }
  stats_.syncs = estimator_.accepted();
  stats_.last_rtt = estimator_.last_rtt();
  stats_.max_rtt = estimator_.max_rtt();
  stats_.last_correction = estimator_.last_correction_shift();
}

}  // namespace timedc
