// Synthetic workloads for the protocol experiments.
//
// Each client issues a Poisson stream of reads/writes over a Zipf-skewed
// object population — the standard model for the interactive / web-cache
// applications the paper motivates (Section 4): a few hot objects, many
// cold ones.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace timedc {

struct WorkloadParams {
  std::size_t num_clients = 4;
  std::size_t num_objects = 16;
  double write_ratio = 0.2;
  /// Mean think time between a client's consecutive operations.
  SimTime mean_think_time = SimTime::millis(10);
  /// Zipf exponent over objects; 0 gives a uniform population.
  double zipf_exponent = 0.8;
  SimTime horizon = SimTime::seconds(2);
};

struct WorkloadOp {
  SiteId client;
  SimTime at;       // when the client issues the operation
  bool is_write = false;
  ObjectId object;
};

/// All clients' operations merged and sorted by issue time (ties keep
/// client order stable). Deterministic for a given rng state.
std::vector<WorkloadOp> generate_workload(const WorkloadParams& params, Rng& rng);

}  // namespace timedc
