#include "sim/workload.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc {

std::vector<WorkloadOp> generate_workload(const WorkloadParams& params, Rng& rng) {
  TIMEDC_ASSERT(params.num_clients > 0 && params.num_objects > 0);
  const ZipfDistribution zipf(params.num_objects,
                              params.zipf_exponent <= 0 ? 1e-9
                                                        : params.zipf_exponent);
  std::vector<WorkloadOp> ops;
  for (std::uint32_t c = 0; c < params.num_clients; ++c) {
    SimTime t = SimTime::zero();
    while (true) {
      t += SimTime::micros(1 + static_cast<std::int64_t>(rng.exponential(
               static_cast<double>(params.mean_think_time.as_micros()))));
      if (t > params.horizon) break;
      WorkloadOp op;
      op.client = SiteId{c};
      op.at = t;
      op.is_write = rng.bernoulli(params.write_ratio);
      op.object = params.zipf_exponent <= 0
                      ? ObjectId{static_cast<std::uint32_t>(rng.uniform_int(
                            0, static_cast<std::int64_t>(params.num_objects) - 1))}
                      : ObjectId{static_cast<std::uint32_t>(zipf.sample(rng))};
      ops.push_back(op);
    }
  }
  std::stable_sort(ops.begin(), ops.end(), [](const WorkloadOp& a, const WorkloadOp& b) {
    return a.at < b.at;
  });
  return ops;
}

}  // namespace timedc
