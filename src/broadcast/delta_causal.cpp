#include "broadcast/delta_causal.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace timedc {

namespace {
// Force-skip margin: a message's missing predecessors were all sent strictly
// before it, so just before its own deadline they are certainly expired.
constexpr SimTime kSkipMargin = SimTime::micros(1);
}  // namespace

DeltaCausalEndpoint::DeltaCausalEndpoint(Simulator& sim, Network& net,
                                         SiteId self, std::size_t group_size,
                                         SimTime delta, DeliverFn deliver)
    : sim_(sim),
      net_(net),
      self_(self),
      group_size_(group_size),
      delta_(delta),
      deliver_(std::move(deliver)),
      sent_seq_(group_size, 0),
      delivered_(group_size, 0) {
  TIMEDC_ASSERT(self.value < group_size);
}

void DeltaCausalEndpoint::attach() {
  net_.set_handler(self_, [this](SiteId, const std::shared_ptr<void>& p) {
    on_message(p);
  });
}

void DeltaCausalEndpoint::broadcast(std::uint64_t payload,
                                    std::shared_ptr<const void> data) {
  // Own messages are delivered locally at send time.
  delivered_[self_.value] += 1;

  BroadcastMessage m;
  m.sender = self_;
  m.payload = payload;
  m.data = std::move(data);
  m.sent_at = sim_.now();
  m.deadline = delta_.is_infinite() ? SimTime::infinity() : sim_.now() + delta_;
  m.vt = delivered_;
  ++stats_.sent;
  if (obs_ != nullptr) {
    obs_->emit(TraceEventType::kBcastSend, sim_.now(), self_, kNoObject,
               payload);
  }
  deliver_(m, sim_.now());
  ++stats_.delivered;
  if (obs_ != nullptr) {
    obs_->emit(TraceEventType::kBcastDeliver, sim_.now(), self_, kNoObject,
               payload, self_.value, 0);
  }

  const auto shared = std::make_shared<BroadcastMessage>(m);
  for (std::uint32_t peer = 0; peer < group_size_; ++peer) {
    if (peer == self_.value) continue;
    net_.send(self_, SiteId{peer}, shared, 128);
  }
}

bool DeltaCausalEndpoint::deliverable(const BroadcastMessage& m) const {
  const std::uint32_t j = m.sender.value;
  if (m.vt[j] != delivered_[j] + 1) return false;
  for (std::uint32_t k = 0; k < group_size_; ++k) {
    if (k == j) continue;
    if (m.vt[k] > delivered_[k]) return false;
  }
  return true;
}

void DeltaCausalEndpoint::expire(SimTime now) {
  // Partition out expired messages, recording the holes they leave before
  // the elements are moved (remove_if applies the predicate exactly once
  // per element, in order).
  const auto it = std::remove_if(
      pending_.begin(), pending_.end(), [&](const BroadcastMessage& m) {
        if (m.deadline > now) return false;
        ++stats_.discarded_late;
        if (obs_ != nullptr) {
          obs_->emit(TraceEventType::kBcastDiscard, now, self_, kNoObject,
                     m.payload, m.sender.value,
                     (now - m.deadline).as_micros());
        }
        const std::uint32_t j = m.sender.value;
        delivered_[j] = std::max(delivered_[j], m.vt[j]);
        return true;
      });
  pending_.erase(it, pending_.end());
}

void DeltaCausalEndpoint::on_message(const std::shared_ptr<void>& payload) {
  const auto m = std::static_pointer_cast<BroadcastMessage>(payload);
  const SimTime now = sim_.now();
  expire(now);
  if (m->deadline <= now) {
    // Arrived already dead: never delivered (the Delta-causal rule).
    ++stats_.discarded_late;
    if (obs_ != nullptr) {
      obs_->emit(TraceEventType::kBcastDiscard, now, self_, kNoObject,
                 m->payload, m->sender.value, (now - m->deadline).as_micros());
    }
    delivered_[m->sender.value] =
        std::max(delivered_[m->sender.value], m->vt[m->sender.value]);
    try_deliver();
    return;
  }
  if (m->vt[m->sender.value] <= delivered_[m->sender.value]) {
    return;  // duplicate or already skipped
  }
  pending_.push_back(*m);

  // Just before this message expires, force-skip any still-missing
  // predecessors (they were sent earlier, so they are expired by then) and
  // deliver it if it is still queued.
  if (!m->deadline.is_infinite()) {
    const SimTime when = max(now, m->deadline - kSkipMargin);
    const BroadcastMessage snapshot = *m;
    sim_.schedule_at(when, [this, snapshot] {
      const bool still_queued =
          std::any_of(pending_.begin(), pending_.end(),
                      [&](const BroadcastMessage& q) {
                        return q.sender == snapshot.sender &&
                               q.vt[q.sender.value] ==
                                   snapshot.vt[snapshot.sender.value];
                      });
      if (!still_queued) return;
      // Skip every missing dependency: they are certainly expired.
      for (std::uint32_t k = 0; k < group_size_; ++k) {
        const std::uint64_t need =
            k == snapshot.sender.value ? snapshot.vt[k] - 1 : snapshot.vt[k];
        delivered_[k] = std::max(delivered_[k], need);
      }
      try_deliver();
    });
  }
  try_deliver();
}

void DeltaCausalEndpoint::try_deliver() {
  expire(sim_.now());  // every queued message considered below is alive
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (deliverable(*it)) {
        const BroadcastMessage m = *it;
        pending_.erase(it);
        delivered_[m.sender.value] = m.vt[m.sender.value];
        ++stats_.delivered;
        if (obs_ != nullptr) {
          obs_->emit(TraceEventType::kBcastDeliver, sim_.now(), self_,
                     kNoObject, m.payload, m.sender.value,
                     (sim_.now() - m.sent_at).as_micros());
        }
        deliver_(m, sim_.now());
        progressed = true;
        break;
      }
    }
  }
}

}  // namespace timedc
