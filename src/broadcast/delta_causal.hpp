// Delta-causal broadcast (Baldoni, Mostefaoui, Raynal, Prakash, Singhal
// [7, 8]), the message-passing sibling of timed consistency discussed in
// Section 4 of the paper.
//
// Every broadcast message carries a vector timestamp and a lifetime Delta.
// A receiver delivers a message only when its causal predecessors have been
// delivered AND it is still alive (receive/delivery happens before
// send_time + Delta); a message whose deadline expires while it waits is
// DISCARDED — "late messages are never delivered, and it is assumed that a
// more updated message will eventually be received", which is exactly how
// the paper contrasts this protocol with TSC/TCC's validation approach.
//
// The causal gate uses the standard broadcast delivery condition over
// per-sender sequence-number vectors: deliver m from sender j at process i
// when delivered_i[j] == m.vt[j] - 1 and delivered_i[k] >= m.vt[k] for all
// k != j. When a message is discarded, its slot is skipped (delivered_i[j]
// advances past it) so later traffic is not blocked forever.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {

class Tracer;

struct BroadcastMessage {
  SiteId sender;
  std::uint64_t payload = 0;
  /// Optional application data riding along (type known to the caller).
  std::shared_ptr<const void> data;
  SimTime sent_at;
  SimTime deadline;                 // sent_at + Delta
  std::vector<std::uint64_t> vt;   // per-sender sequence vector at send time
};

struct DeltaBroadcastStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t discarded_late = 0;   // deadline passed while queued/in flight
  std::uint64_t delivered_out_of_band = 0;  // predecessors missing but alive? never: kept 0
};

/// One Delta-causal endpoint. All endpoints of a group share the Network.
class DeltaCausalEndpoint {
 public:
  using DeliverFn =
      std::function<void(const BroadcastMessage&, SimTime delivered_at)>;

  DeltaCausalEndpoint(Simulator& sim, Network& net, SiteId self,
                      std::size_t group_size, SimTime delta,
                      DeliverFn deliver);

  void attach();

  /// Broadcast payload to every *other* member of the group.
  void broadcast(std::uint64_t payload,
                 std::shared_ptr<const void> data = nullptr);

  /// Emit bcast.send/deliver/discard events to `tracer` (nullptr = off).
  void set_tracer(Tracer* tracer) { obs_ = tracer; }

  const DeltaBroadcastStats& stats() const { return stats_; }
  const std::vector<std::uint64_t>& delivered_vector() const {
    return delivered_;
  }
  std::size_t queued() const { return pending_.size(); }

 private:
  void on_message(const std::shared_ptr<void>& payload);
  void try_deliver();
  bool deliverable(const BroadcastMessage& m) const;
  /// Drop messages whose deadline passed; advance over the holes they leave.
  void expire(SimTime now);

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  std::size_t group_size_;
  SimTime delta_;
  DeliverFn deliver_;
  std::vector<std::uint64_t> sent_seq_;       // own vector clock of broadcasts
  std::vector<std::uint64_t> delivered_;      // delivered-or-skipped per sender
  std::vector<BroadcastMessage> pending_;
  Tracer* obs_ = nullptr;
  DeltaBroadcastStats stats_;
};

}  // namespace timedc
