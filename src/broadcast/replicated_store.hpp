// A fully-replicated object store over Delta-causal broadcast: the
// push-everything alternative to Section 5's lifetime caches.
//
// Every site holds a full replica; a write is applied locally and broadcast
// with lifetime Delta; reads are always local and instantaneous. Causal
// delivery makes the execution causally consistent, and the lifetime makes
// it timed: an update is visible everywhere within Delta or (on loss /
// congestion) never delivered — exactly the Baldoni et al. [7,8] regime the
// paper contrasts with its validation-based caches, where "it is assumed
// that a more updated message will eventually be received".
//
// Concurrent writes to one object are resolved deterministically by
// (send time, site id) — last writer wins — so replicas converge.
//
// The interesting comparison (bench/sim_push_vs_pull) is cost: a write here
// costs N-1 messages and a read none, while the lifetime cache pays per
// read; the crossover in read/write mix is the paper's remark that at small
// Delta "local caches become useless" taken to its endpoint.
#pragma once

#include <functional>
#include <unordered_map>

#include "broadcast/delta_causal.hpp"
#include "common/types.hpp"
#include "core/history.hpp"

namespace timedc {

class ReplicatedStore {
 public:
  ReplicatedStore(Simulator& sim, Network& net, SiteId self,
                  std::size_t group_size, SimTime delta);

  void attach();

  /// Local, instantaneous read.
  Value read(ObjectId object) const;

  /// Apply locally and broadcast to the group.
  void write(ObjectId object, Value value);

  const DeltaBroadcastStats& broadcast_stats() const {
    return endpoint_.stats();
  }
  SiteId site() const { return self_; }

 private:
  struct Slot {
    Value value = kInitialValue;
    SimTime written_at = SimTime::micros(-1);
    std::uint32_t writer = 0;
  };

  void deliver(const BroadcastMessage& m, SimTime at);
  /// Deterministic write-wins order: (send time, site id).
  static bool supersedes(SimTime t, std::uint32_t site, const Slot& slot);

  Simulator& sim_;
  SiteId self_;
  DeltaCausalEndpoint endpoint_;
  std::unordered_map<ObjectId, Slot> replica_;
};

}  // namespace timedc
