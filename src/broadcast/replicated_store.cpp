#include "broadcast/replicated_store.hpp"

namespace timedc {

namespace {
struct UpdateData {
  ObjectId object;
  Value value;
};
}  // namespace

ReplicatedStore::ReplicatedStore(Simulator& sim, Network& net, SiteId self,
                                 std::size_t group_size, SimTime delta)
    : sim_(sim),
      self_(self),
      endpoint_(sim, net, self, group_size, delta,
                [this](const BroadcastMessage& m, SimTime at) {
                  deliver(m, at);
                }) {}

void ReplicatedStore::attach() { endpoint_.attach(); }

Value ReplicatedStore::read(ObjectId object) const {
  const auto it = replica_.find(object);
  return it == replica_.end() ? kInitialValue : it->second.value;
}

bool ReplicatedStore::supersedes(SimTime t, std::uint32_t site,
                                 const Slot& slot) {
  if (t != slot.written_at) return t > slot.written_at;
  return site > slot.writer;
}

void ReplicatedStore::write(ObjectId object, Value value) {
  // The local apply happens through the endpoint's self-delivery, keeping
  // one code path for local and remote updates.
  endpoint_.broadcast(0, std::make_shared<UpdateData>(UpdateData{object, value}));
}

void ReplicatedStore::deliver(const BroadcastMessage& m, SimTime) {
  const auto* update = static_cast<const UpdateData*>(m.data.get());
  TIMEDC_ASSERT(update != nullptr);
  Slot& slot = replica_[update->object];
  if (supersedes(m.sent_at, m.sender.value, slot)) {
    slot.value = update->value;
    slot.written_at = m.sent_at;
    slot.writer = m.sender.value;
  }
}

}  // namespace timedc
