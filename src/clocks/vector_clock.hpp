// Vector clocks (Fidge [15], Mattern [27]).
//
// The TCC implementation of Section 5.3 takes every logical timestamp in the
// lifetime protocol (local clock, Context_i, start/ending times of object
// values) from vector clocks, and Section 5.4's xi maps are defined over
// them. VectorTimestamp is a plain value type; VectorClock is the per-site
// mutable clock that stamps events with it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clocks/ordering.hpp"
#include "common/types.hpp"

namespace timedc {

/// An immutable vector timestamp over N sites.
class VectorTimestamp {
 public:
  VectorTimestamp() = default;
  explicit VectorTimestamp(std::size_t n) : entries_(n, 0) {}
  explicit VectorTimestamp(std::vector<std::uint64_t> entries)
      : entries_(std::move(entries)) {}

  std::size_t size() const { return entries_.size(); }
  std::uint64_t operator[](std::size_t i) const { return entries_[i]; }
  const std::vector<std::uint64_t>& entries() const { return entries_; }

  Ordering compare(const VectorTimestamp& other) const;

  /// True iff *this <= other componentwise (reflexive causal dominance).
  bool dominated_by(const VectorTimestamp& other) const;

  /// True iff *this happened-before other (strictly).
  bool before(const VectorTimestamp& other) const {
    return compare(other) == Ordering::kBefore;
  }
  bool concurrent_with(const VectorTimestamp& other) const {
    return compare(other) == Ordering::kConcurrent;
  }

  /// Componentwise maximum: the least timestamp that dominates both inputs
  /// (the "max" of two logical timestamps needed by Section 5.3 / [38]).
  static VectorTimestamp merge_max(const VectorTimestamp& a, const VectorTimestamp& b);

  /// Componentwise minimum: the greatest timestamp dominated by both inputs.
  static VectorTimestamp merge_min(const VectorTimestamp& a, const VectorTimestamp& b);

  /// Total number of events this timestamp knows about (sum of entries);
  /// this is the paper's first example xi map.
  std::uint64_t event_count() const;

  bool operator==(const VectorTimestamp& other) const = default;

  std::string to_string() const;  // "<3, 4>"

 private:
  std::vector<std::uint64_t> entries_;
};

/// The mutable per-site clock.
class VectorClock {
 public:
  VectorClock(std::size_t num_sites, SiteId self);

  SiteId self() const { return self_; }

  /// Advance the local component and return the timestamp of the new event.
  VectorTimestamp tick();

  /// Merge a received timestamp (componentwise max), then tick; returns the
  /// timestamp of the receive event.
  VectorTimestamp receive(const VectorTimestamp& incoming);

  /// The current timestamp without creating a new event.
  const VectorTimestamp& now() const { return now_; }

 private:
  SiteId self_;
  VectorTimestamp now_;
};

}  // namespace timedc
