// Physical clock models (Section 3.2 substrate).
//
// The paper's Definition 2 assumes approximately-synchronized real-time
// clocks: periodic resynchronization keeps every clock within eps/2 of a
// time server, so any two clocks differ by at most eps ([12,13,22,28,29]).
// Because the whole library runs on a deterministic simulator, a clock model
// is a pure function from true simulated time to the time the site reports;
// drift and resynchronization jitter are derived deterministically from a
// seed so experiments are reproducible.
#pragma once

#include <cstdint>
#include <memory>

#include "common/sim_time.hpp"

namespace timedc {

class PhysicalClockModel {
 public:
  virtual ~PhysicalClockModel() = default;

  /// The time this site's clock shows when true time is `true_time`.
  virtual SimTime read(SimTime true_time) const = 0;

  /// An upper bound on |read(t) - t| valid for all t, i.e. this clock's
  /// contribution to the system-wide skew bound (eps/2 in the paper).
  virtual SimTime max_offset() const = 0;
};

/// A perfectly synchronized clock: read(t) == t. Definition 1's setting.
class PerfectClock final : public PhysicalClockModel {
 public:
  SimTime read(SimTime true_time) const override { return true_time; }
  SimTime max_offset() const override { return SimTime::zero(); }
};

/// A free-running clock with constant offset and rate error, never
/// resynchronized. Violates any eps bound eventually; used as the negative
/// control in tests and the epsilon-sensitivity experiments.
class DriftingClock final : public PhysicalClockModel {
 public:
  DriftingClock(SimTime initial_offset, double drift_ppm)
      : offset_(initial_offset), drift_ppm_(drift_ppm) {}

  SimTime read(SimTime true_time) const override;
  SimTime max_offset() const override { return SimTime::infinity(); }

 private:
  SimTime offset_;
  double drift_ppm_;
};

/// An approximately-synchronized clock: between resynchronizations it drifts
/// at up to `drift_ppm`, and every `resync_period` it is snapped back to
/// within the residual synchronization error, such that |read(t) - t| never
/// exceeds eps/2. The post-resync offset is a deterministic pseudo-random
/// function of (seed, resync index), so the model is a pure function of time.
class SyncedClock final : public PhysicalClockModel {
 public:
  SyncedClock(SimTime eps, SimTime resync_period, double drift_ppm,
              std::uint64_t seed);

  SimTime read(SimTime true_time) const override;
  SimTime max_offset() const override { return eps_ / 2; }

  SimTime eps() const { return eps_; }

 private:
  SimTime offset_after_resync(std::int64_t resync_index) const;

  SimTime eps_;
  SimTime period_;
  double drift_ppm_;
  std::uint64_t seed_;
};

/// Definition 2's "definitely occurred before": with a system-wide skew
/// bound eps, timestamp a is known to precede b only when T(a) + eps < T(b).
inline bool definitely_before(SimTime a, SimTime b, SimTime eps) {
  return a + eps < b;
}

}  // namespace timedc
