#include "clocks/sync_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace timedc {

SyncEstimator::SyncEstimator(const SyncEstimatorConfig& config)
    : config_(config) {
  TIMEDC_ASSERT(config.drift_ppm >= 0.0);
  TIMEDC_ASSERT(config.rtt_window > 0);
}

SimTime SyncEstimator::rtt_threshold() const {
  if (config_.outlier_percentile >= 1.0) return SimTime::infinity();
  if (window_.size() < config_.min_samples_for_rejection) {
    return SimTime::infinity();
  }
  if (consecutive_rejects_ >= config_.max_consecutive_rejects) {
    return SimTime::infinity();  // fail open: re-train on the next round
  }
  std::vector<std::int64_t> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::ceil(config_.outlier_percentile * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(std::max(1.0, rank)) - 1;
  return SimTime::micros(sorted[std::min(idx, sorted.size() - 1)]);
}

bool SyncEstimator::on_reply(const SyncSample& sample) {
  const SimTime rtt = sample.receive_hw - sample.request_sent_hw;
  TIMEDC_ASSERT(rtt >= SimTime::zero());
  if (rtt > rtt_threshold()) {
    ++rejected_;
    ++consecutive_rejects_;
    last_rtt_ = rtt;  // observable even for rejected rounds
    return false;
  }

  // Cristian's estimate: the server stamped its time somewhere within the
  // round trip; assume the midpoint. The RTT is measured on the local
  // hardware clock (drift over one RTT is negligible at ppm rates).
  const SimTime estimated_server_now = sample.server_time + rtt / 2;
  const SimTime new_correction = estimated_server_now - sample.receive_hw;

  ++accepted_;
  consecutive_rejects_ = 0;
  last_rtt_ = rtt;
  max_rtt_ = max(max_rtt_, rtt);
  const SimTime shift = new_correction - correction_;
  last_correction_shift_ =
      shift < SimTime::zero() ? SimTime::zero() - shift : shift;
  correction_ = new_correction;
  last_accept_receive_hw_ = sample.receive_hw;
  // Midpoint error is at most rtt/2; round up so the bound stays sound for
  // odd-microsecond RTTs.
  eps_base_ = (rtt + SimTime::micros(1)) / 2;

  window_.push_back(rtt.as_micros());
  while (window_.size() > config_.rtt_window) window_.pop_front();
  return true;
}

SimTime SyncEstimator::error_bound(SimTime hardware_now) const {
  if (!synced()) return SimTime::infinity();
  const SimTime elapsed = max(SimTime::zero(), hardware_now - last_accept_receive_hw_);
  const double drift =
      static_cast<double>(elapsed.as_micros()) * config_.drift_ppm / 1e6;
  return eps_base_ + SimTime::micros(static_cast<std::int64_t>(std::ceil(drift)));
}

}  // namespace timedc
