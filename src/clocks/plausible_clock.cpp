#include "clocks/plausible_clock.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc {

Ordering PlausibleTimestamp::compare(const PlausibleTimestamp& other) const {
  TIMEDC_ASSERT(num_entries() == other.num_entries());
  bool le = true;
  bool ge = true;
  for (std::size_t i = 0; i < num_entries(); ++i) {
    if (entries_[i] < other.entries_[i]) ge = false;
    if (entries_[i] > other.entries_[i]) le = false;
  }
  if (le && ge) {
    // Identical folded vectors. Two distinct events can only collide here if
    // they are concurrent (a strict causal step always bumps an entry), so
    // the timestamp is only "equal" for the same site.
    return origin_ == other.origin_ ? Ordering::kEqual : Ordering::kConcurrent;
  }
  if (le) return Ordering::kBefore;
  if (ge) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

PlausibleTimestamp PlausibleTimestamp::merge_max(const PlausibleTimestamp& a,
                                                 const PlausibleTimestamp& b) {
  TIMEDC_ASSERT(a.num_entries() == b.num_entries());
  std::vector<std::uint64_t> out(a.num_entries());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::max(a[i], b[i]);
  return {std::move(out), a.origin()};
}

PlausibleTimestamp PlausibleTimestamp::merge_min(const PlausibleTimestamp& a,
                                                 const PlausibleTimestamp& b) {
  TIMEDC_ASSERT(a.num_entries() == b.num_entries());
  std::vector<std::uint64_t> out(a.num_entries());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::min(a[i], b[i]);
  return {std::move(out), a.origin()};
}

std::uint64_t PlausibleTimestamp::event_count() const {
  std::uint64_t sum = 0;
  for (auto e : entries_) sum += e;
  return sum;
}

std::string PlausibleTimestamp::to_string() const {
  std::string out = "<";
  for (std::size_t i = 0; i < num_entries(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(entries_[i]);
  }
  out += ">@" + timedc::to_string(origin_);
  return out;
}

PlausibleClock::PlausibleClock(std::size_t num_entries, SiteId self)
    : self_(self), entries_(num_entries, 0) {
  TIMEDC_ASSERT(num_entries > 0);
}

PlausibleTimestamp PlausibleClock::tick() {
  entries_[own_entry()] += 1;
  return now();
}

PlausibleTimestamp PlausibleClock::receive(const PlausibleTimestamp& incoming) {
  TIMEDC_ASSERT(incoming.num_entries() == entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i)
    entries_[i] = std::max(entries_[i], incoming[i]);
  return tick();
}

}  // namespace timedc
