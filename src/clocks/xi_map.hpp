// xi maps: monotone maps from logical timestamps to the reals (Section 5.4,
// Definition 5 of the paper).
//
// A xi map summarizes "how much global activity" a logical timestamp knows
// about; TCC with pure logical clocks replaces the real-time threshold Delta
// by a bound on xi differences. Definition 5 requires
//     t == u  =>  xi(t) == xi(u)
//     t -> u  =>  xi(t) <  xi(u)
// The two maps the paper gives for vector clocks are the entry sum (number
// of known global events) and the Euclidean length (Figure 7's geometric
// interpretation); both are implemented here plus a weighted-sum variant.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clocks/plausible_clock.hpp"
#include "clocks/vector_clock.hpp"

namespace timedc {

class XiMap {
 public:
  virtual ~XiMap() = default;

  /// The map itself, over the raw entries of a vector/plausible timestamp.
  virtual double value(std::span<const std::uint64_t> entries) const = 0;

  virtual std::string name() const = 0;

  double operator()(const VectorTimestamp& t) const { return value(t.entries()); }
  double operator()(const PlausibleTimestamp& t) const { return value(t.entries()); }
};

/// xi(t) = sum of entries: the number of global events known at t.
class SumXiMap final : public XiMap {
 public:
  double value(std::span<const std::uint64_t> entries) const override;
  std::string name() const override { return "sum"; }
};

/// xi(t) = Euclidean length of the timestamp seen as a vector in R^N
/// (Figure 7's geometric interpretation).
class NormXiMap final : public XiMap {
 public:
  double value(std::span<const std::uint64_t> entries) const override;
  std::string name() const override { return "norm"; }
};

/// xi(t) = sum of w_i * t[i] with strictly positive weights; lets an
/// application weigh activity at some sites more than others while keeping
/// Definition 5 (strict positivity is what preserves monotonicity).
class WeightedSumXiMap final : public XiMap {
 public:
  explicit WeightedSumXiMap(std::vector<double> weights);
  double value(std::span<const std::uint64_t> entries) const override;
  std::string name() const override { return "weighted-sum"; }

 private:
  std::vector<double> weights_;
};

/// Checks Definition 5 on one pair of vector timestamps: returns false iff
/// the pair witnesses a violation (equal with different xi, or strictly
/// ordered with non-increasing xi). Used by the property tests.
bool xi_respects_definition5(const XiMap& xi, const VectorTimestamp& t,
                             const VectorTimestamp& u);

}  // namespace timedc
