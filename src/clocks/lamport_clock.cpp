#include "clocks/lamport_clock.hpp"

// Header-only; this TU anchors the target.
namespace timedc {}
