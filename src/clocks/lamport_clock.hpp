// Lamport scalar logical clocks [26].
//
// Used as the cheapest logical-time substrate and as a degenerate "plausible
// clock" baseline: Lamport timestamps order all causally related events
// correctly but also impose an order on concurrent events.
#pragma once

#include <cstdint>

#include "clocks/ordering.hpp"
#include "common/types.hpp"

namespace timedc {

struct LamportTimestamp {
  std::uint64_t counter = 0;
  SiteId site;  // tiebreaker, making timestamps of distinct events distinct

  friend bool operator==(const LamportTimestamp&, const LamportTimestamp&) = default;

  /// Total order: by counter, then by site id.
  Ordering compare(const LamportTimestamp& other) const {
    if (counter != other.counter)
      return counter < other.counter ? Ordering::kBefore : Ordering::kAfter;
    if (site != other.site)
      return site < other.site ? Ordering::kBefore : Ordering::kAfter;
    return Ordering::kEqual;
  }
};

class LamportClock {
 public:
  explicit LamportClock(SiteId self) : self_(self) {}

  LamportTimestamp tick() {
    ++counter_;
    return {counter_, self_};
  }

  LamportTimestamp receive(const LamportTimestamp& incoming) {
    if (incoming.counter > counter_) counter_ = incoming.counter;
    return tick();
  }

  LamportTimestamp now() const { return {counter_, self_}; }

 private:
  SiteId self_;
  std::uint64_t counter_ = 0;
};

}  // namespace timedc
