// Shared Cristian-style clock synchronization estimator (Section 3.2, after
// Cristian [12] and NTP [28, 29]).
//
// Both clock-sync substrates — the deterministic simulator
// (sim/clock_sync.hpp) and the real TCP transport (net/time_sync.hpp) — feed
// the same raw observations into this estimator: a request send time and a
// reply receive time, both read on the local free-running hardware clock,
// plus the server timestamp carried by the reply. The estimator owns all of
// the offset/epsilon math so the two substrates cannot diverge:
//
//   rtt        = receive_hw - request_sent_hw
//   server_now ~= server_time + rtt/2           (Cristian's midpoint)
//   correction = server_now - receive_hw
//   |error|    <= rtt/2 + drift accumulated since the sample was taken
//
// The error_bound() accessor is the continuously maintained *measured
// epsilon* contribution of this clock: it starts at rtt/2 after each
// accepted round and grows at the configured drift rate until the next
// accepted round, so losing the time server widens the bound instead of
// letting it go silently stale. The system-wide pairwise bound between two
// synchronized sites is the sum of their error_bound()s.
//
// Rounds whose RTT is anomalously large (a retransmit, a latency spike)
// carry a weak midpoint estimate; when outlier rejection is enabled they
// are discarded if the RTT exceeds a configured percentile of recent
// accepted rounds. Rejection fails open: after max_consecutive_rejects
// discarded rounds in a row the next round is accepted regardless, so a
// genuine persistent RTT shift (a rerouted path, a congested link) re-trains
// the window instead of starving the clock forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/sim_time.hpp"

namespace timedc {

struct SyncEstimatorConfig {
  /// Assumed worst-case drift rate of the local hardware oscillator,
  /// in parts per million. Governs how fast error_bound() widens between
  /// accepted rounds.
  double drift_ppm = 200.0;

  /// Rounds whose RTT exceeds this percentile of the recent accepted-RTT
  /// window are rejected. Values >= 1.0 disable rejection (every round is
  /// accepted) — the simulator substrate's default, whose tests account for
  /// every exchange.
  double outlier_percentile = 1.0;

  /// How many accepted RTTs the percentile is computed over.
  std::size_t rtt_window = 16;

  /// No rejection until the window holds at least this many samples.
  std::size_t min_samples_for_rejection = 4;

  /// Fail-open bound: after this many consecutive rejections the next
  /// round is accepted unconditionally so a persistent RTT shift re-trains
  /// the window.
  std::size_t max_consecutive_rejects = 8;
};

/// One completed request/reply exchange, all times in the local hardware
/// timebase except server_time (the server's own reading).
struct SyncSample {
  SimTime request_sent_hw;
  SimTime server_time;
  SimTime receive_hw;
};

class SyncEstimator {
 public:
  SyncEstimator() = default;
  explicit SyncEstimator(const SyncEstimatorConfig& config);

  /// Feed one completed exchange. Returns true when the sample was accepted
  /// (correction and epsilon base updated), false when it was rejected as
  /// an RTT outlier.
  bool on_reply(const SyncSample& sample);

  /// True once at least one sample has been accepted.
  bool synced() const { return accepted_ > 0; }

  /// Additive correction: hardware reading + correction() ~= server time.
  SimTime correction() const { return correction_; }

  /// Corrected reading of the given hardware time.
  SimTime now(SimTime hardware_now) const { return hardware_now + correction_; }

  /// One-sided measured error bound at the given hardware time: rtt/2 of
  /// the last accepted round plus drift accumulated since it. Infinity
  /// until the first accepted round — an unsynchronized clock has no bound.
  SimTime error_bound(SimTime hardware_now) const;

  SimTime last_rtt() const { return last_rtt_; }
  SimTime max_rtt() const { return max_rtt_; }
  /// |correction delta| applied by the most recent accepted round.
  SimTime last_correction_shift() const { return last_correction_shift_; }

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

  const SyncEstimatorConfig& config() const { return config_; }

 private:
  /// The rejection threshold implied by the current window, or infinity
  /// when rejection cannot apply (disabled, window too small, fail-open).
  SimTime rtt_threshold() const;

  SyncEstimatorConfig config_;
  SimTime correction_ = SimTime::zero();
  SimTime last_rtt_ = SimTime::zero();
  SimTime max_rtt_ = SimTime::zero();
  SimTime last_correction_shift_ = SimTime::zero();
  SimTime last_accept_receive_hw_ = SimTime::zero();
  SimTime eps_base_ = SimTime::infinity();
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t consecutive_rejects_ = 0;
  std::deque<std::int64_t> window_;
};

}  // namespace timedc
