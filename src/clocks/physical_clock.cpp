#include "clocks/physical_clock.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"

namespace timedc {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SimTime DriftingClock::read(SimTime true_time) const {
  const double drift =
      static_cast<double>(true_time.as_micros()) * drift_ppm_ / 1e6;
  return true_time + offset_ + SimTime::micros(static_cast<std::int64_t>(drift));
}

SyncedClock::SyncedClock(SimTime eps, SimTime resync_period, double drift_ppm,
                         std::uint64_t seed)
    : eps_(eps), period_(resync_period), drift_ppm_(drift_ppm), seed_(seed) {
  TIMEDC_ASSERT(eps >= SimTime::zero());
  TIMEDC_ASSERT(resync_period > SimTime::zero());
  // The drift accumulated over one period must fit inside eps/2, otherwise
  // the resynchronization cannot maintain the bound.
  const double max_drift =
      static_cast<double>(resync_period.as_micros()) * drift_ppm / 1e6;
  TIMEDC_ASSERT(SimTime::micros(static_cast<std::int64_t>(std::ceil(max_drift))) <=
                eps / 2);
}

SimTime SyncedClock::offset_after_resync(std::int64_t resync_index) const {
  // Residual error after a resync: uniform in [-(eps/2 - D), +(eps/2 - D)]
  // where D is the worst-case drift over one period, so that offset + drift
  // stays within eps/2 until the next resync.
  const std::int64_t drift_budget = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(period_.as_micros()) * drift_ppm_ / 1e6));
  const std::int64_t half = eps_.as_micros() / 2;
  const std::int64_t span = half - drift_budget;
  if (span <= 0) return SimTime::zero();
  const std::uint64_t r =
      mix64(seed_ ^ static_cast<std::uint64_t>(resync_index) * 0xD1B54A32D192ED03ULL);
  const std::int64_t v = static_cast<std::int64_t>(r % (2 * static_cast<std::uint64_t>(span) + 1)) - span;
  return SimTime::micros(v);
}

SimTime SyncedClock::read(SimTime true_time) const {
  TIMEDC_ASSERT(!true_time.is_infinite());
  const std::int64_t k = true_time.as_micros() / period_.as_micros();
  const SimTime since_sync =
      true_time - SimTime::micros(k * period_.as_micros());
  const double drift =
      static_cast<double>(since_sync.as_micros()) * drift_ppm_ / 1e6;
  return true_time + offset_after_resync(k) +
         SimTime::micros(static_cast<std::int64_t>(drift));
}

}  // namespace timedc
