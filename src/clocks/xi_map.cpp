#include "clocks/xi_map.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace timedc {

double SumXiMap::value(std::span<const std::uint64_t> entries) const {
  double sum = 0;
  for (auto e : entries) sum += static_cast<double>(e);
  return sum;
}

double NormXiMap::value(std::span<const std::uint64_t> entries) const {
  double sq = 0;
  for (auto e : entries) {
    const double d = static_cast<double>(e);
    sq += d * d;
  }
  return std::sqrt(sq);
}

WeightedSumXiMap::WeightedSumXiMap(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) TIMEDC_ASSERT(w > 0);
}

double WeightedSumXiMap::value(std::span<const std::uint64_t> entries) const {
  TIMEDC_ASSERT(entries.size() == weights_.size());
  double sum = 0;
  for (std::size_t i = 0; i < entries.size(); ++i)
    sum += weights_[i] * static_cast<double>(entries[i]);
  return sum;
}

bool xi_respects_definition5(const XiMap& xi, const VectorTimestamp& t,
                             const VectorTimestamp& u) {
  const double xt = xi(t);
  const double xu = xi(u);
  switch (t.compare(u)) {
    case Ordering::kEqual:
      return xt == xu;
    case Ordering::kBefore:
      return xt < xu;
    case Ordering::kAfter:
      return xt > xu;
    case Ordering::kConcurrent:
      return true;  // Definition 5 places no constraint on concurrent pairs.
  }
  return true;
}

}  // namespace timedc
