// The four-way outcome of comparing two (possibly partial-order) timestamps.
#pragma once

namespace timedc {

enum class Ordering {
  kBefore,      // a happened-before b (a < b)
  kAfter,       // b happened-before a (a > b)
  kEqual,       // identical timestamps
  kConcurrent,  // neither ordered: a || b
};

inline const char* to_cstring(Ordering o) {
  switch (o) {
    case Ordering::kBefore: return "before";
    case Ordering::kAfter: return "after";
    case Ordering::kEqual: return "equal";
    case Ordering::kConcurrent: return "concurrent";
  }
  return "?";
}

}  // namespace timedc
