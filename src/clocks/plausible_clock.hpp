// Plausible clocks: constant-size logical clocks (Torres-Rojas & Ahamad,
// WDAG '96 [37]), in the R-Entries-Vector (REV) variant.
//
// A plausible clock orders every causally-related pair of events correctly
// but, unlike a full vector clock, may also (wrongly) order some concurrent
// pairs. REV folds N sites onto R <= N vector entries (site i owns entry
// i mod R), so its timestamps have constant size independent of N.
//
// Guarantees provided (and property-tested against vector-clock ground
// truth in tests/clocks_test.cpp):
//   * a happened-before b  =>  compare(a,b) == kBefore
//   * compare(a,b) == kConcurrent  =>  a and b are truly concurrent
// The possible error is reporting kBefore/kAfter for a concurrent pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clocks/ordering.hpp"
#include "common/types.hpp"

namespace timedc {

class PlausibleTimestamp {
 public:
  PlausibleTimestamp() = default;
  PlausibleTimestamp(std::vector<std::uint64_t> entries, SiteId origin)
      : entries_(std::move(entries)), origin_(origin) {}

  std::size_t num_entries() const { return entries_.size(); }
  std::uint64_t operator[](std::size_t i) const { return entries_[i]; }
  const std::vector<std::uint64_t>& entries() const { return entries_; }
  SiteId origin() const { return origin_; }

  Ordering compare(const PlausibleTimestamp& other) const;

  /// Componentwise max/min, as required to maintain Context_i and lifetimes
  /// in the logical-clock lifetime protocol (Section 5.3, [38]).
  static PlausibleTimestamp merge_max(const PlausibleTimestamp& a,
                                      const PlausibleTimestamp& b);
  static PlausibleTimestamp merge_min(const PlausibleTimestamp& a,
                                      const PlausibleTimestamp& b);

  /// Sum of entries: the global-activity summary the xi maps build on.
  std::uint64_t event_count() const;

  bool operator==(const PlausibleTimestamp& other) const = default;

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> entries_;
  SiteId origin_;
};

/// Per-site REV clock with R entries shared by all sites of the system.
class PlausibleClock {
 public:
  PlausibleClock(std::size_t num_entries, SiteId self);

  SiteId self() const { return self_; }
  std::size_t own_entry() const { return self_.value % entries_.size(); }

  PlausibleTimestamp tick();
  PlausibleTimestamp receive(const PlausibleTimestamp& incoming);
  PlausibleTimestamp now() const { return {entries_, self_}; }

 private:
  SiteId self_;
  std::vector<std::uint64_t> entries_;
};

}  // namespace timedc
