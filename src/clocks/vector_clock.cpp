#include "clocks/vector_clock.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc {

Ordering VectorTimestamp::compare(const VectorTimestamp& other) const {
  TIMEDC_ASSERT(size() == other.size());
  bool le = true;  // this <= other everywhere
  bool ge = true;  // this >= other everywhere
  for (std::size_t i = 0; i < size(); ++i) {
    if (entries_[i] < other.entries_[i]) ge = false;
    if (entries_[i] > other.entries_[i]) le = false;
  }
  if (le && ge) return Ordering::kEqual;
  if (le) return Ordering::kBefore;
  if (ge) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

bool VectorTimestamp::dominated_by(const VectorTimestamp& other) const {
  const Ordering o = compare(other);
  return o == Ordering::kBefore || o == Ordering::kEqual;
}

VectorTimestamp VectorTimestamp::merge_max(const VectorTimestamp& a,
                                           const VectorTimestamp& b) {
  TIMEDC_ASSERT(a.size() == b.size());
  std::vector<std::uint64_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return VectorTimestamp(std::move(out));
}

VectorTimestamp VectorTimestamp::merge_min(const VectorTimestamp& a,
                                           const VectorTimestamp& b) {
  TIMEDC_ASSERT(a.size() == b.size());
  std::vector<std::uint64_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], b[i]);
  return VectorTimestamp(std::move(out));
}

std::uint64_t VectorTimestamp::event_count() const {
  std::uint64_t sum = 0;
  for (auto e : entries_) sum += e;
  return sum;
}

std::string VectorTimestamp::to_string() const {
  std::string out = "<";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(entries_[i]);
  }
  out += ">";
  return out;
}

VectorClock::VectorClock(std::size_t num_sites, SiteId self)
    : self_(self), now_(num_sites) {
  TIMEDC_ASSERT(self.value < num_sites);
}

VectorTimestamp VectorClock::tick() {
  auto entries = now_.entries();
  entries[self_.value] += 1;
  now_ = VectorTimestamp(std::move(entries));
  return now_;
}

VectorTimestamp VectorClock::receive(const VectorTimestamp& incoming) {
  now_ = VectorTimestamp::merge_max(now_, incoming);
  return tick();
}

}  // namespace timedc
