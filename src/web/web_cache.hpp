// Web cache consistency, the application domain of Section 4: the paper
// observes that WWW cache consistency protocols ARE timed consistency
// protocols, with weak (TTL-based, Gwertzman-Seltzer [19] / Alex [11]) and
// strong (server invalidation, Cao-Liu [10]) consistency corresponding to
// different values of Delta.
//
// The model: one origin server whose documents are mutated by an update
// process, and proxy caches serving client GETs under a freshness policy:
//   kFixedTtl       entries trusted for a fixed ttl after (re)validation
//   kAdaptiveTtl    Alex-style: ttl = clamp(k * age-at-fetch)   [11, 19]
//   kPollEveryTime  validate on every request (strongest pull)  [10]
//   kInvalidate     server-initiated invalidations              [10]
// kFixedTtl with ttl = Delta is exactly the TSC rule-3 cache of Section 5.2
// restricted to read-only clients; the equivalence is tested.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/sim_time.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace timedc {

using DocumentId = ObjectId;
using DocVersion = std::uint64_t;

// --- HTTP-ish wire messages -------------------------------------------------

struct HttpGet {
  DocumentId doc;
};
struct HttpGetIms {  // If-Modified-Since (by version, like an ETag)
  DocumentId doc;
  DocVersion version;
};
struct Http200 {
  DocumentId doc;
  DocVersion version;
  SimTime last_modified;
  std::size_t body_bytes;
};
struct Http304 {
  DocumentId doc;
  DocVersion version;
};
struct HttpInvalidate {
  DocumentId doc;
  DocVersion version;
};
using HttpMessage =
    std::variant<HttpGet, HttpGetIms, Http200, Http304, HttpInvalidate>;

// --- Origin server -----------------------------------------------------------

struct OriginStats {
  std::uint64_t gets = 0;
  std::uint64_t ims_checks = 0;
  std::uint64_t not_modified = 0;   // 304 responses
  std::uint64_t invalidations_sent = 0;
  std::size_t invalidation_state = 0;  // peak per-document subscriber count
};

class WebOriginServer {
 public:
  WebOriginServer(Simulator& sim, Network& net, SiteId self,
                  bool send_invalidations, std::size_t body_bytes = 8192);

  void attach();

  /// Mutate a document (called by the experiment's update process).
  void update(DocumentId doc);

  DocVersion current_version(DocumentId doc) const;
  /// When `version` of `doc` stopped being current (infinity if current).
  SimTime replaced_at(DocumentId doc, DocVersion version) const;

  const OriginStats& stats() const { return stats_; }

 private:
  struct Doc {
    DocVersion version = 1;
    SimTime last_modified = SimTime::zero();
    std::vector<SimTime> replaced;  // replaced[v-1] = when version v died
    std::unordered_set<std::uint32_t> subscribers;
  };

  void on_message(SiteId from, const std::shared_ptr<void>& payload);
  Doc& doc(DocumentId id);
  void send(SiteId to, HttpMessage m, std::size_t bytes);

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  bool send_invalidations_;
  std::size_t body_bytes_;
  mutable std::unordered_map<DocumentId, Doc> docs_;
  OriginStats stats_;
};

// --- Proxy cache --------------------------------------------------------------

enum class WebPolicy { kFixedTtl, kAdaptiveTtl, kPollEveryTime, kInvalidate };

inline const char* to_cstring(WebPolicy p) {
  switch (p) {
    case WebPolicy::kFixedTtl: return "fixed-ttl";
    case WebPolicy::kAdaptiveTtl: return "adaptive-ttl";
    case WebPolicy::kPollEveryTime: return "poll-every-time";
    case WebPolicy::kInvalidate: return "invalidate";
  }
  return "?";
}

struct WebPolicyConfig {
  WebPolicy policy = WebPolicy::kFixedTtl;
  SimTime fixed_ttl = SimTime::seconds(1);
  double adaptive_factor = 0.2;  // Alex: ttl = factor * (now - last_modified)
  SimTime adaptive_min = SimTime::millis(10);
  SimTime adaptive_max = SimTime::seconds(60);
};

struct WebCacheStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;            // served from cache without contact
  std::uint64_t validations = 0;     // IMS round trips
  std::uint64_t validations_304 = 0;
  std::uint64_t full_fetches = 0;
  std::uint64_t invalidations_received = 0;
};

class WebProxyCache {
 public:
  /// Callback with the served version and the completion time.
  using ServeFn = std::function<void(DocVersion, SimTime)>;

  WebProxyCache(Simulator& sim, Network& net, SiteId self, SiteId origin,
                WebPolicyConfig config);

  void attach();

  /// Handle one client GET; at most one outstanding request per proxy.
  void request(DocumentId doc, ServeFn done);

  const WebCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    DocVersion version;
    SimTime fetched_at;
    SimTime last_modified;
    SimTime expires;  // freshness horizon under the TTL policies
  };

  void on_message(const std::shared_ptr<void>& payload);
  SimTime ttl_for(SimTime now, SimTime last_modified) const;
  void install(const Http200& ok);
  bool fresh(const Entry& e, SimTime now) const;
  void send_origin(HttpMessage m);

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  SiteId origin_;
  WebPolicyConfig config_;
  std::unordered_map<DocumentId, Entry> cache_;
  WebCacheStats stats_;
  DocumentId pending_doc_;
  ServeFn pending_;
};

}  // namespace timedc
