// Trace-driven web cache consistency experiment (reproduces the shape of
// the Gwertzman-Seltzer [19] vs Cao-Liu [10] comparison the paper cites):
// documents at one origin are updated by Poisson processes; proxies serve
// Zipf-distributed client GETs under a freshness policy. Measured: stale
// hits (and their age), bandwidth, origin load, invalidation state.
#pragma once

#include "common/rng.hpp"
#include "web/web_cache.hpp"

namespace timedc {

struct WebExperimentConfig {
  WebPolicyConfig policy;
  std::size_t num_proxies = 4;
  std::size_t num_documents = 32;
  /// Mean time between updates of one document (exponential).
  SimTime mean_update_interval = SimTime::seconds(2);
  /// Mean think time between one proxy's consecutive client GETs.
  SimTime mean_request_interval = SimTime::millis(20);
  double zipf_exponent = 0.9;
  SimTime min_latency = SimTime::millis(2);
  SimTime max_latency = SimTime::millis(30);
  SimTime horizon = SimTime::seconds(30);
  std::size_t body_bytes = 8192;
  std::uint64_t seed = 1;
};

struct WebExperimentResult {
  WebCacheStats cache;  // summed over proxies
  OriginStats origin;
  NetworkStats network;
  std::uint64_t requests = 0;
  std::uint64_t stale_serves = 0;     // served version already replaced
  double stale_fraction = 0;
  double mean_stale_age_us = 0;       // age beyond replacement, stale serves
  SimTime max_stale_age = SimTime::zero();
  double bytes_per_request = 0;
  double origin_msgs_per_request = 0;
};

WebExperimentResult run_web_experiment(const WebExperimentConfig& config);

}  // namespace timedc
