#include "web/web_cache.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc {

// --- WebOriginServer ---------------------------------------------------------

WebOriginServer::WebOriginServer(Simulator& sim, Network& net, SiteId self,
                                 bool send_invalidations,
                                 std::size_t body_bytes)
    : sim_(sim),
      net_(net),
      self_(self),
      send_invalidations_(send_invalidations),
      body_bytes_(body_bytes) {}

void WebOriginServer::attach() {
  net_.set_handler(self_, [this](SiteId from, const std::shared_ptr<void>& p) {
    on_message(from, p);
  });
}

WebOriginServer::Doc& WebOriginServer::doc(DocumentId id) {
  return docs_[id];
}

void WebOriginServer::update(DocumentId id) {
  Doc& d = doc(id);
  d.replaced.push_back(sim_.now());  // previous version dies now
  d.version += 1;
  d.last_modified = sim_.now();
  if (send_invalidations_) {
    for (const std::uint32_t sub : d.subscribers) {
      ++stats_.invalidations_sent;
      send(SiteId{sub}, HttpInvalidate{id, d.version}, 64);
    }
    d.subscribers.clear();  // re-subscribe on next fetch/validation
  }
}

DocVersion WebOriginServer::current_version(DocumentId id) const {
  const auto it = docs_.find(id);
  return it == docs_.end() ? 1 : it->second.version;
}

SimTime WebOriginServer::replaced_at(DocumentId id, DocVersion version) const {
  const auto it = docs_.find(id);
  if (it == docs_.end()) return SimTime::infinity();
  const Doc& d = it->second;
  if (version >= d.version) return SimTime::infinity();
  // Version v (1-based) was replaced at replaced[v-1].
  TIMEDC_ASSERT(version >= 1 && version - 1 < d.replaced.size());
  return d.replaced[version - 1];
}

void WebOriginServer::on_message(SiteId from,
                                 const std::shared_ptr<void>& payload) {
  const auto msg = std::static_pointer_cast<HttpMessage>(payload);
  if (const auto* get = std::get_if<HttpGet>(msg.get())) {
    ++stats_.gets;
    Doc& d = doc(get->doc);
    if (send_invalidations_) {
      d.subscribers.insert(from.value);
      stats_.invalidation_state =
          std::max(stats_.invalidation_state, d.subscribers.size());
    }
    send(from, Http200{get->doc, d.version, d.last_modified, body_bytes_},
         body_bytes_ + 64);
    return;
  }
  if (const auto* ims = std::get_if<HttpGetIms>(msg.get())) {
    ++stats_.ims_checks;
    Doc& d = doc(ims->doc);
    if (send_invalidations_) {
      d.subscribers.insert(from.value);
      stats_.invalidation_state =
          std::max(stats_.invalidation_state, d.subscribers.size());
    }
    if (d.version == ims->version) {
      ++stats_.not_modified;
      send(from, Http304{ims->doc, d.version}, 64);
    } else {
      send(from, Http200{ims->doc, d.version, d.last_modified, body_bytes_},
           body_bytes_ + 64);
    }
    return;
  }
  TIMEDC_ASSERT(false && "unexpected message at origin");
}

void WebOriginServer::send(SiteId to, HttpMessage m, std::size_t bytes) {
  net_.send(self_, to, std::make_shared<HttpMessage>(std::move(m)), bytes);
}

// --- WebProxyCache -----------------------------------------------------------

WebProxyCache::WebProxyCache(Simulator& sim, Network& net, SiteId self,
                             SiteId origin, WebPolicyConfig config)
    : sim_(sim), net_(net), self_(self), origin_(origin), config_(config) {}

void WebProxyCache::attach() {
  net_.set_handler(self_, [this](SiteId, const std::shared_ptr<void>& p) {
    on_message(p);
  });
}

SimTime WebProxyCache::ttl_for(SimTime now, SimTime last_modified) const {
  switch (config_.policy) {
    case WebPolicy::kFixedTtl:
      return config_.fixed_ttl;
    case WebPolicy::kAdaptiveTtl: {
      // Alex protocol: a document untouched for a long time is unlikely to
      // change soon — trust it proportionally to its age.
      const double age =
          static_cast<double>((now - last_modified).as_micros());
      const SimTime ttl =
          SimTime::micros(static_cast<std::int64_t>(config_.adaptive_factor * age));
      return std::clamp(ttl, config_.adaptive_min, config_.adaptive_max);
    }
    case WebPolicy::kPollEveryTime:
      return SimTime::zero();
    case WebPolicy::kInvalidate:
      return SimTime::infinity();  // valid until told otherwise
  }
  return SimTime::zero();
}

bool WebProxyCache::fresh(const Entry& e, SimTime now) const {
  return e.expires.is_infinite() || now < e.expires;
}

void WebProxyCache::install(const Http200& ok) {
  Entry e;
  e.version = ok.version;
  e.fetched_at = sim_.now();
  e.last_modified = ok.last_modified;
  const SimTime ttl = ttl_for(sim_.now(), ok.last_modified);
  e.expires = ttl.is_infinite() ? SimTime::infinity() : sim_.now() + ttl;
  cache_[ok.doc] = e;
}

void WebProxyCache::request(DocumentId doc, ServeFn done) {
  TIMEDC_ASSERT(!pending_);
  ++stats_.requests;
  const auto it = cache_.find(doc);
  if (it != cache_.end() && fresh(it->second, sim_.now())) {
    ++stats_.hits;
    done(it->second.version, sim_.now());
    return;
  }
  pending_ = std::move(done);
  pending_doc_ = doc;
  if (it != cache_.end()) {
    ++stats_.validations;
    send_origin(HttpGetIms{doc, it->second.version});
  } else {
    ++stats_.full_fetches;
    send_origin(HttpGet{doc});
  }
}

void WebProxyCache::on_message(const std::shared_ptr<void>& payload) {
  const auto msg = std::static_pointer_cast<HttpMessage>(payload);
  if (const auto* ok = std::get_if<Http200>(msg.get())) {
    install(*ok);
    if (pending_ && ok->doc == pending_doc_) {
      ServeFn done = std::move(pending_);
      pending_ = nullptr;
      done(ok->version, sim_.now());
    }
    return;
  }
  if (const auto* nm = std::get_if<Http304>(msg.get())) {
    ++stats_.validations_304;
    auto it = cache_.find(nm->doc);
    TIMEDC_ASSERT(it != cache_.end());
    const SimTime ttl = ttl_for(sim_.now(), it->second.last_modified);
    it->second.expires =
        ttl.is_infinite() ? SimTime::infinity() : sim_.now() + ttl;
    if (pending_ && nm->doc == pending_doc_) {
      ServeFn done = std::move(pending_);
      pending_ = nullptr;
      done(it->second.version, sim_.now());
    }
    return;
  }
  if (const auto* inv = std::get_if<HttpInvalidate>(msg.get())) {
    ++stats_.invalidations_received;
    auto it = cache_.find(inv->doc);
    if (it != cache_.end() && it->second.version < inv->version) {
      cache_.erase(it);
    }
    return;
  }
  TIMEDC_ASSERT(false && "unexpected message at proxy");
}

void WebProxyCache::send_origin(HttpMessage m) {
  net_.send(self_, origin_, std::make_shared<HttpMessage>(std::move(m)), 64);
}

}  // namespace timedc
