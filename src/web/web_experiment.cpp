#include "web/web_experiment.hpp"

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace timedc {
namespace {

/// Drives one proxy's GET stream sequentially with exponential think times.
class ProxyDriver {
 public:
  ProxyDriver(Simulator& sim, WebProxyCache& proxy, WebOriginServer& origin,
              const WebExperimentConfig& config, Rng rng,
              WebExperimentResult& result)
      : sim_(sim),
        proxy_(proxy),
        origin_(origin),
        config_(config),
        rng_(rng),
        zipf_(config.num_documents, config.zipf_exponent),
        result_(result) {}

  void start() { schedule_next(); }

 private:
  void schedule_next() {
    const SimTime gap = SimTime::micros(
        1 + static_cast<std::int64_t>(rng_.exponential(static_cast<double>(
                config_.mean_request_interval.as_micros()))));
    const SimTime when = sim_.now() + gap;
    if (when > config_.horizon) return;
    sim_.schedule_at(when, [this] { issue(); });
  }

  void issue() {
    const DocumentId doc{static_cast<std::uint32_t>(zipf_.sample(rng_))};
    proxy_.request(doc, [this, doc](DocVersion served, SimTime at) {
      ++result_.requests;
      const SimTime died = origin_.replaced_at(doc, served);
      if (died < at) {
        ++result_.stale_serves;
        const SimTime age = at - died;
        result_.max_stale_age = max(result_.max_stale_age, age);
        result_.mean_stale_age_us += static_cast<double>(age.as_micros());
      }
      schedule_next();
    });
  }

  Simulator& sim_;
  WebProxyCache& proxy_;
  WebOriginServer& origin_;
  const WebExperimentConfig& config_;
  Rng rng_;
  ZipfDistribution zipf_;
  WebExperimentResult& result_;
};

}  // namespace

WebExperimentResult run_web_experiment(const WebExperimentConfig& config) {
  Simulator sim;
  Rng rng(config.seed);
  WebExperimentResult result;

  const SiteId origin_site{static_cast<std::uint32_t>(config.num_proxies)};
  Network net(sim, config.num_proxies + 1,
              std::make_unique<UniformLatency>(config.min_latency,
                                               config.max_latency),
              NetworkConfig{}, rng.split());
  WebOriginServer origin(sim, net, origin_site,
                         config.policy.policy == WebPolicy::kInvalidate,
                         config.body_bytes);
  origin.attach();

  std::vector<std::unique_ptr<WebProxyCache>> proxies;
  std::vector<std::unique_ptr<ProxyDriver>> drivers;
  for (std::uint32_t p = 0; p < config.num_proxies; ++p) {
    proxies.push_back(std::make_unique<WebProxyCache>(
        sim, net, SiteId{p}, origin_site, config.policy));
    proxies.back()->attach();
    drivers.push_back(std::make_unique<ProxyDriver>(
        sim, *proxies.back(), origin, config, rng.split(), result));
  }

  // Document update processes: schedule each document's Poisson updates.
  Rng update_rng = rng.split();
  for (std::uint32_t d = 0; d < config.num_documents; ++d) {
    SimTime t = SimTime::zero();
    while (true) {
      t += SimTime::micros(
          1 + static_cast<std::int64_t>(update_rng.exponential(
                  static_cast<double>(config.mean_update_interval.as_micros()))));
      if (t > config.horizon) break;
      sim.schedule_at(t, [&origin, d] { origin.update(DocumentId{d}); });
    }
  }

  for (auto& d : drivers) d->start();
  sim.run_until();

  for (const auto& p : proxies) {
    const WebCacheStats& s = p->stats();
    result.cache.requests += s.requests;
    result.cache.hits += s.hits;
    result.cache.validations += s.validations;
    result.cache.validations_304 += s.validations_304;
    result.cache.full_fetches += s.full_fetches;
    result.cache.invalidations_received += s.invalidations_received;
  }
  result.origin = origin.stats();
  result.network = net.stats();
  if (result.stale_serves > 0) {
    result.mean_stale_age_us /= static_cast<double>(result.stale_serves);
  }
  if (result.requests > 0) {
    result.stale_fraction = static_cast<double>(result.stale_serves) /
                            static_cast<double>(result.requests);
    result.bytes_per_request = static_cast<double>(result.network.bytes_sent) /
                               static_cast<double>(result.requests);
    result.origin_msgs_per_request =
        static_cast<double>(result.origin.gets + result.origin.ims_checks) /
        static_cast<double>(result.requests);
  }
  return result;
}

}  // namespace timedc
