#include "core/serialization.hpp"

#include <unordered_map>

#include "common/assert.hpp"

namespace timedc {

bool is_legal_serialization(const History& h, std::span<const OpIndex> order) {
  std::unordered_map<ObjectId, Value> current;
  for (OpIndex i : order) {
    const Operation& op = h.op(i);
    if (op.is_write()) {
      current[op.object] = op.value;
    } else {
      const auto it = current.find(op.object);
      const Value v = it == current.end() ? kInitialValue : it->second;
      if (v != op.value) return false;
    }
  }
  return true;
}

bool respects_program_order(const History& h, std::span<const OpIndex> order) {
  // Position of each op in `order`.
  std::vector<std::size_t> pos(h.size(), static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < order.size(); ++p) pos[order[p].value] = p;
  for (std::size_t s = 0; s < h.num_sites(); ++s) {
    std::size_t last = 0;
    bool first = true;
    for (OpIndex i : h.site_ops(SiteId{static_cast<std::uint32_t>(s)})) {
      const std::size_t p = pos[i.value];
      if (p == static_cast<std::size_t>(-1)) continue;  // not in this set
      if (!first && p < last) return false;
      last = p;
      first = false;
    }
  }
  return true;
}

bool respects_effective_time(const History& h, std::span<const OpIndex> order) {
  for (std::size_t k = 1; k < order.size(); ++k) {
    if (h.op(order[k]).time < h.op(order[k - 1]).time) return false;
  }
  return true;
}

bool is_permutation_of_history(const History& h, std::span<const OpIndex> order) {
  if (order.size() != h.size()) return false;
  std::vector<bool> seen(h.size(), false);
  for (OpIndex i : order) {
    if (i.value >= h.size() || seen[i.value]) return false;
    seen[i.value] = true;
  }
  return true;
}

std::string serialization_to_string(const History& h,
                                    std::span<const OpIndex> order) {
  std::string out;
  for (OpIndex i : order) {
    if (!out.empty()) out += " ";
    out += h.op(i).to_string();
  }
  return out;
}

}  // namespace timedc
