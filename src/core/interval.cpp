#include "core/interval.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.hpp"

namespace timedc {

std::string IntervalOp::to_string() const {
  std::string s = is_write() ? "w" : "r";
  s += std::to_string(site.value) + "(" + timedc::to_string(object) + ")" +
       std::to_string(value.value);
  s += "[" + std::to_string(invocation.as_micros()) + "," +
       std::to_string(response.as_micros()) + "]";
  return s;
}

IntervalHistory::IntervalHistory(std::size_t num_sites)
    : num_sites_(num_sites), site_busy_until_(num_sites, SimTime::micros(-1)) {
  TIMEDC_ASSERT(num_sites > 0);
}

IntervalHistory& IntervalHistory::write(SiteId site, ObjectId object,
                                        Value value, SimTime invocation,
                                        SimTime response) {
  TIMEDC_ASSERT(site.value < num_sites_);
  TIMEDC_ASSERT(invocation <= response);
  TIMEDC_ASSERT(invocation > site_busy_until_[site.value] &&
                "a site's operations must not overlap");
  TIMEDC_ASSERT(value != kInitialValue);
  for (const IntervalOp& op : ops_) {
    TIMEDC_ASSERT(!(op.is_write() && op.object == object && op.value == value) &&
                  "written values must be unique per object");
  }
  site_busy_until_[site.value] = response;
  ops_.push_back(IntervalOp{site, OpType::kWrite, object, value, invocation,
                            response});
  return *this;
}

IntervalHistory& IntervalHistory::read(SiteId site, ObjectId object,
                                       Value value, SimTime invocation,
                                       SimTime response) {
  TIMEDC_ASSERT(site.value < num_sites_);
  TIMEDC_ASSERT(invocation <= response);
  TIMEDC_ASSERT(invocation > site_busy_until_[site.value]);
  site_busy_until_[site.value] = response;
  ops_.push_back(
      IntervalOp{site, OpType::kRead, object, value, invocation, response});
  return *this;
}

namespace {

/// Memoized backtracking over linearizations, mirroring the point-history
/// engine: state = (placed set, per-object current value).
class IntervalSearcher {
 public:
  IntervalSearcher(const IntervalHistory& h, const SearchLimits& limits)
      : h_(h), limits_(limits) {}

  IntervalLinResult run() {
    const std::size_t m = h_.size();
    placed_.assign(m, false);
    order_.clear();
    try_order_.resize(m);
    for (std::size_t j = 0; j < m; ++j) try_order_[j] = j;
    std::sort(try_order_.begin(), try_order_.end(),
              [&](std::size_t a, std::size_t b) {
                return h_.op(a).invocation < h_.op(b).invocation;
              });
    // Thin-air check: every non-initial read value must have a writer.
    for (const IntervalOp& op : h_.operations()) {
      if (!op.is_read() || op.value == kInitialValue) continue;
      bool found = false;
      for (const IntervalOp& w : h_.operations()) {
        found |= w.is_write() && w.object == op.object && w.value == op.value;
      }
      if (!found) return {Verdict::kNo, {}};
    }
    IntervalLinResult result;
    if (dfs()) {
      result.verdict = Verdict::kYes;
      result.witness = order_;
    } else {
      result.verdict = limit_hit_ ? Verdict::kLimit : Verdict::kNo;
    }
    return result;
  }

 private:
  bool dfs() {
    if (order_.size() == h_.size()) return true;
    if (++nodes_ > limits_.max_nodes) {
      limit_hit_ = true;
      return false;
    }
    const std::uint64_t key = state_key();
    if (failed_.contains(key)) return false;
    for (std::size_t j : try_order_) {
      if (placed_[j]) continue;
      if (!minimal(j)) continue;
      const IntervalOp& op = h_.op(j);
      Value prev{};
      bool had = false;
      if (op.is_read()) {
        const auto it = current_.find(op.object);
        const Value v = it == current_.end() ? kInitialValue : it->second;
        if (v != op.value) continue;
      } else {
        const auto it = current_.find(op.object);
        had = it != current_.end();
        prev = had ? it->second : kInitialValue;
        current_[op.object] = op.value;
      }
      placed_[j] = true;
      order_.push_back(j);
      if (dfs()) return true;
      placed_[j] = false;
      order_.pop_back();
      if (op.is_write()) {
        if (had)
          current_[op.object] = prev;
        else
          current_.erase(op.object);
      }
      if (limit_hit_) return false;
    }
    failed_.insert(key);
    return false;
  }

  /// j may be linearized next only if no unplaced op strictly precedes it.
  bool minimal(std::size_t j) const {
    for (std::size_t k = 0; k < h_.size(); ++k) {
      if (!placed_[k] && k != j && h_.precedes(k, j)) return false;
    }
    return true;
  }

  std::uint64_t state_key() const {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t v) {
      hash ^= v + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
    };
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < placed_.size(); ++j) {
      if (placed_[j]) word |= 1ULL << (j & 63);
      if ((j & 63) == 63) {
        mix(word);
        word = 0;
      }
    }
    mix(word);
    std::uint64_t acc = 0;
    for (const auto& [obj, val] : current_) {
      std::uint64_t e = (static_cast<std::uint64_t>(obj.value) << 32) ^
                        static_cast<std::uint64_t>(val.value);
      e *= 0xbf58476d1ce4e5b9ULL;
      e ^= e >> 29;
      acc += e;
    }
    mix(acc);
    return hash;
  }

  const IntervalHistory& h_;
  SearchLimits limits_;
  std::vector<bool> placed_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> try_order_;
  std::unordered_map<ObjectId, Value> current_;
  std::uint64_t nodes_ = 0;
  bool limit_hit_ = false;
  std::unordered_set<std::uint64_t> failed_;
};

}  // namespace

IntervalLinResult check_interval_lin(const IntervalHistory& h,
                                     const SearchLimits& limits) {
  return IntervalSearcher(h, limits).run();
}

std::optional<std::vector<SimTime>> choose_effective_times(
    const IntervalHistory& h, const std::vector<std::size_t>& order) {
  TIMEDC_ASSERT(order.size() == h.size());
  // Greedy sweep: each operation takes effect as early as its interval and
  // the previous effective time allow. If the order respects the interval
  // precedence, this never overruns a response time (see interval_test's
  // property check); if it does overrun, the order was invalid.
  std::vector<SimTime> times(h.size());
  SimTime cursor = SimTime::micros(-1);
  for (std::size_t j : order) {
    const IntervalOp& op = h.op(j);
    const SimTime t = max(op.invocation, cursor);
    if (t > op.response) return std::nullopt;
    times[j] = t;
    cursor = t;
  }
  return times;
}

History to_point_history(const IntervalHistory& h,
                         const std::vector<SimTime>& times) {
  TIMEDC_ASSERT(times.empty() || times.size() == h.size());
  // Append per site in invocation order (per-site intervals are disjoint,
  // so any in-interval effective times are strictly increasing per site).
  std::vector<std::size_t> order(h.size());
  for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return h.op(a).invocation < h.op(b).invocation;
  });
  HistoryBuilder builder(h.num_sites());
  for (std::size_t j : order) {
    const IntervalOp& op = h.op(j);
    const SimTime t = times.empty() ? op.invocation : times[j];
    if (op.is_write()) {
      builder.write(op.site, op.object, op.value, t);
    } else {
      builder.read(op.site, op.object, op.value, t);
    }
  }
  return builder.build();
}

}  // namespace timedc
