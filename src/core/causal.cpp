#include "core/causal.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc {

CausalOrder CausalOrder::build(const History& h) {
  CausalOrder co;
  co.n_ = h.size();
  const std::size_t words = (co.n_ + 63) / 64;
  co.rows_.assign(co.n_, Row(words, 0));
  co.direct_preds_.assign(co.n_, {});

  // Direct edges: program order (consecutive ops per site) and reads-from.
  std::vector<std::vector<OpIndex>> succ(co.n_);
  auto add_edge = [&](OpIndex a, OpIndex b) {
    succ[a.value].push_back(b);
    co.direct_preds_[b.value].push_back(a);
  };
  for (std::size_t s = 0; s < h.num_sites(); ++s) {
    const auto& ops = h.site_ops(SiteId{static_cast<std::uint32_t>(s)});
    for (std::size_t k = 1; k < ops.size(); ++k) add_edge(ops[k - 1], ops[k]);
  }
  for (const Operation& op : h.operations()) {
    if (!op.is_read()) continue;
    if (const auto src = h.forced_source(op.index); src && *src != op.index) {
      add_edge(*src, op.index);
    }
  }

  // Transitive closure by reverse-finishing-order DFS propagation. Process
  // nodes in an order where successors are (mostly) done first; with cycles
  // we simply iterate to a fixpoint, which terminates because rows only grow.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < co.n_; ++a) {
      Row& row = co.rows_[a];
      const Row before = row;
      for (OpIndex b : succ[a]) {
        set_bit(row, b.value);
        or_into(row, co.rows_[b.value]);
      }
      if (row != before) changed = true;
    }
  }
  for (std::size_t a = 0; a < co.n_ && !co.cyclic_; ++a) {
    if (row_bit(co.rows_[a], static_cast<std::uint32_t>(a))) co.cyclic_ = true;
  }
  return co;
}

bool has_causally_hidden_write(const History& h, const CausalOrder& co) {
  for (const Operation& r : h.operations()) {
    if (!r.is_read()) continue;
    const auto src = h.forced_source(r.index);
    if (!src) continue;  // initial-value reads handled by the init check
    for (OpIndex b : h.writes_to(r.object)) {
      if (b == *src) continue;
      if (co.precedes(*src, b) && co.precedes(b, r.index)) return true;
    }
  }
  return false;
}

bool passes_cc_fast_checks(const History& h, const CausalOrder& co) {
  if (h.has_thin_air_read()) return false;
  if (co.cyclic()) return false;
  // A read of the initial value must not causally follow any write to the
  // same object (the WriteCOInitRead bad pattern).
  for (const Operation& r : h.operations()) {
    if (!r.is_read() || r.value != kInitialValue) continue;
    if (h.forced_source(r.index)) continue;  // reads a real write of 0? impossible
    for (OpIndex w : h.writes_to(r.object)) {
      if (co.precedes(w, r.index)) return false;
    }
  }
  return !has_causally_hidden_write(h, co);
}

}  // namespace timedc
