// The Figure 4 hierarchy audit (LIN ⊂ TSC ⊂ SC ⊂ CC, TSC = T ∩ SC,
// TCC = T ∩ CC), factored out of the bench so tests can run small audits
// and the perf baseline can time large ones at several thread counts.
//
// Each round generates one history (even rounds: random_history, odd
// rounds: replica_history), runs the exact LIN/SC/CC checkers once, the
// timed predicate at the main Delta and at every sweep Delta, and checks
// the paper's set identities. Rounds are independent: round i draws from
// Rng::stream(seed, i), so the audit is embarrassingly parallel and its
// counters are bit-identical at any thread count.
//
// Per-round TSC/TCC at the main Delta come from one real check_tsc /
// check_tcc call (both parts computed, feeding the identity audit); the
// sweep columns then compose the audited identity — accept(Delta) =
// on_time(Delta) AND sc — instead of re-running the NP-hard search per
// sweep point, turning 16 serialization searches per round into 2.
//
// A round where any exact checker returns Verdict::kLimit is excluded from
// the identity checks and tallied in `limit_rounds` — a budget blowout is
// "don't know", not "not a member" (the bench asserts the tally is zero).
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "core/checkers.hpp"

namespace timedc {

struct HierarchyAuditConfig {
  int rounds = 1500;
  std::uint64_t seed = 20240601;
  /// Delta for the Figure 4a timed-model columns.
  SimTime delta = SimTime::micros(60);
  /// Figure 4b sweep points (microseconds).
  std::vector<std::int64_t> sweep_micros = {0, 10, 20, 40, 80, 160, 320, 640};
  /// Worker threads; 0 = ThreadPool::default_threads().
  int num_threads = 0;
  SearchLimits limits;
  /// Sink for checker telemetry across all rounds. Each round traces into
  /// its own local Tracer (rounds run in parallel); the flushed per-round
  /// traces are adopted here in round-index order, so the combined trace is
  /// identical at any thread count. Overrides limits.tracer.
  Tracer* tracer = nullptr;
};

struct HierarchyAuditResult {
  int rounds = 0;
  // Figure 4a membership counters.
  int n_lin = 0, n_sc = 0, n_cc = 0, n_timed = 0, n_tsc = 0, n_tcc = 0;
  /// Set-identity violations (0 expected).
  int violations = 0;
  /// Rounds where an exact checker hit the node budget (0 expected);
  /// excluded from the identity checks rather than miscounted as "no".
  int limit_rounds = 0;
  // Figure 4b acceptance counts, one per sweep_micros entry, plus the
  /// Delta = infinity column (which must equal n_sc / n_cc).
  std::vector<int> accept_tsc, accept_tcc;
  int tsc_inf = 0, tcc_inf = 0;
  /// Backtracking nodes expanded across all rounds (perf telemetry).
  std::uint64_t nodes = 0;
  /// LIN/SC searches (incl. the SC half of TSC) settled without
  /// backtracking — seed order or prefilter.
  std::uint64_t fast_paths = 0;

  bool ok() const { return violations == 0 && limit_rounds == 0; }
};

HierarchyAuditResult run_hierarchy_audit(const HierarchyAuditConfig& config);

}  // namespace timedc
