// Reading on time: the interference sets W_r of Definitions 1, 2 and 6.
//
// For a read r returning the value of write w (forced by unique values),
// W_r collects the writes to the same object that are newer than w yet old
// enough that their value should already have been visible when r executed:
//   Def 1 (perfect clocks):  T(w)  <  T(w')  and  T(w')  <  T(r) - Delta
//   Def 2 (eps-synced):      T(w)+eps < T(w') and T(w')+eps < T(r) - Delta
//   Def 6 (logical + xi):    xi(L(w)) < xi(L(w')) < xi(L(r)) - Delta
// A serialization is timed iff W_r is empty for every read. Because the
// reads-from pairing is forced, "every read of H is on time" is a property
// of the history alone — this is what makes TSC = T intersect SC and
// TCC = T intersect CC directly checkable.
//
// A read of the initial value 0 is treated as reading from a virtual write
// at time -infinity: every write to the object is "newer than the source".
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "clocks/xi_map.hpp"
#include "common/sim_time.hpp"
#include "core/history.hpp"

namespace timedc {

/// Definition 1: perfectly synchronized clocks.
struct TimedSpecPerfect {
  SimTime delta;
};

/// Definition 2: approximately-synchronized clocks with skew bound eps.
/// With eps == 0 this coincides with Definition 1.
struct TimedSpecEpsilon {
  SimTime delta;
  SimTime eps;
};

/// Definition 6: logical clocks summarized through a xi map; delta is a
/// plain real bounding xi differences. Requires History::logical_times().
struct TimedSpecXi {
  const XiMap* xi = nullptr;
  double delta = 0;
};

/// One read that failed to be on time, with its non-empty W_r.
struct LateRead {
  OpIndex read;
  std::optional<OpIndex> source;   // the write it returns; nullopt = initial 0
  std::vector<OpIndex> w_r;        // the offending interference set
};

struct TimedCheckResult {
  bool all_on_time = true;
  std::vector<LateRead> late_reads;
};

TimedCheckResult reads_on_time(const History& h, const TimedSpecPerfect& spec);
TimedCheckResult reads_on_time(const History& h, const TimedSpecEpsilon& spec);
TimedCheckResult reads_on_time(const History& h, const TimedSpecXi& spec);

/// W_r for one read under Definition 1/2 semantics (eps = 0 gives Def 1).
std::vector<OpIndex> interference_set(const History& h, OpIndex read,
                                      SimTime delta, SimTime eps);

/// Definition 1/2 applied *literally to a serialization S*: for each read,
/// the source write is the closest write to the same object appearing to
/// its left in S (not the forced reads-from). For legal serializations this
/// agrees with reads_on_time (unique values force the same pairing — the
/// equivalence is property-tested); it also gives meaning to "S is timed"
/// for serializations that are not legal.
bool is_timed_serialization(const History& h, std::span<const OpIndex> order,
                            const TimedSpecEpsilon& spec);

/// The smallest Delta for which every read of h is on time under
/// Definition 1, i.e. max over reads r and eligible writes w' of
/// T(r) - T(w'), clamped to >= 0. Figure 5's "96" and "27" fall out of this.
SimTime min_timed_delta(const History& h);

/// Same under Definition 2 with skew bound eps (thresholds shrink by eps;
/// some interferences disappear entirely when w and w' become concurrent).
SimTime min_timed_delta(const History& h, SimTime eps);

/// All per-read staleness gaps T(r) - T(w') under Definition 1, sorted
/// descending; gap k is the TSC/TCC acceptance threshold spectrum used by
/// the figure benches.
std::vector<SimTime> staleness_gaps(const History& h);

/// One entry per read of h: the observed age of the read's value under
/// Definition 1 — the largest T(r) - T(w') over writes w' newer than the
/// forced source (zero when the source is the newest write before the
/// read). A history satisfies Definition 1 at Delta iff every entry's
/// staleness <= Delta; this is the staleness-histogram feed.
struct ReadStaleness {
  OpIndex read;
  SimTime staleness = SimTime::zero();
};
std::vector<ReadStaleness> per_read_staleness(const History& h);

}  // namespace timedc
