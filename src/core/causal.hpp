// The causality relation over a history's operations (Section 2, after
// Lamport [26]): a -> b iff
//   (i)   a and b execute at the same site and a precedes b in program order,
//   (ii)  b reads the value written by a (forced reads-from), or
//   (iii) transitively through some c.
//
// CausalOrder materializes the transitive closure as one bitset row per
// operation, which makes precedes() O(1) and the per-site serialization
// searches cheap. The relation can be cyclic for pathological histories
// (e.g. a site reading a value it only writes later); such histories satisfy
// no causal model and cyclic() reports it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/history.hpp"

namespace timedc {

class CausalOrder {
 public:
  static CausalOrder build(const History& h);

  /// a -> b (strict causal precedence).
  bool precedes(OpIndex a, OpIndex b) const {
    return row_bit(rows_[a.value], b.value);
  }

  bool concurrent(OpIndex a, OpIndex b) const {
    return a != b && !precedes(a, b) && !precedes(b, a);
  }

  /// True iff some operation causally precedes itself.
  bool cyclic() const { return cyclic_; }

  std::size_t size() const { return n_; }

  /// Direct (non-transitive) predecessor lists, before closure: program-order
  /// predecessor plus reads-from source. Useful for replaying message flows.
  const std::vector<std::vector<OpIndex>>& direct_predecessors() const {
    return direct_preds_;
  }

 private:
  using Row = std::vector<std::uint64_t>;

  static bool row_bit(const Row& row, std::uint32_t i) {
    return (row[i >> 6] >> (i & 63)) & 1;
  }
  static void set_bit(Row& row, std::uint32_t i) { row[i >> 6] |= 1ULL << (i & 63); }
  static void or_into(Row& dst, const Row& src) {
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] |= src[k];
  }

  std::size_t n_ = 0;
  std::vector<Row> rows_;  // rows_[a] bit b set <=> a -> b
  std::vector<std::vector<OpIndex>> direct_preds_;
  bool cyclic_ = false;
};

/// The paper's CC "hidden write" test: returns true iff there exist a, b, c
/// with a = write(X)v, c = read(X)v, b = write(X)v' and a -> b -> c.
/// Any causally consistent history must be free of this pattern; together
/// with acyclicity and no thin-air reads it is the fast necessary condition
/// the large-scale experiments use (the exact checker is exponential).
bool has_causally_hidden_write(const History& h, const CausalOrder& co);

/// Fast necessary conditions for causal consistency: no thin-air reads, an
/// acyclic causal order, no read of the initial value causally after a write
/// to the same object, and no causally hidden write. Exact CC implies this;
/// the converse holds on all histories our generators produce and is
/// property-tested against the exact checker on small histories.
bool passes_cc_fast_checks(const History& h, const CausalOrder& co);

}  // namespace timedc
