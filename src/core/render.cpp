#include "core/render.hpp"

#include <algorithm>

namespace timedc {

std::string render_timeline(const History& h, const RenderOptions& options) {
  if (h.empty()) return "(empty history)\n";
  SimTime t_min = h.op(OpIndex{0}).time;
  SimTime t_max = t_min;
  for (const Operation& op : h.operations()) {
    t_min = min(t_min, op.time);
    t_max = max(t_max, op.time);
  }
  const double span =
      std::max<double>(1.0, static_cast<double>((t_max - t_min).as_micros()));
  const std::size_t width = std::max<std::size_t>(options.width, 20);

  auto column = [&](SimTime t) {
    const double frac = static_cast<double>((t - t_min).as_micros()) / span;
    return static_cast<std::size_t>(frac * static_cast<double>(width - 1));
  };

  std::string out;
  for (std::uint32_t s = 0; s < h.num_sites(); ++s) {
    std::string row;
    for (OpIndex i : h.site_ops(SiteId{s})) {
      const Operation& op = h.op(i);
      // Label without the site subscript (the row identifies the site).
      std::string label = op.is_write() ? "w(" : "r(";
      label += timedc::to_string(op.object) + ")" + std::to_string(op.value.value);
      std::size_t col = column(op.time);
      if (col < row.size() + 1) col = row.size() + 1;  // avoid overlap
      row.resize(col, ' ');
      row += label;
    }
    out += "site" + std::to_string(s) + " |" + row + "\n";
  }
  if (options.show_axis) {
    out += "      +" + std::string(width, '-') + "\n";
    out += "       t=" + std::to_string(t_min.as_micros()) + "us ... t=" +
           std::to_string(t_max.as_micros()) + "us\n";
  }
  return out;
}

std::string render_timed_result(const History& h, const TimedCheckResult& result) {
  if (result.all_on_time) return "all reads on time\n";
  std::string out;
  for (const LateRead& lr : result.late_reads) {
    out += lr.read.value < h.size() ? h.op(lr.read).to_string() : "?";
    out += " is late: reads ";
    out += lr.source ? h.op(*lr.source).to_string() : "initial value";
    out += ", W_r = {";
    for (std::size_t k = 0; k < lr.w_r.size(); ++k) {
      if (k > 0) out += ", ";
      out += h.op(lr.w_r[k]).to_string();
    }
    out += "}\n";
  }
  return out;
}

}  // namespace timedc
