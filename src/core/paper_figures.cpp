#include "core/paper_figures.hpp"

#include "common/assert.hpp"

namespace timedc {
namespace {

constexpr SiteId kS0{0}, kS1{1}, kS2{2}, kS3{3}, kS4{4}, kS5{5};
constexpr ObjectId kA{0}, kB{1}, kC{2}, kX{23};  // 'X' prints as letter X

SimTime us(std::int64_t n) { return SimTime::micros(n); }

}  // namespace

History figure1() {
  HistoryBuilder b(2);
  b.write(kS1, kX, Value{1}, us(50));
  b.write(kS0, kX, Value{7}, us(100));
  b.read(kS1, kX, Value{1}, us(150));
  b.read(kS1, kX, Value{1}, us(250));
  b.read(kS1, kX, Value{1}, us(350));
  b.read(kS1, kX, Value{1}, us(450));
  return b.build();
}

History figure2() {
  // One write per site keeps per-site program order trivial; the read
  // executes at a sixth site. Values: w1->1, w->2, w2->3, w3->4, w4->5.
  HistoryBuilder b(6);
  b.write(kS0, kX, Value{1}, us(10));    // w1
  b.write(kS1, kX, Value{2}, us(50));    // w   (the read's source)
  b.write(kS2, kX, Value{3}, us(80));    // w2  in W_r under Def 1
  b.write(kS3, kX, Value{4}, us(110));   // w3  in W_r under Def 1
  b.write(kS4, kX, Value{5}, us(170));   // w4  too recent to interfere
  b.read(kS5, kX, Value{2}, us(200));    // r   (T(r) - Delta = 140)
  return b.build();
}

Figure2Ops figure2_ops() {
  return Figure2Ops{OpIndex{0}, OpIndex{1}, OpIndex{2},
                    OpIndex{3}, OpIndex{4}, OpIndex{5}};
}

History figure5a() {
  HistoryBuilder b(5);
  // Times anchored to the paper where stated; the rest reconstructed so the
  // staleness-gap spectrum is exactly {96, 27, 10} (see paper_figures.hpp).
  // Interleaved in global time order for readability.
  b.read(kS3, kB, Value{0}, us(40));
  b.read(kS4, kC, Value{0}, us(60));
  b.write(kS3, kB, Value{1}, us(80));
  b.write(kS0, kB, Value{4}, us(90));
  b.write(kS2, kC, Value{3}, us(100));
  b.read(kS3, kA, Value{0}, us(120));
  b.write(kS4, kB, Value{2}, us(130));
  b.read(kS2, kA, Value{0}, us(150));
  b.read(kS1, kB, Value{2}, us(160));
  b.read(kS4, kC, Value{3}, us(200));
  b.read(kS1, kA, Value{0}, us(210));
  b.write(kS1, kA, Value{9}, us(260));
  b.write(kS2, kB, Value{5}, us(274));   // anchored
  b.read(kS3, kB, Value{2}, us(301));    // anchored: gap 27 vs w2(B)5@274
  b.read(kS1, kB, Value{5}, us(310));
  b.write(kS0, kC, Value{6}, us(338));   // anchored
  b.write(kS2, kC, Value{7}, us(340));   // anchored
  b.read(kS1, kC, Value{7}, us(360));
  b.write(kS2, kA, Value{8}, us(380));
  b.read(kS0, kA, Value{9}, us(390));    // gap 10 vs w2(A)8@380
  b.read(kS3, kB, Value{5}, us(400));
  b.write(kS2, kA, Value{10}, us(420));
  b.read(kS0, kB, Value{5}, us(430));
  b.read(kS4, kC, Value{6}, us(436));    // anchored: gap 96 vs w2(C)7@340
  b.read(kS4, kC, Value{7}, us(470));
  return b.build();
}

std::vector<OpIndex> figure5b_serialization() {
  // The serialization printed as Figure 5b, expressed as the effective
  // times of the operations in figure5a() (times identify ops uniquely).
  const History h = figure5a();
  const std::int64_t times[] = {
      60,   // r4(C)0
      40,   // r3(B)0
      90,   // w0(B)4
      100,  // w2(C)3
      150,  // r2(A)0
      80,   // w3(B)1
      120,  // r3(A)0
      130,  // w4(B)2
      200,  // r4(C)3
      301,  // r3(B)2
      160,  // r1(B)2
      210,  // r1(A)0
      338,  // w0(C)6
      260,  // w1(A)9
      390,  // r0(A)9
      274,  // w2(B)5
      310,  // r1(B)5
      430,  // r0(B)5
      400,  // r3(B)5
      436,  // r4(C)6
      340,  // w2(C)7
      360,  // r1(C)7
      470,  // r4(C)7
      380,  // w2(A)8
      420,  // w2(A)10
  };
  std::vector<OpIndex> order;
  for (std::int64_t t : times) {
    bool found = false;
    for (const Operation& op : h.operations()) {
      if (op.time == us(t)) {
        order.push_back(op.index);
        found = true;
        break;
      }
    }
    TIMEDC_ASSERT(found);
  }
  TIMEDC_ASSERT(order.size() == h.size());
  return order;
}

History figure6a() {
  HistoryBuilder b(5);
  b.read(kS3, kB, Value{0}, us(40));
  b.read(kS4, kC, Value{0}, us(60));
  b.write(kS3, kB, Value{1}, us(80));
  b.write(kS0, kB, Value{4}, us(90));
  b.write(kS2, kC, Value{3}, us(100));   // anchored
  b.read(kS3, kA, Value{0}, us(120));
  b.write(kS4, kB, Value{2}, us(130));
  b.read(kS2, kA, Value{0}, us(150));
  b.read(kS4, kC, Value{0}, us(155));    // anchored: ignores w2(C)3@100
  b.read(kS1, kB, Value{2}, us(160));
  b.read(kS4, kC, Value{3}, us(200));
  b.read(kS1, kA, Value{0}, us(210));
  b.write(kS1, kA, Value{9}, us(260));
  b.write(kS2, kB, Value{5}, us(274));
  b.read(kS3, kB, Value{4}, us(301));    // sees w0(B)4 after having seen 2...
  b.read(kS1, kB, Value{2}, us(310));
  b.write(kS0, kC, Value{6}, us(338));
  b.write(kS2, kC, Value{7}, us(340));
  b.read(kS1, kC, Value{7}, us(360));
  b.write(kS2, kA, Value{8}, us(380));
  b.read(kS0, kA, Value{9}, us(390));
  b.read(kS3, kB, Value{2}, us(400));    // ...then w4(B)2 again: 4-then-2
  b.write(kS2, kA, Value{10}, us(420));
  b.read(kS0, kB, Value{4}, us(430));    // site 0 forces 2-before-4 globally
  b.read(kS4, kC, Value{7}, us(470));
  return b.build();
}

}  // namespace timedc
