// Interval-based operations and Herlihy-Wing linearizability [20].
//
// Section 2 of the paper notes that operations "take a finite, non-zero
// time to execute, hence there is an interval that goes from the time when
// a read or write starts to the time when such an operation finishes", and
// then works with one *effective time* inside that interval. This module
// supplies the interval side of that picture:
//
//   * IntervalHistory: operations with [invocation, response] intervals,
//     sequential per site;
//   * check_interval_lin: classic linearizability — a legal serialization
//     respecting the real-time precedence  a.response < b.invocation;
//   * choose_effective_times: given a linearization, pick an effective time
//     inside every operation's interval such that the point-based LIN
//     checker accepts — the constructive bridge between the two models,
//     property-tested in interval_test.cpp.
#pragma once

#include <optional>
#include <vector>

#include "core/checkers.hpp"
#include "core/history.hpp"

namespace timedc {

struct IntervalOp {
  SiteId site;
  OpType type = OpType::kRead;
  ObjectId object;
  Value value;
  SimTime invocation;
  SimTime response;

  bool is_write() const { return type == OpType::kWrite; }
  bool is_read() const { return type == OpType::kRead; }
  std::string to_string() const;
};

/// A set of interval operations; per-site intervals must not overlap (each
/// site is a sequential process) and written values are unique per object.
class IntervalHistory {
 public:
  explicit IntervalHistory(std::size_t num_sites);

  IntervalHistory& write(SiteId site, ObjectId object, Value value,
                         SimTime invocation, SimTime response);
  IntervalHistory& read(SiteId site, ObjectId object, Value value,
                        SimTime invocation, SimTime response);

  std::size_t size() const { return ops_.size(); }
  std::size_t num_sites() const { return num_sites_; }
  const IntervalOp& op(std::size_t i) const { return ops_[i]; }
  const std::vector<IntervalOp>& operations() const { return ops_; }

  /// Strict real-time precedence: a finished before b started.
  bool precedes(std::size_t a, std::size_t b) const {
    return ops_[a].response < ops_[b].invocation;
  }

 private:
  std::size_t num_sites_;
  std::vector<IntervalOp> ops_;
  std::vector<SimTime> site_busy_until_;
};

struct IntervalLinResult {
  Verdict verdict = Verdict::kNo;
  std::vector<std::size_t> witness;  // a linearization, when kYes
  bool ok() const { return verdict == Verdict::kYes; }
};

/// Herlihy-Wing linearizability of an interval history.
IntervalLinResult check_interval_lin(const IntervalHistory& h,
                                     const SearchLimits& limits = {});

/// Given a linearization of `h` (as returned by check_interval_lin), assign
/// each operation an effective time within its interval, nondecreasing
/// along the linearization. Returns nullopt iff `order` does not respect
/// the interval precedence. The resulting point history (same ops at the
/// chosen instants) satisfies point-based LIN.
std::optional<std::vector<SimTime>> choose_effective_times(
    const IntervalHistory& h, const std::vector<std::size_t>& order);

/// Collapse an interval history to the point history at the given effective
/// times (or at invocation times when `times` is empty). Site order is
/// preserved. Useful to hand interval executions to the timed checkers.
History to_point_history(const IntervalHistory& h,
                         const std::vector<SimTime>& times = {});

}  // namespace timedc
