// The read/write operations that make up a history (Section 2 of the paper).
//
// Following the paper, every operation has an *effective time*: one instant
// between its start and its end at which it logically takes effect. All
// real-time reasoning (Definitions 1-4) is in terms of effective times.
#pragma once

#include <string>

#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace timedc {

enum class OpType { kRead, kWrite };

struct Operation {
  OpIndex index;     // position in the global history H
  SiteId site;       // the site that executed the operation
  OpType type = OpType::kRead;
  ObjectId object;   // the shared object accessed
  Value value;       // value written, or value returned by the read
  SimTime time;      // effective time T(a)

  bool is_write() const { return type == OpType::kWrite; }
  bool is_read() const { return type == OpType::kRead; }

  /// Paper notation: "w2(C)7@340" / "r4(C)6@436".
  std::string to_string() const {
    std::string s = is_write() ? "w" : "r";
    s += std::to_string(site.value);
    s += "(" + timedc::to_string(object) + ")";
    s += std::to_string(value.value);
    if (!time.is_infinite()) s += "@" + std::to_string(time.as_micros());
    return s;
  }
};

}  // namespace timedc
