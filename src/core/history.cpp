#include "core/history.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace timedc {

std::optional<OpIndex> History::forced_source(OpIndex r) const {
  const Operation& op = ops_[r.value];
  TIMEDC_ASSERT(op.is_read());
  return writer_of(op.object, op.value);
}

std::optional<OpIndex> History::writer_of(ObjectId object, Value value) const {
  const auto by_obj = writer_.find(object);
  if (by_obj == writer_.end()) return std::nullopt;
  const auto it = by_obj->second.find(value);
  if (it == by_obj->second.end()) return std::nullopt;
  return it->second;
}

const std::vector<OpIndex>& History::writes_to(ObjectId object) const {
  static const std::vector<OpIndex> kEmpty;
  const auto it = writes_by_object_.find(object);
  return it == writes_by_object_.end() ? kEmpty : it->second;
}

const std::vector<OpIndex>& History::writes_to_by_time(ObjectId object) const {
  static const std::vector<OpIndex> kEmpty;
  const auto it = writes_by_object_time_.find(object);
  return it == writes_by_object_time_.end() ? kEmpty : it->second;
}

std::string History::to_string() const {
  std::string out;
  for (std::size_t s = 0; s < per_site_.size(); ++s) {
    out += "site" + std::to_string(s) + ":";
    for (OpIndex i : per_site_[s]) {
      out += " " + ops_[i.value].to_string();
    }
    out += "\n";
  }
  return out;
}

HistoryBuilder::HistoryBuilder(std::size_t num_sites)
    : last_time_per_site_(num_sites, SimTime::micros(-1)) {
  TIMEDC_ASSERT(num_sites > 0);
  h_.per_site_.resize(num_sites);
}

HistoryBuilder& HistoryBuilder::append(SiteId site, OpType type, ObjectId object,
                                       Value value, SimTime t) {
  TIMEDC_ASSERT(!built_);
  TIMEDC_ASSERT(site.value < h_.per_site_.size());
  TIMEDC_ASSERT(!t.is_infinite());
  // Effective times must advance along each site's program order: a site
  // executes its operations one after the other in real time.
  TIMEDC_ASSERT(t > last_time_per_site_[site.value]);
  last_time_per_site_[site.value] = t;

  const OpIndex idx{static_cast<std::uint32_t>(h_.ops_.size())};
  h_.ops_.push_back(Operation{idx, site, type, object, value, t});
  h_.per_site_[site.value].push_back(idx);
  if (type == OpType::kWrite) {
    // Unique-values assumption (Section 2): each value written to an object
    // is written exactly once.
    auto [it, inserted] = h_.writer_[object].emplace(value, idx);
    (void)it;
    TIMEDC_ASSERT(inserted && "written values must be unique per object");
    TIMEDC_ASSERT(value != kInitialValue && "cannot write the initial value");
    h_.writes_.push_back(idx);
    h_.writes_by_object_[object].push_back(idx);
  }
  return *this;
}

HistoryBuilder& HistoryBuilder::write(SiteId site, ObjectId object, Value value,
                                      SimTime t) {
  return append(site, OpType::kWrite, object, value, t);
}

HistoryBuilder& HistoryBuilder::read(SiteId site, ObjectId object, Value value,
                                     SimTime t) {
  return append(site, OpType::kRead, object, value, t);
}

HistoryBuilder& HistoryBuilder::logical_times(std::vector<VectorTimestamp> times) {
  TIMEDC_ASSERT(!built_);
  TIMEDC_ASSERT(times.size() == h_.ops_.size());
  h_.logical_ = std::move(times);
  return *this;
}

History HistoryBuilder::build() {
  TIMEDC_ASSERT(!built_);
  built_ = true;
  for (const Operation& op : h_.ops_) {
    if (op.is_read() && op.value != kInitialValue &&
        !h_.writer_of(op.object, op.value).has_value()) {
      h_.thin_air_ = true;
    }
  }
  for (const auto& [object, writes] : h_.writes_by_object_) {
    auto sorted = writes;
    std::sort(sorted.begin(), sorted.end(), [this](OpIndex a, OpIndex b) {
      const SimTime ta = h_.ops_[a.value].time, tb = h_.ops_[b.value].time;
      return ta != tb ? ta < tb : a < b;
    });
    h_.writes_by_object_time_.emplace(object, std::move(sorted));
  }
  return std::move(h_);
}

}  // namespace timedc
