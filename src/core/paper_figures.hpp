// The executions of the paper's figures, as History values, plus the
// constants (Delta, eps, thresholds) each figure's discussion uses.
//
// Where the published figure fixes exact effective times (Figures 5 and 6
// anchor several: w0(C)6@338, w2(C)7@340, r4(C)6@436, w2(B)5@274,
// r3(B)2@301, w2(C)3@100, r4(C)0@155) we use them verbatim; the remaining
// times are reconstructed to preserve every claim the text makes (which
// serializations exist, which TSC/TCC thresholds bind).
//
// Reconstruction note for Figure 6: the figure as literally transcribed
// from the available text admits a sequentially consistent serialization,
// contradicting the paper's "satisfies CC but not SC". We restore the
// intended property minimally: site 3 observes the concurrent writes
// w0(B)4 and w4(B)2 in the order 4-then-2 (r3(B)4 followed by r3(B)2),
// while site 0's history forces the opposite global order, which is the
// canonical CC-but-not-SC disagreement on concurrent writes. The Delta=30
// TCC violation (r4(C)0@155 ignoring w2(C)3@100) is preserved exactly.
#pragma once

#include <vector>

#include "common/sim_time.hpp"
#include "core/history.hpp"

namespace timedc {

/// Figure 1: SC and CC hold, LIN does not; timed only up to the drawn Delta.
/// Site 0 writes x=7 at t=100; site 1 writes x=1 at t=50 then reads 1 at
/// t=150,250,350,450. With kFigure1Delta the first read is on time, the
/// later ones are not.
History figure1();
inline constexpr SimTime kFigure1Delta = SimTime::micros(120);

/// Figures 2 and 3: one object, writes w1,w,w2,w3,w4 and a read r of w's
/// value. Under Definition 1 (perfect clocks) W_r = {w2, w3}; under
/// Definition 2 with kFigure3Eps the set is empty.
History figure2();
inline constexpr SimTime kFigure2Delta = SimTime::micros(60);
inline constexpr SimTime kFigure3Eps = SimTime::micros(35);
/// History indices of the named operations in figure2().
struct Figure2Ops {
  OpIndex w1, w, w2, w3, w4, r;
};
Figure2Ops figure2_ops();

/// Figure 5a: the 5-site sequentially consistent execution. TSC binds at
/// Delta = 96 (r4(C)6@436 vs w2(C)7@340); the secondary threshold is 27
/// (r3(B)2@301 vs w2(B)5@274).
History figure5a();
/// Figure 5b: the program-order-respecting serialization printed in the
/// paper, as indices into figure5a().
std::vector<OpIndex> figure5b_serialization();
inline constexpr SimTime kFigure5PrimaryThreshold = SimTime::micros(96);
inline constexpr SimTime kFigure5SecondaryThreshold = SimTime::micros(27);

/// Figure 6a: the causally consistent but not sequentially consistent
/// execution (see reconstruction note above). TCC is violated at Delta=30
/// by r4(C)0@155 ignoring w2(C)3@100 (gap 55).
History figure6a();
inline constexpr SimTime kFigure6TccViolationDelta = SimTime::micros(30);
inline constexpr SimTime kFigure6TccViolationGap = SimTime::micros(55);

}  // namespace timedc
